// Unit tests: trace filtering helpers, trace file round trip through the
// filesystem, and the multimodal (3-attribute) environment.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/environment.h"
#include "trace/filter.h"
#include "trace/trace_io.h"
#include "util/stats.h"

namespace sentinel {
namespace {

std::vector<SensorRecord> sample_trace() {
  return {
      {0, 0.0, {1.0}}, {1, 10.0, {2.0}}, {2, 20.0, {3.0}},
      {0, 30.0, {4.0}}, {1, 40.0, {5.0}}, {3, 50.0, {6.0}},
  };
}

TEST(TraceFilter, ExcludeSensors) {
  const auto out = exclude_sensors(sample_trace(), {0, 3});
  ASSERT_EQ(out.size(), 3u);
  for (const auto& r : out) {
    EXPECT_TRUE(r.sensor == 1 || r.sensor == 2);
  }
}

TEST(TraceFilter, SelectSensors) {
  const auto out = select_sensors(sample_trace(), {0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].time, 30.0);
}

TEST(TraceFilter, SelectTimeRangeHalfOpen) {
  const auto out = select_time_range(sample_trace(), 10.0, 40.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out.front().time, 10.0);
  EXPECT_DOUBLE_EQ(out.back().time, 30.0);  // 40.0 excluded
}

TEST(TraceFilter, SensorsIn) {
  EXPECT_EQ(sensors_in(sample_trace()), (std::vector<SensorId>{0, 1, 2, 3}));
  EXPECT_TRUE(sensors_in({}).empty());
}

TEST(TraceFilter, EmptySetsAreIdentityOrEmpty) {
  EXPECT_EQ(exclude_sensors(sample_trace(), {}).size(), 6u);
  EXPECT_TRUE(select_sensors(sample_trace(), {}).empty());
}

TEST(TraceFileRoundTrip, WriteReadThroughFilesystem) {
  const auto path =
      (std::filesystem::temp_directory_path() / "sentinel_trace_test.csv").string();
  const std::vector<SensorRecord> recs{
      {0, 0.0, {21.5, 70.25}},
      {1, 300.5, {-3.125, 99.0}},
  };
  const AttrSchema schema = gdi_schema();
  write_trace_file(path, recs, &schema);

  const auto result = read_trace_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].sensor, 0u);
  EXPECT_DOUBLE_EQ(result.records[1].time, 300.5);
  EXPECT_DOUBLE_EQ(result.records[1].attrs[0], -3.125);
  EXPECT_DOUBLE_EQ(result.records[1].attrs[1], 99.0);
}

TEST(TraceFileRoundTrip, WriteToBadPathThrows) {
  EXPECT_THROW(write_trace_file("/nonexistent_dir/x.csv", {}, nullptr), std::runtime_error);
}

TEST(MultimodalEnvironment, PressureDimension) {
  sim::GdiEnvironmentConfig cfg;
  cfg.duration_seconds = 3.0 * kSecondsPerDay;
  cfg.include_pressure = true;
  const sim::GdiEnvironment env(cfg);
  EXPECT_EQ(env.dims(), 3u);

  RunningStats pressure;
  for (double t = 0.0; t < cfg.duration_seconds; t += kSecondsPerHour) {
    const auto v = env.truth(t);
    ASSERT_EQ(v.size(), 3u);
    pressure.add(v[2]);
  }
  // Pressure hovers around the configured mean with tide + weather spread.
  EXPECT_NEAR(pressure.mean(), cfg.pressure_mean, 6.0);
  EXPECT_GT(pressure.stddev(), 0.5);
  EXPECT_LT(pressure.stddev(), 10.0);
}

TEST(MultimodalEnvironment, PressureOffByDefault) {
  sim::GdiEnvironmentConfig cfg;
  cfg.duration_seconds = kSecondsPerDay;
  const sim::GdiEnvironment env(cfg);
  EXPECT_EQ(env.dims(), 2u);
  EXPECT_EQ(env.truth(0.0).size(), 2u);
}

TEST(MultimodalEnvironment, TemperatureUnaffectedByPressureFlag) {
  sim::GdiEnvironmentConfig a;
  a.duration_seconds = kSecondsPerDay;
  sim::GdiEnvironmentConfig b = a;
  b.include_pressure = true;
  const sim::GdiEnvironment ea(a);
  const sim::GdiEnvironment eb(b);
  for (double t = 0.0; t < kSecondsPerDay; t += 3600.0) {
    EXPECT_DOUBLE_EQ(ea.truth(t)[0], eb.truth(t)[0]) << t;
    EXPECT_DOUBLE_EQ(ea.truth(t)[1], eb.truth(t)[1]) << t;
  }
}

TEST(MultimodalEnvironment, Schema3Names) {
  const auto s = gdi_schema3();
  ASSERT_EQ(s.dims(), 3u);
  EXPECT_EQ(s.names[2], "pressure");
}

}  // namespace
}  // namespace sentinel
