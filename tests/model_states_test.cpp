// Unit tests: Model State Identification (paper eqs. (3), (5), (6)) --
// mapping, EMA centroid update, merge, spawn, id stability -- plus offline
// k-means for the initial estimate.

#include <gtest/gtest.h>

#include <sstream>

#include "core/model_states.h"
#include "core/offline_kmeans.h"

namespace sentinel::core {
namespace {

ModelStateConfig config(double alpha = 0.1, double merge = 2.0, double spawn = 10.0) {
  ModelStateConfig cfg;
  cfg.alpha = alpha;
  cfg.merge_threshold = merge;
  cfg.spawn_threshold = spawn;
  return cfg;
}

TEST(ModelStateSet, Validation) {
  EXPECT_THROW(ModelStateSet(config(), {}), std::invalid_argument);
  EXPECT_THROW(ModelStateSet(config(1.5), {{0.0, 0.0}}), std::invalid_argument);
  ModelStateConfig bad = config();
  bad.spawn_threshold = bad.merge_threshold;  // spawn must exceed merge
  EXPECT_THROW(ModelStateSet(bad, {{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(ModelStateSet(config(), {{0.0, 0.0}, {1.0}}), std::invalid_argument);
}

TEST(ModelStateSet, MapsToNearestState) {
  ModelStateSet s(config(), {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}});
  EXPECT_EQ(s.map({1.0, 1.0}), 0u);
  EXPECT_EQ(s.map({9.0, 1.0}), 1u);
  EXPECT_EQ(s.map({1.0, 9.0}), 2u);
}

TEST(ModelStateSet, EmaUpdateFollowsEquationSix) {
  ModelStateSet s(config(0.1), {{0.0, 0.0}, {100.0, 100.0}});
  // Two points map to state 0 with mean (2, 4).
  s.update({{1.0, 3.0}, {3.0, 5.0}});
  const auto c = s.centroid(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR((*c)[0], 0.9 * 0.0 + 0.1 * 2.0, 1e-12);
  EXPECT_NEAR((*c)[1], 0.1 * 4.0, 1e-12);
  // State 1 had no points: untouched.
  EXPECT_EQ(*s.centroid(1), (AttrVec{100.0, 100.0}));
}

TEST(ModelStateSet, SpawnsForFarObservations) {
  ModelStateSet s(config(), {{0.0, 0.0}});
  const auto created = s.maybe_spawn({{50.0, 50.0}, {0.5, 0.5}});
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(*s.centroid(created[0]), (AttrVec{50.0, 50.0}));
  EXPECT_EQ(s.spawn_count(), 1u);
  // The new state is immediately mappable.
  EXPECT_EQ(s.map({49.0, 51.0}), created[0]);
}

TEST(ModelStateSet, SpawnRespectsMaxStates) {
  ModelStateConfig cfg = config();
  cfg.max_states = 2;
  ModelStateSet s(cfg, {{0.0, 0.0}});
  s.maybe_spawn({{50.0, 50.0}, {-50.0, -50.0}});
  EXPECT_EQ(s.size(), 2u);  // second spawn suppressed by the cap
}

TEST(ModelStateSet, MergesCloseStatesKeepingOlderId) {
  ModelStateSet s(config(0.5, /*merge=*/3.0, /*spawn=*/50.0), {{0.0, 0.0}, {4.0, 0.0}});
  // Pull state 1 toward state 0: points near (1,0) map to... (1,0) is closer
  // to state 0 (dist 1) than state 1 (dist 3). Use points at (3,0) instead:
  // closer to state 1 (dist 1). EMA moves state 1 to (3.5, 0), within merge
  // distance of state 0 after another update toward (1.5, 0).
  s.update({{3.0, 0.0}});  // state 1 -> (3.5, 0)
  ASSERT_EQ(s.size(), 2u);
  s.update({{2.0, 0.0}});  // maps to state 1 (dist 1.5 vs 2) -> (2.75, 0): merge
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.merge_count(), 1u);
  EXPECT_TRUE(s.is_active(0));
  EXPECT_FALSE(s.is_active(1));
  // Merged id resolves to the survivor and keeps a historical centroid.
  EXPECT_EQ(s.resolve(1), 0u);
  EXPECT_TRUE(s.centroid(1).has_value());
}

TEST(ModelStateSet, ChainedMergesResolveToFinalSurvivor) {
  // C (id 2) merges into B (id 1), then B merges into A (id 0): resolve()
  // must path-compress the chain so both 1 and 2 resolve straight to 0.
  ModelStateSet s(config(0.9, /*merge=*/3.0, /*spawn=*/50.0),
                  {{0.0, 0.0}, {10.0, 0.0}, {12.0, 0.0}});
  s.update({{11.0, 0.0}});  // drags state 1 to ~10.9 -> within 3 of state 2: merge 2->1
  ASSERT_EQ(s.merge_count(), 1u);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.resolve(2), 1u);
  // Walk state 1 toward state 0 until they merge too.
  s.update({{6.0, 0.0}});
  s.update({{4.0, 0.0}});
  s.update({{2.7, 0.0}});  // state 1 lands within 3 of state 0: merge 1->0
  ASSERT_EQ(s.merge_count(), 2u);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.is_active(0));
  EXPECT_FALSE(s.is_active(1));
  EXPECT_FALSE(s.is_active(2));
  // The whole chain resolves to the final survivor, not one hop.
  EXPECT_EQ(s.resolve(1), 0u);
  EXPECT_EQ(s.resolve(2), 0u);
  EXPECT_EQ(s.resolve(0), 0u);
  // And the resolution survives a checkpoint round trip (the memo is derived
  // state, rebuilt from the raw lineage on load).
  std::stringstream ss;
  s.save(ss);
  const ModelStateSet loaded = ModelStateSet::load(config(0.9, 3.0, 50.0), ss);
  EXPECT_EQ(loaded.resolve(2), 0u);
  EXPECT_EQ(loaded.resolve(1), 0u);
  EXPECT_EQ(loaded.merge_count(), 2u);
}

TEST(ModelStateSet, CentroidUnknownIdIsNullopt) {
  ModelStateSet s(config(), {{0.0, 0.0}});
  EXPECT_FALSE(s.centroid(42).has_value());
  EXPECT_EQ(s.resolve(42), 42u);  // never merged: identity
}

TEST(ModelStateSet, StuckSensorRegimeGetsOwnState) {
  // The paper's story: a humidity channel stuck near (15, 1) must become a
  // model state of its own, far from the environment states.
  ModelStateSet s(config(0.1, 4.0, 8.0),
                  {{12.0, 94.0}, {17.0, 84.0}, {24.0, 70.0}, {31.0, 56.0}});
  const auto created = s.maybe_spawn({{15.0, 1.0}});
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(s.map({15.5, 2.0}), created[0]);
  EXPECT_EQ(s.size(), 5u);
}

TEST(OfflineKmeans, RecoversWellSeparatedClusters) {
  std::vector<AttrVec> pts;
  Rng rng(4, "kmeans-test");
  const std::vector<AttrVec> centers{{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}};
  for (int i = 0; i < 300; ++i) {
    const auto& c = centers[i % 3];
    pts.push_back({c[0] + rng.gaussian(0, 0.5), c[1] + rng.gaussian(0, 0.5)});
  }
  const auto result = kmeans(pts, 3, rng);
  ASSERT_EQ(result.centroids.size(), 3u);
  // Each true center must be within 1.0 of some learned centroid.
  for (const auto& c : centers) {
    double best = 1e9;
    for (const auto& k : result.centroids) best = std::min(best, vecn::dist(c, k));
    EXPECT_LT(best, 1.0);
  }
  EXPECT_LT(result.inertia / 300.0, 1.0);
}

TEST(OfflineKmeans, Validation) {
  Rng rng(1);
  EXPECT_THROW(kmeans({}, 2, rng), std::invalid_argument);
  EXPECT_THROW(kmeans({{1.0}}, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans({{1.0}}, 2, rng), std::invalid_argument);
}

TEST(OfflineKmeans, RandomInitialStatesInBoundingBox) {
  Rng rng(2);
  const std::vector<AttrVec> pts{{0.0, 10.0}, {5.0, 20.0}};
  const auto init = random_initial_states(pts, 4, rng);
  ASSERT_EQ(init.size(), 4u);
  for (const auto& c : init) {
    EXPECT_GE(c[0], 0.0);
    EXPECT_LE(c[0], 5.0);
    EXPECT_GE(c[1], 10.0);
    EXPECT_LE(c[1], 20.0);
  }
}

}  // namespace
}  // namespace sentinel::core
