// Chaos tests for the crash-consistent checkpoint store: pull the plug
// (std::_Exit in a forked child, no destructors, no flush) at every
// registered fault point, then prove a fleet recovered from the surviving
// on-disk state produces a FleetReport byte-identical to an uninterrupted
// run -- at threads = 1 and threads = 4. Torn-write tests additionally
// truncate and corrupt committed files at every byte and assert recovery
// surfaces a clean Status (previous epoch or kDataLoss), never garbage.
//
// The kill matrix needs the fault-point macro compiled in
// (SENTINEL_FAULT_INJECTION, on by default outside Release); without it the
// chaos tests skip and only the torn-write tests run.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint_store.h"
#include "core/fleet.h"
#include "sim/simulator.h"
#include "trace/binary_trace.h"
#include "trace/trace_reader.h"
#include "util/fault_test.h"

namespace sentinel::core {
namespace {

namespace fault = util::fault;

/// Small enough that a region ingests in several batches (many kIngestBatch
/// hits), large enough that runs stay fast.
constexpr std::size_t kIngestBatchRecords = 512;
/// Several commits per region over a ~3456-record trace.
constexpr std::size_t kCheckpointEvery = 1500;

class TwoPhaseEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }
  AttrVec truth(double t) const override {
    const auto phase = static_cast<long>(t / (3.0 * kSecondsPerHour));
    return (phase % 2 == 0) ? AttrVec{10.0, 60.0} : AttrVec{30.0, 40.0};
  }
};

PipelineConfig region_config() {
  PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
  return cfg;
}

/// Same regions with the first-tier screens gating the full path. Short
/// window/warmup/hysteresis so the 48-window traces leave sensors in every
/// phase of the escalation state machine when the plug gets pulled.
PipelineConfig screened_region_config() {
  PipelineConfig cfg = region_config();
  cfg.screen.mode = screen::ScreenMode::kScreen;
  cfg.screen.window = 8;
  cfg.screen.warmup_windows = 4;
  cfg.screen.deescalate_after = 6;
  return cfg;
}

std::vector<SensorRecord> simulate_region(std::uint64_t seed) {
  TwoPhaseEnvironment env;
  sim::Simulator s(env);
  for (std::size_t i = 0; i < 6; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.3;
    mc.seed = seed;
    s.add_mote(mc);
  }
  return s.run(2.0 * kSecondsPerDay).trace;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The two-region workload every chaos trial shares, plus the uninterrupted
/// baseline reports it must reproduce. Built once.
struct Workload {
  std::string root;
  std::vector<std::string> regions{"north", "south"};
  std::map<std::string, std::string> trace_path;
  std::string baseline1, baseline4;
};

std::string run_uninterrupted(const Workload& w, std::size_t threads,
                              PipelineConfig (*make_cfg)() = region_config) {
  FleetConfig fc;
  fc.threads = threads;
  FleetMonitor fleet(fc);
  for (const auto& r : w.regions) fleet.add_region(r, make_cfg());
  for (const auto& r : w.regions) {
    const auto reader = open_trace_reader(w.trace_path.at(r));
    fleet.ingest(r, *reader, kIngestBatchRecords);
  }
  fleet.finish();
  return to_string(fleet.diagnose());
}

const Workload& workload() {
  static const Workload w = [] {
    Workload out;
    // Per-process root: ctest runs each test in its own process, possibly in
    // parallel, and they must not fight over trace files or store dirs.
    out.root = testing::TempDir() + "crash_recovery_" + std::to_string(getpid()) + "/";
    std::filesystem::remove_all(out.root);
    std::filesystem::create_directories(out.root);
    std::uint64_t seed = 1;
    for (const auto& r : out.regions) {
      const std::string path = out.root + r + ".snt";
      write_trace_binary_file(path, simulate_region(seed++));
      out.trace_path[r] = path;
    }
    out.baseline1 = run_uninterrupted(out, 1);
    out.baseline4 = run_uninterrupted(out, 4);
    return out;
  }();
  return w;
}

/// Fork, arm the fault plan in the child, run the checkpointing fleet until
/// the plug gets pulled (or the workload completes), and return the child's
/// exit code. The child leaves only its on-disk store behind.
int run_child_with_fault(const Workload& w, const std::string& dir, std::size_t threads,
                         fault::Config fcfg, PipelineConfig (*make_cfg)() = region_config) {
  const pid_t pid = fork();
  if (pid == 0) {
    fault::init(std::move(fcfg));
    try {
      FleetConfig fc;
      fc.threads = threads;
      fc.checkpoint_dir = dir;
      fc.checkpoint_every_records = kCheckpointEvery;
      FleetMonitor fleet(fc);
      for (const auto& r : w.regions) fleet.add_region(r, make_cfg());
      for (const auto& r : w.regions) {
        const auto reader = open_trace_reader(w.trace_path.at(r));
        fleet.ingest(r, *reader, kIngestBatchRecords);
      }
      fleet.finish();
      (void)fleet.diagnose();
    } catch (...) {
      std::_Exit(99);  // a chaos child must die at the plug or finish clean
    }
    std::_Exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Recover a fresh fleet from `dir`, replay each trace tail from the
/// recorded record offset, and return the report.
std::string recover_and_report(const Workload& w, const std::string& dir, std::size_t threads,
                               PipelineConfig (*make_cfg)() = region_config) {
  FleetConfig fc;
  fc.threads = threads;
  fc.checkpoint_dir = dir;
  fc.checkpoint_every_records = kCheckpointEvery;
  FleetMonitor fleet(fc);
  for (const auto& r : w.regions) {
    const auto resumed = fleet.add_region_resumed(r, make_cfg());
    EXPECT_TRUE(resumed.is_ok()) << r << ": " << resumed.status().to_string();
    if (!resumed.is_ok()) return {};
    const auto reader = open_trace_reader(w.trace_path.at(r));
    fleet.ingest(r, *reader, kIngestBatchRecords, resumed.value());
  }
  fleet.finish();
  return to_string(fleet.diagnose());
}

#ifdef SENTINEL_FAULT_INJECTION

TEST(CrashRecovery, ByteIdenticalAfterEveryFaultPoint) {
  const Workload& w = workload();
  ASSERT_EQ(w.baseline1, w.baseline4) << "parallel fleet must be deterministic";
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const char* point : fault::kCatalog) {
      SCOPED_TRACE(std::string(point) + " threads=" + std::to_string(threads));
      const std::string dir = w.root + "pt_" + CheckpointStore::sanitize(point) + "_t" +
                              std::to_string(threads);
      fault::Config fc;
      fc.mode = fault::Mode::kRunLength;
      fc.point = point;
      const int code = run_child_with_fault(w, dir, threads, fc);
      // Every point is reachable except fleet.drain.batch in serial mode
      // (no worker threads), where the child finishes clean instead.
      ASSERT_TRUE(code == fault::kPlugPulledExit || code == 0) << "child exit " << code;
      EXPECT_EQ(recover_and_report(w, dir, threads),
                threads == 1 ? w.baseline1 : w.baseline4);
    }
  }
}

TEST(CrashRecovery, LaterHitsReachDeeperStoreStates) {
  // nth > 1 kills with earlier epochs already committed -- recovery must
  // load the manifest's last epoch, not merely survive an empty store.
  const Workload& w = workload();
  const struct {
    const char* point;
    std::uint64_t nth;
  } kTrials[] = {
      {fault::kRegionPreRename, 2},   {fault::kRegionPostRename, 3},
      {fault::kManifestTempWrite, 2}, {fault::kManifestPostRename, 3},
      {fault::kIngestBatch, 5},       {fault::kCheckpointBegin, 4},
  };
  for (const auto& trial : kTrials) {
    SCOPED_TRACE(std::string(trial.point) + " nth=" + std::to_string(trial.nth));
    const std::string dir = w.root + "nth_" + CheckpointStore::sanitize(trial.point) + "_" +
                            std::to_string(trial.nth);
    fault::Config fc;
    fc.mode = fault::Mode::kRunLength;
    fc.point = trial.point;
    fc.nth = trial.nth;
    const int code = run_child_with_fault(w, dir, 1, fc);
    ASSERT_TRUE(code == fault::kPlugPulledExit || code == 0) << "child exit " << code;
    EXPECT_EQ(recover_and_report(w, dir, 1), w.baseline1);
  }
}

TEST(CrashRecovery, ScreenedFleetRecoversByteIdentical) {
  // With the first-tier screens on, every region checkpoint carries a
  // "sentinel-screen-v1" section (rings, baselines, escalation state, tier
  // totals). Pull the plug at points whose nth hit lands mid-stream -- after
  // warmup, with clean-window streaks partially accumulated -- and prove the
  // resumed screened fleet reproduces the uninterrupted screened baseline
  // byte for byte at both thread counts. A screen tier restored even one
  // clean-window off would de-escalate a sensor on a different window and
  // shift the report.
  const Workload& w = workload();
  const std::string baseline1 = run_uninterrupted(w, 1, screened_region_config);
  ASSERT_EQ(baseline1, run_uninterrupted(w, 4, screened_region_config))
      << "screened parallel fleet must be deterministic";
  const struct {
    const char* point;
    std::uint64_t nth;
  } kTrials[] = {
      {fault::kRegionPostRename, 2},
      {fault::kIngestBatch, 4},
      {fault::kManifestPostRename, 2},
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto& trial : kTrials) {
      SCOPED_TRACE(std::string(trial.point) + " nth=" + std::to_string(trial.nth) +
                   " threads=" + std::to_string(threads));
      const std::string dir = w.root + "screened_" + CheckpointStore::sanitize(trial.point) +
                              "_" + std::to_string(trial.nth) + "_t" + std::to_string(threads);
      fault::Config fc;
      fc.mode = fault::Mode::kRunLength;
      fc.point = trial.point;
      fc.nth = trial.nth;
      const int code = run_child_with_fault(w, dir, threads, fc, screened_region_config);
      ASSERT_TRUE(code == fault::kPlugPulledExit || code == 0) << "child exit " << code;
      EXPECT_EQ(recover_and_report(w, dir, threads, screened_region_config), baseline1);
    }
  }
}

TEST(CrashRecovery, IndependentScheduleSurvivesRepeatedCrashes) {
  // Probabilistic kills at arbitrary points, crash -> recover -> crash again
  // under fresh seeds, until one run finishes. Every intermediate store
  // state must stay recoverable.
  const Workload& w = workload();
  const std::string dir = w.root + "independent";
  int finished = -1;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    fault::Config fc;
    fc.mode = fault::Mode::kIndependent;
    fc.probability = 0.05;
    fc.seed = seed;
    // Resumed children start from whatever the previous crash left behind.
    const pid_t pid = fork();
    if (pid == 0) {
      fault::init(std::move(fc));
      try {
        const std::string report = recover_and_report(w, dir, 1);
        std::_Exit(report == w.baseline1 ? 0 : 98);
      } catch (...) {
        std::_Exit(99);
      }
    }
    int status = 0;
    waitpid(pid, &status, 0);
    finished = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    ASSERT_TRUE(finished == fault::kPlugPulledExit || finished == 0)
        << "child exit " << finished;
    if (finished == 0) break;
  }
  // Regardless of where the crashes landed, a final undisturbed recovery
  // must reproduce the baseline.
  EXPECT_EQ(recover_and_report(w, dir, 1), w.baseline1);
}

TEST(CrashRecovery, CsvResumeReplaysMalformedAccounting) {
  // A CSV feed with comments and a ~7.7% malformed-line rate: the
  // uninterrupted run degrades the region and the report renders its
  // malformed tallies, so a resume that double- or under-counts the skipped
  // prefix shows up as a byte diff, not silence.
  const std::string root = workload().root;
  const std::string csv = root + "csv_region.csv";
  {
    const auto records = simulate_region(7);
    std::ofstream out(csv, std::ios::trunc);
    std::size_t i = 0;
    for (const auto& rec : records) {
      if (i % 30 == 0) out << "# telemetry comment\n";
      if (i % 13 == 12) out << "garbage,line\n";  // kBadFieldCount
      out << rec.sensor << ',' << rec.time << ',' << rec.attrs[0] << ',' << rec.attrs[1]
          << '\n';
      ++i;
    }
  }
  const auto run = [&](const std::string& dir) {
    FleetConfig fc;
    fc.checkpoint_dir = dir;  // "" = no store (the baseline)
    fc.checkpoint_every_records = kCheckpointEvery;
    FleetMonitor fleet(fc);
    fleet.add_region("csvr", region_config());
    const auto reader = open_trace_reader(csv);
    fleet.ingest("csvr", *reader, kIngestBatchRecords);
    fleet.finish();
    return to_string(fleet.diagnose());
  };
  const std::string baseline = run("");
  ASSERT_NE(baseline.find("degraded"), std::string::npos)
      << "feed must degrade so malformed tallies are in the report";

  const std::string dir = root + "csv_chaos";
  fault::Config fc;
  fc.mode = fault::Mode::kRunLength;
  fc.point = fault::kManifestPostRename;
  fc.nth = 2;
  const pid_t pid = fork();
  if (pid == 0) {
    fault::init(std::move(fc));
    try {
      (void)run(dir);
    } catch (...) {
      std::_Exit(99);
    }
    std::_Exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  ASSERT_TRUE(code == fault::kPlugPulledExit || code == 0) << "child exit " << code;

  FleetConfig rc;
  rc.checkpoint_dir = dir;
  FleetMonitor fleet(rc);
  const auto resumed = fleet.add_region_resumed("csvr", region_config());
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_GT(resumed.value(), 0u) << "second manifest commit implies a nonzero offset";
  const auto reader = open_trace_reader(csv);
  fleet.ingest("csvr", *reader, kIngestBatchRecords, resumed.value());
  fleet.finish();
  EXPECT_EQ(to_string(fleet.diagnose()), baseline);
}

#endif  // SENTINEL_FAULT_INJECTION

// --- Torn-write detection (no fault injection needed) -----------------------

/// A committed single-region store to mutilate, plus its pristine bytes.
struct SmallStore {
  std::string dir;
  std::string region_path;
  std::string region_bytes;
  RegionCheckpointMeta meta;
  std::string report;  // uninterrupted baseline over the same records
};

SmallStore make_small_store(const std::string& name) {
  SmallStore s;
  s.dir = workload().root + name;
  std::filesystem::remove_all(s.dir);
  const auto records = simulate_region(11);
  const std::vector<SensorRecord> head(records.begin(), records.begin() + 400);
  {
    FleetConfig fc;
    fc.checkpoint_dir = s.dir;
    fc.checkpoint_every_records = 0;  // explicit checkpoint_now only
    FleetMonitor fleet(fc);
    fleet.add_region("r", region_config());
    fleet.add_records("r", head);
    fleet.checkpoint_now();
  }
  {
    FleetMonitor fleet(6.0);
    fleet.add_region("r", region_config());
    fleet.add_records("r", records);
    fleet.finish();
    s.report = to_string(fleet.diagnose());
  }
  CheckpointStore store(s.dir);
  auto manifest = store.load_manifest();
  EXPECT_TRUE(manifest.is_ok()) << manifest.status().to_string();
  s.meta = manifest->regions.at("r");
  s.region_path = s.dir + "/" + s.meta.file;
  s.region_bytes = slurp(s.region_path);
  EXPECT_EQ(s.region_bytes.size(), s.meta.bytes);
  EXPECT_EQ(s.meta.records_applied, 400u);
  return s;
}

/// Resume from the (possibly mutilated) store and finish the trace; returns
/// the report, or the failure Status rendered as "ERROR: ...".
std::string resume_small_store(const SmallStore& s) {
  FleetConfig fc;
  fc.checkpoint_dir = s.dir;
  fc.checkpoint_every_records = 0;
  FleetMonitor fleet(fc);
  const auto resumed = fleet.add_region_resumed("r", region_config());
  if (!resumed.is_ok()) return "ERROR: " + resumed.status().to_string();
  const auto records = simulate_region(11);
  const std::vector<SensorRecord> tail(records.begin() + static_cast<long>(resumed.value()),
                                       records.end());
  fleet.add_records("r", tail);
  fleet.finish();
  return to_string(fleet.diagnose());
}

TEST(CrashRecoveryTorn, RegionFileTruncatedAtEveryByte) {
  const SmallStore s = make_small_store("torn_region");
  ASSERT_EQ(resume_small_store(s), s.report) << "pristine store must resume cleanly";
  CheckpointStore store(s.dir);
  std::string out;
  for (std::size_t len = 0; len < s.region_bytes.size(); ++len) {
    spew(s.region_path, s.region_bytes.substr(0, len));
    const auto status = store.read_region(s.meta, out);
    ASSERT_EQ(status.code(), util::StatusCode::kDataLoss) << "length " << len;
  }
  // Full resume over a sample of torn prefixes: clean kDataLoss, no region
  // created, never a throw or a garbage report.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, s.region_bytes.size() / 2, s.region_bytes.size() - 1}) {
    spew(s.region_path, s.region_bytes.substr(0, len));
    const std::string got = resume_small_store(s);
    EXPECT_EQ(got.find("ERROR: data-loss"), 0u) << "length " << len << ": " << got;
  }
  spew(s.region_path, s.region_bytes);
  EXPECT_EQ(resume_small_store(s), s.report) << "restored bytes must resume again";
}

TEST(CrashRecoveryTorn, RegionFileCorruptedAtEveryByte) {
  const SmallStore s = make_small_store("corrupt_region");
  CheckpointStore store(s.dir);
  std::string out;
  // Same-size corruption defeats the byte-count check; the content checksum
  // must catch every single-byte flip.
  for (std::size_t i = 0; i < s.region_bytes.size(); ++i) {
    std::string bad = s.region_bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    spew(s.region_path, bad);
    const auto status = store.read_region(s.meta, out);
    ASSERT_EQ(status.code(), util::StatusCode::kDataLoss) << "byte " << i;
  }
  spew(s.region_path, s.region_bytes);
  EXPECT_EQ(store.read_region(s.meta, out), util::Status::ok());
}

TEST(CrashRecoveryTorn, ManifestTruncatedAtEveryByte) {
  const SmallStore s = make_small_store("torn_manifest");
  const std::string manifest_path = s.dir + "/MANIFEST";
  const std::string manifest_bytes = slurp(manifest_path);
  CheckpointStore store(s.dir);
  for (std::size_t len = 0; len < manifest_bytes.size(); ++len) {
    spew(manifest_path, manifest_bytes.substr(0, len));
    const auto loaded = store.load_manifest();
    ASSERT_FALSE(loaded.is_ok()) << "length " << len;
    ASSERT_EQ(loaded.status().code(), util::StatusCode::kDataLoss) << "length " << len;
  }
  // A torn manifest surfaces as a Status from resume too, creating nothing.
  spew(manifest_path, manifest_bytes.substr(0, manifest_bytes.size() / 2));
  EXPECT_EQ(resume_small_store(s).find("ERROR: data-loss"), 0u);
  spew(manifest_path, manifest_bytes);
  EXPECT_EQ(resume_small_store(s), s.report);
}

TEST(CrashRecoveryTorn, OrphanTempFilesAreInvisible) {
  // Crash debris -- torn .tmp files next to a valid manifest -- must not
  // disturb recovery: only files the manifest names are ever read.
  const SmallStore s = make_small_store("orphan_tmps");
  spew(s.dir + "/r.e99.ckpt.tmp", "torn garbage");
  spew(s.dir + "/MANIFEST.tmp", "more torn garbage");
  EXPECT_EQ(resume_small_store(s), s.report);
}

TEST(CrashRecoveryTorn, MissingStoreResumesFresh) {
  // An empty store (first boot) is not an error: resume falls back to a
  // fresh region covering zero records.
  const std::string dir = workload().root + "fresh_store";
  std::filesystem::remove_all(dir);
  FleetConfig fc;
  fc.checkpoint_dir = dir;
  FleetMonitor fleet(fc);
  const auto resumed = fleet.add_region_resumed("r", region_config());
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value(), 0u);
}

}  // namespace
}  // namespace sentinel::core
