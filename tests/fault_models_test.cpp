// Unit tests: accidental-error models (paper section 3.3) and the injection
// plan composition.

#include <gtest/gtest.h>

#include <memory>

#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "util/stats.h"

namespace sentinel::faults {
namespace {

const AttrVec kMeasured{20.0, 70.0};
const AttrVec kTruth{20.0, 70.0};

TEST(StuckAt, AlwaysReportsFixedValue) {
  StuckAtFault f(AttrVec{15.0, 1.0});
  EXPECT_EQ(f.apply(0, 0.0, kMeasured, kTruth), (AttrVec{15.0, 1.0}));
  EXPECT_EQ(f.apply(0, 999.0, AttrVec{-5.0, 30.0}, kTruth), (AttrVec{15.0, 1.0}));
  EXPECT_EQ(f.name(), "stuck-at");
  EXPECT_THROW(StuckAtFault(AttrVec{}), std::invalid_argument);
}

TEST(Calibration, MultiplicativePerAttribute) {
  CalibrationFault f(AttrVec{1.1, 0.5});
  const auto out = f.apply(0, 0.0, kMeasured, kTruth);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ((*out)[0], 22.0);
  EXPECT_DOUBLE_EQ((*out)[1], 35.0);
  EXPECT_THROW(f.apply(0, 0.0, AttrVec{1.0}, kTruth), std::invalid_argument);
}

TEST(Additive, OffsetPerAttribute) {
  AdditiveFault f(AttrVec{5.0, -10.0});
  const auto out = f.apply(0, 0.0, kMeasured, kTruth);
  EXPECT_EQ(*out, (AttrVec{25.0, 60.0}));
}

TEST(RandomNoise, ZeroMeanHighVariance) {
  RandomNoiseFault f(8.0, 42);
  RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    stats.add((*f.apply(0, 0.0, kMeasured, kTruth))[0] - kMeasured[0]);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 8.0, 0.5);
  EXPECT_THROW(RandomNoiseFault(-1.0, 1), std::invalid_argument);
}

TEST(Drift, LinearDecayThenFloor) {
  DriftFault f(/*attr=*/1, /*floor=*/0.0, /*start=*/100.0, /*drift_seconds=*/100.0);
  // Before start: untouched.
  EXPECT_EQ(*f.apply(0, 50.0, kMeasured, kTruth), kMeasured);
  // Midway: halfway to the floor on attr 1 only.
  const auto mid = *f.apply(0, 150.0, kMeasured, kTruth);
  EXPECT_DOUBLE_EQ(mid[0], 20.0);
  EXPECT_DOUBLE_EQ(mid[1], 35.0);
  // Long after: at the floor.
  const auto late = *f.apply(0, 1000.0, kMeasured, kTruth);
  EXPECT_DOUBLE_EQ(late[1], 0.0);
}

TEST(Drift, AllAttributesWhenNegativeIndex) {
  DriftFault f(-1, 0.0, 0.0, 100.0);
  const auto end = *f.apply(0, 100.0, kMeasured, kTruth);
  EXPECT_DOUBLE_EQ(end[0], 0.0);
  EXPECT_DOUBLE_EQ(end[1], 0.0);
}

TEST(Mute, SuppressesPackets) {
  MuteFault f;
  EXPECT_FALSE(f.apply(0, 0.0, kMeasured, kTruth).has_value());
}

TEST(InjectionPlanTest, OnlyTargetedSensorAffected) {
  InjectionPlan plan;
  plan.add(3, std::make_unique<StuckAtFault>(AttrVec{1.0, 2.0}));
  EXPECT_EQ(*plan.apply(0, 0.0, kMeasured, kTruth), kMeasured);
  EXPECT_EQ(*plan.apply(3, 0.0, kMeasured, kTruth), (AttrVec{1.0, 2.0}));
  EXPECT_TRUE(plan.has_entries_for(3));
  EXPECT_FALSE(plan.has_entries_for(0));
  EXPECT_EQ(plan.injected_sensors(), std::vector<SensorId>{3});
}

TEST(InjectionPlanTest, ActivationWindowRespected) {
  InjectionPlan plan;
  plan.add(0, std::make_unique<AdditiveFault>(AttrVec{100.0, 0.0}), 10.0, 20.0);
  EXPECT_EQ(*plan.apply(0, 5.0, kMeasured, kTruth), kMeasured);
  EXPECT_DOUBLE_EQ((*plan.apply(0, 15.0, kMeasured, kTruth))[0], 120.0);
  EXPECT_EQ(*plan.apply(0, 25.0, kMeasured, kTruth), kMeasured);
}

TEST(InjectionPlanTest, ChainsEntriesInOrder) {
  InjectionPlan plan;
  plan.add(0, std::make_unique<AdditiveFault>(AttrVec{10.0, 0.0}));
  plan.add(0, std::make_unique<CalibrationFault>(AttrVec{2.0, 1.0}));
  // (20 + 10) * 2 = 60.
  EXPECT_DOUBLE_EQ((*plan.apply(0, 0.0, kMeasured, kTruth))[0], 60.0);
  EXPECT_EQ(plan.size(), 2u);
}

TEST(InjectionPlanTest, SuppressionShortCircuits) {
  InjectionPlan plan;
  plan.add(0, std::make_unique<MuteFault>());
  plan.add(0, std::make_unique<AdditiveFault>(AttrVec{1.0, 1.0}));
  EXPECT_FALSE(plan.apply(0, 0.0, kMeasured, kTruth).has_value());
}

TEST(InjectionPlanTest, NullModelRejected) {
  InjectionPlan plan;
  EXPECT_THROW(plan.add(0, nullptr), std::invalid_argument);
  EXPECT_THROW(make_transform(nullptr), std::invalid_argument);
}

TEST(InjectionPlanTest, TransformSharesOwnership) {
  auto plan = std::make_shared<InjectionPlan>();
  plan->add(1, std::make_unique<StuckAtFault>(AttrVec{9.0, 9.0}));
  auto transform = make_transform(plan);
  plan.reset();  // transform keeps the plan alive
  EXPECT_EQ(*transform(1, 0.0, kMeasured, kTruth), (AttrVec{9.0, 9.0}));
}

}  // namespace
}  // namespace sentinel::faults
