// Tests: hmm::OnlineHmmSlab -- the struct-of-arrays lane storage behind the
// diagnosis tier's batched per-sensor stage. The slab's contract is
// BIT-IDENTITY with per-object OnlineHmm estimators: feed the same
// observations through a lane (batched observe + flush) and through a
// standalone OnlineHmm, and materialize() must reproduce the standalone
// object exactly, checkpoint bytes included -- across lane counts that
// straddle the pipeline's 256-sensor block size, across whole-slab repacks,
// and across free/reopen recycling. TrackManager-level tests pin the same
// property for the window bracket (begin_window/flush_window vs standalone
// observes) and for checkpoint round-trips out of slab storage.

#include "hmm/hmm_slab.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/tracks.h"
#include "hmm/online_hmm.h"

namespace sentinel::hmm {
namespace {

std::string bytes(const OnlineHmm& m) {
  std::ostringstream os;
  m.save(os);
  return os.str();
}

std::string bytes(const core::TrackManager& tm) {
  std::ostringstream os;
  tm.save(os);
  return os.str();
}

/// Deterministic per-lane observation stream: a handful of hidden states and
/// symbols (incl. bottom) so rows churn without unbounded growth.
struct Stream {
  std::uint64_t x;
  explicit Stream(std::uint64_t seed) : x(seed * 2654435761u + 1) {}
  std::pair<StateId, StateId> next() {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto h = static_cast<StateId>((x >> 33) % 5);
    const auto sym = ((x >> 17) % 4 == 0) ? kBottomSymbol : static_cast<StateId>((x >> 20) % 6 + 10);
    return {h, sym};
  }
};

// The pipeline batches one observation per tracked sensor per window. Lane
// counts straddle its 256-sensor block: 1, block-1, block, block+1.
const std::vector<std::size_t> kLaneCounts = {1, 255, 256, 257};

TEST(HmmSlab, BatchedLanesMatchShadowOnlineHmmsBitExactly) {
  const OnlineHmmConfig cfg;
  for (const std::size_t n_lanes : kLaneCounts) {
    OnlineHmmSlab slab(cfg);
    std::vector<std::uint32_t> lanes(n_lanes);
    std::vector<OnlineHmm> shadows(n_lanes, OnlineHmm(cfg));
    std::vector<Stream> streams;
    for (std::size_t l = 0; l < n_lanes; ++l) {
      lanes[l] = slab.open_lane();
      streams.emplace_back(l + 1);
    }
    const std::size_t windows = n_lanes == 1 ? 200 : 12;
    for (std::size_t w = 0; w < windows; ++w) {
      // One window: every lane observed once, all EMA updates batched into
      // a single flush -- the pipeline's begin/flush bracket.
      for (std::size_t l = 0; l < n_lanes; ++l) {
        const auto [h, sym] = streams[l].next();
        slab.observe(lanes[l], h, sym);
        shadows[l].observe(h, sym);
      }
      slab.flush();
    }
    for (std::size_t l = 0; l < n_lanes; ++l) {
      ASSERT_EQ(bytes(slab.materialize(lanes[l])), bytes(shadows[l]))
          << "lanes=" << n_lanes << " lane " << l;
    }
  }
}

TEST(HmmSlab, RepackPreservesEveryLaneBitExactly) {
  // Growing one lane past the shared (hidden, symbol) capacity repacks the
  // WHOLE slab; every other lane must come through untouched.
  const OnlineHmmConfig cfg;
  OnlineHmmSlab slab(cfg);
  const std::uint32_t bystander = slab.open_lane();
  const std::uint32_t grower = slab.open_lane();
  OnlineHmm shadow_by(cfg);
  OnlineHmm shadow_gr(cfg);

  slab.observe(bystander, 1, 7);
  shadow_by.observe(1, 7);
  slab.flush();
  EXPECT_EQ(slab.repacks(), 0u);

  // 20 hidden states and 40 symbols blow through the initial capacity of 4
  // several times over (doubling => multiple repacks).
  for (StateId h = 0; h < 20; ++h) {
    slab.observe(grower, h, h);
    shadow_gr.observe(h, h);
    slab.flush();
    slab.observe(grower, h, h + 100);
    shadow_gr.observe(h, h + 100);
    slab.flush();
  }
  EXPECT_GT(slab.repacks(), 0u);
  EXPECT_EQ(bytes(slab.materialize(grower)), bytes(shadow_gr));
  EXPECT_EQ(bytes(slab.materialize(bystander)), bytes(shadow_by));
}

TEST(HmmSlab, RepackBetweenObserveAndFlushIsSafe) {
  // A lane opening mid-window can repack the slab while other lanes hold
  // pending batched updates; flush offsets are computed at flush time, so
  // the pending rows land in the repacked tiles correctly.
  const OnlineHmmConfig cfg;
  OnlineHmmSlab slab(cfg);
  const std::uint32_t steady = slab.open_lane();
  OnlineHmm shadow_st(cfg);
  // Pre-warm so the steady lane has real EMA state.
  for (int i = 0; i < 5; ++i) {
    slab.observe(steady, static_cast<StateId>(i % 3), 7);
    shadow_st.observe(static_cast<StateId>(i % 3), 7);
    slab.flush();
  }

  const std::uint32_t spawned = slab.open_lane();
  OnlineHmm shadow_sp(cfg);
  // One window: steady observes first (pending), THEN the spawned lane
  // grows capacity before the flush.
  slab.observe(steady, 1, 7);
  shadow_st.observe(1, 7);
  const std::size_t repacks_before = slab.repacks();
  for (StateId h = 0; h < 6; ++h) {  // > h_cap: forces grow_caps pre-flush
    slab.observe(spawned, h, static_cast<StateId>(h + 50));
    shadow_sp.observe(h, static_cast<StateId>(h + 50));
  }
  EXPECT_GT(slab.repacks(), repacks_before);
  slab.flush();

  EXPECT_EQ(bytes(slab.materialize(steady)), bytes(shadow_st));
  EXPECT_EQ(bytes(slab.materialize(spawned)), bytes(shadow_sp));
}

TEST(HmmSlab, FreedLanesRecycleClean) {
  const OnlineHmmConfig cfg;
  OnlineHmmSlab slab(cfg);
  const std::uint32_t a = slab.open_lane();
  slab.observe(a, 3, 9);
  slab.observe(a, 4, 9);
  slab.flush();
  slab.free_lane(a);
  const std::uint32_t b = slab.open_lane();
  EXPECT_EQ(a, b);  // freelist recycles
  EXPECT_EQ(bytes(slab.materialize(b)), bytes(OnlineHmm(cfg)));
  slab.observe(b, 1, 2);
  slab.flush();
  OnlineHmm shadow(cfg);
  shadow.observe(1, 2);
  EXPECT_EQ(bytes(slab.materialize(b)), bytes(shadow));
}

TEST(HmmSlab, EagerAndLazyAvgMaterializeIdentically) {
  const OnlineHmmConfig cfg;
  OnlineHmmSlab slab(cfg);
  const std::uint32_t lane = slab.open_lane();
  OnlineHmm shadow(cfg);
  Stream s(42);
  for (int i = 0; i < 64; ++i) {
    const auto [h, sym] = s.next();
    slab.observe(lane, h, sym);
    shadow.observe(h, sym);
    slab.flush();
  }
  const OnlineHmm lazy = slab.materialize(lane, /*eager_avg=*/false);
  const OnlineHmm eager = slab.materialize(lane, /*eager_avg=*/true);
  EXPECT_EQ(bytes(lazy), bytes(eager));
  EXPECT_EQ(bytes(lazy), bytes(shadow));
  // The averaged matrices read identically whether the cache was pre-filled
  // through the batched division kernel or refreshed lazily on this call.
  const auto la = lazy.transition_matrix_avg();
  const auto ea = eager.transition_matrix_avg();
  ASSERT_EQ(la.rows(), ea.rows());
  ASSERT_EQ(la.cols(), ea.cols());
  for (std::size_t r = 0; r < la.rows(); ++r) {
    for (std::size_t c = 0; c < la.cols(); ++c) {
      EXPECT_EQ(la(r, c), ea(r, c)) << r << "," << c;
    }
  }
  const auto lb = lazy.emission_matrix_avg();
  const auto eb = eager.emission_matrix_avg();
  ASSERT_EQ(lb.rows(), eb.rows());
  ASSERT_EQ(lb.cols(), eb.cols());
  for (std::size_t r = 0; r < lb.rows(); ++r) {
    for (std::size_t c = 0; c < lb.cols(); ++c) {
      EXPECT_EQ(lb(r, c), eb(r, c)) << r << "," << c;
    }
  }
}

// --- TrackManager over slab storage -----------------------------------------

TEST(HmmSlabTracks, WindowBracketMatchesStandaloneObserves) {
  // Same opens/observes/closes through (a) the pipeline's batched
  // begin_window/flush_window bracket and (b) standalone observes that
  // flush one at a time. Checkpoints must be byte-identical at every
  // block-straddling sensor count.
  for (const std::size_t n_sensors : kLaneCounts) {
    core::TrackManager batched{OnlineHmmConfig{}};
    core::TrackManager unbatched{OnlineHmmConfig{}};
    for (std::size_t s = 0; s < n_sensors; ++s) {
      batched.open(static_cast<SensorId>(s), 0);
      unbatched.open(static_cast<SensorId>(s), 0);
    }
    std::vector<Stream> streams;
    std::vector<Stream> streams2;
    for (std::size_t s = 0; s < n_sensors; ++s) {
      streams.emplace_back(s + 7);
      streams2.emplace_back(s + 7);
    }
    const std::size_t windows = n_sensors == 1 ? 64 : 6;
    for (std::size_t w = 1; w <= windows; ++w) {
      batched.begin_window();
      for (std::size_t s = 0; s < n_sensors; ++s) {
        const auto [h, sym] = streams[s].next();
        batched.observe(static_cast<SensorId>(s), h, sym);
      }
      batched.flush_window();
      for (std::size_t s = 0; s < n_sensors; ++s) {
        const auto [h, sym] = streams2[s].next();
        unbatched.observe(static_cast<SensorId>(s), h, sym);
      }
    }
    // Close every other sensor's track so both storage paths (materialized
    // m_ce and live lane) appear in the checkpoint.
    for (std::size_t s = 0; s < n_sensors; s += 2) {
      batched.close(static_cast<SensorId>(s), windows + 1);
      unbatched.close(static_cast<SensorId>(s), windows + 1);
    }
    ASSERT_EQ(bytes(batched), bytes(unbatched)) << "sensors=" << n_sensors;
  }
}

TEST(HmmSlabTracks, SpawnMidWindowRepacksAndStaysIdentical) {
  // Tracks opening mid-window (fresh sensors escalating) grow the slab --
  // lanes AND capacities -- while earlier observes of the same window are
  // still pending. The repack must be visible in the metric and the result
  // still byte-identical to the unbatched run.
  core::TrackManager batched{OnlineHmmConfig{}};
  core::TrackManager unbatched{OnlineHmmConfig{}};
  auto feed = [](core::TrackManager& tm, SensorId s, std::size_t i) {
    // Distinct states per step so capacities must grow past the initial 4.
    tm.observe(s, static_cast<StateId>(i % 7), static_cast<StateId>(20 + i % 9));
  };
  batched.open(0, 0);
  unbatched.open(0, 0);

  const std::size_t windows = 12;
  for (std::size_t w = 0; w < windows; ++w) {
    // Batched run: the new sensor of the window spawns (and observes) AFTER
    // earlier sensors queued their pending updates.
    batched.begin_window();
    for (SensorId s = 0; s <= w; ++s) {
      if (s == w && w > 0) batched.open(s, w);  // spawn mid-window
      feed(batched, s, w + s);
    }
    batched.flush_window();

    for (SensorId s = 0; s <= w; ++s) {
      if (s == w && w > 0) unbatched.open(s, w);
      feed(unbatched, s, w + s);
    }
  }

  EXPECT_GT(batched.slab().repacks(), 0u);
  EXPECT_EQ(bytes(batched), bytes(unbatched));
}

TEST(HmmSlabTracks, CheckpointRoundTripsByteStableFromSlabStorage) {
  // Active tracks live in slab lanes; save() materializes them on the way
  // out and load() adopts them back in. A second save must reproduce the
  // first byte-for-byte, and the reloaded manager must keep accepting
  // batched windows identically to the original.
  core::TrackManager tm{OnlineHmmConfig{}};
  std::vector<Stream> streams;
  for (SensorId s = 0; s < 9; ++s) {
    tm.open(s, 0);
    streams.emplace_back(s + 3);
  }
  for (int w = 0; w < 20; ++w) {
    tm.begin_window();
    for (SensorId s = 0; s < 9; ++s) {
      const auto [h, sym] = streams[s].next();
      tm.observe(s, h, sym);
    }
    tm.flush_window();
  }
  tm.close(2, 21);  // mix of closed (materialized) and active (slab) tracks

  const std::string first = bytes(tm);
  std::istringstream in(first);
  auto loaded = core::TrackManager::load(OnlineHmmConfig{}, in);
  EXPECT_EQ(bytes(loaded), first);

  // Both managers keep evolving in lockstep after the round trip.
  for (int w = 0; w < 5; ++w) {
    tm.begin_window();
    loaded.begin_window();
    for (SensorId s = 0; s < 9; ++s) {
      if (!tm.has_active_track(s)) continue;
      const auto [h, sym] = streams[s].next();
      tm.observe(s, h, sym);
      loaded.observe(s, h, sym);
    }
    tm.flush_window();
    loaded.flush_window();
  }
  EXPECT_EQ(bytes(loaded), bytes(tm));
}

}  // namespace
}  // namespace sentinel::hmm
