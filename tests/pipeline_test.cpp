// Integration-style unit tests of DetectionPipeline on small controlled
// scenarios: windowing, alarms, tracks, M_C extraction, and end-to-end
// detection of a blunt fault.

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

namespace sentinel::core {
namespace {

// A scripted two-state environment cycling A(10,80) <-> B(30,40) every 2h.
class CycleEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }
  AttrVec truth(double t) const override {
    const auto phase = static_cast<long>(t / (2.0 * kSecondsPerHour));
    return (phase % 2 == 0) ? AttrVec{10.0, 80.0} : AttrVec{30.0, 40.0};
  }
};

PipelineConfig test_config() {
  PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 80.0}, {30.0, 40.0}};
  return cfg;
}

std::vector<SensorRecord> simulate(const sim::Environment& env, double duration,
                                   std::shared_ptr<faults::InjectionPlan> plan,
                                   std::size_t sensors = 6) {
  sim::Simulator s(env);
  for (std::size_t i = 0; i < sensors; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.3;
    mc.seed = 11;
    s.add_mote(mc);
  }
  if (plan) s.set_transform(faults::make_transform(plan));
  return s.run(duration).trace;
}

TEST(Pipeline, CleanRunLearnsTheCycle) {
  const CycleEnvironment env;
  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 2.0 * kSecondsPerDay, nullptr));

  EXPECT_EQ(p.windows_processed(), 48u);
  EXPECT_EQ(p.windows_skipped(), 0u);
  // M_C sees both states with ~equal occupancy and mutual transitions.
  const auto m_c = p.correct_model();
  ASSERT_EQ(m_c.num_states(), 2u);
  for (const double occ : m_c.occupancy()) EXPECT_NEAR(occ, 0.5, 0.1);
  EXPECT_GT(m_c.transition_count(0, 1), 5u);
  EXPECT_GT(m_c.transition_count(1, 0), 5u);

  // No anomalies anywhere.
  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, Verdict::kNormal);
  EXPECT_TRUE(report.sensors.empty());
}

TEST(Pipeline, ObservableTracksCorrectOnCleanData) {
  const CycleEnvironment env;
  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, kSecondsPerDay, nullptr));
  for (const auto& w : p.history()) {
    EXPECT_EQ(w.observable, w.correct);
  }
}

TEST(Pipeline, StuckSensorGetsTrackAndDiagnosis) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
            0.5 * kSecondsPerDay);

  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 4.0 * kSecondsPerDay, plan));

  // A track opened for sensor 2 and for nobody else.
  EXPECT_EQ(p.tracks().tracked_sensors(), std::vector<SensorId>{2});
  ASSERT_NE(p.m_ce(2), nullptr);
  EXPECT_EQ(p.m_ce(5), nullptr);

  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, Verdict::kNormal);
  ASSERT_TRUE(report.sensors.count(2));
  EXPECT_EQ(report.sensors.at(2).verdict, Verdict::kError);
  EXPECT_EQ(report.sensors.at(2).kind, AnomalyKind::kStuckAt);
  // The stuck state's centroid is near the injected value.
  ASSERT_TRUE(report.sensors.at(2).stuck_state.has_value());
  EXPECT_NEAR(report.sensors.at(2).stuck_value[0], 20.0, 2.0);
  EXPECT_NEAR(report.sensors.at(2).stuck_value[1], 5.0, 2.0);
}

TEST(Pipeline, AlarmsRaisedOnlyForFaultySensor) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
            0.5 * kSecondsPerDay);
  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 2.0 * kSecondsPerDay, plan));

  std::size_t faulty_raw = 0, healthy_raw = 0, healthy_windows = 0;
  for (const auto& w : p.history()) {
    for (const auto& [id, info] : w.sensors) {
      if (id == 2) {
        faulty_raw += info.raw_alarm;
      } else {
        ++healthy_windows;
        healthy_raw += info.raw_alarm;
      }
    }
  }
  EXPECT_GT(faulty_raw, 20u);
  // With noise_sigma 0.3 and states 45 units apart, healthy raw alarms are
  // essentially impossible in this controlled setup.
  EXPECT_LT(static_cast<double>(healthy_raw) / static_cast<double>(healthy_windows), 0.02);
}

TEST(Pipeline, StreamingMatchesBatch) {
  const CycleEnvironment env;
  const auto trace = simulate(env, kSecondsPerDay, nullptr);

  DetectionPipeline batch(test_config());
  batch.process_trace(trace);

  DetectionPipeline streaming(test_config());
  for (const auto& rec : trace) streaming.add_record(rec);
  streaming.finish();

  ASSERT_EQ(batch.windows_processed(), streaming.windows_processed());
  for (std::size_t i = 0; i < batch.history().size(); ++i) {
    EXPECT_EQ(batch.history()[i].correct, streaming.history()[i].correct) << i;
    EXPECT_EQ(batch.history()[i].observable, streaming.history()[i].observable) << i;
  }
}

TEST(Pipeline, SkipsWindowsBelowSensorMinimum) {
  PipelineConfig cfg = test_config();
  cfg.min_sensors_per_window = 3;
  DetectionPipeline p(cfg);
  // Two sensors only: every window skipped.
  ObservationSet w;
  w.window_index = 1;
  w.per_sensor = {{0, {10.0, 80.0}}, {1, {10.0, 80.0}}};
  w.raw = {{10.0, 80.0}, {10.0, 80.0}};
  p.process_window(w);
  EXPECT_EQ(p.windows_processed(), 0u);
  EXPECT_EQ(p.windows_skipped(), 1u);
}

TEST(Pipeline, ConfigValidation) {
  PipelineConfig cfg = test_config();
  cfg.min_sensors_per_window = 0;
  EXPECT_THROW(DetectionPipeline{cfg}, std::invalid_argument);
  PipelineConfig cfg2 = test_config();
  cfg2.initial_states.clear();
  EXPECT_THROW(DetectionPipeline{cfg2}, std::invalid_argument);
}

TEST(Pipeline, CountersMirrorObservableActivity) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
            0.5 * kSecondsPerDay);
  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 4.0 * kSecondsPerDay, plan));

  const PipelineCounters c = p.counters();
  EXPECT_EQ(c.windows_processed, p.windows_processed());
  EXPECT_EQ(c.windows_skipped, p.windows_skipped());
  EXPECT_EQ(c.windows_processed, 96u);

  // Cross-check the alarm counters against the recorded history: the
  // counters are the no-history view of the same events.
  std::size_t raw = 0, filtered = 0;
  for (const auto& w : p.history()) {
    for (const auto& [id, info] : w.sensors) {
      raw += info.raw_alarm;
      filtered += info.filtered_alarm;
    }
  }
  EXPECT_EQ(c.raw_alarms, raw);
  EXPECT_EQ(c.filtered_alarms, filtered);
  EXPECT_GT(c.raw_alarms, 0u);
  EXPECT_GE(c.raw_alarms, c.filtered_alarms);

  // The stuck sensor opened a track; its persistence drove HMM updates.
  EXPECT_GE(c.track_opens, 1u);
  EXPECT_LE(c.track_closes, c.track_opens);
  EXPECT_GT(c.hmm_updates, 0u);
  EXPECT_EQ(c.late_records, 0u);
  EXPECT_EQ(c.clamped_records, 0u);
}

TEST(Pipeline, StageTimersDoNotChangeResults) {
  // stage_timers is observational only: identical history, identical
  // diagnosis, identical counters -- the toggle adds clock reads, nothing
  // else. (The golden tests pin the same property on full reports.)
  const CycleEnvironment env;
  const auto trace = simulate(env, 2.0 * kSecondsPerDay, nullptr);

  DetectionPipeline plain(test_config());
  plain.process_trace(trace);

  PipelineConfig cfg = test_config();
  cfg.stage_timers = true;
  DetectionPipeline timed(cfg);
  timed.process_trace(trace);

  ASSERT_EQ(plain.windows_processed(), timed.windows_processed());
  for (std::size_t i = 0; i < plain.history().size(); ++i) {
    EXPECT_EQ(plain.history()[i].correct, timed.history()[i].correct) << i;
    EXPECT_EQ(plain.history()[i].observable, timed.history()[i].observable) << i;
  }
  EXPECT_EQ(to_string(plain.diagnose()), to_string(timed.diagnose()));
  const PipelineCounters a = plain.counters();
  const PipelineCounters b = timed.counters();
  EXPECT_EQ(a.raw_alarms, b.raw_alarms);
  EXPECT_EQ(a.filtered_alarms, b.filtered_alarms);
  EXPECT_EQ(a.hmm_updates, b.hmm_updates);
}

TEST(Pipeline, MuteSensorSimplyDisappears) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(1, std::make_unique<faults::MuteFault>(), 0.25 * kSecondsPerDay);
  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, kSecondsPerDay, plan));

  // The pipeline keeps running on the survivors; sensor 1 contributes no
  // windows after going mute and no track is fabricated for it.
  EXPECT_EQ(p.windows_processed(), 24u);
  EXPECT_FALSE(p.tracks().has_active_track(1));
  std::size_t windows_with_1 = 0;
  for (const auto& w : p.history()) windows_with_1 += w.sensors.count(1);
  EXPECT_LT(windows_with_1, 8u);
}

TEST(Pipeline, BlockBoundarySensorCountsDiagnoseAndCheckpointStably) {
  // The alarm/track stage iterates sensors in 256-wide blocks. Fleet sizes
  // straddling that block size -- including a final partial block of one --
  // must behave exactly like any other size: faulted sensors at the block
  // edges get their tracks, everyone else stays clean, and the checkpoint
  // (which drains active tracks out of the slab) round-trips byte-stably.
  const CycleEnvironment env;
  for (const std::size_t n_sensors : {255ul, 256ul, 257ul}) {
    auto plan = std::make_shared<faults::InjectionPlan>();
    // Faults on the first sensor of the run, the last of the first block,
    // and the first/last of the final (possibly 1-wide) block.
    std::vector<SensorId> faulted = {0, 254};
    if (n_sensors > 255) faulted.push_back(255);
    if (n_sensors > 256) faulted.push_back(256);
    for (const SensorId s : faulted) {
      plan->add(s, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
                0.25 * kSecondsPerDay);
    }
    DetectionPipeline p(test_config());
    p.process_trace(simulate(env, kSecondsPerDay, plan, n_sensors));

    EXPECT_EQ(p.windows_processed(), 24u) << n_sensors;
    EXPECT_EQ(p.tracks().tracked_sensors(), faulted) << n_sensors;
    for (const SensorId s : faulted) {
      EXPECT_NE(p.m_ce(s), nullptr) << "sensor " << s << " of " << n_sensors;
    }

    std::stringstream first;
    p.save_checkpoint(first);
    std::istringstream in(first.str());
    DetectionPipeline restored(test_config(), in);
    std::stringstream second;
    restored.save_checkpoint(second);
    EXPECT_EQ(second.str(), first.str()) << n_sensors;
  }
}

}  // namespace
}  // namespace sentinel::core
