// Tests: the two-tier FleetMonitor (cluster heads + base station) and the
// cross-region structural check.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/fleet.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

namespace sentinel::core {
namespace {

class CycleEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }
  AttrVec truth(double t) const override {
    const auto phase = static_cast<long>(t / (3.0 * kSecondsPerHour));
    return (phase % 2 == 0) ? AttrVec{10.0, 60.0} : AttrVec{30.0, 40.0};
  }
};

PipelineConfig region_config() {
  PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
  return cfg;
}

std::vector<SensorRecord> simulate_region(const sim::Environment& env, double duration,
                                          std::uint64_t seed,
                                          std::shared_ptr<faults::InjectionPlan> plan = nullptr) {
  sim::Simulator s(env);
  for (std::size_t i = 0; i < 6; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.3;
    mc.seed = seed;
    s.add_mote(mc);
  }
  if (plan) s.set_transform(faults::make_transform(plan));
  return s.run(duration).trace;
}

TEST(Fleet, RoutesRecordsAndAggregatesVerdicts) {
  const CycleEnvironment env;
  FleetMonitor fleet;
  fleet.add_region("north", region_config());
  fleet.add_region("south", region_config());

  for (const auto& r : simulate_region(env, 2.0 * kSecondsPerDay, 1)) {
    fleet.add_record("north", r);
  }
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
            0.5 * kSecondsPerDay);
  for (const auto& r : simulate_region(env, 2.0 * kSecondsPerDay, 2, plan)) {
    fleet.add_record("south", r);
  }
  fleet.finish();

  EXPECT_EQ(fleet.region_names(), (std::vector<std::string>{"north", "south"}));
  EXPECT_GT(fleet.region("north").windows_processed(), 40u);

  const auto report = fleet.diagnose();
  EXPECT_EQ(report.overall, Verdict::kError);  // south's stuck sensor
  EXPECT_EQ(report.regions.at("north").network.verdict, Verdict::kNormal);
  ASSERT_TRUE(report.regions.at("south").sensors.count(2));
  EXPECT_EQ(report.regions.at("south").sensors.at(2).kind, AnomalyKind::kStuckAt);
  const auto s = to_string(report);
  EXPECT_NE(s.find("[region south] sensor 2"), std::string::npos);
}

TEST(Fleet, ValidatesRegionNames) {
  FleetMonitor fleet;
  fleet.add_region("a", region_config());
  EXPECT_THROW(fleet.add_region("a", region_config()), std::invalid_argument);
  EXPECT_THROW(fleet.add_record("missing", {0, 0.0, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(fleet.region("missing"), std::invalid_argument);
  EXPECT_THROW(FleetMonitor{0.0}, std::invalid_argument);
}

TEST(Fleet, StructuralOutlierWhenRegionModelDiverges) {
  // Three regions observe the same environment; in one of them a MAJORITY
  // of sensors is compromised with a change attack, so its own internal
  // majority check is defeated and its learned M_C diverges -- the fleet
  // tier catches it by cross-region comparison.
  const CycleEnvironment env;
  FleetMonitor fleet(/*state_match_tol=*/6.0);
  for (const char* name : {"a", "b", "c"}) fleet.add_region(name, region_config());

  for (const auto& r : simulate_region(env, 3.0 * kSecondsPerDay, 1)) fleet.add_record("a", r);
  for (const auto& r : simulate_region(env, 3.0 * kSecondsPerDay, 2)) fleet.add_record("b", r);

  auto plan = std::make_shared<faults::InjectionPlan>();
  for (SensorId s = 0; s < 5; ++s) {  // 5 of 6 sensors compromised
    faults::ChangeAttackConfig ac;
    ac.victim = faults::StateRegion{{30.0, 40.0}, 8.0};
    ac.observed_as = {55.0, 20.0};
    ac.fraction = 5.0 / 6.0;
    plan->add(s, std::make_unique<faults::DynamicChangeAttack>(ac), 0.0);
  }
  for (const auto& r : simulate_region(env, 3.0 * kSecondsPerDay, 3, plan)) {
    fleet.add_record("c", r);
  }
  fleet.finish();

  const auto report = fleet.diagnose();
  ASSERT_EQ(report.structural_outliers.size(), 1u);
  EXPECT_EQ(report.structural_outliers[0], "c");
}

TEST(Fleet, NoOutliersWhenAllAgree) {
  const CycleEnvironment env;
  FleetMonitor fleet;
  for (const char* name : {"a", "b", "c"}) fleet.add_region(name, region_config());
  std::uint64_t seed = 10;
  for (const char* name : {"a", "b", "c"}) {
    for (const auto& r : simulate_region(env, 2.0 * kSecondsPerDay, seed++)) {
      fleet.add_record(name, r);
    }
  }
  fleet.finish();
  const auto report = fleet.diagnose();
  EXPECT_TRUE(report.structural_outliers.empty());
  EXPECT_EQ(report.overall, Verdict::kNormal);
}

TEST(Fleet, RegionRestoredFromCheckpointContinues) {
  const CycleEnvironment env;
  const auto trace = simulate_region(env, 2.0 * kSecondsPerDay, 4);

  // Reference region, uninterrupted.
  FleetMonitor reference;
  reference.add_region("r", region_config());
  for (const auto& rec : trace) reference.add_record("r", rec);
  reference.finish();

  // Interrupted region: first day, checkpoint, restore into a new fleet.
  FleetMonitor before;
  before.add_region("r", region_config());
  for (const auto& rec : trace) {
    if (rec.time < kSecondsPerDay) before.add_record("r", rec);
  }
  std::stringstream ckpt;
  before.region("r").save_checkpoint(ckpt);

  FleetMonitor after;
  after.add_region("r", region_config(), ckpt);
  for (const auto& rec : trace) {
    if (rec.time >= kSecondsPerDay) after.add_record("r", rec);
  }
  after.finish();

  // The partial window in flight at the checkpoint seam is dropped (the
  // documented contract: checkpoint at window boundaries), so the restored
  // chain may be short by exactly that one transition.
  EXPECT_NEAR(static_cast<double>(after.region("r").m_c().total_transitions()),
              static_cast<double>(reference.region("r").m_c().total_transitions()), 1.0);
  EXPECT_EQ(after.diagnose().overall, Verdict::kNormal);
}

TEST(ModelsStructurallySimilar, MatchesByCentroidNotId) {
  hmm::MarkovChain a, b;
  a.add_sequence({0, 1, 0, 1});
  b.add_sequence({7, 9, 7, 9});  // different ids, same physical states
  const CentroidLookup la = [](hmm::StateId id) -> std::optional<AttrVec> {
    if (id == 0) return AttrVec{10.0, 60.0};
    if (id == 1) return AttrVec{30.0, 40.0};
    return std::nullopt;
  };
  const CentroidLookup lb = [](hmm::StateId id) -> std::optional<AttrVec> {
    if (id == 7) return AttrVec{11.0, 59.0};
    if (id == 9) return AttrVec{29.0, 41.0};
    return std::nullopt;
  };
  EXPECT_TRUE(models_structurally_similar(a, la, b, lb, 4.0));
  EXPECT_FALSE(models_structurally_similar(a, la, b, lb, 1.0));

  // Extra unmatched state in b breaks similarity.
  hmm::MarkovChain b2 = b;
  b2.add_visit(12);
  const CentroidLookup lb2 = [&lb](hmm::StateId id) -> std::optional<AttrVec> {
    if (id == 12) return AttrVec{80.0, 10.0};
    return lb(id);
  };
  EXPECT_FALSE(models_structurally_similar(a, la, b2, lb2, 4.0));
}

}  // namespace
}  // namespace sentinel::core
