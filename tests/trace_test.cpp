// Unit tests: trace CSV I/O (including malformed-packet tolerance) and the
// time windower (paper eq. (1)).

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "trace/trace_io.h"
#include "trace/windower.h"

namespace sentinel {
namespace {

TEST(TraceIo, RoundTrip) {
  std::vector<SensorRecord> recs{
      {0, 0.0, {21.5, 70.0}},
      {1, 300.0, {21.7, 69.5}},
      {0, 300.0, {21.6, 70.1}},
  };
  std::stringstream ss;
  const AttrSchema schema = gdi_schema();
  write_trace(ss, recs, &schema);

  const auto result = read_trace(ss);
  EXPECT_EQ(result.comment_lines, 1u);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[1].sensor, 1u);
  EXPECT_DOUBLE_EQ(result.records[1].time, 300.0);
  EXPECT_DOUBLE_EQ(result.records[1].attrs[0], 21.7);
}

TEST(TraceIo, MalformedLinesCountedNotFatal) {
  std::stringstream ss;
  ss << "# header\n"
     << "0,0,21.5,70\n"
     << "garbage line\n"          // too few fields
     << "1,300,NaNish,70\n"       // bad number -> actually 'NaNish' is junk
     << "2,600,21.0\n"            // wrong width
     << "3,900,20.0,71\n"
     << "-1,1200,20.0,71\n"       // negative sensor id
     << "\n";
  const auto result = read_trace(ss);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.malformed_lines, 4u);
  EXPECT_EQ(result.comment_lines, 1u);
  // The tally attributes each drop to its cause (and stays in sync with the
  // headline number) -- operators triage a 90%-short-lines feed differently
  // from a 90%-bad-ids one.
  EXPECT_EQ(result.malformed.bad_field_count, 1u);  // "garbage line"
  EXPECT_EQ(result.malformed.bad_number, 1u);       // "NaNish"
  EXPECT_EQ(result.malformed.dims_mismatch, 1u);    // wrong width
  EXPECT_EQ(result.malformed.bad_sensor_id, 1u);    // negative id
  EXPECT_EQ(result.malformed.total(), result.malformed_lines);
  EXPECT_TRUE(result.status.is_ok());
  const auto text = to_string(result.malformed);
  EXPECT_NE(text.find("4 malformed"), std::string::npos) << text;
}

TEST(TraceIo, ExpectedDimsEnforced) {
  std::stringstream ss;
  ss << "0,0,1,2,3\n0,1,1,2\n";
  const auto result = read_trace(ss, 3);
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.malformed_lines, 1u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path.csv"), std::runtime_error);
}

// Regression for the sensor-id validation: values a double can hold but a
// uint32 cannot (1e300, 2^32, NaN, inf) must be *rejected*, never cast --
// the cast itself is undefined behavior for out-of-range values.
TEST(TraceIo, OutOfRangeSensorIdsAreMalformedNotUb) {
  std::stringstream ss;
  ss << "1e300,0,21.5,70\n"         // far beyond uint32
     << "4294967296,60,21.5,70\n"   // exactly 2^32 (first unrepresentable)
     << "4294967295,120,21.5,70\n"  // uint32 max: valid
     << "nan,180,21.5,70\n"
     << "inf,240,21.5,70\n"
     << "2.5,300,21.5,70\n"         // fractional id
     << "7,360,21.5,70\n";
  const auto result = read_trace(ss);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].sensor, 4294967295u);
  EXPECT_EQ(result.records[1].sensor, 7u);
  EXPECT_EQ(result.malformed_lines, 5u);
}

TEST(TraceIo, ToSensorIdValidates) {
  EXPECT_EQ(to_sensor_id(0.0), SensorId{0});
  EXPECT_EQ(to_sensor_id(4294967295.0), SensorId{4294967295u});
  EXPECT_FALSE(to_sensor_id(4294967296.0));
  EXPECT_FALSE(to_sensor_id(-1.0));
  EXPECT_FALSE(to_sensor_id(0.5));
  EXPECT_FALSE(to_sensor_id(1e300));
  EXPECT_FALSE(to_sensor_id(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(to_sensor_id(std::numeric_limits<double>::infinity()));
}

TEST(ObservationSetTest, OverallMeanAndRepresentatives) {
  ObservationSet w;
  w.raw = {{10.0, 20.0}, {30.0, 40.0}};
  w.per_sensor = {{0, {10.0, 20.0}}, {1, {30.0, 40.0}}};
  EXPECT_EQ(w.overall_mean(), (AttrVec{20.0, 30.0}));
  const auto reps = w.representatives();
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0].first, 0u);

  ObservationSet empty;
  EXPECT_THROW(empty.overall_mean(), std::logic_error);
}

TEST(Windower, AssignsWindowsPerEquationOne) {
  Windower w(100.0);
  EXPECT_TRUE(w.add({0, 10.0, {1.0}}).empty());
  EXPECT_TRUE(w.add({1, 50.0, {2.0}}).empty());
  // Crossing into window 2 closes window 1.
  const auto done = w.add({0, 120.0, {3.0}});
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].window_index, 1u);
  EXPECT_DOUBLE_EQ(done[0].window_start, 0.0);
  EXPECT_DOUBLE_EQ(done[0].window_end, 100.0);
  EXPECT_EQ(done[0].raw.size(), 2u);
}

TEST(Windower, PerSensorRepresentativeIsMeanOfSamples) {
  Windower w(100.0);
  w.add({0, 1.0, {10.0}});
  w.add({0, 2.0, {20.0}});
  w.add({1, 3.0, {5.0}});
  const auto flushed = w.flush();
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->per_sensor.at(0), (AttrVec{15.0}));
  EXPECT_EQ(flushed->per_sensor.at(1), (AttrVec{5.0}));
}

TEST(Windower, TimeGapEmitsEmptyWindows) {
  Windower w(100.0);
  w.add({0, 10.0, {1.0}});
  const auto done = w.add({0, 350.0, {2.0}});  // jumps from window 1 to 4
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].window_index, 1u);
  EXPECT_FALSE(done[0].empty());
  EXPECT_EQ(done[1].window_index, 2u);
  EXPECT_TRUE(done[1].empty());
  EXPECT_TRUE(done[2].empty());
}

TEST(Windower, LateRecordsDropped) {
  Windower w(100.0);
  w.add({0, 10.0, {1.0}});
  w.add({0, 150.0, {2.0}});  // closes window 1
  w.add({0, 20.0, {3.0}});   // late for window 1
  EXPECT_EQ(w.late_records(), 1u);
}

TEST(Windower, RejectsNonPositiveWindow) {
  EXPECT_THROW(Windower(0.0), std::invalid_argument);
  EXPECT_THROW(Windower(-5.0), std::invalid_argument);
}

TEST(Windower, DegenerateTimesHaveDefinedWindows) {
  // Negative and NaN times clamp into window 1 (before-deployment noise must
  // not reach the negative-double-to-size_t cast, which would be UB).
  Windower w(100.0);
  EXPECT_TRUE(w.add({0, -250.0, {1.0}}).empty());
  EXPECT_TRUE(w.add({0, std::numeric_limits<double>::quiet_NaN(), {2.0}}).empty());
  const auto done = w.add({0, 150.0, {3.0}});  // window 2: closes window 1
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].window_index, 1u);
  EXPECT_EQ(done[0].raw.size(), 2u);  // both degenerate records landed there

  // Every clamp is counted: the pipeline surfaces them as a data-quality
  // signal (pipeline.clamped_records) instead of silently rewriting time.
  EXPECT_EQ(w.clamped_records(), 2u);

  // A huge time clamps instead of overflowing the cast. The gap loop is not
  // exercised (that would emit ~2^63 empty windows); only the index math is.
  Windower w2(100.0);
  (void)w2.add({0, 1e300, {1.0}});
  EXPECT_TRUE(w2.flush().has_value());
  EXPECT_EQ(w2.clamped_records(), 1u);
}

TEST(WindowTrace, SortsAndFlushes) {
  std::vector<SensorRecord> recs{
      {0, 250.0, {3.0}},
      {0, 10.0, {1.0}},
      {0, 150.0, {2.0}},
  };
  const auto windows = window_trace(recs, 100.0);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].raw.size(), 1u);
  EXPECT_EQ(windows[2].raw[0], (AttrVec{3.0}));
}

}  // namespace
}  // namespace sentinel
