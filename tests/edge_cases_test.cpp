// Additional edge-case and semantics tests collected across modules:
// posterior decoding, the decreasing-gain estimates' duty-cycle behavior,
// the scale-aware calibration fit, fabricated-symbol creation rule, ARL
// properties of the sequential filters, mote jitter, and printing helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "changepoint/cusum.h"
#include "changepoint/sprt.h"
#include "core/classifier.h"
#include "hmm/hmm.h"
#include "hmm/online_hmm.h"
#include "sim/sensor.h"
#include "util/rng.h"

namespace sentinel {
namespace {

// --- posterior decoding --------------------------------------------------------

TEST(Posterior, RowsAreDistributionsAndAgreeWithViterbiWhenCrisp) {
  // Near-deterministic model: posterior argmax should match Viterbi.
  const hmm::Hmm model(Matrix::from_rows({{0.95, 0.05}, {0.05, 0.95}}),
                       Matrix::from_rows({{0.9, 0.1}, {0.1, 0.9}}), {0.5, 0.5});
  const hmm::Sequence obs{0, 0, 0, 1, 1, 1, 0, 0};
  const Matrix gamma = model.posterior(obs);
  ASSERT_EQ(gamma.rows(), obs.size());
  for (std::size_t t = 0; t < obs.size(); ++t) {
    EXPECT_NEAR(gamma(t, 0) + gamma(t, 1), 1.0, 1e-9);
  }
  const auto v = model.viterbi(obs);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    const std::size_t post_argmax = gamma(t, 0) > gamma(t, 1) ? 0 : 1;
    EXPECT_EQ(post_argmax, v.path[t]) << "t=" << t;
  }
}

TEST(Posterior, UniformModelGivesUniformPosterior) {
  const auto model = hmm::Hmm::uniform(3, 4);
  const Matrix gamma = model.posterior({0, 1, 2, 3});
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(gamma(t, i), 1.0 / 3.0, 1e-9);
  }
}

// --- decreasing-gain estimates ---------------------------------------------------

TEST(OnlineHmmAvg, DutyCycleSplitsRowEvenly) {
  // Alternate two symbols from the same hidden state: the fixed-gain row
  // swings with the last observation, the decreasing-gain row converges to
  // the true 50/50 emission frequency.
  hmm::OnlineHmm m;
  for (int i = 0; i < 200; ++i) m.observe(1, i % 2 ? 10 : 11);

  const Matrix ema = m.emission_matrix();
  const Matrix avg = m.emission_matrix_avg();
  const auto row = *m.hidden_index(1);
  const auto c10 = *m.symbol_index(10);
  const auto c11 = *m.symbol_index(11);
  // Fixed gain: heavily tilted toward whichever symbol came last.
  EXPECT_GT(std::max(ema(row, c10), ema(row, c11)), 0.85);
  // Decreasing gain: the long-run 50/50 (up to the first-sample asymmetry).
  EXPECT_NEAR(avg(row, c10), 0.5, 0.02);
  EXPECT_NEAR(avg(row, c11), 0.5, 0.02);
}

TEST(OnlineHmmAvg, TransitionAveragesMatchFrequencies) {
  // From state 0: go to 1 twice as often as to 2.
  hmm::OnlineHmm m;
  for (int i = 0; i < 90; ++i) {
    m.observe(0, 0);
    m.observe(i % 3 == 0 ? 2 : 1, 5);
  }
  const Matrix avg = m.transition_matrix_avg();
  const auto r0 = *m.hidden_index(0);
  EXPECT_NEAR(avg(r0, *m.hidden_index(1)), 2.0 / 3.0, 0.05);
  EXPECT_NEAR(avg(r0, *m.hidden_index(2)), 1.0 / 3.0, 0.05);
}

// --- classifier: scale-aware fit and creation rule ------------------------------

core::CentroidLookup big_scale_lookup() {
  // Cluster-monitor scale: latency in the hundreds; exact gain 2 on attr 1
  // but with +-3-unit centroid estimation error.
  static const std::map<hmm::StateId, AttrVec> k = {
      {0, {25.0, 80.0}},  {1, {55.0, 120.0}}, {2, {70.0, 150.0}},
      {10, {25.0, 163.0}}, {11, {55.0, 237.0}}, {12, {70.0, 303.0}},
  };
  return [](hmm::StateId id) -> std::optional<AttrVec> {
    const auto it = k.find(id);
    if (it == k.end()) return std::nullopt;
    return it->second;
  };
}

TEST(ClassifierScale, CalibrationAcceptedAtLatencyScale) {
  hmm::OnlineHmm m;
  for (int i = 0; i < 50; ++i) {
    m.observe(0, 10);
    m.observe(1, 11);
    m.observe(2, 12);
  }
  core::Diagnosis network;
  network.verdict = core::Verdict::kNormal;
  const auto d =
      core::classify_sensor(m, network, false, {}, big_scale_lookup(), core::ClassifierConfig{});
  EXPECT_EQ(d.kind, core::AnomalyKind::kCalibration);
  ASSERT_EQ(d.gain.size(), 2u);
  EXPECT_NEAR(d.gain[1], 2.0, 0.1);
}

TEST(ClassifierCreationRule, TwoHiddenColumnsDoNotWitnessCreation) {
  // Hidden 0 splits between symbol 0 (its own) and symbol 1 (another hidden
  // state's symbol): a deletion-boundary residue, not a fabricated state.
  hmm::OnlineHmm m;
  for (int i = 0; i < 60; ++i) {
    m.observe(0, i % 3 == 0 ? 0 : 1);
    m.observe(1, 1);
    m.observe(2, 2);
  }
  const core::CentroidLookup lookup = [](hmm::StateId id) -> std::optional<AttrVec> {
    static const std::map<hmm::StateId, AttrVec> k = {
        {0, {10.0, 60.0}}, {1, {30.0, 40.0}}, {2, {50.0, 20.0}}};
    const auto it = k.find(id);
    if (it == k.end()) return std::nullopt;
    return it->second;
  };
  const auto d = core::classify_network(m, {}, lookup, core::ClassifierConfig{}, 3);
  EXPECT_EQ(d.verdict, core::Verdict::kAttack);
  EXPECT_EQ(d.kind, core::AnomalyKind::kDynamicDeletion)
      << "hidden-hidden column coupling must read as deletion residue";
}

// --- sequential filters: average run length --------------------------------------

TEST(SequentialFilters, CusumArlMuchLongerUnderH0) {
  // Average windows to a (false) alarm under H0 must dwarf the detection
  // delay under H1.
  Rng rng(31, "arl");
  const auto arl = [&](double p) {
    double total = 0.0;
    for (int trial = 0; trial < 30; ++trial) {
      changepoint::CusumFilter f(changepoint::CusumConfig{});
      int n = 0;
      while (!f.update(rng.bernoulli(p)) && n < 20000) ++n;
      total += n;
    }
    return total / 30.0;
  };
  const double arl0 = arl(0.02);  // healthy
  const double arl1 = arl(0.6);   // faulty
  EXPECT_GT(arl0, 50.0 * arl1);
  EXPECT_LT(arl1, 15.0);
}

TEST(SequentialFilters, SprtDecisionCountGrowsWithData) {
  changepoint::SprtFilter f(changepoint::SprtConfig{});
  Rng rng(33, "sprt-arl");
  for (int i = 0; i < 5000; ++i) f.update(rng.bernoulli(0.02));
  EXPECT_GT(f.decisions(), 10u);  // keeps re-accepting H0
}

// --- mote jitter ------------------------------------------------------------------

TEST(MoteJitter, SampleTimesStayWithinJitterWindow) {
  const sim::ConstantEnvironment env(AttrVec{0.0});
  sim::MoteConfig cfg;
  cfg.sample_period = 300.0;
  cfg.phase_jitter = 30.0;
  sim::Mote mote(cfg);
  for (int i = 0; i < 200; ++i) {
    const double nominal = 300.0 * i;
    const auto s = mote.sample(env);
    EXPECT_GE(s.record.time, nominal);
    EXPECT_LT(s.record.time, nominal + 30.0);
  }
}

// --- printing helpers --------------------------------------------------------------

TEST(Printing, MatrixToStringRowsAndPrecision) {
  const Matrix m = Matrix::from_rows({{0.5, 0.25}, {1.0, 0.0}});
  const auto s = m.to_string(2);
  EXPECT_NE(s.find("0.50"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(Printing, MarkovChainToStringListsStates) {
  hmm::MarkovChain mc;
  mc.add_sequence({3, 5, 3});
  const auto s = mc.to_string();
  EXPECT_NE(s.find("states: 3 5"), std::string::npos);
}

}  // namespace
}  // namespace sentinel
