// Unit tests: per-sensor health analytics and the Markov-chain baseline
// detector (related work [11]).

#include <gtest/gtest.h>

#include "baseline/markov_detector.h"
#include "trace/health.h"
#include "util/rng.h"

namespace sentinel {
namespace {

// --- health -------------------------------------------------------------------

std::vector<SensorRecord> healthy_trace(SensorId id, double period, std::size_t n,
                                        double noise, std::uint64_t seed) {
  Rng rng(seed, "health-test");
  std::vector<SensorRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * period;
    out.push_back({id, t, {20.0 + rng.gaussian(0.0, noise), 70.0 + rng.gaussian(0.0, noise)}});
  }
  return out;
}

TEST(Health, CompleteTraceScoresFullCompleteness) {
  const auto trace = healthy_trace(3, 300.0, 200, 0.3, 1);
  const auto report = analyze_health(trace, 300.0);
  ASSERT_EQ(report.size(), 1u);
  const auto& h = report.front();
  EXPECT_EQ(h.sensor, 3u);
  EXPECT_EQ(h.records, 200u);
  EXPECT_NEAR(h.completeness, 1.0, 0.01);
  EXPECT_NEAR(h.max_gap, 300.0, 1e-9);
  EXPECT_NEAR(h.mean[0], 20.0, 0.1);
  EXPECT_NEAR(h.noise_sigma[0], 0.3, 0.08);
}

TEST(Health, DetectsMissingPacketsAndGaps) {
  auto trace = healthy_trace(0, 300.0, 200, 0.3, 2);
  // Drop a contiguous hour (12 records) and every 4th record elsewhere.
  std::vector<SensorRecord> lossy;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i >= 50 && i < 62) continue;
    if (i % 4 == 3) continue;
    lossy.push_back(trace[i]);
  }
  const auto report = analyze_health(lossy, 300.0);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_LT(report[0].completeness, 0.80);
  EXPECT_NEAR(report[0].max_gap, 13.0 * 300.0, 301.0);
}

TEST(Health, NoiseEstimateIgnoresSlowDrift) {
  // Strong linear drift, small noise: stddev is large but noise_sigma stays
  // near the injected measurement noise.
  Rng rng(5, "health-drift");
  std::vector<SensorRecord> trace;
  for (std::size_t i = 0; i < 500; ++i) {
    trace.push_back({1, i * 300.0, {static_cast<double>(i) * 0.1 + rng.gaussian(0.0, 0.4)}});
  }
  const auto report = analyze_health(trace, 300.0);
  EXPECT_GT(report[0].stddev[0], 5.0);
  EXPECT_NEAR(report[0].noise_sigma[0], 0.4, 0.15);
}

TEST(Health, MultipleSensorsSorted) {
  auto a = healthy_trace(2, 300.0, 50, 0.1, 7);
  const auto b = healthy_trace(0, 300.0, 80, 0.1, 8);
  a.insert(a.end(), b.begin(), b.end());
  const auto report = analyze_health(a, 300.0);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].sensor, 0u);
  EXPECT_EQ(report[1].sensor, 2u);
  EXPECT_EQ(report[0].records, 80u);
}

TEST(Health, Validation) {
  EXPECT_THROW(analyze_health({}, 0.0), std::invalid_argument);
  EXPECT_TRUE(analyze_health({}, 300.0).empty());
}

TEST(Health, ToStringMentionsEverything) {
  const auto report = analyze_health(healthy_trace(9, 300.0, 20, 0.2, 3), 300.0);
  const auto s = to_string(report.front());
  EXPECT_NE(s.find("sensor 9"), std::string::npos);
  EXPECT_NE(s.find("completeness"), std::string::npos);
  EXPECT_NE(s.find("noise"), std::string::npos);
}

// --- Markov-chain detector -----------------------------------------------------

std::vector<hmm::StateId> cycle_sequence(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, "markov-det");
  std::vector<hmm::StateId> seq;
  hmm::StateId cur = 0;
  for (std::size_t i = 0; i < n; ++i) {
    seq.push_back(cur);
    if (rng.bernoulli(0.6)) cur = (cur + 1) % 4;
  }
  return seq;
}

TEST(MarkovDetector, CleanDataMostlyBelowThresholdRate) {
  baseline::MarkovChainDetector det((baseline::MarkovDetectorConfig()));
  const auto stats = det.train(cycle_sequence(800, 1));
  EXPECT_EQ(stats.states, 4u);
  EXPECT_GT(stats.transitions, 700u);

  const auto flags = det.detect(cycle_sequence(400, 2));
  std::size_t flagged = 0;
  for (const bool f : flags) flagged += f;
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(flags.size()), 0.1);
}

TEST(MarkovDetector, FlagsForeignStructure) {
  baseline::MarkovChainDetector det((baseline::MarkovDetectorConfig()));
  det.train(cycle_sequence(800, 1));
  // Backwards cycle: transitions the chain never saw.
  std::vector<hmm::StateId> weird;
  hmm::StateId cur = 3;
  for (int i = 0; i < 200; ++i) {
    weird.push_back(cur);
    cur = (cur + 3) % 4;
  }
  const auto flags = det.detect(weird);
  std::size_t flagged = 0;
  for (const bool f : flags) flagged += f;
  EXPECT_GT(static_cast<double>(flagged) / static_cast<double>(flags.size()), 0.8);
}

TEST(MarkovDetector, ScoreOrdersSequencesSensibly) {
  baseline::MarkovChainDetector det((baseline::MarkovDetectorConfig()));
  det.train(cycle_sequence(800, 1));
  const std::vector<hmm::StateId> in_dist{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<hmm::StateId> out_dist{3, 2, 1, 0, 3, 2, 1, 0, 3, 2, 1, 0};
  EXPECT_GT(det.score(in_dist), det.score(out_dist));
}

TEST(MarkovDetector, Validation) {
  baseline::MarkovDetectorConfig bad;
  bad.window = 1;
  EXPECT_THROW(baseline::MarkovChainDetector{bad}, std::invalid_argument);
  baseline::MarkovChainDetector det((baseline::MarkovDetectorConfig()));
  EXPECT_THROW(det.score({1, 2}), std::logic_error);
  EXPECT_THROW(det.detect({1, 2}), std::logic_error);
  EXPECT_THROW(det.train({1}), std::invalid_argument);
}

}  // namespace
}  // namespace sentinel
