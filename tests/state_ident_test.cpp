// Unit tests: observable / correct state identification (paper eqs. (2)-(4))
// including the worked example of the paper's Figs. 3 and 4.

#include <gtest/gtest.h>

#include "core/state_ident.h"

namespace sentinel::core {
namespace {

ModelStateConfig cfg() {
  ModelStateConfig c;
  c.merge_threshold = 1.0;
  c.spawn_threshold = 100.0;
  return c;
}

ObservationSet window_of(std::map<SensorId, AttrVec> per_sensor) {
  ObservationSet w;
  w.window_index = 1;
  for (auto& [id, p] : per_sensor) {
    w.raw.push_back(p);
    w.per_sensor.emplace(id, std::move(p));
  }
  return w;
}

TEST(StateIdent, PaperFigureFourExample) {
  // Five states; observations p1..p4 cluster at s0, p5 near s3, p6 near s4.
  // Expected: correct state = s0 (largest cluster), sensors 5 and 6 map
  // elsewhere (they get raw alarms in the pipeline).
  ModelStateSet states(cfg(), {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}, {40.0, 0.0}});
  const auto w = window_of({
      {1, {0.2, 0.1}},
      {2, {-0.3, 0.2}},
      {3, {0.1, -0.2}},
      {4, {0.4, 0.0}},
      {5, {29.7, 0.1}},
      {6, {40.2, -0.1}},
  });
  const WindowStates ws = identify_states(w, states);
  EXPECT_EQ(ws.correct, 0u);
  EXPECT_EQ(ws.majority_size, 4u);
  EXPECT_EQ(ws.mapped(1), 0u);
  EXPECT_EQ(ws.mapped(5), 3u);
  EXPECT_EQ(ws.mapped(6), 4u);
  EXPECT_EQ(ws.sensors, 6u);
}

TEST(StateIdent, ObservableIsNearestToOverallMean) {
  // Mean of {(0,0) x4, (30,0), (40,0)} = (11.7, 0) -> nearest state s1 (10,0):
  // the paper's eq. (2) uses ALL observations, corrupted ones included.
  ModelStateSet states(cfg(), {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}, {40.0, 0.0}});
  const auto w = window_of({
      {1, {0.0, 0.0}},
      {2, {0.0, 0.0}},
      {3, {0.0, 0.0}},
      {4, {0.0, 0.0}},
      {5, {30.0, 0.0}},
      {6, {40.0, 0.0}},
  });
  const WindowStates ws = identify_states(w, states);
  EXPECT_EQ(ws.observable, 1u);
  EXPECT_EQ(ws.correct, 0u);  // majority still wins eq. (4)
}

TEST(StateIdent, AllAgreeing) {
  ModelStateSet states(cfg(), {{0.0, 0.0}, {10.0, 0.0}});
  const auto w = window_of({{1, {0.1, 0.0}}, {2, {-0.1, 0.0}}});
  const WindowStates ws = identify_states(w, states);
  EXPECT_EQ(ws.correct, 0u);
  EXPECT_EQ(ws.observable, 0u);
  EXPECT_EQ(ws.majority_size, 2u);
}

TEST(StateIdent, TieBreaksTowardObservableState) {
  // Two clusters of equal size; the one agreeing with the network-level
  // observable state wins (deterministic rule documented in state_ident.h).
  ModelStateSet states(cfg(), {{0.0, 0.0}, {10.0, 0.0}});
  const auto w = window_of({
      {1, {0.0, 0.0}},
      {2, {0.5, 0.0}},
      {3, {10.0, 0.0}},
      {4, {9.5, 0.0}},
  });
  // Overall mean = (5, 0): equidistant -> map picks the first (state 0).
  const WindowStates ws = identify_states(w, states);
  EXPECT_EQ(ws.correct, ws.observable);
  EXPECT_EQ(ws.majority_size, 2u);
}

TEST(StateIdent, EmptyWindowThrows) {
  ModelStateSet states(cfg(), {{0.0, 0.0}});
  ObservationSet w;
  EXPECT_THROW(identify_states(w, states), std::invalid_argument);
}

TEST(StateIdent, SingleSensorWindow) {
  ModelStateSet states(cfg(), {{0.0, 0.0}, {10.0, 0.0}});
  const auto w = window_of({{3, {9.0, 0.0}}});
  const WindowStates ws = identify_states(w, states);
  EXPECT_EQ(ws.correct, 1u);
  EXPECT_EQ(ws.observable, 1u);
  EXPECT_EQ(ws.mapped(3), 1u);
}

}  // namespace
}  // namespace sentinel::core
