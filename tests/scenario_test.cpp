// Tests of the experiment harness itself (bench/common/scenario): injection
// factories, ground-truth expectations, and report scoring -- the accuracy
// matrix is only as good as this scaffolding.

#include <gtest/gtest.h>

#include "common/scenario.h"

namespace sentinel::bench {
namespace {

TEST(Scenario, AllKindsEnumerated) {
  const auto kinds = all_injection_kinds();
  EXPECT_EQ(kinds.size(), 10u);
  EXPECT_EQ(kinds.front(), InjectionKind::kClean);
  EXPECT_EQ(kinds.back(), InjectionKind::kBenign);
}

TEST(Scenario, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto k : all_injection_kinds()) names.insert(to_string(k));
  EXPECT_EQ(names.size(), 10u);
}

TEST(Scenario, ExpectationsConsistent) {
  for (const auto k : all_injection_kinds()) {
    const auto verdict = expected_verdict(k);
    const auto kind = expected_kind(k);
    if (verdict == core::Verdict::kNormal) {
      EXPECT_EQ(kind, core::AnomalyKind::kNone) << to_string(k);
    } else {
      EXPECT_NE(kind, core::AnomalyKind::kNone) << to_string(k);
    }
  }
  EXPECT_EQ(expected_kind(InjectionKind::kStuckAt), core::AnomalyKind::kStuckAt);
  EXPECT_EQ(expected_verdict(InjectionKind::kMixed), core::Verdict::kAttack);
}

TEST(Scenario, CleanAndErrorInjectorsTargetTheRightSensors) {
  EXPECT_EQ(make_injection(InjectionKind::kClean, 1), nullptr);

  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = kSecondsPerDay;
  const sim::GdiEnvironment env(ec);

  faults::InjectionPlan plan;
  make_injection(InjectionKind::kStuckAt, 1)(plan, env);
  EXPECT_EQ(plan.injected_sensors(), std::vector<SensorId>{6});

  faults::InjectionPlan attack_plan;
  make_injection(InjectionKind::kDeletion, 1)(attack_plan, env);
  EXPECT_EQ(attack_plan.injected_sensors(), (std::vector<SensorId>{7, 8, 9}));
}

TEST(Scenario, ScoreReportErrorPath) {
  core::DiagnosisReport report;
  report.network.verdict = core::Verdict::kNormal;
  core::Diagnosis d;
  d.verdict = core::Verdict::kError;
  d.kind = core::AnomalyKind::kStuckAt;
  report.sensors[6] = d;

  const auto score = score_report(report, InjectionKind::kStuckAt);
  EXPECT_TRUE(score.detected);
  EXPECT_TRUE(score.exact);

  // Wrong kind: detected but not exact.
  report.sensors[6].kind = core::AnomalyKind::kAdditive;
  const auto score2 = score_report(report, InjectionKind::kStuckAt);
  EXPECT_TRUE(score2.detected);
  EXPECT_FALSE(score2.exact);

  // Missing sensor diagnosis: a miss.
  report.sensors.clear();
  const auto score3 = score_report(report, InjectionKind::kStuckAt);
  EXPECT_FALSE(score3.detected);
}

TEST(Scenario, ScoreReportAttackUsesNetworkVerdict) {
  core::DiagnosisReport report;
  report.network.verdict = core::Verdict::kAttack;
  report.network.kind = core::AnomalyKind::kDynamicCreation;
  const auto score = score_report(report, InjectionKind::kCreation);
  EXPECT_TRUE(score.detected);
  EXPECT_TRUE(score.exact);
  const auto cross = score_report(report, InjectionKind::kDeletion);
  EXPECT_TRUE(cross.detected);  // attack verdict matches
  EXPECT_FALSE(cross.exact);    // wrong attack type
}

TEST(Scenario, ScoreReportCleanPenalizesAnySensorVerdict) {
  core::DiagnosisReport report;  // all normal
  EXPECT_TRUE(score_report(report, InjectionKind::kClean).exact);

  core::Diagnosis d;
  d.verdict = core::Verdict::kError;
  d.kind = core::AnomalyKind::kStuckAt;
  report.sensors[1] = d;
  const auto score = score_report(report, InjectionKind::kClean);
  EXPECT_FALSE(score.detected) << "a false sensor diagnosis must fail a clean run";
}

TEST(Scenario, PipelineConfigMatchesTableOne) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  ScenarioConfig sc;
  sc.duration_days = 2.0;
  const auto pc = make_pipeline_config(env, sc);
  EXPECT_EQ(pc.initial_states.size(), 6u);                      // M
  EXPECT_DOUBLE_EQ(pc.window_seconds, 3600.0);                  // w = 12 x 5 min
  EXPECT_DOUBLE_EQ(pc.model_states.alpha, 0.10);                // alpha
  EXPECT_DOUBLE_EQ(pc.beta, 0.90);                              // beta
  EXPECT_DOUBLE_EQ(pc.gamma, 0.90);                             // gamma
}

TEST(Scenario, StateLabelFormatsLikeThePaper) {
  const core::CentroidLookup lookup = [](hmm::StateId id) -> std::optional<AttrVec> {
    if (id == 4) return AttrVec{24.4, 69.6};
    return std::nullopt;
  };
  EXPECT_EQ(state_label(4, lookup), "(24,70)");
  EXPECT_EQ(state_label(99, lookup), "s99");
  EXPECT_EQ(state_label(hmm::kBottomSymbol, lookup), "_|_");
}

TEST(Scenario, RunScenarioProducesWorkingPipeline) {
  ScenarioConfig sc;
  sc.duration_days = 2.0;
  const auto r = run_scenario({}, sc, nullptr);
  EXPECT_GT(r.pipeline->windows_processed(), 40u);
  EXPECT_GT(r.sim.stats.delivered, 0u);
  EXPECT_EQ(r.pipeline->diagnose_network().verdict, core::Verdict::kNormal);
}

}  // namespace
}  // namespace sentinel::bench
