// Checkpoint/restore tests: every component round-trips exactly, and a
// pipeline restored mid-deployment continues to the same diagnosis as one
// that ran uninterrupted.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "hmm/markov_chain.h"
#include "hmm/online_hmm.h"
#include "sim/simulator.h"
#include "util/serialize.h"

namespace sentinel {
namespace {

TEST(Checkpoint, OnlineHmmRoundTripExact) {
  hmm::OnlineHmmConfig cfg;
  cfg.beta = 0.7;
  cfg.gamma = 0.85;
  hmm::OnlineHmm m(cfg);
  std::uint64_t x = 99;
  for (int i = 0; i < 300; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    m.observe(static_cast<hmm::StateId>((x >> 33) % 5),
              (x >> 17) % 7 == 0 ? hmm::kBottomSymbol
                                 : static_cast<hmm::StateId>((x >> 17) % 7));
  }
  std::stringstream ss;
  m.save(ss);
  const auto loaded = hmm::OnlineHmm::load(cfg, ss);

  EXPECT_EQ(loaded.steps(), m.steps());
  EXPECT_EQ(loaded.hidden_states(), m.hidden_states());
  EXPECT_EQ(loaded.symbols(), m.symbols());
  EXPECT_EQ(loaded.last_hidden(), m.last_hidden());
  EXPECT_DOUBLE_EQ(loaded.transition_matrix().max_abs_diff(m.transition_matrix()), 0.0);
  EXPECT_DOUBLE_EQ(loaded.emission_matrix().max_abs_diff(m.emission_matrix()), 0.0);
  EXPECT_DOUBLE_EQ(loaded.emission_matrix_avg().max_abs_diff(m.emission_matrix_avg()), 0.0);
  EXPECT_EQ(loaded.symbol_totals(), m.symbol_totals());

  // A loaded model keeps learning identically to the original.
  hmm::OnlineHmm original_copy = m;
  hmm::OnlineHmm restored = loaded;
  original_copy.observe(2, 3);
  restored.observe(2, 3);
  EXPECT_DOUBLE_EQ(
      restored.emission_matrix().max_abs_diff(original_copy.emission_matrix()), 0.0);
}

TEST(Checkpoint, OnlineHmmRejectsGarbage) {
  std::stringstream ss("not-a-checkpoint 1 2 3");
  EXPECT_THROW(hmm::OnlineHmm::load({}, ss), std::runtime_error);
  std::stringstream truncated("online-hmm\n3 1 2 3");
  EXPECT_THROW(hmm::OnlineHmm::load({}, truncated), std::runtime_error);
}

TEST(Checkpoint, MarkovChainRoundTrip) {
  hmm::MarkovChain mc;
  mc.add_sequence({5, 9, 5, 5, 9, 2, 5});
  std::stringstream ss;
  mc.save(ss);
  const auto loaded = hmm::MarkovChain::load(ss);
  EXPECT_EQ(loaded.states(), mc.states());
  EXPECT_EQ(loaded.total_transitions(), mc.total_transitions());
  EXPECT_EQ(loaded.visit_count(5), mc.visit_count(5));
  EXPECT_EQ(loaded.transition_count(5, 9), mc.transition_count(5, 9));
  EXPECT_DOUBLE_EQ(loaded.transition_matrix().max_abs_diff(mc.transition_matrix()), 0.0);
}

TEST(Checkpoint, ModelStateSetRoundTrip) {
  core::ModelStateConfig cfg;
  cfg.merge_threshold = 3.0;
  cfg.spawn_threshold = 10.0;
  core::ModelStateSet s(cfg, {{0.0, 0.0}, {20.0, 0.0}});
  s.maybe_spawn({{50.0, 50.0}});
  s.update({{1.0, 1.0}, {49.0, 50.0}});

  std::stringstream ss;
  s.save(ss);
  auto loaded = core::ModelStateSet::load(cfg, ss);
  ASSERT_EQ(loaded.size(), s.size());
  for (std::size_t i = 0; i < s.states().size(); ++i) {
    EXPECT_EQ(loaded.states()[i].id, s.states()[i].id);
    EXPECT_EQ(loaded.states()[i].centroid, s.states()[i].centroid);
  }
  EXPECT_EQ(loaded.spawn_count(), s.spawn_count());
  EXPECT_EQ(loaded.map({48.0, 50.0}), s.map({48.0, 50.0}));
  // Spawning after restore continues the id sequence without collisions.
  const auto created = loaded.maybe_spawn({{-50.0, -50.0}});
  ASSERT_EQ(created.size(), 1u);
  EXPECT_FALSE(s.centroid(created[0]).has_value());
}

TEST(Checkpoint, TrackManagerRoundTrip) {
  core::TrackManager tm(hmm::OnlineHmmConfig{});
  tm.open(4, 10);
  tm.observe(4, 1, 7);
  tm.observe(4, 2, 7);
  tm.close(4, 12);
  tm.open(4, 20);
  tm.observe(4, 1, hmm::kBottomSymbol);
  tm.open(9, 21);
  tm.observe(9, 1, 8);

  std::stringstream ss;
  tm.save(ss);
  const auto loaded = core::TrackManager::load(hmm::OnlineHmmConfig{}, ss);

  EXPECT_EQ(loaded.tracked_sensors(), tm.tracked_sensors());
  EXPECT_EQ(loaded.total_tracks(), tm.total_tracks());
  EXPECT_EQ(loaded.total_anomalies(4), tm.total_anomalies(4));
  ASSERT_NE(loaded.tracks(4), nullptr);
  EXPECT_EQ((*loaded.tracks(4))[0].closed_window, 12u);
  EXPECT_TRUE((*loaded.tracks(4))[1].active());
  EXPECT_TRUE(loaded.has_active_track(9));
  ASSERT_NE(loaded.combined_m_ce(4), nullptr);
  EXPECT_EQ(loaded.combined_m_ce(4)->steps(), tm.combined_m_ce(4)->steps());
}

TEST(Checkpoint, PipelineSurvivesRestartMidDeployment) {
  // Run 10 days with a stuck-at fault; checkpoint at day 5; restore and run
  // the remaining days; the restored pipeline must reach the same diagnosis
  // and (nearly) the same models as the uninterrupted one.
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 10.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  auto simulator = sim::make_gdi_deployment(env, {});
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
            2.0 * kSecondsPerDay);
  simulator.set_transform(faults::make_transform(plan));
  const auto trace = simulator.run(ec.duration_seconds).trace;

  core::PipelineConfig cfg;
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 2.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  cfg.initial_states.resize(6);

  // Uninterrupted reference.
  core::DetectionPipeline full(cfg);
  full.process_trace(trace);

  // Interrupted: first half, checkpoint, restore, second half.
  const double cut = 5.0 * kSecondsPerDay;
  core::DetectionPipeline first_half(cfg);
  std::vector<SensorRecord> part1, part2;
  for (const auto& r : trace) (r.time < cut ? part1 : part2).push_back(r);
  first_half.process_trace(part1);
  std::stringstream checkpoint;
  first_half.save_checkpoint(checkpoint);

  core::DetectionPipeline restored(cfg, checkpoint);
  EXPECT_EQ(restored.model_states().size(), first_half.model_states().size());
  EXPECT_DOUBLE_EQ(restored.m_co().emission_matrix_avg().max_abs_diff(
                       first_half.m_co().emission_matrix_avg()),
                   0.0);
  restored.process_trace(part2);

  // Same verdict as the uninterrupted run.
  const auto ref = full.diagnose();
  const auto got = restored.diagnose();
  ASSERT_TRUE(ref.sensors.count(6));
  ASSERT_TRUE(got.sensors.count(6));
  EXPECT_EQ(got.sensors.at(6).verdict, ref.sensors.at(6).verdict);
  EXPECT_EQ(got.sensors.at(6).kind, ref.sensors.at(6).kind);
  EXPECT_EQ(got.network.verdict, ref.network.verdict);
  // M_C transition counts only differ by the windows at the seam (the alarm
  // filters restart cold, which can shift one track edge).
  EXPECT_NEAR(static_cast<double>(restored.m_c().total_transitions()),
              static_cast<double>(full.m_c().total_transitions()), 3.0);
}

TEST(Checkpoint, PipelineRejectsWrongHeader) {
  core::PipelineConfig cfg;
  cfg.initial_states = {{0.0, 0.0}};
  std::stringstream bad("something-else\n");
  EXPECT_THROW(core::DetectionPipeline(cfg, bad), std::runtime_error);
}

// A pipeline with some real state, for the codec tests below.
core::DetectionPipeline trained_pipeline(const core::PipelineConfig& cfg) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  auto simulator = sim::make_gdi_deployment(env, {});
  core::DetectionPipeline p(cfg);
  p.process_trace(simulator.run(ec.duration_seconds).trace);
  return p;
}

core::PipelineConfig codec_config() {
  core::PipelineConfig cfg;
  const sim::GdiEnvironment env({});
  for (double t = 0.0; t < kSecondsPerDay; t += 4.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  return cfg;
}

TEST(Checkpoint, BinaryCodecRoundTripsIdenticallyToText) {
  // Both codecs must restore the *same* pipeline: save one checkpoint per
  // format, load each (format auto-negotiated by magic byte), and compare
  // the re-saved text bytes -- byte equality of text checkpoints is the
  // strictest observable state equality the pipeline offers.
  const auto cfg = codec_config();
  const auto p = trained_pipeline(cfg);

  std::stringstream text_ck;
  p.save_checkpoint(text_ck);
  std::stringstream binary_ck;
  p.save_checkpoint(binary_ck, serialize::Format::kBinary);

  // The binary checkpoint is a different encoding, not a copy.
  ASSERT_NE(text_ck.str(), binary_ck.str());
  ASSERT_EQ(static_cast<unsigned char>(binary_ck.str()[0]), serialize::kBinaryMagic[0]);

  const core::DetectionPipeline from_text(cfg, text_ck);
  const core::DetectionPipeline from_binary(cfg, binary_ck);

  std::stringstream text_again, binary_again;
  from_text.save_checkpoint(text_again);
  from_binary.save_checkpoint(binary_again);
  EXPECT_EQ(text_again.str(), binary_again.str());
  EXPECT_EQ(text_again.str(), [&] {
    std::stringstream ss;
    p.save_checkpoint(ss);
    return ss.str();
  }());
}

TEST(Checkpoint, BinaryCodecRejectsCorruption) {
  const auto cfg = codec_config();
  const auto p = trained_pipeline(cfg);
  std::stringstream ck;
  p.save_checkpoint(ck, serialize::Format::kBinary);
  std::string bytes = ck.str();

  // Truncated: cut the stream mid-payload.
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(core::DetectionPipeline(cfg, truncated), std::runtime_error);

  // Wrong leading tag: corrupt the first tag's bytes (after magic + length).
  std::string mangled = bytes;
  mangled[10] = 'X';
  std::stringstream bad(mangled);
  EXPECT_THROW(core::DetectionPipeline(cfg, bad), std::runtime_error);
}

}  // namespace
}  // namespace sentinel
