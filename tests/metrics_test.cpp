// Metrics registry tests: counter/histogram correctness under concurrent
// writers, stable handles, snapshot/merge algebra, and the text/JSON export
// shapes the CLI and benches emit. The registry is process-global, so every
// test namespaces its metric names and asserts on those only.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace sentinel::util {
namespace {

TEST(Metrics, CounterFindOrCreateReturnsStableHandle) {
  Counter& a = metrics().counter("test.metrics.stable");
  Counter& b = metrics().counter("test.metrics.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.metrics.stable");
}

TEST(Metrics, CounterSumsAcrossConcurrentWriters) {
  Counter& c = metrics().counter("test.metrics.concurrent");
  const std::uint64_t before = c.total();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.total() - before, kThreads * kAddsPerThread);
}

TEST(Metrics, HistogramBucketsSamplesByUpperBound) {
  Histogram& h = metrics().histogram("test.metrics.hist", {10, 100, 1000});
  h.record(0);     // <= 10
  h.record(10);    // <= 10 (bounds are inclusive upper bounds)
  h.record(11);    // <= 100
  h.record(1000);  // <= 1000
  h.record(5000);  // overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<std::uint64_t>{10, 100, 1000}));
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 1000 + 5000);
}

TEST(Metrics, HistogramConcurrentRecordsLoseNothing) {
  Histogram& h = metrics().histogram("test.metrics.hist_mt", {1, 2, 4, 8});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i % 10);
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
}

TEST(Metrics, HistogramRegistrationValidates) {
  EXPECT_THROW(metrics().histogram("test.metrics.bad_empty", {}), std::invalid_argument);
  EXPECT_THROW(metrics().histogram("test.metrics.bad_order", {10, 5}), std::invalid_argument);
  metrics().histogram("test.metrics.fixed", {1, 2});
  // Same name, different bounds: a programming error, not a silent re-bucket.
  EXPECT_THROW(metrics().histogram("test.metrics.fixed", {1, 3}), std::invalid_argument);
  // Same bounds re-resolve fine.
  EXPECT_NO_THROW(metrics().histogram("test.metrics.fixed", {1, 2}));
}

TEST(Metrics, ExponentialBoundsAreGeometric) {
  const auto b = Histogram::exponential_bounds(250, 2.0, 5);
  EXPECT_EQ(b, (std::vector<std::uint64_t>{250, 500, 1000, 2000, 4000}));
}

TEST(Metrics, SnapshotMergeAddsCountersAndBuckets) {
  MetricsSnapshot a;
  a.add_counter("x", 3);
  a.add_counter("only_a", 1);
  MetricsSnapshot b;
  b.add_counter("x", 4);
  b.add_counter("only_b", 2);
  Histogram::Snapshot hs;
  hs.bounds = {10};
  hs.counts = {1, 0};
  hs.count = 1;
  hs.sum = 5;
  a.histograms["h"] = hs;
  b.histograms["h"] = hs;
  a.merge(b);
  EXPECT_EQ(a.counters.at("x"), 7u);
  EXPECT_EQ(a.counters.at("only_a"), 1u);
  EXPECT_EQ(a.counters.at("only_b"), 2u);
  EXPECT_EQ(a.histograms.at("h").count, 2u);
  EXPECT_EQ(a.histograms.at("h").sum, 10u);
  EXPECT_EQ(a.histograms.at("h").counts[0], 2u);
}

TEST(Metrics, AddCounterAccumulates) {
  MetricsSnapshot s;
  s.add_counter("pipeline.windows", 10);
  s.add_counter("pipeline.windows", 5);
  EXPECT_EQ(s.counters.at("pipeline.windows"), 15u);
}

TEST(Metrics, TextExportOneMetricPerLine) {
  MetricsSnapshot s;
  s.add_counter("b.second", 2);
  s.add_counter("a.first", 1);
  const std::string text = s.to_text();
  EXPECT_NE(text.find("a.first 1"), std::string::npos) << text;
  EXPECT_NE(text.find("b.second 2"), std::string::npos) << text;
  // map keys: deterministic lexicographic order.
  EXPECT_LT(text.find("a.first"), text.find("b.second"));
}

TEST(Metrics, JsonExportIsWellFormedAndComplete) {
  MetricsSnapshot s;
  s.add_counter("c1", 42);
  Histogram::Snapshot hs;
  hs.bounds = {10, 20};
  hs.counts = {1, 2, 3};
  hs.count = 6;
  hs.sum = 99;
  s.histograms["h1"] = hs;
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c1\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"h1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":99"), std::string::npos) << json;
  // Balanced braces: a cheap well-formedness check without a JSON parser.
  std::size_t open = 0, close = 0;
  for (const char ch : json) {
    if (ch == '{') ++open;
    if (ch == '}') ++close;
  }
  EXPECT_EQ(open, close);
}

TEST(Metrics, RegistrySnapshotSeesRegisteredMetrics) {
  Counter& c = metrics().counter("test.metrics.snap_counter");
  c.add(7);
  Histogram& h = metrics().histogram("test.metrics.snap_hist", {100});
  h.record(50);
  const auto snap = metrics().snapshot();
  EXPECT_GE(snap.counters.at("test.metrics.snap_counter"), 7u);
  EXPECT_GE(snap.histograms.at("test.metrics.snap_hist").count, 1u);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandles) {
  Counter& c = metrics().counter("test.metrics.reset_me");
  c.add(5);
  EXPECT_GE(c.total(), 5u);
  metrics().reset();
  EXPECT_EQ(c.total(), 0u);
  c.inc();  // handle still valid after reset
  EXPECT_EQ(c.total(), 1u);
}

TEST(Metrics, ScopedTimerNullHistogramIsInert) {
  // The stage-timers-off path hands a null histogram to the timer; nothing
  // may be recorded anywhere (and no clock read happens -- not observable
  // here, but the ctor/dtor must at least be safe).
  { ScopedTimerNs t(nullptr); }
  Histogram& h = metrics().histogram("test.metrics.timer", Histogram::exponential_bounds(250, 2.0, 14));
  const auto before = h.snapshot().count;
  { ScopedTimerNs t(&h); }
  EXPECT_EQ(h.snapshot().count, before + 1);
}

TEST(Metrics, MonotonicClockNeverGoesBackwards) {
  std::uint64_t prev = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace sentinel::util
