// Unit tests: Warrender-style HMM baseline and median-deviation baseline.

#include <gtest/gtest.h>

#include "baseline/median_detector.h"
#include "baseline/warrender.h"
#include "util/rng.h"

namespace sentinel::baseline {
namespace {

// Clean behavior: a deterministic cycle 1 -> 2 -> 3 -> 1 ... with occasional
// stutter, the kind of structure the GDI observable-state sequence has.
std::vector<hmm::StateId> clean_sequence(std::size_t length, std::uint64_t seed) {
  Rng rng(seed, "baseline-clean");
  std::vector<hmm::StateId> seq;
  hmm::StateId cur = 1;
  for (std::size_t i = 0; i < length; ++i) {
    seq.push_back(cur);
    if (!rng.bernoulli(0.3)) cur = cur % 3 + 1;  // advance the cycle
  }
  return seq;
}

TEST(Warrender, TrainsAndScoresCleanDataAboveThreshold) {
  WarrenderDetector det(WarrenderConfig{});
  const auto stats = det.train(clean_sequence(600, 1));
  EXPECT_TRUE(det.trained());
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_EQ(stats.threshold, det.threshold());

  // Fresh clean data mostly scores above eta.
  const auto test = clean_sequence(300, 2);
  const auto flags = det.detect(test);
  std::size_t flagged = 0;
  for (const bool f : flags) flagged += f;
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(flags.size()), 0.10);
}

TEST(Warrender, FlagsStructurallyAnomalousSequence) {
  WarrenderDetector det(WarrenderConfig{});
  det.train(clean_sequence(600, 1));

  // Anomaly: the cycle is replaced by an unseen symbol plateau.
  std::vector<hmm::StateId> anomalous(200, 77);
  const auto flags = det.detect(anomalous);
  std::size_t flagged = 0;
  for (const bool f : flags) flagged += f;
  EXPECT_GT(static_cast<double>(flagged) / static_cast<double>(flags.size()), 0.8);
}

TEST(Warrender, AnomalousScoresBelowCleanScores) {
  WarrenderDetector det(WarrenderConfig{});
  det.train(clean_sequence(600, 1));
  const auto clean = clean_sequence(12, 3);
  const std::vector<hmm::StateId> weird{3, 3, 1, 1, 2, 1, 3, 2, 2, 1, 1, 3};
  EXPECT_GT(det.score(clean), det.score(weird) - 5.0);  // sanity: both finite
  const std::vector<hmm::StateId> unseen(12, 99);
  EXPECT_LT(det.score(unseen), det.score(clean));
}

TEST(Warrender, ErrorsBeforeTraining) {
  WarrenderDetector det(WarrenderConfig{});
  EXPECT_THROW(det.score({1, 2, 3}), std::logic_error);
  EXPECT_THROW(det.detect({1, 2, 3}), std::logic_error);
  EXPECT_THROW(det.train({1, 2}), std::invalid_argument);  // shorter than window
}

TEST(MedianDetectorTest, FlagsOutlierSensor) {
  MedianDetector det(MedianDetectorConfig{});
  ObservationSet w;
  for (SensorId s = 0; s < 6; ++s) {
    w.per_sensor[s] = {20.0 + 0.1 * s, 70.0};
    w.raw.push_back(w.per_sensor[s]);
  }
  w.per_sensor[6] = {20.0, 5.0};  // humidity outlier
  w.raw.push_back(w.per_sensor[6]);

  const auto flags = det.process(w);
  EXPECT_TRUE(flags.at(6));
  for (SensorId s = 0; s < 6; ++s) EXPECT_FALSE(flags.at(s)) << s;
  EXPECT_EQ(det.flags(6), 1u);
  EXPECT_EQ(det.windows(6), 1u);
}

TEST(MedianDetectorTest, SmallWindowsFlagNobody) {
  MedianDetector det(MedianDetectorConfig{});
  ObservationSet w;
  w.per_sensor = {{0, {1.0, 1.0}}, {1, {100.0, 100.0}}};
  const auto flags = det.process(w);
  EXPECT_FALSE(flags.at(0));
  EXPECT_FALSE(flags.at(1));
}

TEST(MedianDetectorTest, QuietEnvironmentNoFalseFlags) {
  MedianDetector det(MedianDetectorConfig{});
  Rng rng(4, "median-quiet");
  std::size_t false_flags = 0;
  for (int t = 0; t < 200; ++t) {
    ObservationSet w;
    for (SensorId s = 0; s < 8; ++s) {
      w.per_sensor[s] = {20.0 + rng.gaussian(0, 0.3), 70.0 + rng.gaussian(0, 0.3)};
    }
    for (const auto& [id, flagged] : det.process(w)) false_flags += flagged;
  }
  EXPECT_LT(false_flags, 10u);
}

TEST(MedianDetectorTest, Validation) {
  MedianDetectorConfig bad;
  bad.k = 0.0;
  EXPECT_THROW(MedianDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace sentinel::baseline
