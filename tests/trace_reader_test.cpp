// Zero-copy streaming CSV reader tests: the batch reader must accept exactly
// the record set of the getline-based read_trace (they share one per-line
// grammar), honor batch-size limits, and survive the awkward file shapes --
// no trailing newline, empty file, comments and junk interleaved.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"

namespace sentinel {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out) << path;
  out << content;
}

std::vector<SensorRecord> drain(TraceReader& reader, std::size_t batch_size) {
  std::vector<SensorRecord> all;
  std::vector<SensorRecord> batch;
  while (reader.read_batch(batch, batch_size) > 0) {
    EXPECT_LE(batch.size(), batch_size);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  // End of stream is sticky.
  EXPECT_EQ(reader.read_batch(batch, batch_size), 0u);
  return all;
}

TEST(CsvTraceReader, MatchesGetlineReaderOnMixedContent) {
  const std::string content =
      "# header comment\n"
      "0,0,21.5,70\n"
      "garbage line\n"
      "1,300,21.7,69.5\n"
      "\n"
      "2,600,21.0\n"        // wrong width
      "1e300,660,21.0,70\n"  // sensor id beyond uint32
      "3,900,20.0,71\n";
  const auto path = temp_path("reader_mixed.csv");
  write_file(path, content);

  std::stringstream ss(content);
  const auto expected = read_trace(ss);

  CsvTraceReader reader(path);
  const auto records = drain(reader, 2);
  EXPECT_EQ(records, expected.records);
  EXPECT_EQ(reader.malformed_lines(), expected.malformed_lines);
  EXPECT_EQ(reader.comment_lines(), expected.comment_lines);
  EXPECT_EQ(reader.dims(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTraceReader, NoTrailingNewline) {
  const auto path = temp_path("reader_notrail.csv");
  write_file(path, "0,0,1,2\n1,60,3,4");  // final line unterminated
  CsvTraceReader reader(path);
  const auto records = drain(reader, 100);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].sensor, 1u);
  EXPECT_DOUBLE_EQ(records[1].attrs[1], 4.0);
  std::remove(path.c_str());
}

TEST(CsvTraceReader, EmptyFileYieldsNothing) {
  const auto path = temp_path("reader_empty.csv");
  write_file(path, "");
  CsvTraceReader reader(path);
  std::vector<SensorRecord> batch;
  EXPECT_EQ(reader.read_batch(batch, 16), 0u);
  EXPECT_EQ(reader.malformed_lines(), 0u);
  std::remove(path.c_str());
}

TEST(CsvTraceReader, MissingFileThrows) {
  EXPECT_THROW(CsvTraceReader("/nonexistent/trace.csv"), std::runtime_error);
  EXPECT_THROW(open_trace_reader("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(CsvTraceReader, ExpectedDimsEnforced) {
  const auto path = temp_path("reader_dims.csv");
  write_file(path, "0,0,1,2,3\n0,1,1,2\n");
  CsvTraceReader reader(path, 3);
  const auto records = drain(reader, 16);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(reader.malformed_lines(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTraceReader, BatchSizeOneStreamsEveryRecord) {
  const auto path = temp_path("reader_batch1.csv");
  std::ostringstream content;
  for (int i = 0; i < 100; ++i) content << i % 8 << ',' << i * 60 << ",1,2\n";
  write_file(path, content.str());
  CsvTraceReader reader(path);
  const auto records = drain(reader, 1);
  ASSERT_EQ(records.size(), 100u);
  EXPECT_DOUBLE_EQ(records[99].time, 99.0 * 60.0);
  std::remove(path.c_str());
}

TEST(CsvTraceReader, UsesMmapWhenAvailable) {
  const auto path = temp_path("reader_mmap.csv");
  write_file(path, "0,0,1,2\n");
  CsvTraceReader reader(path);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(reader.mapped());
#endif
  std::vector<SensorRecord> batch;
  EXPECT_EQ(reader.read_batch(batch, 16), 1u);
  std::remove(path.c_str());
}

TEST(CsvTraceReader, MmapAndStreamPathsAgreeOnHostileCorpus) {
  // The mmap fast path and the buffered-istream fallback share one per-line
  // grammar; this pins the contract where it matters most -- not just the
  // accepted record set but the *per-cause* malformed accounting, over a
  // corpus built to hit every LineParse variant (plus shapes that historically
  // diverge between the two: no trailing newline, CRLF-ish junk, long lines).
  std::string content =
      "# leading comment\n"
      "0,0,21.5,70\n"
      "\n"
      "plain garbage\n"                      // bad field count
      "1,60\n"                               // bad field count (short)
      "2,120,21.0\n"                         // dims mismatch (width 1 vs 2)
      "3,180,21.0,70.0,99.0\n"               // dims mismatch (width 3 vs 2)
      "1e300,240,21.0,70\n"                  // bad sensor id (huge)
      "-1,300,21.0,70\n"                     // bad sensor id (negative)
      "2.5,360,21.0,70\n"                    // bad sensor id (fractional)
      "4,abc,21.0,70\n"                      // bad number (time)
      "5,420,xyz,70\n"                       // bad number (attr)
      "6,480,21.0,70\r\n"                    // stray carriage return
      "# mid comment\n"
      "7,540,21." +
      std::string(8192, '0') +               // oversized line, still a record
      ",70\n"
      "8,600,21.5,70";                       // final line unterminated
  const auto path = temp_path("reader_parity.csv");
  write_file(path, content);

  CsvTraceReader mmap_reader(path);
  CsvTraceReader stream_reader(path, 0, CsvTraceReader::Mode::kForceStream);
#if defined(__unix__) || defined(__APPLE__)
  ASSERT_TRUE(mmap_reader.mapped());
#endif
  ASSERT_FALSE(stream_reader.mapped());

  const auto via_mmap = drain(mmap_reader, 3);
  const auto via_stream = drain(stream_reader, 3);
  EXPECT_EQ(via_mmap, via_stream);
  EXPECT_EQ(mmap_reader.malformed(), stream_reader.malformed());
  EXPECT_EQ(mmap_reader.comment_lines(), stream_reader.comment_lines());
  EXPECT_EQ(mmap_reader.dims(), stream_reader.dims());
  EXPECT_EQ(mmap_reader.status(), stream_reader.status());

  // The corpus exercises every cause, with the exact counts pinned so a
  // reader that misattributes (right total, wrong bucket) still fails.
  const MalformedCounts& m = mmap_reader.malformed();
  EXPECT_EQ(m.bad_field_count, 2u);
  EXPECT_EQ(m.dims_mismatch, 2u);
  EXPECT_EQ(m.bad_sensor_id, 3u);
  EXPECT_EQ(m.bad_number, 2u);
  EXPECT_EQ(mmap_reader.comment_lines(), 2u);
  std::remove(path.c_str());
}

TEST(OpenTraceReader, DispatchesCsvByContent) {
  // A .bin extension with CSV content must still be read as CSV: detection
  // is by magic bytes, never by file name.
  const auto path = temp_path("reader_csv.bin");
  write_file(path, "0,0,1,2\n1,60,3,4\n");
  const auto reader = open_trace_reader(path);
  const auto records = drain(*reader, 16);
  EXPECT_EQ(records.size(), 2u);
  std::remove(path.c_str());
}

TEST(FleetIngest, StreamingMatchesBulk) {
  // ingest() pumping a reader batch-by-batch must produce the same fleet
  // diagnosis as feeding the whole trace through add_records in one shot.
  const auto path = temp_path("reader_fleet.csv");
  std::ostringstream content;
  for (int i = 0; i < 2000; ++i) {
    const bool high = (i / 240) % 2 == 1;  // alternate phases every 2 hours
    content << i % 4 << ',' << i * 30 << ',' << (high ? 30.0 : 10.0) + 0.1 * (i % 3) << ','
            << (high ? 40.0 : 60.0) - 0.1 * (i % 5) << '\n';
  }
  write_file(path, content.str());

  core::PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};

  core::FleetMonitor bulk(6.0);
  bulk.add_region("r", cfg);
  const auto whole = read_trace_file(path);
  bulk.add_records("r", whole.records);
  bulk.finish();

  core::FleetMonitor streaming(6.0);
  streaming.add_region("r", cfg);
  CsvTraceReader reader(path);
  const auto summary = streaming.ingest("r", reader, 64);
  streaming.finish();

  EXPECT_EQ(summary.records, whole.records.size());
  EXPECT_TRUE(summary.status.is_ok()) << summary.status.to_string();
  EXPECT_EQ(core::to_string(streaming.diagnose()), core::to_string(bulk.diagnose()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sentinel
