// Tests: util::ThreadPool -- task execution, future results, exception
// propagation, and drain-on-destruction.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace sentinel::util {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, PostRunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, RunsConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_THROW(pool.post(nullptr), std::invalid_argument);
}

// --- Single-worker inline mode ----------------------------------------------

TEST(ThreadPoolInline, SizeOneSpawnsNoThreadAndRunsOnThePoster) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);  // logical size, even without a real worker
  const auto poster = std::this_thread::get_id();
  std::thread::id ran_on;
  bool done = false;
  pool.post([&] {
    ran_on = std::this_thread::get_id();
    done = true;
  });
  // post() returned => the task already ran, on this very thread.
  EXPECT_TRUE(done);
  EXPECT_EQ(ran_on, poster);
}

TEST(ThreadPoolInline, SubmitFuturesAndOrderMatchQueueSemantics) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit([i, &order] {
      order.push_back(i);
      return i * i;
    }));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  std::vector<int> want(16);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);  // post order, exactly like a one-worker queue
}

TEST(ThreadPoolInline, SubmitPropagatesExceptionsAndPoolSurvives) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolInline, NestedPostRunsImmediately) {
  // Documented inline-mode semantics: a task posted from inside a task runs
  // before the outer post() returns (the recursive mutex admits it).
  ThreadPool pool(1);
  std::vector<int> order;
  pool.post([&] {
    order.push_back(1);
    pool.post([&] { order.push_back(2); });
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolInline, ConcurrentPostersStaySerialized) {
  ThreadPool pool(1);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::atomic<int> ran{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        pool.post([&] {
          const int now = in_flight.fetch_add(1) + 1;
          int prev = max_in_flight.load();
          while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {
          }
          in_flight.fetch_sub(1);
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& p : posters) p.join();
  EXPECT_EQ(ran.load(), 200);
  EXPECT_EQ(max_in_flight.load(), 1);  // never two tasks at once
}

TEST(ThreadPool, SharedPoolIsUsable) {
  auto& pool = ThreadPool::shared();
  EXPECT_GE(pool.size(), 1u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(pool.submit([i] { return i; }));
  int sum = 0;
  for (auto& f : futs) sum += f.get();
  EXPECT_EQ(sum, 28);
}

TEST(ThreadPoolQuota, CpuMaxUnlimited) {
  EXPECT_EQ(quota_from_cpu_max("max 100000"), 0u);
  EXPECT_EQ(quota_from_cpu_max("max 100000\n"), 0u);
}

TEST(ThreadPoolQuota, CpuMaxQuotaDivides) {
  EXPECT_EQ(quota_from_cpu_max("200000 100000"), 2u);
  EXPECT_EQ(quota_from_cpu_max("200000 100000\n"), 2u);
  EXPECT_EQ(quota_from_cpu_max("400000 100000"), 4u);
}

TEST(ThreadPoolQuota, CpuMaxFractionalQuotaFloorsWithMinimumOne) {
  EXPECT_EQ(quota_from_cpu_max("50000 100000"), 1u);   // half a CPU -> 1
  EXPECT_EQ(quota_from_cpu_max("250000 100000"), 2u);  // 2.5 CPUs -> 2
}

TEST(ThreadPoolQuota, CpuMaxGarbageIsUnlimited) {
  EXPECT_EQ(quota_from_cpu_max(""), 0u);
  EXPECT_EQ(quota_from_cpu_max("banana"), 0u);
  EXPECT_EQ(quota_from_cpu_max("100000 0"), 0u);       // zero period
  EXPECT_EQ(quota_from_cpu_max("-1 100000"), 0u);      // negative quota
}

TEST(ThreadPoolQuota, CpuMaxMissingPeriodUsesKernelDefault) {
  EXPECT_EQ(quota_from_cpu_max("100000"), 1u);   // period defaults to 100000
  EXPECT_EQ(quota_from_cpu_max("300000"), 3u);
}

TEST(ThreadPoolQuota, CfsValues) {
  EXPECT_EQ(quota_from_cfs(-1, 100000), 0u);       // -1 means unlimited
  EXPECT_EQ(quota_from_cfs(0, 100000), 0u);        // degenerate quota
  EXPECT_EQ(quota_from_cfs(100000, 0), 0u);        // degenerate period
  EXPECT_EQ(quota_from_cfs(200000, 100000), 2u);
  EXPECT_EQ(quota_from_cfs(250000, 100000), 2u);   // 2.5 CPUs -> 2
  EXPECT_EQ(quota_from_cfs(50000, 100000), 1u);    // half a CPU -> 1
}

TEST(ThreadPoolQuota, DefaultConcurrencyAtLeastOne) {
  EXPECT_GE(default_concurrency(), 1u);
}

}  // namespace
}  // namespace sentinel::util
