// Property-based tests (parameterized sweeps): invariants that must hold
// across whole parameter grids, not just hand-picked examples.

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/model_states.h"
#include "hmm/hmm.h"
#include "hmm/online_hmm.h"
#include "trace/windower.h"
#include "util/rng.h"
#include "util/vecn.h"

namespace sentinel {
namespace {

// --- Online HMM: stochasticity preserved for any (beta, gamma, seed). --------

class OnlineHmmStochasticity
    : public ::testing::TestWithParam<std::tuple<double, double, std::uint64_t>> {};

TEST_P(OnlineHmmStochasticity, RowsAlwaysSumToOne) {
  const auto [beta, gamma, seed] = GetParam();
  hmm::OnlineHmmConfig cfg;
  cfg.beta = beta;
  cfg.gamma = gamma;
  hmm::OnlineHmm m(cfg);

  Rng rng(seed, "prop-online");
  for (int i = 0; i < 500; ++i) {
    m.observe(static_cast<hmm::StateId>(rng.uniform_int(0, 9)),
              static_cast<hmm::StateId>(rng.uniform_int(0, 11)));
    if (i % 50 == 0) {
      ASSERT_TRUE(m.transition_matrix().is_row_stochastic(1e-9)) << "step " << i;
      ASSERT_TRUE(m.emission_matrix().is_row_stochastic(1e-9)) << "step " << i;
      ASSERT_TRUE(m.transition_matrix_avg().is_row_stochastic(1e-9)) << "step " << i;
      ASSERT_TRUE(m.emission_matrix_avg().is_row_stochastic(1e-9)) << "step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LearningFactorGrid, OnlineHmmStochasticity,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.9, 0.99),
                       ::testing::Values(0.1, 0.5, 0.9, 0.99),
                       ::testing::Values(1ull, 17ull, 99ull)));

// --- Baum-Welch: likelihood never decreases, for any model size / seed. -------

class BaumWelchMonotone
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(BaumWelchMonotone, LikelihoodNonDecreasing) {
  const auto [states, symbols, seed] = GetParam();
  Rng rng(seed, "prop-bw");
  const auto truth = hmm::Hmm::random(states, symbols, rng);
  const auto sample = truth.sample(200, rng);

  auto learner = hmm::Hmm::random(states, symbols, rng);
  hmm::BaumWelchOptions opts;
  opts.max_iterations = 15;
  const auto result = learner.baum_welch({sample.symbols}, opts);
  for (std::size_t i = 1; i < result.log_likelihood_per_iter.size(); ++i) {
    ASSERT_GE(result.log_likelihood_per_iter[i],
              result.log_likelihood_per_iter[i - 1] - 1e-6)
        << "iter " << i;
  }
  EXPECT_TRUE(learner.transition().is_row_stochastic(1e-6));
  EXPECT_TRUE(learner.emission().is_row_stochastic(1e-6));
}

INSTANTIATE_TEST_SUITE_P(ModelGrid, BaumWelchMonotone,
                         ::testing::Combine(::testing::Values(2u, 3u, 5u),
                                            ::testing::Values(2u, 4u, 8u),
                                            ::testing::Values(5ull, 23ull)));

// --- Forward/backward consistency across random models. -----------------------

class ForwardBackward : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForwardBackward, GammaNormalization) {
  Rng rng(GetParam(), "prop-fb");
  const auto model = hmm::Hmm::random(4, 5, rng);
  const auto sample = model.sample(64, rng);
  const auto fwd = model.forward(sample.symbols);
  const auto beta = model.backward(sample.symbols, fwd.scales);
  for (std::size_t t = 0; t < sample.symbols.size(); ++t) {
    double s = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      s += fwd.scaled_alpha(t, i) * beta(t, i) / fwd.scales[t];
    }
    ASSERT_NEAR(s, 1.0, 1e-8) << "t=" << t;
  }
  // Viterbi path probability can never exceed the total likelihood.
  const auto v = model.viterbi(sample.symbols);
  EXPECT_LE(v.log_probability, fwd.log_likelihood + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardBackward,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull));

// --- Clustering: state count bounded, pairwise distance >= merge threshold. ---

class ClusteringInvariants
    : public ::testing::TestWithParam<std::tuple<double, double, std::uint64_t>> {};

TEST_P(ClusteringInvariants, BoundedAndSeparated) {
  const auto [alpha, merge_threshold, seed] = GetParam();
  core::ModelStateConfig cfg;
  cfg.alpha = alpha;
  cfg.merge_threshold = merge_threshold;
  cfg.spawn_threshold = merge_threshold * 3.0;
  cfg.max_states = 12;
  core::ModelStateSet states(cfg, {{0.0, 0.0}});

  Rng rng(seed, "prop-cluster");
  for (int round = 0; round < 100; ++round) {
    std::vector<AttrVec> points;
    for (int i = 0; i < 8; ++i) {
      points.push_back({rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
    }
    states.maybe_spawn(points);
    states.update(points);

    ASSERT_LE(states.size(), cfg.max_states) << "round " << round;
    // After update+merge, no two active centroids may sit within the merge
    // threshold.
    const auto& ss = states.states();
    for (std::size_t i = 0; i < ss.size(); ++i) {
      for (std::size_t j = i + 1; j < ss.size(); ++j) {
        ASSERT_GT(vecn::dist(ss[i].centroid, ss[j].centroid), merge_threshold)
            << "round " << round;
      }
    }
    // Every merged-away id still resolves to an active state.
    for (core::StateId id = 0; id < 200; ++id) {
      if (states.centroid(id) && !states.is_active(id)) {
        ASSERT_TRUE(states.is_active(states.resolve(id))) << "id " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterGrid, ClusteringInvariants,
                         ::testing::Combine(::testing::Values(0.05, 0.1, 0.5),
                                            ::testing::Values(2.0, 5.0, 10.0),
                                            ::testing::Values(3ull, 31ull)));

// --- Checkpoint round trip under random streams. ------------------------------

class CheckpointRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointRoundTrip, OnlineHmmExactUnderRandomStreams) {
  Rng rng(GetParam(), "prop-ckpt");
  hmm::OnlineHmmConfig cfg;
  cfg.beta = rng.uniform(0.05, 0.95);
  cfg.gamma = rng.uniform(0.05, 0.95);
  hmm::OnlineHmm m(cfg);
  const auto steps = static_cast<int>(rng.uniform_int(1, 400));
  for (int i = 0; i < steps; ++i) {
    const auto h = static_cast<hmm::StateId>(rng.uniform_int(0, 8));
    const auto s = rng.bernoulli(0.1) ? hmm::kBottomSymbol
                                      : static_cast<hmm::StateId>(rng.uniform_int(0, 10));
    m.observe(h, s);
  }
  std::stringstream ss;
  m.save(ss);
  const auto loaded = hmm::OnlineHmm::load(cfg, ss);
  ASSERT_EQ(loaded.steps(), m.steps());
  ASSERT_EQ(loaded.hidden_states(), m.hidden_states());
  ASSERT_EQ(loaded.symbols(), m.symbols());
  EXPECT_DOUBLE_EQ(loaded.transition_matrix().max_abs_diff(m.transition_matrix()), 0.0);
  EXPECT_DOUBLE_EQ(loaded.emission_matrix().max_abs_diff(m.emission_matrix()), 0.0);
  EXPECT_DOUBLE_EQ(
      loaded.transition_matrix_avg().max_abs_diff(m.transition_matrix_avg()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointRoundTrip,
                         ::testing::Values(41ull, 42ull, 43ull, 44ull, 45ull, 46ull));

// --- Windower: conservation across window sizes. -------------------------------

class WindowerConservation : public ::testing::TestWithParam<double> {};

TEST_P(WindowerConservation, EveryRecordLandsInExactlyOneWindow) {
  const double w = GetParam();
  Rng rng(9, "prop-window");
  std::vector<SensorRecord> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back({static_cast<SensorId>(rng.uniform_int(0, 4)),
                       rng.uniform(0.0, 5000.0), {rng.uniform(0.0, 1.0)}});
  }
  const auto windows = window_trace(records, w);
  std::size_t total = 0;
  for (const auto& win : windows) {
    total += win.raw.size();
    // Window boundaries honor eq. (1)'s half-open convention.
    EXPECT_NEAR(win.window_end - win.window_start, w, 1e-9);
    for (const auto& [id, rep] : win.per_sensor) {
      (void)id;
      EXPECT_EQ(rep.size(), 1u);
    }
  }
  EXPECT_EQ(total, records.size());
  // Window indices strictly increase.
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].window_index, windows[i - 1].window_index + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, WindowerConservation,
                         ::testing::Values(10.0, 60.0, 300.0, 3600.0));

// --- Markov chain: MLE matrix always stochastic, occupancy sums to one. -------

class MarkovChainInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarkovChainInvariants, StochasticUnderRandomSequences) {
  Rng rng(GetParam(), "prop-chain");
  hmm::MarkovChain mc;
  std::vector<hmm::StateId> seq;
  for (int i = 0; i < 300; ++i) {
    seq.push_back(static_cast<hmm::StateId>(rng.uniform_int(0, 6)));
  }
  mc.add_sequence(seq);
  EXPECT_TRUE(mc.transition_matrix().is_row_stochastic(1e-9));
  double occ = 0.0;
  for (const double o : mc.occupancy()) occ += o;
  EXPECT_NEAR(occ, 1.0, 1e-9);
  double st = 0.0;
  for (const double s : mc.stationary()) st += s;
  EXPECT_NEAR(st, 1.0, 1e-6);
  // Pruning never increases the state count and keeps stochasticity.
  const auto pruned = mc.pruned(0.05);
  EXPECT_LE(pruned.num_states(), mc.num_states());
  EXPECT_TRUE(pruned.transition_matrix().is_row_stochastic(1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkovChainInvariants,
                         ::testing::Values(11ull, 12ull, 13ull, 14ull));

}  // namespace
}  // namespace sentinel
