// Unit tests: the paper's online HMM estimator (section 3.2) -- EMA update
// semantics, stochasticity preservation, dynamic state growth, the bottom
// symbol, and convergence to the generating structure.

#include <gtest/gtest.h>

#include "hmm/online_hmm.h"

namespace sentinel::hmm {
namespace {

TEST(OnlineHmmTest, ValidatesLearningFactors) {
  OnlineHmmConfig bad;
  bad.beta = 0.0;
  EXPECT_THROW(OnlineHmm{bad}, std::invalid_argument);
  bad.beta = 0.5;
  bad.gamma = 1.0;
  EXPECT_THROW(OnlineHmm{bad}, std::invalid_argument);
}

TEST(OnlineHmmTest, FirstObservationInitializesIdentityRow) {
  OnlineHmm m;
  m.observe(3, 7);
  EXPECT_EQ(m.num_hidden(), 1u);
  EXPECT_EQ(m.num_symbols(), 1u);
  EXPECT_DOUBLE_EQ(m.transition(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.emission(3, 7), 1.0);
}

TEST(OnlineHmmTest, TransitionUpdateOnlyOnStateChange) {
  OnlineHmmConfig cfg;
  cfg.beta = 0.5;
  OnlineHmm m(cfg);
  m.observe(1, 1);
  m.observe(1, 1);  // same state: A untouched
  EXPECT_DOUBLE_EQ(m.transition(1, 1), 1.0);
  m.observe(2, 2);  // 1 -> 2: row 1 moves toward 2 by beta
  EXPECT_DOUBLE_EQ(m.transition(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.transition(1, 2), 0.5);
}

TEST(OnlineHmmTest, EmissionEmaFollowsPaperFormula) {
  OnlineHmmConfig cfg;
  cfg.gamma = 0.9;
  OnlineHmm m(cfg);
  m.observe(1, 5);  // init: row = delta(5), then EMA keeps it at delta(5)
  EXPECT_DOUBLE_EQ(m.emission(1, 5), 1.0);
  m.observe(1, 6);  // b(1,6) = 0.1*0 + 0.9 = 0.9; b(1,5) = 0.1
  EXPECT_NEAR(m.emission(1, 6), 0.9, 1e-12);
  EXPECT_NEAR(m.emission(1, 5), 0.1, 1e-12);
}

TEST(OnlineHmmTest, MatricesStayRowStochastic) {
  OnlineHmm m;
  // Pseudo-random but deterministic walk over 6 hidden states, 7 symbols.
  std::uint64_t x = 12345;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto h = static_cast<StateId>((x >> 33) % 6);
    const auto s = static_cast<StateId>((x >> 17) % 7);
    m.observe(h, s);
  }
  EXPECT_TRUE(m.transition_matrix().is_row_stochastic(1e-9));
  EXPECT_TRUE(m.emission_matrix().is_row_stochastic(1e-9));
  EXPECT_EQ(m.num_hidden(), 6u);
  EXPECT_EQ(m.num_symbols(), 7u);
  EXPECT_EQ(m.steps(), 2000u);
}

TEST(OnlineHmmTest, GrowingStateSetKeepsStochasticity) {
  OnlineHmm m;
  for (StateId h = 0; h < 20; ++h) {
    m.observe(h, h);
    m.observe(h, h + 100);
  }
  EXPECT_EQ(m.num_hidden(), 20u);
  EXPECT_EQ(m.num_symbols(), 40u);
  EXPECT_TRUE(m.transition_matrix().is_row_stochastic(1e-9));
  EXPECT_TRUE(m.emission_matrix().is_row_stochastic(1e-9));
}

TEST(OnlineHmmTest, LearnsDeterministicEmissionStructure) {
  // Hidden alternates 1,2; symbol = hidden + 10, deterministically. After
  // enough steps B must be near-identity over the pairing.
  OnlineHmm m;
  for (int i = 0; i < 200; ++i) {
    const StateId h = (i % 2) ? 2 : 1;
    m.observe(h, h + 10);
  }
  EXPECT_GT(m.emission(1, 11), 0.99);
  EXPECT_GT(m.emission(2, 12), 0.99);
  EXPECT_LT(m.emission(1, 12), 0.01);
  // Transitions learned the alternation.
  EXPECT_GT(m.transition(1, 2), 0.99);
  EXPECT_GT(m.transition(2, 1), 0.99);
}

TEST(OnlineHmmTest, BottomSymbolTracked) {
  OnlineHmm m;
  m.observe(1, kBottomSymbol);
  m.observe(1, 4);
  EXPECT_TRUE(m.symbol_index(kBottomSymbol).has_value());
  EXPECT_GT(m.emission(1, 4), 0.0);
  EXPECT_GT(m.emission(1, kBottomSymbol), 0.0);
}

TEST(OnlineHmmTest, UnknownLookupsReturnZeroOrNullopt) {
  OnlineHmm m;
  m.observe(1, 1);
  EXPECT_DOUBLE_EQ(m.transition(1, 99), 0.0);
  EXPECT_DOUBLE_EQ(m.emission(99, 1), 0.0);
  EXPECT_FALSE(m.hidden_index(99).has_value());
  EXPECT_FALSE(m.symbol_index(99).has_value());
  EXPECT_EQ(m.last_hidden(), 1u);
}

TEST(OnlineHmmTest, LiteralPreviousRowModeDiffersAtTransitions) {
  OnlineHmmConfig literal;
  literal.update_previous_row = true;
  OnlineHmm a(literal), b;
  // Identical dwell phases: both modes agree.
  for (int i = 0; i < 10; ++i) {
    a.observe(1, 1);
    b.observe(1, 1);
  }
  // At a transition the literal mode updates the previous row.
  a.observe(2, 2);
  b.observe(2, 2);
  EXPECT_GT(a.emission(1, 2), 0.5);  // previous state's row moved
  EXPECT_DOUBLE_EQ(b.emission(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(b.emission(2, 2), 1.0);
}

}  // namespace
}  // namespace sentinel::hmm
