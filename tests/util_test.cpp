// Unit tests: vecn, Matrix, RunningStats/Ema/Histogram/quantile, csv, Rng,
// and the Status/Result error-as-data vocabulary the ingest tiers speak.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <vector>

#include "util/csv.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/vecn.h"

namespace sentinel {
namespace {

// --- vecn ------------------------------------------------------------------

TEST(VecN, DistanceAndNorm) {
  const AttrVec a{3.0, 4.0};
  const AttrVec b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(vecn::dist(a, b), 5.0);
  EXPECT_DOUBLE_EQ(vecn::dist2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(vecn::norm(a), 5.0);
}

TEST(VecN, DimensionMismatchThrows) {
  const AttrVec a{1.0, 2.0};
  const AttrVec b{1.0};
  EXPECT_THROW(vecn::dist(a, b), std::invalid_argument);
  EXPECT_THROW(vecn::add(a, b), std::invalid_argument);
}

TEST(VecN, AddSubScale) {
  const AttrVec a{1.0, 2.0};
  const AttrVec b{3.0, -1.0};
  EXPECT_EQ(vecn::add(a, b), (AttrVec{4.0, 1.0}));
  EXPECT_EQ(vecn::sub(a, b), (AttrVec{-2.0, 3.0}));
  EXPECT_EQ(vecn::scale(a, 2.0), (AttrVec{2.0, 4.0}));
}

TEST(VecN, EmaUpdateMovesTowardTarget) {
  AttrVec a{0.0, 0.0};
  vecn::ema_update(a, AttrVec{10.0, 20.0}, 0.1);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(VecN, MeanOfSet) {
  const std::vector<AttrVec> pts{{0.0, 0.0}, {2.0, 4.0}, {4.0, 8.0}};
  EXPECT_EQ(vecn::mean(pts), (AttrVec{2.0, 4.0}));
  EXPECT_THROW(vecn::mean(std::vector<AttrVec>{}), std::invalid_argument);
}

TEST(VecN, NearestCenter) {
  const std::vector<AttrVec> centers{{0.0, 0.0}, {10.0, 0.0}, {5.0, 5.0}};
  EXPECT_EQ(vecn::nearest(centers, AttrVec{9.0, 1.0}), 1u);
  EXPECT_EQ(vecn::nearest(centers, AttrVec{1.0, 1.0}), 0u);
  EXPECT_EQ(vecn::nearest(centers, AttrVec{5.0, 4.0}), 2u);
}

TEST(VecN, ToStringPaperStyle) {
  EXPECT_EQ(vecn::to_string(AttrVec{24.4, 69.6}), "(24,70)");
  EXPECT_EQ(vecn::to_string(AttrVec{1.25, 2.5}, 2), "(1.25,2.50)");
}

// --- Matrix ------------------------------------------------------------------

TEST(Matrix, IdentityAndAccess) {
  const Matrix m = Matrix::identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_TRUE(m.is_row_stochastic());
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
}

TEST(Matrix, FromRowsValidation) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, GrowPreservesEntries) {
  Matrix m = Matrix::identity(2);
  m.grow(3, 4, 0.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 3), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 2), 0.5);
}

TEST(Matrix, NormalizeRowsHandlesZeroRows) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 2.0;
  m(0, 1) = 6.0;
  m.normalize_rows();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);  // zero row -> uniform
  EXPECT_TRUE(m.is_row_stochastic());
}

TEST(Matrix, RowAndColDots) {
  const Matrix m = Matrix::from_rows({{1.0, 0.0}, {0.5, 0.5}});
  EXPECT_DOUBLE_EQ(m.row_dot(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.row_dot(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.col_dot(0, 1), 0.25);
}

TEST(Matrix, MultiplyAndTranspose) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  const Matrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
  EXPECT_THROW(a.multiply(Matrix(3, 3)), std::invalid_argument);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = Matrix::identity(2);
  Matrix b = Matrix::identity(2);
  b(0, 1) = 0.25;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.25);
  EXPECT_THROW(a.max_abs_diff(Matrix(3, 3)), std::invalid_argument);
}

// --- stats -------------------------------------------------------------------

TEST(RunningStats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Ema, ConvergesToConstant) {
  Ema e(0.2);
  EXPECT_FALSE(e.initialized());
  for (int i = 0; i < 100; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
  EXPECT_THROW(Ema(0.0), std::invalid_argument);
  EXPECT_THROW(Ema(1.0), std::invalid_argument);
}

TEST(Histogram, BinningAndQuantile) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bin_count(3), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.5, 1.0);
  h.add(-5.0);  // clamps to first bin
  EXPECT_EQ(h.bin_count(0), 11u);
}

TEST(Quantile, ExactValues) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{}, 0.5), 0.0);
}

// --- csv ---------------------------------------------------------------------

TEST(Csv, SplitTrimsFields) {
  const auto f = csv::split(" a, b ,c ,, 1.5");
  ASSERT_EQ(f.size(), 5u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[3], "");
  EXPECT_EQ(f[4], "1.5");
}

TEST(Csv, ParseDouble) {
  EXPECT_EQ(csv::parse_double("3.25"), 3.25);
  EXPECT_EQ(csv::parse_double(" -7 "), -7.0);
  EXPECT_EQ(csv::parse_double("+2.5"), 2.5);
  EXPECT_EQ(csv::parse_double("1e10"), 1e10);
  EXPECT_FALSE(csv::parse_double("abc").has_value());
  EXPECT_FALSE(csv::parse_double("1.5x").has_value());
  EXPECT_FALSE(csv::parse_double("").has_value());
  EXPECT_FALSE(csv::parse_double("+").has_value());
  EXPECT_FALSE(csv::parse_double("+-3").has_value());
  EXPECT_FALSE(csv::parse_double("1.0 2.0").has_value());
}

TEST(Csv, SplitIntoYieldsViewsWithoutAllocatingPerField) {
  const std::string line = " a, b ,c ,, 1.5";
  std::vector<std::string_view> fields;
  csv::split_into(line, fields);
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[3], "");
  EXPECT_EQ(fields[4], "1.5");
  // Views alias the input string -- no copies.
  EXPECT_GE(fields[0].data(), line.data());
  EXPECT_LT(fields[4].data(), line.data() + line.size());

  // Reuse clears previous contents and matches split() field-for-field.
  csv::split_into("x,y", fields);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x");
  EXPECT_EQ(fields[1], "y");
}

TEST(Csv, JoinAndFormat) {
  EXPECT_EQ(csv::join({"a", "b", "c"}), "a,b,c");
  EXPECT_EQ(csv::format(1.500000), "1.5");
  EXPECT_EQ(csv::format(2.0), "2.0");
  EXPECT_EQ(csv::format(0.123456789, 3), "0.123");
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeedAndTag) {
  Rng a(42, "x");
  Rng b(42, "x");
  Rng c(42, "y");
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  // Different tags give independent streams (overwhelmingly likely unequal).
  EXPECT_NE(a.uniform(), c.uniform());
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(7, "bern");
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(7, "cat");
  const std::vector<double> w{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[r.categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.05);
}

// --- Status / Result -------------------------------------------------------

TEST(Status, DefaultIsOk) {
  const util::Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), util::StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_EQ(s, util::Status::ok());
}

TEST(Status, CarriesCodeAndMessage) {
  const util::Status s(util::StatusCode::kDataLoss, "trace truncated");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), util::StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "trace truncated");
  EXPECT_EQ(s.to_string(), "data-loss: trace truncated");
  EXPECT_EQ(to_string(s), s.to_string());
}

TEST(Status, EveryCodeHasAName) {
  using util::StatusCode;
  for (const auto c : {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
                       StatusCode::kDataLoss, StatusCode::kResourceExhausted,
                       StatusCode::kFailedPrecondition, StatusCode::kUnavailable,
                       StatusCode::kInternal}) {
    EXPECT_STRNE(util::to_string(c), "unknown");
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  const util::Status a(util::StatusCode::kNotFound, "x");
  EXPECT_EQ(a, util::Status(util::StatusCode::kNotFound, "x"));
  EXPECT_FALSE(a == util::Status(util::StatusCode::kNotFound, "y"));
  EXPECT_FALSE(a == util::Status(util::StatusCode::kInternal, "x"));
}

TEST(Result, HoldsValueOnSuccess) {
  util::Result<int> r(42);
  EXPECT_TRUE(r.is_ok());
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  *r = 43;
  EXPECT_EQ(r.value(), 43);
}

TEST(Result, HoldsStatusOnFailure) {
  const util::Result<int> r(util::Status(util::StatusCode::kNotFound, "no such region"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW(r.value(), std::bad_optional_access);
}

TEST(Result, WorksWithMoveOnlyishPayloads) {
  util::Result<std::vector<double>> r(std::vector<double>{1.0, 2.0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->size(), 2u);
}

}  // namespace
}  // namespace sentinel
