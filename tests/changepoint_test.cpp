// Unit tests: alarm filters -- k-of-n, SPRT, CUSUM (paper section 3.1's
// alarm filtering module).

#include <gtest/gtest.h>

#include "changepoint/cusum.h"
#include "changepoint/kofn.h"
#include "changepoint/sprt.h"
#include "util/rng.h"

namespace sentinel::changepoint {
namespace {

TEST(KofN, RaisesAtKOfN) {
  KofNFilter f(3, 5);
  EXPECT_FALSE(f.update(true));
  EXPECT_FALSE(f.update(true));
  EXPECT_TRUE(f.update(true));  // 3 in last 5
  EXPECT_TRUE(f.active());
}

TEST(KofN, ClearsWhenCountDrops) {
  KofNFilter f(2, 3);
  f.update(true);
  f.update(true);
  EXPECT_TRUE(f.active());
  f.update(false);
  EXPECT_TRUE(f.active());  // window {T,T,F}: count 2
  f.update(false);
  EXPECT_FALSE(f.active());  // window {T,F,F}: count 1
}

TEST(KofN, IsolatedAlarmsSuppressed) {
  KofNFilter f(3, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(f.update(i % 7 == 0));  // sparse raw alarms never reach 3/5
  }
}

TEST(KofN, ResetAndValidation) {
  KofNFilter f(1, 1);
  f.update(true);
  EXPECT_TRUE(f.active());
  f.reset();
  EXPECT_FALSE(f.active());
  EXPECT_EQ(f.count(), 0u);
  EXPECT_THROW(KofNFilter(0, 5), std::invalid_argument);
  EXPECT_THROW(KofNFilter(6, 5), std::invalid_argument);
}

TEST(Sprt, DecidesH1UnderSustainedAlarms) {
  SprtFilter f(SprtConfig{});
  int steps = 0;
  while (!f.active() && steps < 100) {
    f.update(true);
    ++steps;
  }
  EXPECT_TRUE(f.active());
  EXPECT_LT(steps, 10);  // strong evidence accumulates fast
}

TEST(Sprt, DecidesH0UnderQuiet) {
  SprtFilter f(SprtConfig{});
  // Drive to H1 first, then let quiet data clear it.
  for (int i = 0; i < 20; ++i) f.update(true);
  EXPECT_TRUE(f.active());
  int steps = 0;
  while (f.active() && steps < 2000) {
    f.update(false);
    ++steps;
  }
  EXPECT_FALSE(f.active());
}

TEST(Sprt, FalseAlarmRateNearDesign) {
  SprtConfig cfg;
  cfg.p0 = 0.05;
  cfg.p1 = 0.5;
  cfg.alpha = 0.01;
  cfg.beta = 0.01;
  SprtFilter f(cfg);
  Rng rng(3, "sprt-test");
  int active_steps = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    active_steps += f.update(rng.bernoulli(cfg.p0));
  }
  // Under H0 the filter should be active only a small fraction of the time.
  EXPECT_LT(static_cast<double>(active_steps) / n, 0.05);
}

TEST(Sprt, Validation) {
  SprtConfig bad;
  bad.p1 = bad.p0;  // p1 must exceed p0
  EXPECT_THROW(SprtFilter{bad}, std::invalid_argument);
}

TEST(Cusum, DetectsOnsetQuicklyAndClears) {
  CusumFilter f(CusumConfig{});
  Rng rng(5, "cusum-test");
  // Quiet phase: stays clear.
  for (int i = 0; i < 300; ++i) f.update(rng.bernoulli(0.02));
  EXPECT_FALSE(f.active());
  // Fault onset: raw alarms at 60%.
  int latency = 0;
  while (!f.active() && latency < 100) {
    f.update(rng.bernoulli(0.6));
    ++latency;
  }
  EXPECT_TRUE(f.active());
  EXPECT_LT(latency, 15);
  // Recovery: alarm clears under quiet data.
  int clear = 0;
  while (f.active() && clear < 200) {
    f.update(false);
    ++clear;
  }
  EXPECT_FALSE(f.active());
}

TEST(Cusum, StatisticNonNegative) {
  CusumFilter f(CusumConfig{});
  Rng rng(7, "cusum-stat");
  for (int i = 0; i < 1000; ++i) {
    f.update(rng.bernoulli(0.3));
    EXPECT_GE(f.statistic(), 0.0);
  }
}

TEST(Cusum, Validation) {
  CusumConfig bad;
  bad.threshold = 0.0;
  EXPECT_THROW(CusumFilter{bad}, std::invalid_argument);
}

TEST(Factories, ProduceIndependentFilters) {
  auto factory = make_kofn_factory(1, 2);
  auto a = factory();
  auto b = factory();
  a->update(true);
  EXPECT_TRUE(a->active());
  EXPECT_FALSE(b->active());
  EXPECT_EQ(a->name(), "kofn(1/2)");
  EXPECT_EQ(make_sprt_factory(SprtConfig{})()->name(), "sprt");
  EXPECT_EQ(make_cusum_factory(CusumConfig{})()->name(), "cusum");
}

}  // namespace
}  // namespace sentinel::changepoint
