// FleetMonitor snapshot/epoch API and backpressure attribution -- the fleet
// refactors behind the resident service (src/service):
//
//  - report_snapshot() diagnoses the live fleet without finish()-style
//    finalization, and taking snapshots mid-stream must leave the final
//    finish() report byte-identical to a never-snapshotted run, at any
//    thread count and with the screen tier on or off;
//  - finish_region() finalizes one tenant's region while the others keep
//    ingesting, with per-region diagnoses identical to a collective
//    finish();
//  - IngestSummary::backpressure_block_ns attributes producer block time to
//    the ingest call that paid it, consistently with the per-region
//    RegionState totals.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "core/pipeline.h"
#include "sim/simulator.h"
#include "trace/binary_trace.h"
#include "trace/trace_reader.h"

namespace sentinel {
namespace {

/// Two-day, 8-sensor scenario: small enough to run the thread x screen
/// matrix quickly, long enough for several windows and model updates.
std::vector<SensorRecord> scenario_trace() {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  ec.seed = 20260808;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.num_sensors = 8;
  dc.seed = 20260808;
  return sim::make_gdi_deployment(env, dc).run(ec.duration_seconds).trace;
}

core::PipelineConfig scenario_config(screen::ScreenMode mode) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  ec.seed = 20260808;
  const sim::GdiEnvironment env(ec);
  core::PipelineConfig cfg;
  for (double t = 0.0; t < 1.0 * kSecondsPerDay; t += 2.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  cfg.initial_states.resize(6);
  cfg.screen.mode = mode;
  return cfg;
}

std::string final_report(std::size_t threads, screen::ScreenMode mode, bool snapshot_midway,
                         std::uint64_t* epochs_out = nullptr) {
  const auto trace = scenario_trace();
  core::FleetConfig fc;
  fc.threads = threads;
  core::FleetMonitor fleet(fc);
  fleet.add_region("north", scenario_config(mode));
  fleet.add_region("south", scenario_config(mode));

  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    fleet.add_record(i % 3 == 0 ? "south" : "north", trace[i]);
    if (snapshot_midway && (i == half || i == half / 2)) {
      const auto snap = fleet.report_snapshot();
      EXPECT_GT(snap.epoch, 0u);
      EXPECT_FALSE(core::to_string(snap.report).empty());
    }
  }
  if (epochs_out != nullptr) *epochs_out = fleet.snapshot_epoch();
  fleet.finish();
  return core::to_string(fleet.diagnose());
}

TEST(FleetSnapshot, SnapshotsDoNotPerturbTheFinalReport) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto mode : {screen::ScreenMode::kOff, screen::ScreenMode::kScreen}) {
      std::uint64_t epochs = 0;
      const std::string undisturbed = final_report(threads, mode, false);
      const std::string snapshotted = final_report(threads, mode, true, &epochs);
      ASSERT_FALSE(undisturbed.empty());
      EXPECT_EQ(snapshotted, undisturbed)
          << "threads=" << threads << " mode=" << screen::to_string(mode);
      EXPECT_EQ(epochs, 2u);
    }
  }
}

TEST(FleetSnapshot, SnapshotMatchesDiagnoseAndCountsEpochs) {
  const auto trace = scenario_trace();
  core::FleetMonitor fleet(6.0);
  fleet.add_region("r", scenario_config(screen::ScreenMode::kOff));
  for (const auto& rec : trace) fleet.add_record("r", rec);

  EXPECT_EQ(fleet.snapshot_epoch(), 0u);
  const auto first = fleet.report_snapshot();
  EXPECT_EQ(first.epoch, 1u);
  // A snapshot is diagnose() plus the epoch: same rendering, same verdicts.
  EXPECT_EQ(core::to_string(first.report), core::to_string(fleet.diagnose()));

  const auto second = fleet.report_snapshot();
  EXPECT_EQ(second.epoch, 2u);
  EXPECT_EQ(fleet.snapshot_epoch(), 2u);
  // Nothing was ingested between the two epochs, so the reports agree.
  EXPECT_EQ(core::to_string(second.report), core::to_string(first.report));
}

TEST(FleetSnapshot, FinishRegionFinalizesOneTenantAtATime) {
  const auto trace = scenario_trace();
  const auto cfg = scenario_config(screen::ScreenMode::kOff);

  // Baseline: both regions ingest everything, one collective finish().
  core::FleetMonitor collective(6.0);
  collective.add_region("north", cfg);
  collective.add_region("south", cfg);
  for (const auto& rec : trace) {
    collective.add_record("north", rec);
    collective.add_record("south", rec);
  }
  collective.finish();
  const auto want = collective.diagnose();

  // Staggered: north's feed ends (and is finalized) while south is still
  // mid-stream; south keeps ingesting afterwards, then finishes.
  core::FleetMonitor staggered(6.0);
  staggered.add_region("north", cfg);
  staggered.add_region("south", cfg);
  for (const auto& rec : trace) staggered.add_record("north", rec);
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) staggered.add_record("south", trace[i]);
  staggered.finish_region("north");
  for (std::size_t i = half; i < trace.size(); ++i) staggered.add_record("south", trace[i]);
  staggered.finish_region("south");
  const auto got = staggered.diagnose();

  EXPECT_EQ(core::to_string(got), core::to_string(want));
  EXPECT_EQ(staggered.region_health("north").health, core::RegionHealth::kHealthy);
}

TEST(FleetSnapshot, QueueDepthIsZeroForSerialFleets) {
  core::FleetMonitor fleet(6.0);
  fleet.add_region("r", scenario_config(screen::ScreenMode::kOff));
  EXPECT_EQ(fleet.queue_depth("r"), 0u);
  fleet.add_record("r", SensorRecord{1, 10.0, AttrVec{20.0, 50.0}});
  EXPECT_EQ(fleet.queue_depth("r"), 0u);  // records apply inline
  EXPECT_THROW((void)fleet.queue_depth("nope"), std::exception);
}

TEST(FleetSnapshot, BackpressureBlockTimeIsAttributedPerIngest) {
  const auto trace = scenario_trace();
  const std::string path = testing::TempDir() + "backpressure_trace.snt";
  write_trace_binary_file(path, trace);

  core::FleetConfig fc;
  fc.threads = 4;
  fc.max_queue_records = 16;  // absurdly tight: every flush collides
  fc.batch_records = 8;
  core::FleetMonitor fleet(fc);
  fleet.add_region("r", scenario_config(screen::ScreenMode::kOff));

  // Small read batches so the producer hands off (and collides with the
  // 16-record queue bound) many times rather than once per default batch.
  const auto reader = open_trace_reader(path);
  const auto sum = fleet.ingest("r", *reader, /*batch_records=*/64);
  ASSERT_TRUE(sum.status.is_ok());
  ASSERT_EQ(sum.records, trace.size());

  // Capture before finish(): finishing flushes the producer buffer and may
  // legitimately wait (and account) once more.
  const std::uint64_t waits = fleet.region_health("r").backpressure_waits;
  const std::uint64_t block_ns = fleet.region_health("r").backpressure_block_ns;
  // One ingest call fed the whole region, so the per-call attribution must
  // equal the region's lifetime total exactly.
  EXPECT_EQ(sum.backpressure_block_ns, block_ns);
  // With a 16-record bound and thousands of records on a shared pool, the
  // producer cannot avoid waiting at least once.
  EXPECT_GT(waits, 0u);
  EXPECT_GT(block_ns, 0u);
  fleet.finish();
  std::remove(path.c_str());
}

TEST(FleetSnapshot, SerialIngestReportsZeroBackpressure) {
  const auto trace = scenario_trace();
  const std::string path = testing::TempDir() + "backpressure_serial.snt";
  write_trace_binary_file(path, trace);

  core::FleetMonitor fleet(6.0);
  fleet.add_region("r", scenario_config(screen::ScreenMode::kOff));
  const auto sum = fleet.ingest_file("r", path);
  EXPECT_EQ(sum.backpressure_block_ns, 0u);
  const auto& st = fleet.region_health("r");
  EXPECT_EQ(st.backpressure_waits, 0u);
  EXPECT_EQ(st.backpressure_block_ns, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sentinel
