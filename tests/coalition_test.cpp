// Pipeline-level tests of the coalition semantics (DESIGN.md decisions 4,
// 10, 11): independent faults never form a coalition, coordinated attackers
// do, per-sensor evidence pools across short tracks, and attack verdicts
// only propagate to coalition members. Also an end-to-end multimodal
// (3-attribute) run.

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

namespace sentinel::core {
namespace {

// Two-state cycling environment, far-apart states.
class CycleEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }
  AttrVec truth(double t) const override {
    const auto phase = static_cast<long>(t / (3.0 * kSecondsPerHour));
    return (phase % 2 == 0) ? AttrVec{10.0, 60.0} : AttrVec{30.0, 40.0};
  }
};

PipelineConfig test_config() {
  PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
  return cfg;
}

std::vector<SensorRecord> simulate(const sim::Environment& env, double duration,
                                   std::shared_ptr<faults::InjectionPlan> plan,
                                   std::size_t sensors = 9) {
  sim::Simulator s(env);
  for (std::size_t i = 0; i < sensors; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.3;
    mc.seed = 5;
    s.add_mote(mc);
  }
  if (plan) s.set_transform(faults::make_transform(plan));
  return s.run(duration).trace;
}

TEST(Coalition, IndependentFaultsDoNotFormACoalition) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  // Two *independent* faults with different error regimes.
  plan->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
            0.5 * kSecondsPerDay);
  plan->add(5, std::make_unique<faults::AdditiveFault>(AttrVec{15.0, 14.0}),
            0.5 * kSecondsPerDay);

  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 4.0 * kSecondsPerDay, plan));

  const auto coal = p.coalition();
  EXPECT_LT(coal.size, 2u) << "independent faults must not look coordinated";

  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, Verdict::kNormal);
  ASSERT_TRUE(report.sensors.count(2));
  ASSERT_TRUE(report.sensors.count(5));
  EXPECT_EQ(report.sensors.at(2).kind, AnomalyKind::kStuckAt);
  EXPECT_EQ(report.sensors.at(5).kind, AnomalyKind::kAdditive);
}

TEST(Coalition, CoordinatedAttackersShareDominantErrorState) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  // 3 of 9 sensors delete state B by holding the observation at state A.
  for (const SensorId s : {6u, 7u, 8u}) {
    faults::DeletionAttackConfig ac;
    // Holding (10,60) from truth (30,40) needs v = 3A - 2B = (-30, 100):
    // within the admissible ranges, so the steering actually lands.
    ac.deleted = faults::StateRegion{{30.0, 40.0}, 8.0};
    ac.hold_state = {10.0, 60.0};
    ac.fraction = 1.0 / 3.0;
    plan->add(s, std::make_unique<faults::DynamicDeletionAttack>(ac), 0.5 * kSecondsPerDay);
  }

  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 4.0 * kSecondsPerDay, plan));

  const auto coal = p.coalition();
  EXPECT_EQ(coal.size, 3u);
  EXPECT_EQ(coal.members, (std::set<SensorId>{6, 7, 8}));
  ASSERT_TRUE(coal.dominant_error_state.has_value());

  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, Verdict::kAttack);
  EXPECT_EQ(report.network.kind, AnomalyKind::kDynamicDeletion);
  for (const SensorId s : {6u, 7u, 8u}) {
    ASSERT_TRUE(report.sensors.count(s)) << s;
    EXPECT_EQ(report.sensors.at(s).verdict, Verdict::kAttack);
  }
}

TEST(Coalition, IndependentFaultDiagnosedDuringAttack) {
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  for (const SensorId s : {6u, 7u, 8u}) {
    faults::DeletionAttackConfig ac;
    // Holding (10,60) from truth (30,40) needs v = 3A - 2B = (-30, 100):
    // within the admissible ranges, so the steering actually lands.
    ac.deleted = faults::StateRegion{{30.0, 40.0}, 8.0};
    ac.hold_state = {10.0, 60.0};
    ac.fraction = 1.0 / 3.0;
    plan->add(s, std::make_unique<faults::DynamicDeletionAttack>(ac), 0.5 * kSecondsPerDay);
  }
  // Sensor 2 independently gets stuck while the attack runs.
  plan->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}),
            0.5 * kSecondsPerDay);

  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 6.0 * kSecondsPerDay, plan));

  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, Verdict::kAttack);
  ASSERT_TRUE(report.sensors.count(2));
  EXPECT_EQ(report.sensors.at(2).verdict, Verdict::kError);
  EXPECT_EQ(report.sensors.at(2).kind, AnomalyKind::kStuckAt)
      << "the non-member's own B^CE must decide its diagnosis";
}

TEST(Coalition, CombinedMcePoolsShortTracks) {
  // A fault active only in state B (a few windows per cycle) opens many
  // short tracks; the combined M_CE must accumulate them all.
  const CycleEnvironment env;
  auto plan = std::make_shared<faults::InjectionPlan>();
  // Stuck only while the environment is in state B: implemented as a change
  // attack with fraction 1 against sensor 2's own readings.
  faults::ChangeAttackConfig ac;
  ac.victim = faults::StateRegion{{30.0, 40.0}, 8.0};
  ac.observed_as = {20.0, 5.0};
  ac.fraction = 1.0;
  plan->add(2, std::make_unique<faults::DynamicChangeAttack>(ac), 0.0);

  DetectionPipeline p(test_config());
  p.process_trace(simulate(env, 4.0 * kSecondsPerDay, plan));

  const auto* tracks = p.tracks().tracks(2);
  ASSERT_NE(tracks, nullptr);
  EXPECT_GT(tracks->size(), 3u) << "intermittent fault should open several tracks";
  EXPECT_GE(p.tracks().total_anomalies(2), 10u);
  ASSERT_NE(p.m_ce(2), nullptr);
  // The combined model has seen far more than any single track.
  std::size_t best_single = 0;
  for (const auto& t : *tracks) best_single = std::max(best_single, t.observations);
  EXPECT_GT(p.m_ce(2)->steps(), best_single);
}

TEST(Coalition, MultimodalThreeAttributePipeline) {
  // End-to-end with (temperature, humidity, pressure): dimension-agnostic
  // pipeline, stuck-at classified from 3-attribute data.
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 10.0 * kSecondsPerDay;
  ec.include_pressure = true;
  const sim::GdiEnvironment env(ec);

  sim::Simulator s(env);
  for (std::size_t i = 0; i < 8; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.4;
    mc.seed = 12;
    s.add_mote(mc);
  }
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(3, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0, 990.0}),
            2.0 * kSecondsPerDay);
  s.set_transform(faults::make_transform(plan));
  const auto trace = s.run(ec.duration_seconds).trace;

  PipelineConfig cfg;
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  // Thin the history to 6 states via the first 6 distinct hours.
  cfg.initial_states.resize(6);
  DetectionPipeline p(cfg);
  p.process_trace(trace);

  const auto report = p.diagnose();
  ASSERT_TRUE(report.sensors.count(3));
  EXPECT_EQ(report.sensors.at(3).verdict, Verdict::kError);
  EXPECT_EQ(report.sensors.at(3).kind, AnomalyKind::kStuckAt);
  ASSERT_EQ(report.sensors.at(3).stuck_value.size(), 3u);
  EXPECT_NEAR(report.sensors.at(3).stuck_value[2], 990.0, 3.0);
}

}  // namespace
}  // namespace sentinel::core
