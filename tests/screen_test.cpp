// Tests: the first-tier screen bank (screen/screen.h) and the screened
// pipeline path.
//
// The tier's contracts, in the order they are exercised here:
//  - escalation policy: unseen sensors start escalated, healthy sensors
//    de-escalate after K clean windows, either screen trips a screened
//    sensor back onto the full path immediately, and a dirty full tier
//    holds an escalated sensor regardless of quiet screens;
//  - batching: observe_block() is bit-identical to n observe() calls;
//  - determinism: decisions are bit-identical across kernel dispatch levels
//    (the bank is handed each level's table directly) and across
//    checkpoint/resume at any window boundary, including mid-escalation;
//  - pipeline integration: screen_mode=off writes checkpoints with no
//    screen section, the windower's precomputed rep_sums/rep_total fast
//    path equals the recompute fallback byte-for-byte, and a screened
//    fleet's report is bit-identical at threads 1 and 4.

#include "screen/screen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "trace/windower.h"
#include "util/kernels.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace sentinel::screen {
namespace {

ScreenConfig test_config() {
  ScreenConfig cfg;
  cfg.mode = ScreenMode::kScreen;
  cfg.window = 8;
  cfg.warmup_windows = 4;
  cfg.deescalate_after = 6;
  return cfg;
}

/// Healthy residual stream: deterministic noise with sign flips, so neither
/// screen trips once the baseline is frozen.
double healthy_residual(std::uint64_t sensor, std::size_t t) {
  Rng rng(sensor * 1000 + t, "screen-test");
  return rng.gaussian(0.0, 0.5);
}

/// Feed `windows` healthy residuals for one sensor, resolving each
/// escalated window with a clean full tier (the de-escalation precondition).
void feed_healthy(ScreenBank& bank, SensorId sensor, std::size_t windows) {
  for (std::size_t t = 0; t < windows; ++t) {
    const ScreenDecision d = bank.observe(sensor, healthy_residual(sensor, t));
    if (d.full_path) bank.resolve(sensor, true);
  }
}

TEST(ScreenMode, ParseRoundTrip) {
  ScreenMode m = ScreenMode::kOff;
  EXPECT_TRUE(parse_screen_mode("off", m));
  EXPECT_EQ(m, ScreenMode::kOff);
  EXPECT_TRUE(parse_screen_mode("screen", m));
  EXPECT_EQ(m, ScreenMode::kScreen);
  EXPECT_TRUE(parse_screen_mode("full", m));
  EXPECT_EQ(m, ScreenMode::kFull);
  EXPECT_FALSE(parse_screen_mode("banana", m));
  for (const ScreenMode mode : {ScreenMode::kOff, ScreenMode::kScreen, ScreenMode::kFull}) {
    ScreenMode back = ScreenMode::kOff;
    ASSERT_TRUE(parse_screen_mode(to_string(mode), back));
    EXPECT_EQ(back, mode);
  }
}

TEST(ScreenBankTest, ConfigValidation) {
  for (auto mutate : std::vector<void (*)(ScreenConfig&)>{
           [](ScreenConfig& c) { c.window = 3; },
           [](ScreenConfig& c) { c.window = 65; },
           [](ScreenConfig& c) { c.warmup_windows = 1; },
           [](ScreenConfig& c) { c.warmup_windows = c.window + 1; },
           [](ScreenConfig& c) { c.deescalate_after = 0; },
           [](ScreenConfig& c) { c.deescalate_after = 70000; },
           [](ScreenConfig& c) { c.min_variance = 0.0; },
       }) {
    ScreenConfig cfg = test_config();
    mutate(cfg);
    EXPECT_THROW(ScreenBank bank(cfg), std::invalid_argument);
  }
}

TEST(ScreenBankTest, UnseenSensorStartsEscalated) {
  ScreenBank bank(test_config());
  EXPECT_TRUE(bank.is_escalated(42));  // never observed
  const ScreenDecision d = bank.observe(7, 0.0);
  EXPECT_TRUE(d.full_path);
  EXPECT_TRUE(bank.is_escalated(7));
  EXPECT_EQ(bank.stats().sensors, 1u);
}

TEST(ScreenBankTest, HealthySensorDeescalatesAfterK) {
  const ScreenConfig cfg = test_config();
  ScreenBank bank(cfg);
  // Warmup + a full statistic window + K clean windows is guaranteed to be
  // enough; the exact edge is pinned by the stats below.
  feed_healthy(bank, 1, cfg.window + cfg.deescalate_after + 4);
  EXPECT_FALSE(bank.is_escalated(1));
  const ScreenStats s = bank.stats();
  EXPECT_EQ(s.deescalations, 1u);
  EXPECT_EQ(s.escalated, 0u);
  EXPECT_GT(s.screened_windows, 0u);
  // Once screened, a healthy window is one residual push: no full path.
  const ScreenDecision d = bank.observe(1, healthy_residual(1, 999));
  EXPECT_FALSE(d.full_path);
}

TEST(ScreenBankTest, StuckResidualTripsRunsMonitor) {
  const ScreenConfig cfg = test_config();
  ScreenBank bank(cfg);
  feed_healthy(bank, 1, cfg.window + cfg.deescalate_after + 4);
  ASSERT_FALSE(bank.is_escalated(1));
  // A stuck-at fault pins the residual to one side of the baseline. The
  // offset is tiny (well under the chi-squared radar at sigma ~0.5) but the
  // sign collapse is exactly what the runs monitor exists to catch.
  ScreenDecision d;
  std::size_t took = 0;
  for (std::size_t t = 0; t < cfg.window && !d.full_path; ++t, ++took) {
    d = bank.observe(1, 0.35);
  }
  EXPECT_TRUE(d.full_path);
  EXPECT_TRUE(d.escalated_edge || bank.is_escalated(1));
  EXPECT_GT(bank.stats().runs_trips, 0u);
  EXPECT_LE(took, cfg.window);  // within one statistic window
}

TEST(ScreenBankTest, LargeResidualTripsChiSquared) {
  const ScreenConfig cfg = test_config();
  ScreenBank bank(cfg);
  feed_healthy(bank, 1, cfg.window + cfg.deescalate_after + 4);
  ASSERT_FALSE(bank.is_escalated(1));
  const ScreenDecision d = bank.observe(1, 50.0);  // ~100 sigma
  EXPECT_TRUE(d.chi2_trip);
  EXPECT_TRUE(d.full_path);
  EXPECT_TRUE(bank.is_escalated(1));
}

TEST(ScreenBankTest, DirtyFullTierHoldsEscalation) {
  const ScreenConfig cfg = test_config();
  ScreenBank bank(cfg);
  // Quiet screens but a dirty full tier (raw alarm / active track): the
  // hysteresis must never see a clean window, so the sensor stays escalated.
  for (std::size_t t = 0; t < cfg.window + 4 * cfg.deescalate_after; ++t) {
    const ScreenDecision d = bank.observe(1, healthy_residual(1, t));
    ASSERT_TRUE(d.full_path);
    bank.resolve(1, /*full_tier_clean=*/false);
  }
  EXPECT_TRUE(bank.is_escalated(1));
  EXPECT_EQ(bank.stats().deescalations, 0u);
}

TEST(ScreenBankTest, ObserveBlockMatchesScalarObserve) {
  const std::size_t kSensors = 37;
  const std::size_t kWindows = 64;
  ScreenBank a(test_config());
  ScreenBank b(test_config());
  std::vector<SensorId> ids(kSensors);
  std::vector<double> resid(kSensors);
  std::vector<ScreenDecision> dec(kSensors);
  for (std::size_t t = 0; t < kWindows; ++t) {
    for (std::size_t s = 0; s < kSensors; ++s) {
      ids[s] = static_cast<SensorId>(s);
      // Mix of healthy, stuck, and wild sensors.
      resid[s] = (s % 7 == 3) ? 0.4 : (s % 11 == 5) ? 30.0 : healthy_residual(s, t);
    }
    a.observe_block(ids.data(), resid.data(), kSensors, dec.data());
    for (std::size_t s = 0; s < kSensors; ++s) {
      const ScreenDecision want = b.observe(ids[s], resid[s]);
      ASSERT_EQ(dec[s].full_path, want.full_path) << "t=" << t << " s=" << s;
      ASSERT_EQ(dec[s].chi2_trip, want.chi2_trip) << "t=" << t << " s=" << s;
      ASSERT_EQ(dec[s].runs_trip, want.runs_trip) << "t=" << t << " s=" << s;
      ASSERT_EQ(dec[s].escalated_edge, want.escalated_edge) << "t=" << t << " s=" << s;
    }
  }
  const ScreenStats sa = a.stats();
  const ScreenStats sb = b.stats();
  EXPECT_EQ(sa.escalations, sb.escalations);
  EXPECT_EQ(sa.chi2_trips, sb.chi2_trips);
  EXPECT_EQ(sa.runs_trips, sb.runs_trips);
  EXPECT_EQ(sa.screened_windows, sb.screened_windows);
  EXPECT_EQ(sa.escalated_windows, sb.escalated_windows);
}

std::string serialized(const ScreenBank& bank) {
  std::ostringstream os;
  serialize::TextWriter w(os);
  bank.save(w);
  return os.str();
}

TEST(ScreenBankTest, DecisionsBitIdenticalAcrossKernelLevels) {
  const std::size_t kSensors = 19;
  const std::size_t kWindows = 96;
  std::vector<kern::Level> levels;
  for (const kern::Level l : {kern::Level::scalar, kern::Level::sse2, kern::Level::avx2}) {
    if (kern::level_supported(l)) levels.push_back(l);
  }
  ASSERT_FALSE(levels.empty());

  std::vector<std::string> blobs;
  std::vector<ScreenStats> stats;
  for (const kern::Level level : levels) {
    ScreenBank bank(test_config(), &kern::table(level));
    for (std::size_t t = 0; t < kWindows; ++t) {
      for (std::size_t s = 0; s < kSensors; ++s) {
        const double r = (s % 5 == 2 && t > 40) ? 2.0 : healthy_residual(s, t);
        const ScreenDecision d = bank.observe(static_cast<SensorId>(s), r);
        if (d.full_path) bank.resolve(static_cast<SensorId>(s), t % 3 != 0);
      }
    }
    blobs.push_back(serialized(bank));
    stats.push_back(bank.stats());
  }
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_EQ(blobs[i], blobs[0]) << "level " << kern::level_name(levels[i])
                                  << " diverged from " << kern::level_name(levels[0]);
    EXPECT_EQ(stats[i].escalations, stats[0].escalations);
    EXPECT_EQ(stats[i].chi2_trips, stats[0].chi2_trips);
    EXPECT_EQ(stats[i].runs_trips, stats[0].runs_trips);
  }
}

TEST(ScreenBankTest, CheckpointRoundTripMidEscalation) {
  const ScreenConfig cfg = test_config();
  ScreenBank live(cfg);
  // Build a bank with sensors in every phase: warming up, screened,
  // escalated with a partial clean streak, freshly tripped.
  for (std::size_t t = 0; t < 40; ++t) {
    for (SensorId s = 0; s < 8; ++s) {
      const double r = (s == 6 && t > 30) ? 25.0 : healthy_residual(s, t);
      const ScreenDecision d = live.observe(s, r);
      if (d.full_path) live.resolve(s, s != 7);  // sensor 7: dirty full tier
    }
  }
  live.observe(9, 0.1);  // mid-warmup sensor

  ScreenBank restored(cfg);
  {
    std::istringstream is(serialized(live));
    serialize::TextReader r(is);
    restored.load(r);
  }
  // Same bytes back out (runs/np are derived on load, so this also pins the
  // incremental counters against the recount).
  EXPECT_EQ(serialized(restored), serialized(live));

  // And the restored bank continues bit-identically.
  for (std::size_t t = 40; t < 80; ++t) {
    for (SensorId s = 0; s < 10; ++s) {
      const double r = healthy_residual(s, t);
      const ScreenDecision a = live.observe(s, r);
      const ScreenDecision b = restored.observe(s, r);
      ASSERT_EQ(a.full_path, b.full_path) << "t=" << t << " s=" << s;
      ASSERT_EQ(a.chi2_trip, b.chi2_trip) << "t=" << t << " s=" << s;
      ASSERT_EQ(a.runs_trip, b.runs_trip) << "t=" << t << " s=" << s;
      if (a.full_path) {
        live.resolve(s, true);
        restored.resolve(s, true);
      }
    }
  }
  EXPECT_EQ(serialized(restored), serialized(live));
}

// --- Pipeline / fleet integration -----------------------------------------

/// Hand-build a fleet-style window: per-sensor representatives around
/// `center`, with `faulty` pinned to `center + offset`. When `line_rate` is
/// set the screen-tier caches (rep_sums / rep_total) are filled exactly as
/// Windower::finalize_current would.
ObservationSet make_window(std::size_t index, const AttrVec& center, std::size_t sensors,
                           SensorId faulty, double offset, bool line_rate) {
  ObservationSet os;
  os.window_index = index;
  os.window_start = kSecondsPerHour * static_cast<double>(index - 1);
  os.window_end = kSecondsPerHour * static_cast<double>(index);
  AttrVec mean(center.size(), 0.0);
  for (std::size_t s = 0; s < sensors; ++s) {
    Rng rng(index * 131 + s, "screen-window");
    AttrVec p(center.size());
    for (std::size_t a = 0; a < p.size(); ++a) {
      p[a] = center[a] + rng.gaussian(0.0, 0.3) + (s == faulty ? offset : 0.0);
    }
    for (std::size_t a = 0; a < p.size(); ++a) mean[a] += p[a];
    os.rep_sensors.push_back(static_cast<SensorId>(s));
    if (line_rate) {
      os.rep_sums.push_back(vecn::scalar_sum(p));
      if (os.rep_total.empty()) os.rep_total.assign(p.size(), 0.0);
      for (std::size_t a = 0; a < p.size(); ++a) os.rep_total[a] += p[a];
    }
    os.per_sensor.emplace(static_cast<SensorId>(s), p);
    os.rep_points.push_back(std::move(p));
  }
  for (auto& a : mean) a /= static_cast<double>(sensors);
  os.cached_mean = std::move(mean);
  return os;
}

core::PipelineConfig screened_pipeline_config() {
  core::PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0, 30.0}, {30.0, 40.0, 50.0}};
  cfg.screen = test_config();
  return cfg;
}

std::string checkpoint_text(const core::DetectionPipeline& p) {
  std::ostringstream os;
  p.save_checkpoint(os, serialize::Format::kText, core::CheckpointScope::kResumable);
  return os.str();
}

TEST(ScreenPipelineTest, OffModeWritesNoScreenSection) {
  core::PipelineConfig cfg = screened_pipeline_config();
  cfg.screen.mode = ScreenMode::kOff;
  core::DetectionPipeline p(cfg);
  for (std::size_t i = 1; i <= 6; ++i) {
    p.process_window(make_window(i, cfg.initial_states[0], 6, 0, 0.0, true));
  }
  EXPECT_EQ(checkpoint_text(p).find("sentinel-screen"), std::string::npos);
  EXPECT_EQ(p.screens(), nullptr);
  EXPECT_EQ(p.screen_stats().sensors, 0u);
}

TEST(ScreenPipelineTest, RepSumsFastPathMatchesRecomputeFallback) {
  const core::PipelineConfig cfg = screened_pipeline_config();
  core::DetectionPipeline fast(cfg);
  core::DetectionPipeline slow(cfg);
  for (std::size_t i = 1; i <= 48; ++i) {
    // Same window content; `fast` gets the windower's precomputed scalar
    // sums and attr-wise total, `slow` recomputes from the points. The
    // residuals -- and everything downstream, including checkpoint bytes --
    // must match bit-for-bit (scalar_residual is defined as a difference of
    // scalar_sum values to make exactly this true).
    fast.process_window(make_window(i, cfg.initial_states[0], 12, 3, i > 24 ? 9.0 : 0.0, true));
    slow.process_window(make_window(i, cfg.initial_states[0], 12, 3, i > 24 ? 9.0 : 0.0, false));
  }
  EXPECT_EQ(checkpoint_text(fast), checkpoint_text(slow));
  EXPECT_GT(fast.screen_stats().sensors, 0u);
}

TEST(ScreenPipelineTest, ScreenedPipelineCheckpointResumesMidEscalation) {
  const core::PipelineConfig cfg = screened_pipeline_config();
  core::DetectionPipeline live(cfg);
  // Run past warmup, then introduce a fault and checkpoint *while the
  // sensor is escalated but not yet de-escalatable* (mid-escalation).
  for (std::size_t i = 1; i <= 30; ++i) {
    live.process_window(make_window(i, cfg.initial_states[0], 8, 2, i > 26 ? 8.0 : 0.0, true));
  }
  ASSERT_TRUE(live.screens()->is_escalated(2));

  std::istringstream is(checkpoint_text(live));
  core::DetectionPipeline restored(cfg, is);
  EXPECT_EQ(checkpoint_text(restored), checkpoint_text(live));

  for (std::size_t i = 31; i <= 60; ++i) {
    const auto w = make_window(i, cfg.initial_states[0], 8, 2, 0.0, true);
    live.process_window(w);
    restored.process_window(w);
  }
  EXPECT_EQ(checkpoint_text(restored), checkpoint_text(live));
}

TEST(ScreenFleetTest, ScreenedReportIdenticalAtThreads1And4) {
  const auto run = [](std::size_t threads) {
    core::FleetConfig fc;
    fc.threads = threads;
    core::FleetMonitor fleet(fc);
    const std::vector<std::string> names = {"east", "north", "south", "west"};
    core::PipelineConfig cfg = screened_pipeline_config();
    for (const auto& name : names) fleet.add_region(name, cfg);
    for (std::size_t i = 1; i <= 64; ++i) {
      for (std::size_t r = 0; r < names.size(); ++r) {
        // Region "south" develops a stuck sensor mid-run.
        const double off = (r == 2 && i > 40) ? 10.0 : 0.0;
        fleet.add_window(names[r], make_window(i, cfg.initial_states[0], 10, 4, off, true));
      }
    }
    fleet.finish();
    return core::to_string(fleet.diagnose());
  };
  const std::string serial = run(1);
  const std::string parallel = run(4);
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace sentinel::screen
