// Unit tests: MarkovChain -- MLE estimation, occupancy, stationary
// distribution, pruning (the paper's spurious-state removal), structural
// comparison (the errors-preserve-structure intuition of section 3.4).

#include <gtest/gtest.h>

#include <cmath>

#include "hmm/markov_chain.h"

namespace sentinel::hmm {
namespace {

TEST(MarkovChainTest, CountsAndMatrix) {
  MarkovChain mc;
  mc.add_sequence({1, 1, 2, 1, 2, 2});
  EXPECT_EQ(mc.num_states(), 2u);
  EXPECT_EQ(mc.transition_count(1, 2), 2u);
  EXPECT_EQ(mc.transition_count(1, 1), 1u);
  EXPECT_EQ(mc.transition_count(2, 1), 1u);
  EXPECT_EQ(mc.total_transitions(), 5u);

  const Matrix t = mc.transition_matrix();
  const auto i1 = *mc.index_of(1);
  const auto i2 = *mc.index_of(2);
  EXPECT_NEAR(t(i1, i2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(t(i2, i2), 0.5, 1e-12);
  EXPECT_TRUE(t.is_row_stochastic());
}

TEST(MarkovChainTest, NonContiguousIdsSupported) {
  MarkovChain mc;
  mc.add_sequence({100, 7, 100, 42});
  EXPECT_EQ(mc.num_states(), 3u);
  EXPECT_TRUE(mc.index_of(42).has_value());
  EXPECT_FALSE(mc.index_of(1).has_value());
  EXPECT_EQ(mc.transition_count(7, 100), 1u);
}

TEST(MarkovChainTest, AbsorbingStateGetsSelfLoop) {
  MarkovChain mc;
  mc.add_sequence({1, 2});  // state 2 never left
  const Matrix t = mc.transition_matrix();
  EXPECT_DOUBLE_EQ(t(*mc.index_of(2), *mc.index_of(2)), 1.0);
}

TEST(MarkovChainTest, OccupancySumsToOne) {
  MarkovChain mc;
  mc.add_sequence({1, 2, 3, 2, 2, 1});
  double total = 0.0;
  for (const double o : mc.occupancy()) total += o;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(mc.visit_count(2), 3u);
}

TEST(MarkovChainTest, StationaryDistribution) {
  // Two-state chain with p(0->1)=0.2, p(1->0)=0.4: stationary = (2/3, 1/3).
  MarkovChain mc;
  // Build counts matching those rates exactly.
  for (int i = 0; i < 8; ++i) mc.add_transition(0, 0);
  for (int i = 0; i < 2; ++i) mc.add_transition(0, 1);
  for (int i = 0; i < 6; ++i) mc.add_transition(1, 1);
  for (int i = 0; i < 4; ++i) mc.add_transition(1, 0);
  const auto pi = mc.stationary();
  EXPECT_NEAR(pi[*mc.index_of(0)], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(pi[*mc.index_of(1)], 1.0 / 3.0, 1e-6);
}

TEST(MarkovChainTest, PrunedDropsLowOccupancyStates) {
  MarkovChain mc;
  std::vector<StateId> seq;
  for (int i = 0; i < 50; ++i) {
    seq.push_back(1);
    seq.push_back(2);
  }
  seq.push_back(99);  // single visit: occupancy ~1%
  seq.push_back(1);
  mc.add_sequence(seq);

  const MarkovChain pruned = mc.pruned(0.05);
  EXPECT_EQ(pruned.num_states(), 2u);
  EXPECT_FALSE(pruned.index_of(99).has_value());
  EXPECT_GT(pruned.transition_count(1, 2), 0u);
}

TEST(MarkovChainTest, SameStructureIgnoresProbabilities) {
  MarkovChain a, b;
  a.add_sequence({1, 2, 1, 2, 2});
  b.add_sequence({1, 2, 2, 2, 2, 1, 2});  // same support, different counts
  EXPECT_TRUE(a.same_structure(b));

  MarkovChain c;
  c.add_sequence({1, 2, 3});  // extra state
  EXPECT_FALSE(a.same_structure(c));

  MarkovChain d;
  d.add_sequence({2, 1, 1});  // same states, different transition support
  EXPECT_FALSE(a.same_structure(d));
}

TEST(MarkovChainTest, LogLikelihoodPrefersInDistributionSequences) {
  MarkovChain mc;
  for (int i = 0; i < 30; ++i) mc.add_sequence({1, 2, 1});
  const double in_dist = mc.log_likelihood({1, 2, 1, 2});
  const double out_dist = mc.log_likelihood({2, 2, 2, 2});
  EXPECT_GT(in_dist, out_dist);
}

TEST(MarkovChainTest, EntropyRate) {
  // Deterministic cycle: zero entropy.
  MarkovChain det;
  for (int i = 0; i < 30; ++i) det.add_sequence({0, 1});
  EXPECT_NEAR(det.entropy_rate(), 0.0, 1e-9);

  // Uniform 2-state coin: ln 2 per step.
  MarkovChain coin;
  for (int i = 0; i < 50; ++i) {
    coin.add_transition(0, 0);
    coin.add_transition(0, 1);
    coin.add_transition(1, 0);
    coin.add_transition(1, 1);
  }
  EXPECT_NEAR(coin.entropy_rate(), std::log(2.0), 0.01);
  // Determinism is strictly more predictable.
  EXPECT_LT(det.entropy_rate(), coin.entropy_rate());
}

TEST(MarkovChainTest, EmptyAndSingletonSequences) {
  MarkovChain mc;
  mc.add_sequence({});
  EXPECT_EQ(mc.num_states(), 0u);
  mc.add_sequence({5});
  EXPECT_EQ(mc.num_states(), 1u);
  EXPECT_EQ(mc.total_transitions(), 0u);
  EXPECT_DOUBLE_EQ(mc.log_likelihood({5}), 0.0);
}

}  // namespace
}  // namespace sentinel::hmm
