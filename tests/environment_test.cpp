// Unit tests: environment models (constant, scripted, GDI substitute).

#include <gtest/gtest.h>

#include "sim/environment.h"
#include "util/stats.h"

namespace sentinel::sim {
namespace {

TEST(ConstantEnvironment, AlwaysSameValue) {
  const ConstantEnvironment env(AttrVec{20.0, 70.0});
  EXPECT_EQ(env.dims(), 2u);
  EXPECT_EQ(env.truth(0.0), env.truth(1e6));
}

TEST(ScriptedEnvironment, FollowsSchedule) {
  const ScriptedEnvironment env({{100.0, {1.0}}, {200.0, {2.0}}, {300.0, {3.0}}});
  EXPECT_EQ(env.truth(50.0), (AttrVec{1.0}));
  EXPECT_EQ(env.truth(150.0), (AttrVec{2.0}));
  EXPECT_EQ(env.truth(299.9), (AttrVec{3.0}));
  EXPECT_EQ(env.truth(1000.0), (AttrVec{3.0}));  // clamps to last
}

TEST(ScriptedEnvironment, ValidatesInput) {
  EXPECT_THROW(ScriptedEnvironment({}), std::invalid_argument);
  EXPECT_THROW(ScriptedEnvironment({{100.0, {1.0}}, {50.0, {2.0}}}), std::invalid_argument);
  EXPECT_THROW(ScriptedEnvironment({{100.0, {1.0}}, {200.0, {1.0, 2.0}}}),
               std::invalid_argument);
}

TEST(GdiEnvironment, Deterministic) {
  GdiEnvironmentConfig cfg;
  cfg.duration_seconds = 2.0 * kSecondsPerDay;
  const GdiEnvironment a(cfg);
  const GdiEnvironment b(cfg);
  for (double t = 0.0; t < cfg.duration_seconds; t += 7777.0) {
    EXPECT_EQ(a.truth(t), b.truth(t)) << "t=" << t;
  }
}

TEST(GdiEnvironment, DifferentSeedsDiffer) {
  GdiEnvironmentConfig cfg;
  cfg.duration_seconds = kSecondsPerDay;
  GdiEnvironmentConfig cfg2 = cfg;
  cfg2.seed = cfg.seed + 1;
  const GdiEnvironment a(cfg);
  const GdiEnvironment b(cfg2);
  EXPECT_NE(a.truth(3600.0), b.truth(3600.0));
}

TEST(GdiEnvironment, PaperEnvelope) {
  // The month must sweep roughly the paper's temp [12,32] / hum [56,96]
  // range (Fig. 6 / Fig. 7 key states).
  GdiEnvironmentConfig cfg;
  cfg.duration_seconds = 31.0 * kSecondsPerDay;
  const GdiEnvironment env(cfg);
  RunningStats temp, hum;
  for (double t = 0.0; t < cfg.duration_seconds; t += kSecondsPerHour) {
    const auto v = env.truth(t);
    temp.add(v[0]);
    hum.add(v[1]);
  }
  EXPECT_GT(temp.min(), 0.0);
  EXPECT_LT(temp.min(), 16.0);
  EXPECT_GT(temp.max(), 27.0);
  EXPECT_LT(temp.max(), 45.0);
  EXPECT_GT(hum.min(), 35.0);
  EXPECT_LT(hum.min(), 65.0);
  EXPECT_GT(hum.max(), 85.0);
  EXPECT_LE(hum.max(), 100.0);
}

TEST(GdiEnvironment, TempHumidityAntiCorrelated) {
  GdiEnvironmentConfig cfg;
  cfg.duration_seconds = 7.0 * kSecondsPerDay;
  const GdiEnvironment env(cfg);
  // Pearson correlation over hourly samples must be strongly negative.
  RunningStats t_stats, h_stats;
  std::vector<double> ts, hs;
  for (double t = 0.0; t < cfg.duration_seconds; t += kSecondsPerHour) {
    const auto v = env.truth(t);
    ts.push_back(v[0]);
    hs.push_back(v[1]);
    t_stats.add(v[0]);
    h_stats.add(v[1]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    cov += (ts[i] - t_stats.mean()) * (hs[i] - h_stats.mean());
  }
  cov /= static_cast<double>(ts.size() - 1);
  const double corr = cov / (t_stats.stddev() * h_stats.stddev());
  EXPECT_LT(corr, -0.9);
}

TEST(GdiEnvironment, DiurnalPeakNearConfiguredHour) {
  GdiEnvironmentConfig cfg;
  cfg.duration_seconds = kSecondsPerDay;
  cfg.weather_sigma = 0.01;  // suppress weather so the carrier dominates
  cfg.peak_hour = 14.0;
  const GdiEnvironment env(cfg);
  double best_t = 0.0, best_v = -1e9;
  for (double t = 0.0; t < kSecondsPerDay; t += 300.0) {
    const double v = env.truth(t)[0];
    if (v > best_v) {
      best_v = v;
      best_t = t;
    }
  }
  EXPECT_NEAR(best_t / kSecondsPerHour, 14.0, 1.5);
}

TEST(GdiEnvironment, RejectsNonPositiveDuration) {
  GdiEnvironmentConfig cfg;
  cfg.duration_seconds = 0.0;
  EXPECT_THROW(GdiEnvironment{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace sentinel::sim
