// Robustness tests: the pipeline and trace reader must never crash or
// produce self-inconsistent output on hostile input -- random record soup,
// garbage CSV bytes, sensors joining/leaving mid-deployment, random
// injection plans.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/pipeline.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace sentinel {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig cfg;
  cfg.window_seconds = 600.0;
  cfg.initial_states = {{0.0, 0.0}, {50.0, 50.0}};
  return cfg;
}

TEST(Robustness, RandomRecordSoupNeverCrashesThePipeline) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed, "fuzz-records");
    core::DetectionPipeline p(small_config());
    for (int i = 0; i < 3000; ++i) {
      SensorRecord r;
      r.sensor = static_cast<SensorId>(rng.uniform_int(0, 20));
      // Mostly forward time with occasional out-of-order records.
      r.time = static_cast<double>(i) * 60.0 + rng.uniform(-600.0, 600.0);
      r.attrs = {rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
      p.add_record(r);
    }
    p.finish();
    // Output is self-consistent, whatever it says.
    const auto report = p.diagnose();
    for (const auto& [id, d] : report.sensors) {
      (void)id;
      if (d.verdict == core::Verdict::kNormal) {
        EXPECT_EQ(d.kind, core::AnomalyKind::kNone);
      } else {
        EXPECT_NE(d.kind, core::AnomalyKind::kNone);
      }
    }
    // Checkpoint of arbitrary state still round-trips.
    std::stringstream ss;
    p.save_checkpoint(ss);
    core::DetectionPipeline restored(small_config(), ss);
    EXPECT_EQ(restored.model_states().size(), p.model_states().size());
  }
}

TEST(Robustness, RandomInjectionPlansKeepInvariants) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 5.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);

  for (const std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    Rng rng(seed, "fuzz-plan");
    auto simulator = sim::make_gdi_deployment(env, {});
    auto plan = std::make_shared<faults::InjectionPlan>();
    // 1-4 random fault entries on random sensors with random activation.
    const auto entries = rng.uniform_int(1, 4);
    for (int e = 0; e < entries; ++e) {
      const auto sensor = static_cast<SensorId>(rng.uniform_int(0, 9));
      const double start = rng.uniform(0.0, 4.0) * kSecondsPerDay;
      switch (rng.uniform_int(0, 3)) {
        case 0:
          plan->add(sensor, std::make_unique<faults::StuckAtFault>(
                                AttrVec{rng.uniform(-10, 50), rng.uniform(0, 100)}),
                    start);
          break;
        case 1:
          plan->add(sensor, std::make_unique<faults::CalibrationFault>(
                                AttrVec{rng.uniform(0.3, 2.0), rng.uniform(0.3, 2.0)}),
                    start);
          break;
        case 2:
          plan->add(sensor, std::make_unique<faults::AdditiveFault>(
                                AttrVec{rng.uniform(-20, 20), rng.uniform(-20, 20)}),
                    start);
          break;
        default:
          plan->add(sensor, std::make_unique<faults::RandomNoiseFault>(rng.uniform(1, 15), seed),
                    start);
          break;
      }
    }
    simulator.set_transform(faults::make_transform(plan));
    const auto trace = simulator.run(ec.duration_seconds).trace;

    core::PipelineConfig cfg;
    for (double t = 0.0; t < kSecondsPerDay; t += 4.0 * kSecondsPerHour) {
      cfg.initial_states.push_back(env.truth(t));
    }
    core::DetectionPipeline p(cfg);
    p.process_trace(trace);

    // Invariants regardless of what was injected:
    EXPECT_TRUE(p.m_co().transition_matrix().is_row_stochastic(1e-9));
    EXPECT_TRUE(p.m_co().emission_matrix_avg().is_row_stochastic(1e-9));
    EXPECT_LE(p.model_states().size(), cfg.model_states.max_states);
    const auto report = p.diagnose();
    // A network attack verdict must never appear without a coalition.
    if (report.network.verdict == core::Verdict::kAttack) {
      EXPECT_GE(p.coalition_size(), cfg.classifier.min_implicated_sensors);
    }
  }
}

TEST(Robustness, SensorChurnHandledGracefully) {
  // Sensors join and leave mid-deployment: late joiner id 20 appears at day
  // 2; sensor 3 goes permanently silent at day 3.
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 6.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);

  sim::Simulator s(env);
  for (std::size_t i = 0; i < 8; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.4;
    mc.seed = 17;
    s.add_mote(mc);
  }
  sim::MoteConfig late;
  late.id = 20;
  late.noise_sigma = 0.4;
  late.seed = 17;
  s.add_mote(late);

  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(3, std::make_unique<faults::MuteFault>(), 3.0 * kSecondsPerDay);
  plan->add(20, std::make_unique<faults::MuteFault>(), 0.0, 2.0 * kSecondsPerDay);
  s.set_transform(faults::make_transform(plan));
  const auto trace = s.run(ec.duration_seconds).trace;

  core::PipelineConfig cfg;
  for (double t = 0.0; t < kSecondsPerDay; t += 4.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  core::DetectionPipeline p(cfg);
  p.process_trace(trace);

  // The late joiner participates once it appears; no track is fabricated
  // for either churned sensor; diagnosis stays clean.
  EXPECT_GT(p.alarms().window_count(20), 80u);
  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, core::Verdict::kNormal);
  EXPECT_FALSE(report.sensors.count(3));
  EXPECT_FALSE(report.sensors.count(20));
}

TEST(Robustness, GarbageCsvNeverCrashesTheReader) {
  Rng rng(23, "fuzz-csv");
  for (int round = 0; round < 20; ++round) {
    std::string blob;
    const auto len = rng.uniform_int(0, 2000);
    for (int i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    std::stringstream ss(blob);
    const auto result = read_trace(ss);  // must not throw or crash
    // Whatever parsed is well-formed.
    for (const auto& rec : result.records) {
      EXPECT_FALSE(rec.attrs.empty());
    }
  }
}

TEST(Robustness, AllSameValueTraceDoesNotDivide) {
  // Degenerate: every reading identical -- no variance anywhere.
  core::DetectionPipeline p(small_config());
  for (int i = 0; i < 500; ++i) {
    p.add_record({static_cast<SensorId>(i % 5), i * 60.0, {1.0, 1.0}});
  }
  p.finish();
  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, core::Verdict::kNormal);
  EXPECT_TRUE(report.sensors.empty());
}

}  // namespace
}  // namespace sentinel
