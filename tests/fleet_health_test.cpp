// Per-region health lifecycle tests: a poisoned feed (truncated binary,
// hostile CSV, missing file, mid-stream reader death) must quarantine
// exactly its own region -- with the cause attributed by name -- while every
// other region ingests, finishes, and diagnoses bit-identically to a fleet
// that never contained the sick one, at any thread count. Backpressure and
// silence end in their documented states deterministically.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "trace/binary_trace.h"
#include "trace/trace_io.h"
#include "util/metrics.h"

namespace sentinel::core {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out) << path;
  out << content;
}

PipelineConfig region_config() {
  PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
  return cfg;
}

/// Two-phase 2-dim workload (as in the fleet ingest tests), with a small
/// per-seed offset so regions are distinct but structurally similar.
std::vector<SensorRecord> make_good_trace(std::uint64_t seed, std::size_t n = 2000) {
  std::vector<SensorRecord> trace;
  trace.reserve(n);
  const double jitter = 0.05 * static_cast<double>(seed % 5);
  for (std::size_t i = 0; i < n; ++i) {
    const bool high = (i / 240) % 2 == 1;
    SensorRecord rec;
    rec.sensor = static_cast<SensorId>(i % 4);
    rec.time = static_cast<double>(i) * 30.0;
    rec.attrs = {(high ? 30.0 : 10.0) + 0.1 * static_cast<double>(i % 3) + jitter,
                 (high ? 40.0 : 60.0) - 0.1 * static_cast<double>(i % 5) - jitter};
    trace.push_back(std::move(rec));
  }
  return trace;
}

/// A binary trace whose payload is chopped mid-record: the reader serves the
/// prefix and ends with a kDataLoss status.
void write_truncated_binary(const std::string& path, std::uint64_t seed) {
  write_trace_binary_file(path, make_good_trace(seed));
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 5);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(FleetHealth, QuarantinedRegionExcludedBitIdenticallyAtAnyThreadCount) {
  const std::vector<std::string> good = {"east", "north", "south"};
  std::vector<std::string> good_paths;
  for (std::size_t i = 0; i < good.size(); ++i) {
    const auto path = temp_path("fh_good_" + good[i] + ".csv");
    write_trace_file(path, make_good_trace(i + 1));
    good_paths.push_back(path);
  }
  const auto bad_path = temp_path("fh_bad.snt");
  write_truncated_binary(bad_path, 9);

  // region name -> to_string(DiagnosisReport), keyed by thread count, to
  // prove thread-count independence on top of with/without-bad identity.
  std::map<std::size_t, std::map<std::string, std::string>> by_threads;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    FleetConfig fc;
    fc.threads = threads;
    FleetMonitor with_bad(fc);
    for (std::size_t i = 0; i < good.size(); ++i) with_bad.add_region(good[i], region_config());
    with_bad.add_region("bad", region_config());
    for (std::size_t i = 0; i < good.size(); ++i) {
      const auto sum = with_bad.ingest_file(good[i], good_paths[i]);
      EXPECT_TRUE(sum.status.is_ok()) << sum.status.to_string();
      EXPECT_EQ(sum.records, 2000u);
    }
    const auto bad_sum = with_bad.ingest_file("bad", bad_path);
    EXPECT_FALSE(bad_sum.status.is_ok());
    with_bad.finish();

    const RegionState& bad = with_bad.region_health("bad");
    EXPECT_EQ(bad.health, RegionHealth::kQuarantined);
    EXPECT_EQ(bad.status.code(), util::StatusCode::kDataLoss);
    EXPECT_NE(bad.status.message().find("region bad"), std::string::npos)
        << bad.status.to_string();
    EXPECT_NE(bad.status.message().find("truncated"), std::string::npos)
        << bad.status.to_string();

    FleetMonitor without_bad(fc);
    for (std::size_t i = 0; i < good.size(); ++i) {
      without_bad.add_region(good[i], region_config());
      without_bad.ingest_file(good[i], good_paths[i]);
    }
    without_bad.finish();

    const FleetReport a = with_bad.diagnose();
    const FleetReport b = without_bad.diagnose();
    EXPECT_EQ(a.regions.count("bad"), 0u);
    ASSERT_EQ(a.regions.size(), good.size());
    for (const auto& name : good) {
      EXPECT_EQ(to_string(a.regions.at(name)), to_string(b.regions.at(name))) << name;
      by_threads[threads][name] = to_string(a.regions.at(name));
    }
    EXPECT_EQ(a.overall, b.overall);
    EXPECT_EQ(a.structural_outliers, b.structural_outliers);
    ASSERT_EQ(a.health.count("bad"), 1u);
    EXPECT_EQ(a.health.at("bad").health, RegionHealth::kQuarantined);
  }
  EXPECT_EQ(by_threads.at(1), by_threads.at(4));

  for (const auto& p : good_paths) std::remove(p.c_str());
  std::remove(bad_path.c_str());
}

TEST(FleetHealth, UnopenableTraceQuarantinesOnlyItsRegion) {
  const auto good_path = temp_path("fh_open_good.csv");
  write_trace_file(good_path, make_good_trace(1));
  // Valid magic, header chopped off: open_trace_reader throws on this file.
  const auto garbage_path = temp_path("fh_open_garbage.snt");
  {
    std::ofstream out(garbage_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(kBinaryTraceMagic), 8);
  }

  FleetMonitor fleet;
  fleet.add_region("good", region_config());
  fleet.add_region("garbage", region_config());
  fleet.add_region("missing", region_config());

  EXPECT_TRUE(fleet.ingest_file("good", good_path).status.is_ok());
  const auto garbage_sum = fleet.ingest_file("garbage", garbage_path);
  const auto missing_sum = fleet.ingest_file("missing", "/nonexistent/trace.csv");
  EXPECT_EQ(garbage_sum.records, 0u);
  EXPECT_EQ(missing_sum.records, 0u);
  fleet.finish();

  for (const char* name : {"garbage", "missing"}) {
    const RegionState& st = fleet.region_health(name);
    EXPECT_EQ(st.health, RegionHealth::kQuarantined) << name;
    EXPECT_EQ(st.status.code(), util::StatusCode::kInvalidArgument) << name;
    EXPECT_NE(st.status.message().find(std::string("region ") + name), std::string::npos)
        << st.status.to_string();
    EXPECT_NE(st.status.message().find("cannot open trace"), std::string::npos)
        << st.status.to_string();
    ASSERT_TRUE(st.error) << name;
    EXPECT_THROW(std::rethrow_exception(st.error), std::runtime_error);
  }

  const FleetReport report = fleet.diagnose();
  EXPECT_EQ(fleet.region_health("good").health, RegionHealth::kHealthy);
  EXPECT_EQ(report.regions.count("good"), 1u);
  EXPECT_EQ(report.regions.size(), 1u);
  std::remove(good_path.c_str());
  std::remove(garbage_path.c_str());
}

TEST(FleetHealth, MalformedRateQuarantinesHostileFeed) {
  // 120 of 200 lines are junk (60% >= the 50% quarantine threshold).
  std::ostringstream content;
  for (int i = 0; i < 200; ++i) {
    if (i % 5 < 3) {
      content << "this is not a record\n";
    } else {
      content << i % 4 << ',' << i * 30 << ",10,60\n";
    }
  }
  const auto path = temp_path("fh_hostile.csv");
  write_file(path, content.str());

  FleetMonitor fleet;
  fleet.add_region("hostile", region_config());
  const auto sum = fleet.ingest_file("hostile", path);
  EXPECT_FALSE(sum.status.is_ok());

  const RegionState& st = fleet.region_health("hostile");
  EXPECT_EQ(st.health, RegionHealth::kQuarantined);
  EXPECT_EQ(st.status.code(), util::StatusCode::kDataLoss);
  EXPECT_NE(st.status.message().find("region hostile"), std::string::npos)
      << st.status.to_string();
  EXPECT_NE(st.status.message().find("malformed-line rate too high"), std::string::npos)
      << st.status.to_string();
  EXPECT_EQ(st.error, nullptr);  // threshold transition, no exception behind it
  EXPECT_GT(st.malformed.total(), 0u);
  EXPECT_GT(st.malformed.bad_field_count, 0u);  // the junk lines are short
  std::remove(path.c_str());
}

TEST(FleetHealth, FullyMalformedFeedQuarantinedByRateNotJustSilent) {
  // Every line is junk, so read_batch reaches EOF having produced zero
  // records. The rate check must still run on that final empty batch and
  // quarantine the region -- a 100%-hostile feed is worse than a 60% one
  // and must not slip through to a mere degraded-for-silence at finish().
  std::ostringstream content;
  for (int i = 0; i < 200; ++i) content << "this is not a record\n";
  const auto path = temp_path("fh_all_junk.csv");
  write_file(path, content.str());

  FleetMonitor fleet;
  fleet.add_region("junk", region_config());
  const auto sum = fleet.ingest_file("junk", path);
  EXPECT_FALSE(sum.status.is_ok());

  const RegionState& st = fleet.region_health("junk");
  EXPECT_EQ(st.health, RegionHealth::kQuarantined);
  EXPECT_EQ(st.status.code(), util::StatusCode::kDataLoss);
  EXPECT_NE(st.status.message().find("malformed-line rate too high"), std::string::npos)
      << st.status.to_string();
  EXPECT_EQ(st.records_ingested, 0u);
  EXPECT_EQ(st.malformed.total(), 200u);
  EXPECT_NO_THROW(fleet.finish());  // quarantined already; silence check moot
  std::remove(path.c_str());
}

TEST(FleetHealth, ElevatedMalformedRateDegradesButRegionStillVotes) {
  // 20 of 200 lines junk (10%): above the 5% degrade line, below quarantine.
  std::ostringstream content;
  for (int i = 0; i < 200; ++i) {
    if (i % 10 == 0) {
      content << "0,abc,10,60\n";  // unparseable time field
    } else {
      const bool high = (i / 60) % 2 == 1;
      content << i % 4 << ',' << i * 30 << ',' << (high ? 30 : 10) << ',' << (high ? 40 : 60)
              << '\n';
    }
  }
  const auto path = temp_path("fh_degraded.csv");
  write_file(path, content.str());

  FleetMonitor fleet;
  fleet.add_region("noisy", region_config());
  fleet.ingest_file("noisy", path);
  fleet.finish();

  const RegionState& st = fleet.region_health("noisy");
  EXPECT_EQ(st.health, RegionHealth::kDegraded);
  EXPECT_NE(st.status.message().find("elevated malformed-line rate"), std::string::npos)
      << st.status.to_string();
  EXPECT_EQ(st.malformed.bad_number, 20u);
  // Degraded is a warning, not an exclusion: the region still reports.
  EXPECT_EQ(fleet.diagnose().regions.count("noisy"), 1u);
  std::remove(path.c_str());
}

TEST(FleetHealth, FewBadLinesBelowMinSampleStayHealthy) {
  // 30% junk but only 10 lines total: below min_lines_for_rate, so no rate
  // judgment yet -- a handful of early bad lines must not condemn a region.
  const auto path = temp_path("fh_fewbad.csv");
  write_file(path,
             "junk\n0,0,10,60\n1,30,10,60\njunk\n2,60,10,60\n"
             "3,90,10,60\njunk\n0,120,10,60\n1,150,10,60\n2,180,10,60\n");

  FleetMonitor fleet;
  fleet.add_region("r", region_config());
  const auto sum = fleet.ingest_file("r", path);
  EXPECT_TRUE(sum.status.is_ok()) << sum.status.to_string();
  EXPECT_EQ(fleet.region_health("r").health, RegionHealth::kHealthy);
  EXPECT_EQ(fleet.region_health("r").malformed.total(), 3u);
  std::remove(path.c_str());
}

TEST(FleetHealth, SilentRegionDegradedAtFinishDeterministically) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    FleetConfig fc;
    fc.threads = threads;
    FleetMonitor fleet(fc);
    fleet.add_region("fed", region_config());
    fleet.add_region("silent", region_config());
    for (const auto& rec : make_good_trace(2)) fleet.add_record("fed", rec);
    fleet.finish();

    EXPECT_EQ(fleet.region_health("fed").health, RegionHealth::kHealthy);
    const RegionState& st = fleet.region_health("silent");
    EXPECT_EQ(st.health, RegionHealth::kDegraded);
    EXPECT_EQ(st.status.code(), util::StatusCode::kUnavailable);
    EXPECT_NE(st.status.message().find("region silent"), std::string::npos)
        << st.status.to_string();
    // Degraded regions still appear in the report body.
    EXPECT_EQ(fleet.diagnose().regions.count("silent"), 1u);
  }

  // The flag is a config choice: off means silence is unremarkable.
  FleetConfig fc;
  fc.health.flag_silent_regions = false;
  FleetMonitor fleet(fc);
  fleet.add_region("silent", region_config());
  fleet.finish();
  EXPECT_EQ(fleet.region_health("silent").health, RegionHealth::kHealthy);
}

TEST(FleetHealth, RecordsForQuarantinedRegionDroppedAndCounted) {
  FleetMonitor fleet;
  fleet.add_region("r", region_config());
  fleet.ingest_file("r", "/nonexistent/trace.csv");
  ASSERT_EQ(fleet.region_health("r").health, RegionHealth::kQuarantined);

  const auto trace = make_good_trace(3, 100);
  EXPECT_NO_THROW(fleet.add_records("r", trace));
  EXPECT_NO_THROW(fleet.add_record("r", trace[0]));
  EXPECT_EQ(fleet.region_health("r").records_dropped, 101u);
  EXPECT_EQ(fleet.region_health("r").records_ingested, 0u);
  EXPECT_NO_THROW(fleet.finish());
}

TEST(FleetHealth, BackpressureIsHealthyAndDeterministic) {
  // A queue far smaller than the workload forces producer waits; that is a
  // counted operational state, never a health transition, and the report is
  // still bit-identical to the serial run.
  const auto trace = make_good_trace(4, 4000);

  const auto run = [&trace](std::size_t threads, std::size_t queue) {
    FleetConfig fc;
    fc.threads = threads;
    fc.max_queue_records = queue;
    fc.batch_records = 16;
    FleetMonitor fleet(fc);
    fleet.add_region("a", region_config());
    fleet.add_region("b", region_config());
    for (const auto& rec : trace) {
      fleet.add_record("a", rec);
      fleet.add_record("b", rec);
    }
    fleet.finish();
    EXPECT_EQ(fleet.region_health("a").health, RegionHealth::kHealthy);
    EXPECT_EQ(fleet.region_health("b").health, RegionHealth::kHealthy);
    return to_string(fleet.diagnose());
  };

  const std::string serial = run(1, 16384);
  EXPECT_EQ(run(4, 64), serial);
  EXPECT_EQ(run(4, 16384), serial);
  // The wait counter exists in the registry (value depends on scheduling).
  const auto snap = util::metrics().snapshot();
  EXPECT_EQ(snap.counters.count("fleet.backpressure_waits"), 1u);
  EXPECT_EQ(snap.histograms.count("fleet.queue_depth"), 1u);
}

TEST(FleetHealth, HealthSectionRenderedOnlyWhenSomethingIsOff) {
  const auto path = temp_path("fh_render.csv");
  write_trace_file(path, make_good_trace(5));

  FleetMonitor healthy;
  healthy.add_region("r", region_config());
  healthy.ingest_file("r", path);
  healthy.finish();
  const std::string healthy_text = to_string(healthy.diagnose());
  EXPECT_EQ(healthy_text.find("region health:"), std::string::npos) << healthy_text;

  FleetMonitor sick;
  sick.add_region("r", region_config());
  sick.ingest_file("r", path);
  sick.add_region("dead", region_config());
  sick.ingest_file("dead", "/nonexistent/trace.csv");
  sick.finish();
  const std::string sick_text = to_string(sick.diagnose());
  EXPECT_NE(sick_text.find("region health:"), std::string::npos) << sick_text;
  EXPECT_NE(sick_text.find("[region dead] quarantined"), std::string::npos) << sick_text;
  EXPECT_NE(sick_text.find("cannot open trace"), std::string::npos) << sick_text;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sentinel::core
