// Unit tests: classical HMM -- forward/backward, Viterbi, Baum-Welch,
// sampling -- verified against hand-computed values and known invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "hmm/hmm.h"

namespace sentinel::hmm {
namespace {

Hmm weather_model() {
  // Classic two-state example: states {rainy, sunny}, symbols {walk, shop,
  // clean}.
  return Hmm(Matrix::from_rows({{0.7, 0.3}, {0.4, 0.6}}),
             Matrix::from_rows({{0.1, 0.4, 0.5}, {0.6, 0.3, 0.1}}),
             {0.6, 0.4});
}

TEST(HmmTest, ValidatesInputs) {
  EXPECT_THROW(Hmm(Matrix::from_rows({{0.5, 0.6}, {0.5, 0.5}}),
                   Matrix::from_rows({{1.0}, {1.0}}), {0.5, 0.5}),
               std::invalid_argument);  // A not stochastic
  EXPECT_THROW(Hmm(Matrix::identity(2), Matrix::identity(2), {0.9, 0.3}),
               std::invalid_argument);  // pi does not sum to 1
  EXPECT_THROW(Hmm(Matrix::identity(2), Matrix::identity(3), {0.5, 0.5}),
               std::invalid_argument);  // B shape
}

TEST(HmmTest, ForwardMatchesBruteForce) {
  const Hmm model = weather_model();
  const Sequence obs{0, 1, 2};
  // Brute force: sum over all 2^3 state paths.
  double p = 0.0;
  for (int s0 = 0; s0 < 2; ++s0) {
    for (int s1 = 0; s1 < 2; ++s1) {
      for (int s2 = 0; s2 < 2; ++s2) {
        p += model.initial()[s0] * model.emission()(s0, obs[0]) *
             model.transition()(s0, s1) * model.emission()(s1, obs[1]) *
             model.transition()(s1, s2) * model.emission()(s2, obs[2]);
      }
    }
  }
  EXPECT_NEAR(model.log_likelihood(obs), std::log(p), 1e-10);
}

TEST(HmmTest, ForwardBackwardConsistency) {
  // sum_i alpha_hat(t,i) * beta_hat(t,i) / c_t == 1 for every t under the
  // standard scaling.
  const Hmm model = weather_model();
  const Sequence obs{0, 2, 1, 0, 0, 2, 1, 1};
  const auto fwd = model.forward(obs);
  const auto beta = model.backward(obs, fwd.scales);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double s = 0.0;
    for (std::size_t i = 0; i < model.num_states(); ++i) {
      s += fwd.scaled_alpha(t, i) * beta(t, i) / fwd.scales[t];
    }
    EXPECT_NEAR(s, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(HmmTest, ViterbiOnDeterministicModel) {
  // Deterministic cycle 0 -> 1 -> 0 with identity emissions: the decoded
  // path must equal the observations.
  const Hmm model(Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}}), Matrix::identity(2),
                  {1.0, 0.0});
  const Sequence obs{0, 1, 0, 1, 0};
  const auto v = model.viterbi(obs);
  EXPECT_EQ(v.path, (std::vector<std::size_t>{0, 1, 0, 1, 0}));
  EXPECT_NEAR(v.log_probability, 0.0, 1e-12);
}

TEST(HmmTest, ViterbiPathIsPlausible) {
  const Hmm model = weather_model();
  const Sequence obs{0, 0, 2, 2};  // walk walk clean clean
  const auto v = model.viterbi(obs);
  ASSERT_EQ(v.path.size(), 4u);
  // "walk" is much likelier when sunny (state 1); "clean" when rainy (0).
  EXPECT_EQ(v.path[0], 1u);
  EXPECT_EQ(v.path[3], 0u);
}

TEST(HmmTest, BaumWelchMonotoneLikelihood) {
  Rng rng(3, "bw-test");
  const Hmm truth = weather_model();
  const auto sample = truth.sample(400, rng);

  Hmm learner = Hmm::random(2, 3, rng);
  BaumWelchOptions opts;
  opts.max_iterations = 30;
  const auto result = learner.baum_welch({sample.symbols}, opts);
  ASSERT_GE(result.log_likelihood_per_iter.size(), 2u);
  for (std::size_t i = 1; i < result.log_likelihood_per_iter.size(); ++i) {
    EXPECT_GE(result.log_likelihood_per_iter[i],
              result.log_likelihood_per_iter[i - 1] - 1e-6)
        << "iteration " << i;
  }
  // The learned model explains the data at least as well as random init.
  EXPECT_GT(learner.log_likelihood(sample.symbols),
            result.log_likelihood_per_iter.front());
}

TEST(HmmTest, BaumWelchKeepsStochasticity) {
  Rng rng(11, "bw-stoch");
  const Hmm truth = weather_model();
  const auto s1 = truth.sample(150, rng);
  const auto s2 = truth.sample(150, rng);
  Hmm learner = Hmm::random(3, 3, rng);
  learner.baum_welch({s1.symbols, s2.symbols});
  EXPECT_TRUE(learner.transition().is_row_stochastic(1e-6));
  EXPECT_TRUE(learner.emission().is_row_stochastic(1e-6));
}

TEST(HmmTest, SampleSymbolFrequenciesMatchModel) {
  // Single state, fixed emissions.
  const Hmm model(Matrix::identity(1), Matrix::from_rows({{0.2, 0.8}}), {1.0});
  Rng rng(5, "sample");
  const auto s = model.sample(20000, rng);
  std::size_t ones = 0;
  for (const auto v : s.symbols) ones += v == 1;
  EXPECT_NEAR(static_cast<double>(ones) / 20000.0, 0.8, 0.02);
}

TEST(HmmTest, NormalizedLogLikelihoodPerSymbol) {
  const Hmm model = weather_model();
  const Sequence obs{0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(model.normalized_log_likelihood(obs),
              model.log_likelihood(obs) / 6.0, 1e-12);
}

TEST(HmmTest, ErrorsOnBadInput) {
  const Hmm model = weather_model();
  EXPECT_THROW(model.forward({}), std::invalid_argument);
  EXPECT_THROW(model.forward({7}), std::out_of_range);
  EXPECT_THROW(model.viterbi({}), std::invalid_argument);
  Hmm copy = model;
  EXPECT_THROW(copy.baum_welch({}), std::invalid_argument);
  Rng rng(1);
  EXPECT_THROW(model.sample(0, rng), std::invalid_argument);
}

TEST(HmmTest, UniformFactory) {
  const Hmm u = Hmm::uniform(4, 6);
  EXPECT_EQ(u.num_states(), 4u);
  EXPECT_EQ(u.num_symbols(), 6u);
  EXPECT_TRUE(u.transition().is_row_stochastic());
  EXPECT_DOUBLE_EQ(u.emission()(0, 0), 1.0 / 6.0);
}

}  // namespace
}  // namespace sentinel::hmm
