// Property tests for the runtime-dispatched SIMD kernels (util/kernels.h).
//
// The dispatch contract is *bit-identity*: every level (scalar, SSE2, AVX2)
// implements the same 4-lane striped pairwise reduction tree, so on any
// input -- NaN, infinities, signed zeros, denormals, hostile lengths,
// unaligned pointers -- all supported levels must produce byte-for-byte the
// same results. These tests compare every supported level against the scalar
// reference through std::bit_cast. The one exemption is NaN *payload* bits:
// x86 NaN propagation is operand-order dependent and ISO C++ lets the
// compiler commute scalar multiplies/adds, so when both sides are NaN any
// payload is accepted (which elements are NaN must still agree exactly).

#include "util/kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <vector>

namespace sentinel::kern {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

void expect_same_bits(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;  // payload bits exempt (see header)
  EXPECT_EQ(bits(a), bits(b)) << what << ": " << a << " vs " << b;
}

void expect_same_bits(const std::vector<double>& a, const std::vector<double>& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_bits(a[i], b[i], what + " at " + std::to_string(i));
  }
}

/// Levels to test against the scalar reference (scalar included as a sanity
/// self-check; unsupported levels are skipped).
std::vector<Level> testable_levels() {
  std::vector<Level> out;
  for (const Level l : {Level::scalar, Level::sse2, Level::avx2}) {
    if (level_supported(l)) out.push_back(l);
  }
  return out;
}

/// Hostile lengths: empty, sub-lane, exactly one lane pass, lane pass + every
/// tail size, and larger mixed cases.
const std::vector<std::size_t> kLengths = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 16, 31, 33, 64};

/// Deterministic hostile input: special values sprinkled into log-uniform
/// magnitudes, with sign flips. `salt` decorrelates the a/b operands.
std::vector<double> hostile(std::size_t n, std::uint64_t salt) {
  std::mt19937_64 rng(0x5eed + salt);
  std::uniform_real_distribution<double> mag(-300.0, 300.0);
  std::uniform_int_distribution<int> pick(0, 19);
  std::vector<double> v(n);
  for (auto& x : v) {
    switch (pick(rng)) {
      case 0: x = kNaN; break;
      case 1: x = kInf; break;
      case 2: x = -kInf; break;
      case 3: x = 0.0; break;
      case 4: x = -0.0; break;
      case 5: x = kDenorm; break;
      case 6: x = -kDenorm * 7.0; break;
      case 7: x = std::numeric_limits<double>::max(); break;
      default:
        x = (pick(rng) % 2 == 0 ? 1.0 : -1.0) * std::pow(10.0, mag(rng));
    }
  }
  return v;
}

/// Copies `v` into a fresh buffer at an odd offset so vector loads are
/// genuinely unaligned.
struct Unaligned {
  explicit Unaligned(const std::vector<double>& v) : store(v.size() + 1, 0.0) {
    std::copy(v.begin(), v.end(), store.begin() + 1);
  }
  const double* data() const { return store.data() + 1; }
  double* data() { return store.data() + 1; }

  std::vector<double> store;
};

TEST(KernelsTest, ReductionsBitIdenticalAcrossLevels) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : kLengths) {
      const auto av = hostile(n, 1);
      const auto bv = hostile(n, 2);
      const Unaligned a(av);
      const Unaligned b(bv);
      const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n);
      expect_same_bits(k.dist2(a.data(), b.data(), n), ref.dist2(a.data(), b.data(), n),
                       "dist2 " + tag);
      expect_same_bits(k.dot(a.data(), b.data(), n), ref.dot(a.data(), b.data(), n),
                       "dot " + tag);
      expect_same_bits(k.sum(a.data(), n), ref.sum(a.data(), n), "sum " + tag);
      expect_same_bits(k.sumsq(a.data(), n), ref.sumsq(a.data(), n), "sumsq " + tag);
      double s_got = 0.0;
      double q_got = 0.0;
      double s_want = 0.0;
      double q_want = 0.0;
      k.sum_sumsq(a.data(), n, &s_got, &q_got);
      ref.sum_sumsq(a.data(), n, &s_want, &q_want);
      expect_same_bits(s_got, s_want, "sum_sumsq.sum " + tag);
      expect_same_bits(q_got, q_want, "sum_sumsq.sumsq " + tag);
      // The fused kernel is the separate reductions, one pass: each moment
      // must equal its standalone kernel bit-for-bit at every level.
      expect_same_bits(s_got, k.sum(a.data(), n), "sum_sumsq vs sum " + tag);
      expect_same_bits(q_got, k.sumsq(a.data(), n), "sum_sumsq vs sumsq " + tag);
    }
  }
}

TEST(KernelsTest, Dist2BlockMatchesPerRowDist2) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t stride : {4ul, 5ul, 8ul, 3ul}) {
      for (const std::size_t count : {0ul, 1ul, 2ul, 3ul, 7ul, 32ul}) {
        const auto block = hostile(count * stride, 3 + stride);
        const auto query = hostile(stride, 4);
        const Unaligned blk(block);
        const Unaligned q(query);
        std::vector<double> got(count, 0.0);
        std::vector<double> want(count, 0.0);
        k.dist2_block(blk.data(), count, stride, q.data(), got.data());
        for (std::size_t s = 0; s < count; ++s) {
          want[s] = ref.dist2(blk.data() + s * stride, q.data(), stride);
        }
        expect_same_bits(got, want,
                         std::string("dist2_block ") + level_name(level) + " stride=" +
                             std::to_string(stride) + " count=" + std::to_string(count));
      }
    }
  }
}

TEST(KernelsTest, MatrixProductsBitIdenticalAcrossLevels) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t rows : {1ul, 2ul, 4ul, 5ul, 9ul, 16ul}) {
      for (const std::size_t cols : {1ul, 3ul, 4ul, 7ul, 12ul}) {
        const std::size_t stride = padded(cols);
        const auto m = hostile(rows * stride, 10 + rows);
        const auto x = hostile(rows, 11);
        const auto xc = hostile(cols, 12);
        const auto init = hostile(cols, 13);
        const std::string tag = std::string(level_name(level)) + " " + std::to_string(rows) +
                                "x" + std::to_string(cols);

        std::vector<double> got(init);
        std::vector<double> want(init);
        k.vec_mat(x.data(), m.data(), rows, cols, stride, got.data());
        ref.vec_mat(x.data(), m.data(), rows, cols, stride, want.data());
        expect_same_bits(got, want, "vec_mat " + tag);

        got.assign(rows, 0.0);
        want.assign(rows, 0.0);
        k.mat_vec(m.data(), xc.data(), rows, cols, stride, got.data());
        ref.mat_vec(m.data(), xc.data(), rows, cols, stride, want.data());
        expect_same_bits(got, want, "mat_vec " + tag);
      }
    }
  }
}

TEST(KernelsTest, MatVecBlockMatchesRepeatedMatVec) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t rows : {1ul, 2ul, 5ul, 9ul}) {
      for (const std::size_t cols : {1ul, 3ul, 4ul, 7ul}) {
        for (const std::size_t count : {0ul, 1ul, 2ul, 3ul, 8ul}) {
          const std::size_t stride = padded(cols);
          const std::size_t xstride = stride + 4;  // xs packed wider than the matrix
          const auto m = hostile(rows * stride, 40 + rows);
          const auto xs = hostile(count * xstride, 41 + cols);
          const std::string tag = std::string(level_name(level)) + " " + std::to_string(rows) +
                                  "x" + std::to_string(cols) + " count=" + std::to_string(count);

          std::vector<double> got(count * rows, 0.0);
          k.mat_vec_block(m.data(), xs.data(), count, xstride, rows, cols, stride, got.data());

          // Contract: bit-identical to `count` independent mat_vec calls.
          std::vector<double> want(count * rows, 0.0);
          for (std::size_t c = 0; c < count; ++c) {
            ref.mat_vec(m.data(), xs.data() + c * xstride, rows, cols, stride,
                        want.data() + c * rows);
          }
          expect_same_bits(got, want, "mat_vec_block " + tag);
        }
      }
    }
  }
}

TEST(KernelsTest, EmaScaleBumpRowsMatchesPerRowScaleThenBump) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : {4ul, 8ul, 12ul}) {
      for (const std::size_t count : {0ul, 1ul, 2ul, 5ul, 17ul}) {
        // Scattered rows inside one arena, including repeated offsets: the
        // same row updated twice in one batch must see both updates in batch
        // order, exactly like sequential per-row calls.
        const std::size_t arena_rows = 8;
        auto arena = hostile(arena_rows * n, 50 + n);
        std::vector<std::size_t> offs(count);
        std::vector<std::uint32_t> cols(count);
        std::mt19937_64 rng(77 + count);
        for (std::size_t r = 0; r < count; ++r) {
          offs[r] = (rng() % arena_rows) * n;
          cols[r] = static_cast<std::uint32_t>(rng() % n);
        }
        const double s = 0.97;
        const double bump = 0.03;
        const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n) +
                                " count=" + std::to_string(count);

        auto got = arena;
        k.ema_scale_bump_rows(got.data(), offs.data(), cols.data(), count, n, s, bump);

        auto want = arena;
        for (std::size_t r = 0; r < count; ++r) {
          ref.scale(want.data() + offs[r], n, s);
          want[offs[r] + cols[r]] += bump;
        }
        expect_same_bits(got, want, "ema_scale_bump_rows " + tag);
      }
    }
  }
}

TEST(KernelsTest, DivScaleRowsMatchesPerRowDivScale) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : {4ul, 8ul, 12ul}) {
      for (const std::size_t count : {0ul, 1ul, 3ul, 9ul}) {
        const std::size_t arena_rows = 12;
        auto arena = hostile(arena_rows * n, 60 + n);
        std::vector<std::size_t> offs(count);
        std::vector<double> divisors(count);
        std::mt19937_64 rng(99 + count);
        for (std::size_t r = 0; r < count; ++r) {
          offs[r] = (rng() % arena_rows) * n;
          // Hostile divisors incl. zero: inf/NaN results must match too.
          divisors[r] = (r % 4 == 0) ? 0.0 : static_cast<double>(rng() % 31) - 7.0;
        }
        const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n) +
                                " count=" + std::to_string(count);

        auto got = arena;
        k.div_scale_rows(got.data(), offs.data(), divisors.data(), count, n);

        auto want = arena;
        for (std::size_t r = 0; r < count; ++r) {
          ref.div_scale(want.data() + offs[r], n, divisors[r]);
        }
        expect_same_bits(got, want, "div_scale_rows " + tag);
      }
    }
  }
}

TEST(KernelsTest, AccumRowsMatchesSequentialElementwiseAdds) {
  // accum_rows is the windower's fused per-sensor accumulate: scattered
  // destination rows, each += a source row. Repeated offsets in one batch
  // must accumulate in batch order, exactly like the sequential loops.
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : {1ul, 2ul, 4ul, 8ul, 12ul}) {
      for (const std::size_t count : {0ul, 1ul, 2ul, 5ul, 17ul, 64ul}) {
        const std::size_t arena_rows = 8;
        auto arena = hostile(arena_rows * n, 70 + n);
        const auto src_pool = hostile((count + 1) * n, 71 + count);
        std::vector<std::size_t> offs(count);
        std::vector<const double*> srcs(count);
        std::mt19937_64 rng(123 + count);
        for (std::size_t r = 0; r < count; ++r) {
          offs[r] = (rng() % arena_rows) * n;  // repeats: same row hit twice
          srcs[r] = src_pool.data() + (rng() % (count + 1)) * n;
        }
        const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n) +
                                " count=" + std::to_string(count);

        auto got = arena;
        k.accum_rows(got.data(), offs.data(), srcs.data(), count, n);

        auto want = arena;
        for (std::size_t r = 0; r < count; ++r) {
          for (std::size_t i = 0; i < n; ++i) want[offs[r] + i] += srcs[r][i];
        }
        expect_same_bits(got, want, "accum_rows " + tag);
      }
    }
  }
}

TEST(KernelsTest, SumRowsMatchesSequentialElementwiseAdds) {
  // sum_rows is the windower's whole-window total: out += each source row,
  // rows in order -- the accumulation order of vecn::mean_into, so per
  // output element additions happen in row order at every level.
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : {1ul, 3ul, 4ul, 8ul, 13ul}) {
      for (const std::size_t count : {0ul, 1ul, 2ul, 9ul, 33ul}) {
        const auto out0 = hostile(n, 80 + n);
        const auto src_pool = hostile((count + 1) * n, 81 + count);
        std::vector<const double*> srcs(count);
        std::mt19937_64 rng(321 + count);
        for (std::size_t r = 0; r < count; ++r) {
          srcs[r] = src_pool.data() + (rng() % (count + 1)) * n;
        }
        const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n) +
                                " count=" + std::to_string(count);

        auto got = out0;
        k.sum_rows(got.data(), srcs.data(), count, n);

        auto want = out0;
        for (std::size_t r = 0; r < count; ++r) {
          for (std::size_t i = 0; i < n; ++i) want[i] += srcs[r][i];
        }
        expect_same_bits(got, want, "sum_rows " + tag);
      }
    }
  }
}

TEST(KernelsTest, ElementwiseOpsBitIdenticalAcrossLevels) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : kLengths) {
      const auto av = hostile(n, 20);
      const auto bv = hostile(n, 21);
      const auto yv = hostile(n, 22);
      const double s = -3.25e-7;
      const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n);

      std::vector<double> got(yv);
      std::vector<double> want(yv);
      k.scale(got.data(), n, s);
      ref.scale(want.data(), n, s);
      expect_same_bits(got, want, "scale " + tag);

      got = yv;
      want = yv;
      k.div_scale(got.data(), n, 0.0);  // inf/NaN results must match too
      ref.div_scale(want.data(), n, 0.0);
      expect_same_bits(got, want, "div_scale " + tag);

      got = yv;
      want = yv;
      k.axpy(got.data(), av.data(), n, s);
      ref.axpy(want.data(), av.data(), n, s);
      expect_same_bits(got, want, "axpy " + tag);

      got.assign(n, 0.0);
      want.assign(n, 0.0);
      k.mul(got.data(), av.data(), bv.data(), n);
      ref.mul(want.data(), av.data(), bv.data(), n);
      expect_same_bits(got, want, "mul " + tag);

      got = yv;
      want = yv;
      k.mul_axpy(got.data(), av.data(), bv.data(), n, s);
      ref.mul_axpy(want.data(), av.data(), bv.data(), n, s);
      expect_same_bits(got, want, "mul_axpy " + tag);

      got = yv;
      want = yv;
      const double gi = k.normalize(got.data(), n);
      const double wi = ref.normalize(want.data(), n);
      expect_same_bits(gi, wi, "normalize inv " + tag);
      expect_same_bits(got, want, "normalize " + tag);
    }
  }
}

TEST(KernelsTest, MaxPlusMatchesSequentialFirstMax) {
  const Kernels& ref = table(Level::scalar);
  for (const Level level : testable_levels()) {
    const Kernels& k = table(level);
    for (const std::size_t n : kLengths) {
      // Ties are the hard case: quantize so equal sums are common.
      auto xv = hostile(n, 30);
      auto yv = hostile(n, 31);
      for (auto& x : xv) {
        if (std::isfinite(x)) x = std::floor(std::fmod(x, 4.0));
      }
      for (auto& y : yv) {
        if (std::isfinite(y)) y = std::floor(std::fmod(y, 4.0));
      }
      const MaxPlusResult got = k.max_plus(xv.data(), yv.data(), n);
      const MaxPlusResult want = ref.max_plus(xv.data(), yv.data(), n);
      const std::string tag = std::string(level_name(level)) + " n=" + std::to_string(n);
      expect_same_bits(got.value, want.value, "max_plus value " + tag);
      EXPECT_EQ(got.index, want.index) << "max_plus index " << tag;

      // Reference semantics: the sequential first strict max.
      double best = -kInf;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = xv[i] + yv[i];
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      expect_same_bits(want.value, best, "scalar max_plus vs sequential " + tag);
      EXPECT_EQ(want.index, best_i) << "scalar max_plus index vs sequential " << tag;
    }
  }
}

TEST(KernelsDispatchTest, ParseLevel) {
  Level l = Level::avx2;
  EXPECT_TRUE(parse_level("scalar", l));
  EXPECT_EQ(l, Level::scalar);
  EXPECT_TRUE(parse_level("sse2", l));
  EXPECT_EQ(l, Level::sse2);
  EXPECT_TRUE(parse_level("avx2", l));
  EXPECT_EQ(l, Level::avx2);
  EXPECT_FALSE(parse_level("", l));
  EXPECT_FALSE(parse_level("AVX2", l));
  EXPECT_FALSE(parse_level("avx512", l));
  EXPECT_FALSE(parse_level(nullptr, l));
}

TEST(KernelsDispatchTest, LevelNamesRoundTrip) {
  for (const Level l : {Level::scalar, Level::sse2, Level::avx2}) {
    Level parsed = Level::scalar;
    ASSERT_TRUE(parse_level(level_name(l), parsed));
    EXPECT_EQ(parsed, l);
  }
}

TEST(KernelsDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(level_supported(Level::scalar));
  EXPECT_STREQ(table(Level::scalar).name, "scalar");
}

TEST(KernelsDispatchTest, TablesReportTheirLevel) {
  for (const Level l : testable_levels()) {
    EXPECT_STREQ(table(l).name, level_name(l));
  }
}

TEST(KernelsDispatchTest, ActiveLevelIsSupportedAndMatchesTable) {
  const Level active = active_level();
  EXPECT_TRUE(level_supported(active));
  EXPECT_STREQ(k().name, level_name(active));
}

TEST(KernelsDispatchTest, ActiveLevelHonorsEnvOverride) {
  // active_level() latches at first use, so this can only be verified when
  // the environment was set before the process started -- which is exactly
  // what the CI dual run (SENTINEL_KERNELS=scalar ctest) does.
  const char* env = std::getenv("SENTINEL_KERNELS");
  if (env == nullptr || env[0] == '\0') {
    GTEST_SKIP() << "SENTINEL_KERNELS not set";
  }
  Level want = Level::scalar;
  if (!parse_level(env, want) || !level_supported(want)) {
    GTEST_SKIP() << "SENTINEL_KERNELS='" << env << "' invalid or unsupported here";
  }
  EXPECT_EQ(active_level(), want);
  EXPECT_STREQ(k().name, level_name(want));
}

TEST(KernelsDispatchTest, PaddedRoundsUpToLaneWidth) {
  EXPECT_EQ(padded(0), 0u);
  EXPECT_EQ(padded(1), 4u);
  EXPECT_EQ(padded(2), 4u);
  EXPECT_EQ(padded(3), 4u);
  EXPECT_EQ(padded(4), 4u);
  EXPECT_EQ(padded(5), 8u);
  EXPECT_EQ(padded(8), 8u);
  EXPECT_EQ(padded(9), 12u);
}

}  // namespace
}  // namespace sentinel::kern
