// Tests: the parallel fleet path. The headline guarantee is determinism --
// the same record stream through a threads=1 fleet and a threads=4 fleet
// must yield bit-identical FleetReports (per-region pipelines are
// single-writer, diagnosis reads quiescent state, results assemble in
// region-name order) -- plus worker-fault quarantine (a pipeline exception
// in a pool worker is parked in the shard and folded into the region's
// health record on the caller thread, never rethrown to the producer), and
// the parallel simulator's trace-identity guarantee.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/fleet.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace sentinel::core {
namespace {

class CycleEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }
  AttrVec truth(double t) const override {
    const auto phase = static_cast<long>(t / (3.0 * kSecondsPerHour));
    return (phase % 2 == 0) ? AttrVec{10.0, 60.0} : AttrVec{30.0, 40.0};
  }
};

PipelineConfig region_config() {
  PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
  return cfg;
}

std::vector<SensorRecord> simulate_region(const sim::Environment& env, double duration,
                                          std::uint64_t seed,
                                          std::shared_ptr<faults::InjectionPlan> plan = nullptr) {
  sim::Simulator s(env);
  for (std::size_t i = 0; i < 6; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 0.3;
    mc.seed = seed;
    s.add_mote(mc);
  }
  if (plan) s.set_transform(faults::make_transform(plan));
  return s.run(duration).trace;
}

/// A 4-region workload with enough variety to exercise every diagnosis
/// path: two clean regions, one with a stuck sensor, one whose majority is
/// compromised (structural outlier).
std::vector<std::vector<SensorRecord>> make_workload(const sim::Environment& env) {
  std::vector<std::vector<SensorRecord>> traces;
  traces.push_back(simulate_region(env, 3.0 * kSecondsPerDay, 1));
  traces.push_back(simulate_region(env, 3.0 * kSecondsPerDay, 2));

  auto stuck = std::make_shared<faults::InjectionPlan>();
  stuck->add(2, std::make_unique<faults::StuckAtFault>(AttrVec{20.0, 5.0}), 0.5 * kSecondsPerDay);
  traces.push_back(simulate_region(env, 3.0 * kSecondsPerDay, 3, stuck));

  auto compromised = std::make_shared<faults::InjectionPlan>();
  for (SensorId s = 0; s < 5; ++s) {  // 5 of 6 sensors: internal majority defeated
    faults::ChangeAttackConfig ac;
    ac.victim = faults::StateRegion{{30.0, 40.0}, 8.0};
    ac.observed_as = {55.0, 20.0};
    ac.fraction = 5.0 / 6.0;
    compromised->add(s, std::make_unique<faults::DynamicChangeAttack>(ac), 0.0);
  }
  traces.push_back(simulate_region(env, 3.0 * kSecondsPerDay, 4, compromised));
  return traces;
}

FleetReport run_fleet(const std::vector<std::vector<SensorRecord>>& traces, std::size_t threads,
                      std::vector<std::size_t>* windows_out = nullptr) {
  FleetConfig fc;
  fc.threads = threads;
  FleetMonitor fleet(fc);
  const std::vector<std::string> names = {"east", "north", "south", "west"};
  for (const auto& name : names) fleet.add_region(name, region_config());

  // Interleave across regions so parallel shards genuinely overlap.
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (std::size_t r = 0; r < traces.size(); ++r) {
      if (i < traces[r].size()) {
        fleet.add_record(names[r], traces[r][i]);
        any = true;
      }
    }
    if (!any) break;
  }
  fleet.finish();
  if (windows_out) {
    windows_out->clear();
    for (const auto& name : names) {
      windows_out->push_back(fleet.region(name).windows_processed());
    }
  }
  return fleet.diagnose();
}

TEST(FleetParallel, ReportIdenticalToSerial) {
  const CycleEnvironment env;
  const auto traces = make_workload(env);

  std::vector<std::size_t> windows_serial, windows_parallel;
  const FleetReport serial = run_fleet(traces, 1, &windows_serial);
  const FleetReport parallel = run_fleet(traces, 4, &windows_parallel);

  EXPECT_EQ(windows_parallel, windows_serial);
  EXPECT_EQ(parallel.overall, serial.overall);
  EXPECT_EQ(parallel.structural_outliers, serial.structural_outliers);
  ASSERT_EQ(parallel.regions.size(), serial.regions.size());
  EXPECT_EQ(to_string(parallel), to_string(serial));

  // The workload is rich enough that identity is meaningful: a fault, an
  // outlier, and clean regions all present.
  EXPECT_EQ(serial.overall, Verdict::kError);
  ASSERT_TRUE(serial.regions.at("south").sensors.count(2));
  EXPECT_EQ(serial.regions.at("south").sensors.at(2).kind, AnomalyKind::kStuckAt);
  EXPECT_EQ(serial.structural_outliers, std::vector<std::string>{"west"});
}

TEST(FleetParallel, HardwareThreadCountAlsoIdentical) {
  const CycleEnvironment env;
  // Smaller workload; the point is an arbitrary pool size, not diagnosis.
  std::vector<std::vector<SensorRecord>> traces;
  traces.push_back(simulate_region(env, 1.0 * kSecondsPerDay, 7));
  traces.push_back(simulate_region(env, 1.0 * kSecondsPerDay, 8));
  traces.push_back(simulate_region(env, 1.0 * kSecondsPerDay, 9));
  traces.push_back(simulate_region(env, 1.0 * kSecondsPerDay, 10));

  const FleetReport serial = run_fleet(traces, 1);
  const FleetReport parallel = run_fleet(traces, 0);  // 0 = hardware concurrency
  EXPECT_EQ(to_string(parallel), to_string(serial));
}

TEST(FleetParallel, WorkerExceptionQuarantinesRegionWithAttribution) {
  FleetConfig fc;
  fc.threads = 4;
  FleetMonitor fleet(fc);
  fleet.add_region("ok", region_config());
  fleet.add_region("bad", region_config());

  // Dimension-mismatched records make the pipeline throw inside a pool
  // worker (AttrVec distance on a 2-dim model). That must NOT resurface as
  // an exception on the caller thread: the sick region is quarantined with
  // the error attributed to it, later records for it are dropped and
  // counted, and the healthy region completes untouched.
  for (int i = 0; i < 5000; ++i) {
    const double t = 60.0 * i;
    for (SensorId s = 0; s < 6; ++s) {
      fleet.add_record("bad", {s, t, {1.0, 2.0, 3.0}});  // 3 dims into a 2-dim region
      fleet.add_record("ok", {s, t, {10.0, 60.0}});
    }
  }
  fleet.finish();

  const RegionState& bad = fleet.region_health("bad");
  EXPECT_EQ(bad.health, RegionHealth::kQuarantined);
  EXPECT_FALSE(bad.status.is_ok());
  // The status message carries the region name -- a fleet log line must say
  // *which* feed died, not just that one did.
  EXPECT_NE(bad.status.message().find("bad"), std::string::npos) << bad.status.to_string();
  EXPECT_GT(bad.records_dropped, 0u);
  // The original exception rides along for callers that want the real type.
  ASSERT_TRUE(bad.error);
  EXPECT_THROW(std::rethrow_exception(bad.error), std::invalid_argument);

  // drain() stays a quiescence point and never throws region poison.
  EXPECT_NO_THROW(fleet.drain());
  EXPECT_EQ(fleet.region_health("ok").health, RegionHealth::kHealthy);
  EXPECT_GT(fleet.region("ok").windows_processed(), 0u);

  // The quarantined region is absent from the report body but present --
  // with its captured cause -- in the health section.
  const FleetReport report = fleet.diagnose();
  EXPECT_EQ(report.regions.count("bad"), 0u);
  EXPECT_EQ(report.regions.count("ok"), 1u);
  ASSERT_EQ(report.health.count("bad"), 1u);
  EXPECT_EQ(report.health.at("bad").health, RegionHealth::kQuarantined);
}

TEST(FleetParallel, DrainIsQuiescencePoint) {
  const CycleEnvironment env;
  const auto trace = simulate_region(env, 1.0 * kSecondsPerDay, 5);

  FleetConfig fc;
  fc.threads = 4;
  FleetMonitor fleet(fc);
  fleet.add_region("r", region_config());
  for (const auto& rec : trace) fleet.add_record("r", rec);
  fleet.drain();
  // After drain every queued record reached the pipeline: the streaming
  // windower has closed all but the final partial window.
  const std::size_t before_finish = fleet.region("r").windows_processed();
  EXPECT_GT(before_finish, 20u);
  fleet.finish();
  EXPECT_GE(fleet.region("r").windows_processed(), before_finish);
}

TEST(FleetParallel, ConfigValidation) {
  FleetConfig bad_tol;
  bad_tol.state_match_tol = 0.0;
  EXPECT_THROW(FleetMonitor{bad_tol}, std::invalid_argument);
  FleetConfig bad_queue;
  bad_queue.max_queue_records = 0;
  EXPECT_THROW(FleetMonitor{bad_queue}, std::invalid_argument);
}

TEST(SimulatorParallel, TraceIdenticalToSerial) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  ec.seed = 11;
  const sim::GdiEnvironment env(ec);

  sim::GdiDeploymentConfig dc;
  dc.num_sensors = 10;
  dc.seed = 11;

  auto serial_sim = sim::make_gdi_deployment(env, dc);
  const auto serial = serial_sim.run(ec.duration_seconds);

  auto parallel_sim = sim::make_gdi_deployment(env, dc);
  util::ThreadPool pool(4);
  const auto parallel = parallel_sim.run(ec.duration_seconds, pool);

  EXPECT_EQ(parallel.trace, serial.trace);
  EXPECT_EQ(parallel.stats.sampled, serial.stats.sampled);
  EXPECT_EQ(parallel.stats.suppressed, serial.stats.suppressed);
  EXPECT_EQ(parallel.stats.lost, serial.stats.lost);
  EXPECT_EQ(parallel.stats.malformed, serial.stats.malformed);
  EXPECT_EQ(parallel.stats.delivered, serial.stats.delivered);
}

TEST(SimulatorParallel, WithInjectionPlanIdenticalToSerial) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 1.0 * kSecondsPerDay;
  ec.seed = 13;
  const sim::GdiEnvironment env(ec);

  const auto make = [&] {
    sim::GdiDeploymentConfig dc;
    dc.num_sensors = 8;
    dc.seed = 13;
    auto s = sim::make_gdi_deployment(env, dc);
    auto plan = std::make_shared<faults::InjectionPlan>();
    plan->add(3, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}), 0.2 * kSecondsPerDay);
    plan->add(5, std::make_unique<faults::RandomNoiseFault>(10.0, 13), 0.1 * kSecondsPerDay);
    s.set_transform(faults::make_transform(plan));
    return s;
  };

  auto serial_sim = make();
  const auto serial = serial_sim.run(ec.duration_seconds);
  auto parallel_sim = make();
  util::ThreadPool pool(3);
  const auto parallel = parallel_sim.run(ec.duration_seconds, pool);
  EXPECT_EQ(parallel.trace, serial.trace);
}

}  // namespace
}  // namespace sentinel::core
