// End-to-end integration tests on the GDI-like deployment: every fault and
// attack type of section 3.3 must be detected AND classified from a full
// simulated run, under packet loss and malformed packets. Uses the same
// scenario harness as the reproduction benches.

#include <gtest/gtest.h>

#include "common/scenario.h"
#include "faults/fault_models.h"
#include "util/vecn.h"

namespace sentinel {
namespace {

bench::ScenarioResult run(bench::InjectionKind kind, std::uint64_t seed = 2024,
                          double days = 14.0) {
  bench::ScenarioConfig sc;
  sc.duration_days = days;
  sc.seed = seed;
  return bench::run_scenario({}, sc, bench::make_injection(kind, seed));
}

class InjectionClassification : public ::testing::TestWithParam<bench::InjectionKind> {};

TEST_P(InjectionClassification, DetectedAndClassified) {
  const auto kind = GetParam();
  const auto result = run(kind);
  const auto report = result.pipeline->diagnose();
  const auto score = bench::score_report(report, kind);
  EXPECT_TRUE(score.detected) << "verdict " << core::to_string(score.verdict) << "/"
                              << core::to_string(score.kind) << "\n"
                              << core::to_string(report);
  EXPECT_TRUE(score.exact) << "classified as " << core::to_string(score.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, InjectionClassification,
    ::testing::Values(bench::InjectionKind::kClean, bench::InjectionKind::kStuckAt,
                      bench::InjectionKind::kCalibration, bench::InjectionKind::kAdditive,
                      bench::InjectionKind::kCreation, bench::InjectionKind::kDeletion,
                      bench::InjectionKind::kChange, bench::InjectionKind::kMixed,
                      bench::InjectionKind::kBenign),
    [](const auto& info) {
      std::string name = bench::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Integration, RandomNoiseAtLeastRaisesAlarms) {
  // The paper concedes random noise may be misclassified; we require that it
  // is at least *noticed* (track opened, raw alarms well above the healthy
  // baseline) and never mistaken for an attack.
  const auto result = run(bench::InjectionKind::kRandomNoise);
  const auto& p = *result.pipeline;
  EXPECT_NE(p.m_ce(6), nullptr) << "no track for the noisy sensor";
  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, core::Verdict::kNormal);
  if (report.sensors.count(6)) {
    EXPECT_EQ(report.sensors.at(6).verdict, core::Verdict::kError);
  }
}

TEST(Integration, CleanMonthProducesPaperShapedModel) {
  bench::ScenarioConfig sc;
  sc.duration_days = 31.0;
  const auto result = bench::run_scenario({}, sc, nullptr);
  const auto& p = *result.pipeline;

  // Packet loss and malformed packets occurred but the pipeline survived.
  EXPECT_GT(result.sim.stats.lost, 0u);
  EXPECT_GT(result.sim.stats.malformed, 0u);
  EXPECT_GT(p.windows_processed(), 600u);  // ~744 hours in the month

  // The pruned M_C has a handful of key states (paper found 4 + 1 spurious).
  const auto m_c = p.correct_model();
  EXPECT_GE(m_c.num_states(), 3u);
  EXPECT_LE(m_c.num_states(), 8u);

  // Key states live on the humidity = 118 - 2 * temp line of the generator.
  const auto lookup = p.centroid_lookup();
  for (const auto id : m_c.states()) {
    const auto c = lookup(id);
    ASSERT_TRUE(c.has_value());
    EXPECT_NEAR((*c)[1], 118.0 - 2.0 * (*c)[0], 8.0)
        << "state " << id << " at " << vecn::to_string(*c, 1);
  }

  // And the network diagnosis is clean.
  EXPECT_EQ(p.diagnose_network().verdict, core::Verdict::kNormal);
}

TEST(Integration, SurvivesHeavyPacketLoss) {
  bench::ScenarioConfig sc;
  sc.duration_days = 7.0;
  sc.packet_loss = 0.5;
  sc.malform_prob = 0.05;
  const auto result =
      bench::run_scenario({}, sc, bench::make_injection(bench::InjectionKind::kStuckAt, sc.seed));
  const auto score = bench::score_report(result.pipeline->diagnose(),
                                         bench::InjectionKind::kStuckAt);
  EXPECT_TRUE(score.detected);
  EXPECT_TRUE(score.exact);
}

TEST(Integration, SeedRobustness) {
  // The stuck-at classification must hold across several seeds, not just the
  // default one.
  for (const std::uint64_t seed : {7ull, 1001ull, 424242ull}) {
    const auto result = run(bench::InjectionKind::kStuckAt, seed, 10.0);
    const auto score = bench::score_report(result.pipeline->diagnose(),
                                           bench::InjectionKind::kStuckAt);
    EXPECT_TRUE(score.exact) << "seed " << seed << " classified as "
                             << core::to_string(score.kind);
  }
}

TEST(Integration, FaultRecoveryClosesTrack) {
  // A fault active for a bounded interval: the track must close after the
  // sensor recovers, and the filtered alarm must clear.
  bench::ScenarioConfig sc;
  sc.duration_days = 10.0;
  const auto inject = [](faults::InjectionPlan& plan, const sim::Environment&) {
    plan.add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
             2.0 * kSecondsPerDay, 5.0 * kSecondsPerDay);
  };
  const auto result = bench::run_scenario({}, sc, inject);
  const auto& p = *result.pipeline;
  EXPECT_FALSE(p.alarms().filtered_active(6));
  const auto* tracks = p.tracks().tracks(6);
  ASSERT_NE(tracks, nullptr);
  EXPECT_FALSE(tracks->back().active());
}

}  // namespace
}  // namespace sentinel
