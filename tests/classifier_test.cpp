// Unit tests: the structural classifier (paper section 3.4, Fig. 5).
// Each test drives an OnlineHmm with a synthetic (hidden, symbol) stream
// shaped like one error/attack signature and checks the verdict.

#include <gtest/gtest.h>

#include <map>

#include "core/classifier.h"

namespace sentinel::core {
namespace {

using hmm::kBottomSymbol;
using hmm::OnlineHmm;
using hmm::StateId;

// Environment states on the paper's (temp, humidity) line, plus error states.
const std::map<StateId, AttrVec> kCentroids = {
    {0, {12.0, 94.0}}, {1, {17.0, 84.0}}, {2, {24.0, 70.0}}, {3, {31.0, 56.0}},
    {7, {15.0, 1.0}},                        // stuck regime
    {9, {25.0, 40.0}},                       // fabricated / remapped state
    {10, {9.6, 75.2}},  {11, {13.6, 67.2}},  // 0.8x calibration images of 0..3
    {12, {19.2, 56.0}}, {13, {24.8, 44.8}},
    {20, {18.0, 82.0}}, {21, {23.0, 72.0}},  // +(6,-12) additive images
    {22, {30.0, 58.0}}, {23, {37.0, 44.0}},
    {30, {10.0, 90.0}}, {31, {14.0, 97.0}},  // scatter states near state 0
    {32, {15.0, 80.0}}, {33, {20.0, 88.0}},  // scatter states near state 1
};

CentroidLookup lookup() {
  return [](StateId id) -> std::optional<AttrVec> {
    const auto it = kCentroids.find(id);
    if (it == kCentroids.end()) return std::nullopt;
    return it->second;
  };
}

/// Feed `reps` rounds of the given (hidden, symbol) pattern.
void feed(OnlineHmm& m, const std::vector<std::pair<StateId, StateId>>& pattern,
          int reps = 50) {
  for (int r = 0; r < reps; ++r) {
    for (const auto& [h, s] : pattern) m.observe(h, s);
  }
}

ClassifierConfig cfg() { return {}; }

// --- filter_emission ---------------------------------------------------------

TEST(FilterEmission, DropsBottomAndWeakRows) {
  OnlineHmm m;
  // Hidden 0: 90% bottom, 10% symbol 7 -> dropped after bottom removal.
  // Hidden 1: always symbol 7 -> kept.
  feed(m, {{0, kBottomSymbol}, {0, kBottomSymbol}, {0, kBottomSymbol}, {0, kBottomSymbol},
           {0, kBottomSymbol}, {0, kBottomSymbol}, {0, kBottomSymbol}, {0, kBottomSymbol},
           {0, kBottomSymbol}, {0, 7}, {1, 7}});
  const auto f = filter_emission(m, {}, /*drop_bottom=*/true, cfg());
  ASSERT_EQ(f.hidden.size(), 1u);
  EXPECT_EQ(f.hidden[0], 1u);
  ASSERT_EQ(f.symbols.size(), 1u);
  EXPECT_EQ(f.symbols[0], 7u);
  EXPECT_DOUBLE_EQ(f.b(0, 0), 1.0);
}

TEST(FilterEmission, HiddenKeepRestrictsRows) {
  OnlineHmm m;
  feed(m, {{0, 0}, {1, 1}, {2, 2}});
  const auto f = filter_emission(m, {0, 2}, false, cfg());
  EXPECT_EQ(f.hidden, (std::vector<StateId>{0, 2}));
  // Column 1 loses all mass once row 1 is gone and is dropped as spurious.
  EXPECT_EQ(f.symbols, (std::vector<StateId>{0, 2}));
}

TEST(FilterEmission, EmptyModel) {
  OnlineHmm m;
  EXPECT_TRUE(filter_emission(m, {}, false, cfg()).empty());
}

// --- orthogonality -----------------------------------------------------------

TEST(Orthogonality, IdentityIsOrthogonal) {
  OnlineHmm m;
  feed(m, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const auto f = filter_emission(m, {}, false, cfg());
  const auto rep = orthogonality(f, cfg());
  EXPECT_TRUE(rep.rows_orthogonal);
  EXPECT_TRUE(rep.cols_orthogonal);
  EXPECT_GT(rep.min_row_self, 0.99);
  EXPECT_LT(rep.max_row_cross, 0.01);
  EXPECT_TRUE(rep.row_violations.empty());
}

TEST(Orthogonality, DetectsRowOverlap) {
  OnlineHmm m;
  feed(m, {{0, 1}, {1, 1}, {2, 2}});
  const auto f = filter_emission(m, {}, false, cfg());
  const auto rep = orthogonality(f, cfg());
  EXPECT_FALSE(rep.rows_orthogonal);
  ASSERT_EQ(rep.row_violations.size(), 1u);
  EXPECT_EQ(rep.row_violations[0], (std::pair<StateId, StateId>{0, 1}));
  EXPECT_TRUE(rep.cols_orthogonal);
}

// --- network-level classification ---------------------------------------------

TEST(ClassifyNetwork, CleanIdentityIsNormal) {
  OnlineHmm m;
  feed(m, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const auto d = classify_network(m, {}, lookup(), cfg(), 3);
  EXPECT_EQ(d.verdict, Verdict::kNormal);
  EXPECT_EQ(d.kind, AnomalyKind::kNone);
}

TEST(ClassifyNetwork, CreationSplitsAColumnPair) {
  OnlineHmm m;
  // Hidden 0 emits its own symbol and the fabricated state 9 alternately
  // (the duty-cycled attack); everyone else is clean.
  feed(m, {{0, 0}, {0, 9}, {1, 1}, {2, 2}, {3, 3}});
  const auto d = classify_network(m, {}, lookup(), cfg(), 3);
  EXPECT_EQ(d.verdict, Verdict::kAttack);
  EXPECT_EQ(d.kind, AnomalyKind::kDynamicCreation);
  EXPECT_FALSE(d.co.cols_orthogonal);
  EXPECT_TRUE(d.co.rows_orthogonal);
}

TEST(ClassifyNetwork, DeletionMergesTwoRows) {
  OnlineHmm m;
  // Hidden 3 (the deleted state) observed as state 2, which also maps to
  // itself.
  feed(m, {{0, 0}, {1, 1}, {2, 2}, {3, 2}});
  const auto d = classify_network(m, {}, lookup(), cfg(), 3);
  EXPECT_EQ(d.verdict, Verdict::kAttack);
  EXPECT_EQ(d.kind, AnomalyKind::kDynamicDeletion);
  EXPECT_FALSE(d.co.rows_orthogonal);
  EXPECT_TRUE(d.co.cols_orthogonal);
}

TEST(ClassifyNetwork, MixedViolatesBoth) {
  OnlineHmm m;
  feed(m, {{0, 0}, {0, 9}, {1, 1}, {2, 2}, {3, 2}});
  const auto d = classify_network(m, {}, lookup(), cfg(), 3);
  EXPECT_EQ(d.verdict, Verdict::kAttack);
  EXPECT_EQ(d.kind, AnomalyKind::kMixedAttack);
}

TEST(ClassifyNetwork, ChangeRemapsAttributes) {
  OnlineHmm m;
  // One-to-one, but hidden 0 is always observed as state 9 whose attributes
  // differ by far more than the tolerance.
  feed(m, {{0, 9}, {1, 1}, {2, 2}, {3, 3}});
  const auto d = classify_network(m, {}, lookup(), cfg(), 3);
  EXPECT_EQ(d.verdict, Verdict::kAttack);
  EXPECT_EQ(d.kind, AnomalyKind::kDynamicChange);
  ASSERT_EQ(d.changed_states.size(), 1u);
  EXPECT_EQ(d.changed_states[0], (std::pair<StateId, StateId>{0, 9}));
}

TEST(ClassifyNetwork, SignificantFilterHidesSpuriousStates) {
  OnlineHmm m;
  feed(m, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  // A single spurious observation that would look like deletion.
  m.observe(9, 0);
  const auto all = classify_network(m, {}, lookup(), cfg(), 3);
  EXPECT_EQ(all.verdict, Verdict::kAttack);  // spurious state misleads
  const auto significant = classify_network(m, {0, 1, 2, 3}, lookup(), cfg(), 3);
  EXPECT_EQ(significant.verdict, Verdict::kNormal);  // the paper's pruning
}

TEST(ClassifyNetwork, CoalitionGateSuppressesSingleSensorDistortion) {
  OnlineHmm m;
  // A deletion-shaped B^CO, but only one sensor is implicated: a lone
  // faulty sensor biasing the mean, not a coalition attack.
  feed(m, {{0, 0}, {1, 1}, {2, 2}, {3, 2}});
  const auto gated = classify_network(m, {}, lookup(), cfg(), 1);
  EXPECT_EQ(gated.verdict, Verdict::kNormal);
  EXPECT_EQ(gated.kind, AnomalyKind::kNone);
  // The distortion is still visible in the report for operators.
  EXPECT_FALSE(gated.co.rows_orthogonal);
  // With a coalition the same structure is an attack.
  const auto attack = classify_network(m, {}, lookup(), cfg(), 2);
  EXPECT_EQ(attack.verdict, Verdict::kAttack);
}

// --- sensor-level classification -----------------------------------------------

Diagnosis normal_network() {
  Diagnosis d;
  d.verdict = Verdict::kNormal;
  return d;
}

TEST(ClassifySensor, StuckAtSharedColumn) {
  OnlineHmm m;
  feed(m, {{0, 7}, {1, 7}, {2, 7}, {3, 7}, {2, kBottomSymbol}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kError);
  EXPECT_EQ(d.kind, AnomalyKind::kStuckAt);
  ASSERT_TRUE(d.stuck_state.has_value());
  EXPECT_EQ(*d.stuck_state, 7u);
  EXPECT_EQ(d.stuck_value, (AttrVec{15.0, 1.0}));
}

TEST(ClassifySensor, CalibrationConstantRatio) {
  OnlineHmm m;
  feed(m, {{0, 10}, {1, 11}, {2, 12}, {3, 13}, {1, kBottomSymbol}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kError);
  EXPECT_EQ(d.kind, AnomalyKind::kCalibration);
  ASSERT_EQ(d.gain.size(), 2u);
  EXPECT_NEAR(d.gain[0], 0.8, 0.02);
  EXPECT_NEAR(d.gain[1], 0.8, 0.02);
  EXPECT_LT(d.evidence_var, 0.1);
}

TEST(ClassifySensor, AdditiveConstantDifference) {
  OnlineHmm m;
  feed(m, {{0, 20}, {1, 21}, {2, 22}, {3, 23}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kError);
  EXPECT_EQ(d.kind, AnomalyKind::kAdditive);
  ASSERT_EQ(d.offset.size(), 2u);
  EXPECT_NEAR(d.offset[0], 6.0, 0.1);
  EXPECT_NEAR(d.offset[1], -12.0, 0.1);
}

TEST(ClassifySensor, RandomNoiseDiffuseRows) {
  OnlineHmm m;
  // Each correct state scatters over its own pair of nearby states: rows
  // are diffuse (low self product) but do not overlap.
  feed(m, {{0, 30}, {0, 31}, {1, 32}, {1, 33}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kError);
  EXPECT_EQ(d.kind, AnomalyKind::kRandomNoise);
}

TEST(ClassifySensor, OverlappingScatterIsUnknown) {
  OnlineHmm m;
  // Two correct states scatter over the SAME symbols: rows overlap, no
  // known signature.
  feed(m, {{0, 30}, {0, 31}, {1, 30}, {1, 31}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kError);
  EXPECT_EQ(d.kind, AnomalyKind::kUnknownError);
}

TEST(ClassifySensor, InheritsNetworkAttack) {
  OnlineHmm m;
  feed(m, {{0, 9}});
  Diagnosis network;
  network.verdict = Verdict::kAttack;
  network.kind = AnomalyKind::kDynamicDeletion;
  const auto d = classify_sensor(m, network, true, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kAttack);
  EXPECT_EQ(d.kind, AnomalyKind::kDynamicDeletion);
}

TEST(ClassifySensor, NonCoalitionSensorKeepsOwnDiagnosisDuringAttack) {
  // An attack is in progress, but this sensor is not part of the coalition:
  // its own B^CE (a textbook stuck-at) must still decide its diagnosis.
  OnlineHmm m;
  feed(m, {{0, 7}, {1, 7}, {2, 7}, {3, 7}});
  Diagnosis network;
  network.verdict = Verdict::kAttack;
  network.kind = AnomalyKind::kDynamicDeletion;
  const auto d = classify_sensor(m, network, /*coalition_member=*/false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kError);
  EXPECT_EQ(d.kind, AnomalyKind::kStuckAt);
}

TEST(ClassifySensor, AllBottomTrackIsNormal) {
  OnlineHmm m;
  feed(m, {{0, kBottomSymbol}, {1, kBottomSymbol}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_EQ(d.verdict, Verdict::kNormal);
  EXPECT_EQ(d.kind, AnomalyKind::kNone);
}

TEST(ClassifySensor, SinglePairIsNotCalibration) {
  // Only one (correct, error) pair: "constant ratio" is vacuous, so the
  // classifier must not claim calibration/additive (min_pairs = 2).
  OnlineHmm m;
  feed(m, {{0, 9}});
  const auto d = classify_sensor(m, normal_network(), false, {}, lookup(), cfg());
  EXPECT_NE(d.kind, AnomalyKind::kCalibration);
  EXPECT_NE(d.kind, AnomalyKind::kAdditive);
}

}  // namespace
}  // namespace sentinel::core
