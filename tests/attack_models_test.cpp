// Unit tests: malicious-attack models (paper section 3.3) -- coalition
// steering math, region gating, duty cycles, clamping to admissible ranges.

#include <gtest/gtest.h>

#include "faults/attack_models.h"
#include "util/stats.h"

namespace sentinel::faults {
namespace {

TEST(StateRegionTest, ContainsBall) {
  const StateRegion r{{10.0, 10.0}, 5.0};
  EXPECT_TRUE(r.contains({12.0, 13.0}));
  EXPECT_FALSE(r.contains({20.0, 10.0}));
  const StateRegion everywhere{{}, 1.0};
  EXPECT_TRUE(everywhere.contains({1000.0, -1000.0}));
}

TEST(CoalitionInjection, SteersNetworkMeanExactly) {
  const AttrVec truth{12.0, 94.0};
  const AttrVec target{25.0, 69.0};
  const double f = 0.3;
  const AttrVec v = coalition_injection(truth, target, f, {});
  // (1-f)*truth + f*v == target.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR((1.0 - f) * truth[i] + f * v[i], target[i], 1e-12);
  }
}

TEST(CoalitionInjection, ClampsToAdmissibleRange) {
  const AttrVec truth{20.0, 56.0};
  const AttrVec target{20.0, 70.0};
  // Needed humidity injection is (70 - 0.7*56)/0.3 = 102.7 > 100 -> clamp.
  const AttrVec v = coalition_injection(truth, target, 0.3, gdi_ranges());
  EXPECT_DOUBLE_EQ(v[1], 100.0);
  EXPECT_THROW(coalition_injection(truth, target, 0.0, {}), std::invalid_argument);
  EXPECT_THROW(coalition_injection(truth, target, 1.5, {}), std::invalid_argument);
}

TEST(CreationAttack, ActiveOnlyInVictimStateAndOnPhase) {
  CreationAttackConfig cfg;
  cfg.victim = StateRegion{{12.0, 94.0}, 5.0};
  cfg.created_state = {25.0, 69.0};
  cfg.fraction = 0.3;
  cfg.on_seconds = 100.0;
  cfg.off_seconds = 100.0;
  DynamicCreationAttack attack(cfg);

  const AttrVec in_victim{12.5, 93.5};
  const AttrVec elsewhere{30.0, 58.0};
  EXPECT_TRUE(attack.active_at(50.0, in_victim));
  EXPECT_FALSE(attack.active_at(150.0, in_victim));  // off phase
  EXPECT_FALSE(attack.active_at(50.0, elsewhere));   // wrong state

  // During the on phase the injected value steers the mean.
  const auto v = attack.apply(0, 50.0, in_victim, in_victim);
  EXPECT_NEAR(0.7 * in_victim[0] + 0.3 * (*v)[0], 25.0, 1e-9);
  // During the off phase the measurement passes through.
  EXPECT_EQ(*attack.apply(0, 150.0, in_victim, in_victim), in_victim);
}

TEST(CreationAttack, Validation) {
  CreationAttackConfig cfg;
  cfg.created_state = {};
  EXPECT_THROW(DynamicCreationAttack{cfg}, std::invalid_argument);
}

TEST(DeletionAttack, HoldsObservationWhileTruthMoves) {
  DeletionAttackConfig cfg;
  cfg.deleted = StateRegion{{31.0, 56.0}, 6.0};
  cfg.hold_state = {24.0, 70.0};
  cfg.fraction = 0.3;
  DynamicDeletionAttack attack(cfg);

  const AttrVec deleted_truth{30.0, 57.0};
  EXPECT_TRUE(attack.active_at(deleted_truth));
  const auto v = attack.apply(0, 0.0, deleted_truth, deleted_truth);
  EXPECT_NEAR(0.7 * deleted_truth[0] + 0.3 * (*v)[0], 24.0, 1e-9);

  const AttrVec other{17.0, 84.0};
  EXPECT_FALSE(attack.active_at(other));
  EXPECT_EQ(*attack.apply(0, 0.0, other, other), other);
}

TEST(DeletionAttack, Validation) {
  DeletionAttackConfig cfg;  // empty states
  EXPECT_THROW(DynamicDeletionAttack{cfg}, std::invalid_argument);
}

TEST(ChangeAttack, RemapsVictimStateAttributes) {
  ChangeAttackConfig cfg;
  cfg.victim = StateRegion{{12.0, 94.0}, 5.0};
  cfg.observed_as = {18.0, 60.0};
  cfg.fraction = 0.4;
  DynamicChangeAttack attack(cfg);

  const AttrVec truth{12.0, 94.0};
  const auto v = attack.apply(0, 0.0, truth, truth);
  EXPECT_NEAR(0.6 * truth[0] + 0.4 * (*v)[0], 18.0, 1e-9);
  EXPECT_NEAR(0.6 * truth[1] + 0.4 * (*v)[1], 60.0, 1e-9);
}

TEST(MixedAttackTest, DeletionTakesPrecedence) {
  CreationAttackConfig cc;
  cc.victim = StateRegion{{12.0, 94.0}, 5.0};
  cc.created_state = {25.0, 69.0};
  cc.fraction = 0.3;
  DeletionAttackConfig dc;
  dc.deleted = StateRegion{{31.0, 56.0}, 6.0};
  dc.hold_state = {24.0, 70.0};
  dc.fraction = 0.3;
  MixedAttack attack(cc, dc);

  // Truth in the deletion region -> deletion behavior.
  const AttrVec warm{31.0, 56.0};
  const auto v1 = attack.apply(0, 0.0, warm, warm);
  EXPECT_NEAR(0.7 * warm[0] + 0.3 * (*v1)[0], 24.0, 1e-9);
  // Truth in the creation victim during on phase -> creation behavior.
  const AttrVec cold{12.0, 94.0};
  const auto v2 = attack.apply(0, 0.0, cold, cold);
  EXPECT_NEAR(0.7 * cold[0] + 0.3 * (*v2)[0], 25.0, 1e-9);
}

TEST(BenignAttackTest, MimicsCorrectSensor) {
  BenignAttack attack(0.3, 7);
  const AttrVec truth{20.0, 70.0};
  RunningStats dev;
  for (int i = 0; i < 2000; ++i) {
    dev.add((*attack.apply(0, 0.0, AttrVec{99.0, 99.0}, truth))[0] - truth[0]);
  }
  EXPECT_NEAR(dev.mean(), 0.0, 0.05);
  EXPECT_NEAR(dev.stddev(), 0.3, 0.05);
}

}  // namespace
}  // namespace sentinel::faults
