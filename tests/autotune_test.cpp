// Tests: data-driven parameter suggestion (core/autotune.h) and the
// classical HMM's save/load.

#include <gtest/gtest.h>

#include <sstream>

#include "core/autotune.h"
#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "hmm/hmm.h"
#include "sim/simulator.h"

namespace sentinel::core {
namespace {

TEST(Autotune, GdiTraceYieldsSeparatedScalesAndSaneThresholds) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 7.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  auto simulator = sim::make_gdi_deployment(env, {});
  const auto trace = simulator.run(ec.duration_seconds).trace;

  Rng rng(1, "autotune-test");
  const auto report = suggest_configuration(trace, 3600.0, 6, rng);

  // Noise scale reflects the injected sigma 0.4 (per-attribute) -> RMS over
  // two attributes ~ 0.55.
  EXPECT_NEAR(report.noise_scale, 0.55, 0.25);
  // Regime spacing is the cluster scale of the diurnal states.
  EXPECT_GT(report.state_spacing, 5.0);
  EXPECT_TRUE(report.scales_separated);
  // Suggested thresholds live between noise and spacing, spawn above merge.
  EXPECT_GT(report.suggested.merge_threshold, 2.0 * report.noise_scale);
  EXPECT_LT(report.suggested.merge_threshold, report.state_spacing);
  EXPECT_GT(report.suggested.spawn_threshold, report.suggested.merge_threshold);
  EXPECT_EQ(report.initial_states.size(), 6u);
}

TEST(Autotune, SuggestedConfigActuallyWorksEndToEnd) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 10.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  auto simulator = sim::make_gdi_deployment(env, {});
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
            2.0 * kSecondsPerDay);
  simulator.set_transform(faults::make_transform(plan));
  const auto trace = simulator.run(ec.duration_seconds).trace;

  // Tune on the (mostly healthy) first two days, then run with it.
  std::vector<SensorRecord> head;
  for (const auto& r : trace) {
    if (r.time < 2.0 * kSecondsPerDay) head.push_back(r);
  }
  Rng rng(2, "autotune-e2e");
  const auto tuned = suggest_configuration(head, 3600.0, 6, rng);

  PipelineConfig cfg;
  cfg.initial_states = tuned.initial_states;
  cfg.model_states = tuned.suggested;
  DetectionPipeline p(cfg);
  p.process_trace(trace);

  const auto diag = p.diagnose();
  ASSERT_TRUE(diag.sensors.count(6));
  EXPECT_EQ(diag.sensors.at(6).kind, AnomalyKind::kStuckAt);
}

TEST(Autotune, NoisyFlatEnvironmentIsFlaggedAsNotSeparated) {
  // A flat environment observed through heavy noise: regime spacing is pure
  // noise structure, so the separation flag must warn.
  const sim::ConstantEnvironment env(AttrVec{20.0, 70.0});
  sim::Simulator s(env);
  for (std::size_t i = 0; i < 8; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 5.0;
    mc.seed = 3;
    s.add_mote(mc);
  }
  const auto trace = s.run(3.0 * kSecondsPerDay).trace;
  Rng rng(3, "autotune-flat");
  const auto report = suggest_configuration(trace, 3600.0, 4, rng);
  EXPECT_FALSE(report.scales_separated);
}

TEST(Autotune, ThrowsOnTooShortTrace) {
  Rng rng(4, "autotune-short");
  const std::vector<SensorRecord> tiny{{0, 0.0, {1.0, 2.0}}, {0, 10.0, {1.0, 2.0}}};
  EXPECT_THROW(suggest_configuration(tiny, 3600.0, 6, rng), std::invalid_argument);
}

TEST(HmmSaveLoad, RoundTripExact) {
  Rng rng(5, "hmm-ckpt");
  const auto model = hmm::Hmm::random(4, 6, rng);
  std::stringstream ss;
  model.save(ss);
  const auto loaded = hmm::Hmm::load(ss);
  EXPECT_DOUBLE_EQ(loaded.transition().max_abs_diff(model.transition()), 0.0);
  EXPECT_DOUBLE_EQ(loaded.emission().max_abs_diff(model.emission()), 0.0);
  EXPECT_EQ(loaded.initial(), model.initial());
  // Identical likelihoods on a probe sequence.
  const auto s = model.sample(64, rng);
  EXPECT_DOUBLE_EQ(loaded.log_likelihood(s.symbols), model.log_likelihood(s.symbols));
}

TEST(HmmSaveLoad, RejectsCorruptedInput) {
  std::stringstream bad("hmm\n2 2 0.5 0.5 0.9");
  EXPECT_THROW(hmm::Hmm::load(bad), std::runtime_error);
  std::stringstream wrong("markov-chain\n");
  EXPECT_THROW(hmm::Hmm::load(wrong), std::runtime_error);
}

}  // namespace
}  // namespace sentinel::core
