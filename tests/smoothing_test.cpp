// Tests: Viterbi smoothing of the correct-state sequence, plus the bursty
// (Gilbert-Elliott) deployment option it helps against.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/smoothing.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

namespace sentinel::core {
namespace {

hmm::MarkovChain dwell_chain() {
  // Two states that dwell long (learned from a clean cycle).
  hmm::MarkovChain mc;
  std::vector<hmm::StateId> seq;
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (int i = 0; i < 12; ++i) seq.push_back(0);
    for (int i = 0; i < 12; ++i) seq.push_back(1);
  }
  mc.add_sequence(seq);
  return mc;
}

TEST(Smoothing, RepairsIsolatedGlitch) {
  const auto mc = dwell_chain();
  std::vector<hmm::StateId> observed(24, 0);
  observed[10] = 1;  // single-window majority flip
  const auto smoothed = smooth_correct_sequence(mc, observed);
  ASSERT_EQ(smoothed.size(), observed.size());
  EXPECT_EQ(smoothed[10], 0u);
  EXPECT_EQ(smoothing_repairs(observed, smoothed), 1u);
}

TEST(Smoothing, KeepsGenuineTransition) {
  const auto mc = dwell_chain();
  std::vector<hmm::StateId> observed;
  for (int i = 0; i < 12; ++i) observed.push_back(0);
  for (int i = 0; i < 12; ++i) observed.push_back(1);
  const auto smoothed = smooth_correct_sequence(mc, observed);
  EXPECT_EQ(smoothed, observed);
  EXPECT_EQ(smoothing_repairs(observed, smoothed), 0u);
}

TEST(Smoothing, PreservesNovelRegime) {
  // A sustained run of a state the chain has never seen must NOT be erased:
  // it is a real new regime (e.g. a fresh fault), not a glitch.
  const auto mc = dwell_chain();
  std::vector<hmm::StateId> observed(10, 0);
  for (int i = 0; i < 8; ++i) observed.push_back(42);
  const auto smoothed = smooth_correct_sequence(mc, observed);
  std::size_t novel = 0;
  for (const auto s : smoothed) novel += s == 42;
  EXPECT_GE(novel, 7u);
}

TEST(Smoothing, Validation) {
  const auto mc = dwell_chain();
  EXPECT_THROW(smooth_correct_sequence(mc, {0, 0, 1}, 0.0), std::invalid_argument);
  EXPECT_THROW(smooth_correct_sequence(mc, {0, 0, 1}, 0.5), std::invalid_argument);
  EXPECT_EQ(smooth_correct_sequence(mc, {0}), std::vector<hmm::StateId>{0});
  EXPECT_THROW(smoothing_repairs({0, 1}, {0}), std::invalid_argument);
}

TEST(Smoothing, PipelineCorrectSequenceAccessor) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  auto simulator = sim::make_gdi_deployment(env, {});
  const auto trace = simulator.run(ec.duration_seconds).trace;

  PipelineConfig cfg;
  for (double t = 0.0; t < kSecondsPerDay; t += 4.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  DetectionPipeline p(cfg);
  p.process_trace(trace);

  const auto seq = p.correct_sequence();
  EXPECT_EQ(seq.size(), p.windows_processed());
  // Smoothing a clean run changes little.
  const auto smoothed = smooth_correct_sequence(p.m_c(), seq);
  EXPECT_LE(smoothing_repairs(seq, smoothed), seq.size() / 10);
}

TEST(BurstyLoss, GilbertElliottDeploymentMatchesLossBudget) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 7.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.bursty_loss = true;
  dc.packet_loss = 0.15;
  auto simulator = sim::make_gdi_deployment(env, dc);
  const auto result = simulator.run(ec.duration_seconds);
  const double loss_rate =
      static_cast<double>(result.stats.lost) / static_cast<double>(result.stats.sampled);
  EXPECT_NEAR(loss_rate, 0.15, 0.04);
}

TEST(BurstyLoss, PipelineStillDiagnosesUnderBursts) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 10.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.bursty_loss = true;
  dc.packet_loss = 0.2;
  auto simulator = sim::make_gdi_deployment(env, dc);

  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
            2.0 * kSecondsPerDay);
  simulator.set_transform(faults::make_transform(plan));
  const auto trace = simulator.run(ec.duration_seconds).trace;

  PipelineConfig cfg;
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 8.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  DetectionPipeline p(cfg);
  p.process_trace(trace);
  const auto report = p.diagnose();
  ASSERT_TRUE(report.sensors.count(6));
  EXPECT_EQ(report.sensors.at(6).kind, AnomalyKind::kStuckAt);
}

}  // namespace
}  // namespace sentinel::core
