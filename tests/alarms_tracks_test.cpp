// Unit tests: AlarmBank (raw -> filtered alarms, per-sensor filters) and
// TrackManager (error/attack tracks with M_CE, paper section 3.1).

#include <gtest/gtest.h>

#include "core/alarms.h"
#include "core/tracks.h"

namespace sentinel::core {
namespace {

AlarmFilterConfig kofn_cfg(std::size_t k = 3, std::size_t n = 5) {
  AlarmFilterConfig cfg;
  cfg.kind = FilterKind::kKofN;
  cfg.k = k;
  cfg.n = n;
  return cfg;
}

TEST(AlarmBank, EdgesReported) {
  AlarmBank bank(kofn_cfg(2, 3));
  auto u = bank.update(1, true);
  EXPECT_TRUE(u.raw);
  EXPECT_FALSE(u.filtered);
  u = bank.update(1, true);
  EXPECT_TRUE(u.filtered);
  EXPECT_TRUE(u.raised_edge);
  u = bank.update(1, true);
  EXPECT_TRUE(u.filtered);
  EXPECT_FALSE(u.raised_edge);  // already active
  u = bank.update(1, false);
  u = bank.update(1, false);
  EXPECT_FALSE(u.filtered);
  EXPECT_TRUE(u.cleared_edge);
}

TEST(AlarmBank, SensorsIndependent) {
  AlarmBank bank(kofn_cfg(1, 1));
  bank.update(1, true);
  EXPECT_TRUE(bank.filtered_active(1));
  EXPECT_FALSE(bank.filtered_active(2));
  bank.update(2, false);
  EXPECT_FALSE(bank.filtered_active(2));
}

TEST(AlarmBank, CountsRawAlarmsAndWindows) {
  AlarmBank bank(kofn_cfg());
  for (int i = 0; i < 10; ++i) bank.update(4, i % 2 == 0);
  EXPECT_EQ(bank.raw_count(4), 5u);
  EXPECT_EQ(bank.window_count(4), 10u);
  EXPECT_EQ(bank.raw_count(99), 0u);
  EXPECT_EQ(bank.window_count(99), 0u);
}

TEST(AlarmBank, SprtAndCusumKindsWork) {
  for (const FilterKind kind : {FilterKind::kSprt, FilterKind::kCusum}) {
    AlarmFilterConfig cfg;
    cfg.kind = kind;
    AlarmBank bank(cfg);
    bool active = false;
    for (int i = 0; i < 50 && !active; ++i) active = bank.update(0, true).filtered;
    EXPECT_TRUE(active) << "kind " << static_cast<int>(kind);
  }
}

// --- TrackManager ------------------------------------------------------------

hmm::OnlineHmmConfig hmm_cfg() { return {}; }

TEST(TrackManagerTest, OpenObserveClose) {
  TrackManager tm(hmm_cfg());
  EXPECT_FALSE(tm.has_active_track(5));
  tm.open(5, 10);
  EXPECT_TRUE(tm.has_active_track(5));
  tm.observe(5, /*correct=*/1, /*error=*/7);
  tm.observe(5, 1, hmm::kBottomSymbol);
  tm.close(5, 12);
  EXPECT_FALSE(tm.has_active_track(5));

  const auto* tracks = tm.tracks(5);
  ASSERT_NE(tracks, nullptr);
  ASSERT_EQ(tracks->size(), 1u);
  EXPECT_EQ((*tracks)[0].opened_window, 10u);
  EXPECT_EQ((*tracks)[0].closed_window, 12u);
  EXPECT_EQ((*tracks)[0].observations, 2u);
  EXPECT_EQ((*tracks)[0].anomalous_observations, 1u);
  EXPECT_GT((*tracks)[0].m_ce.emission(1, 7), 0.0);
}

TEST(TrackManagerTest, ReopenCreatesNewTrack) {
  TrackManager tm(hmm_cfg());
  tm.open(5, 1);
  tm.close(5, 2);
  tm.open(5, 8);
  const auto* tracks = tm.tracks(5);
  ASSERT_EQ(tracks->size(), 2u);
  EXPECT_TRUE((*tracks)[1].active());
  EXPECT_EQ(tm.total_tracks(), 2u);
}

TEST(TrackManagerTest, DoubleOpenIsNoop) {
  TrackManager tm(hmm_cfg());
  tm.open(5, 1);
  tm.open(5, 3);
  EXPECT_EQ(tm.tracks(5)->size(), 1u);
}

TEST(TrackManagerTest, ObserveWithoutTrackIgnored) {
  TrackManager tm(hmm_cfg());
  tm.observe(5, 1, 2);  // no track: ignored, no crash
  EXPECT_EQ(tm.tracks(5), nullptr);
  tm.close(5, 1);  // close without open: ignored
  EXPECT_TRUE(tm.tracked_sensors().empty());
}

TEST(TrackManagerTest, BestTrackIsMostAnomalous) {
  TrackManager tm(hmm_cfg());
  tm.open(5, 1);
  tm.observe(5, 1, 7);
  tm.close(5, 2);
  tm.open(5, 10);
  tm.observe(5, 1, 7);
  tm.observe(5, 1, 8);
  tm.observe(5, 2, 8);
  tm.close(5, 14);
  const Track* best = tm.best_track(5);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->opened_window, 10u);
  EXPECT_EQ(best->anomalous_observations, 3u);
  EXPECT_EQ(tm.best_track(99), nullptr);
}

TEST(TrackManagerTest, TrackedSensors) {
  TrackManager tm(hmm_cfg());
  tm.open(2, 1);
  tm.open(9, 1);
  const auto sensors = tm.tracked_sensors();
  EXPECT_EQ(sensors, (std::vector<SensorId>{2, 9}));
}

}  // namespace
}  // namespace sentinel::core
