// Unit tests: motes, link loss models, collector, simulator.

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "util/stats.h"

namespace sentinel::sim {
namespace {

TEST(Mote, SamplesTruthPlusNoise) {
  const ConstantEnvironment env(AttrVec{20.0, 70.0});
  MoteConfig cfg;
  cfg.id = 3;
  cfg.noise_sigma = 0.5;
  Mote mote(cfg);

  RunningStats temp;
  for (int i = 0; i < 2000; ++i) {
    const auto s = mote.sample(env);
    EXPECT_EQ(s.record.sensor, 3u);
    temp.add(s.record.attrs[0]);
  }
  EXPECT_NEAR(temp.mean(), 20.0, 0.1);
  EXPECT_NEAR(temp.stddev(), 0.5, 0.1);
}

TEST(Mote, PeriodAdvancesSchedule) {
  const ConstantEnvironment env(AttrVec{0.0});
  MoteConfig cfg;
  cfg.sample_period = 300.0;
  Mote mote(cfg);
  EXPECT_DOUBLE_EQ(mote.next_sample_time(), 0.0);
  const auto s0 = mote.sample(env);
  EXPECT_DOUBLE_EQ(s0.record.time, 0.0);
  EXPECT_DOUBLE_EQ(mote.next_sample_time(), 300.0);
}

TEST(Mote, MalformRate) {
  const ConstantEnvironment env(AttrVec{0.0});
  MoteConfig cfg;
  cfg.malform_prob = 0.2;
  Mote mote(cfg);
  int malformed = 0;
  for (int i = 0; i < 5000; ++i) malformed += mote.sample(env).malformed;
  EXPECT_NEAR(malformed / 5000.0, 0.2, 0.03);
}

TEST(Mote, Validation) {
  MoteConfig bad;
  bad.sample_period = 0.0;
  EXPECT_THROW(Mote{bad}, std::invalid_argument);
  MoteConfig bad2;
  bad2.noise_sigma = -1.0;
  EXPECT_THROW(Mote{bad2}, std::invalid_argument);
}

TEST(BernoulliLossTest, MatchesRate) {
  BernoulliLoss link(0.3, 99);
  int delivered = 0;
  for (int i = 0; i < 10000; ++i) delivered += link.deliver(0.0);
  EXPECT_NEAR(delivered / 10000.0, 0.7, 0.03);
  EXPECT_THROW(BernoulliLoss(1.5, 1), std::invalid_argument);
}

TEST(GilbertElliottTest, BurstyLossMatchesStationaryRate) {
  GilbertElliottLoss::Config cfg;
  cfg.p_good_to_bad = 0.05;
  cfg.p_bad_to_good = 0.20;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliottLoss link(cfg);
  // stationary bad prob = 0.05/0.25 = 0.2 -> expected loss rate ~0.2.
  EXPECT_NEAR(link.stationary_bad(), 0.2, 1e-12);
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) delivered += link.deliver(0.0);
  EXPECT_NEAR(static_cast<double>(n - delivered) / n, 0.2, 0.03);
}

TEST(CollectorTest, CountsMalformedSeparately) {
  Collector c;
  c.receive({0, 0.0, {1.0}}, false);
  c.receive({1, 1.0, {2.0}}, true);
  EXPECT_EQ(c.records().size(), 1u);
  EXPECT_EQ(c.malformed_count(), 1u);
}

TEST(Simulator, ProducesTimeSortedTrace) {
  const ConstantEnvironment env(AttrVec{20.0, 70.0});
  Simulator sim(env);
  for (SensorId i = 0; i < 5; ++i) {
    MoteConfig mc;
    mc.id = i;
    sim.add_mote(mc);
  }
  const auto result = sim.run(kSecondsPerHour);
  // 5 motes x 12 samples/hour.
  EXPECT_EQ(result.trace.size(), 60u);
  EXPECT_EQ(result.stats.delivered, 60u);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].time, result.trace[i].time);
  }
}

TEST(Simulator, TransformCanSuppressAndRewrite) {
  const ConstantEnvironment env(AttrVec{20.0});
  Simulator sim(env);
  MoteConfig mc;
  mc.id = 0;
  mc.noise_sigma = 0.0;
  sim.add_mote(mc);
  MoteConfig mc2;
  mc2.id = 1;
  mc2.noise_sigma = 0.0;
  sim.add_mote(mc2);

  sim.set_transform([](SensorId sensor, double, const AttrVec& measured, const AttrVec& truth) {
    EXPECT_EQ(truth, (AttrVec{20.0}));
    if (sensor == 0) return std::optional<AttrVec>{};  // mute sensor 0
    return std::optional<AttrVec>{AttrVec{measured[0] + 100.0}};
  });
  const auto result = sim.run(kSecondsPerHour);
  EXPECT_EQ(result.stats.suppressed, 12u);
  ASSERT_EQ(result.trace.size(), 12u);
  for (const auto& r : result.trace) {
    EXPECT_EQ(r.sensor, 1u);
    EXPECT_DOUBLE_EQ(r.attrs[0], 120.0);
  }
}

TEST(Simulator, LossyLinkDropsPackets) {
  const ConstantEnvironment env(AttrVec{20.0});
  Simulator sim(env);
  MoteConfig mc;
  sim.add_mote(mc, std::make_unique<BernoulliLoss>(0.5, 1));
  const auto result = sim.run(10.0 * kSecondsPerDay);
  EXPECT_GT(result.stats.lost, 0u);
  EXPECT_EQ(result.stats.sampled, result.stats.lost + result.stats.delivered +
                                      result.stats.malformed + result.stats.suppressed);
  EXPECT_NEAR(static_cast<double>(result.stats.lost) / result.stats.sampled, 0.5, 0.05);
}

TEST(Simulator, RunWithoutMotesThrows) {
  const ConstantEnvironment env(AttrVec{0.0});
  Simulator sim(env);
  EXPECT_THROW(sim.run(100.0), std::logic_error);
}

TEST(GdiDeployment, BuildsRequestedFleet) {
  GdiEnvironmentConfig ec;
  ec.duration_seconds = kSecondsPerDay;
  const GdiEnvironment env(ec);
  GdiDeploymentConfig dc;
  dc.num_sensors = 10;
  auto sim = make_gdi_deployment(env, dc);
  EXPECT_EQ(sim.mote_count(), 10u);
  const auto result = sim.run(kSecondsPerDay);
  // 10 motes x 288 samples/day, minus losses.
  EXPECT_EQ(result.stats.sampled, 2880u);
  EXPECT_GT(result.stats.delivered, 2000u);
  EXPECT_GT(result.stats.lost, 0u);
  EXPECT_GT(result.stats.malformed, 0u);
}

}  // namespace
}  // namespace sentinel::sim
