// SNTRB1 binary trace format tests: bit-exact round trips (including the
// doubles CSV cannot preserve -- NaN payloads, infinities, subnormals,
// full-precision values), and rejection of truncated, corrupt, and
// wrong-magic files with diagnosable errors.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "trace/binary_trace.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"

namespace sentinel {
namespace {

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::vector<SensorRecord> read_all(const std::string& path, std::size_t expected_dims = 0) {
  BinaryTraceReader reader(path, expected_dims);
  std::vector<SensorRecord> all;
  std::vector<SensorRecord> batch;
  while (reader.read_batch(batch, 7) > 0) {  // odd batch size: exercise the tail
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

/// Bit-pattern equality: NaN == NaN fails under operator==, but a format
/// that claims exact round trips must preserve the very bits.
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_bits_equal(const std::vector<SensorRecord>& a, const std::vector<SensorRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sensor, b[i].sensor) << "record " << i;
    EXPECT_TRUE(bits_equal(a[i].time, b[i].time)) << "record " << i;
    ASSERT_EQ(a[i].attrs.size(), b[i].attrs.size()) << "record " << i;
    for (std::size_t d = 0; d < a[i].attrs.size(); ++d) {
      EXPECT_TRUE(bits_equal(a[i].attrs[d], b[i].attrs[d])) << "record " << i << " attr " << d;
    }
  }
}

TEST(BinaryTrace, RoundTripPropertyWithHostileDoubles) {
  std::mt19937_64 rng(20260806);
  const double specials[] = {0.0,
                             -0.0,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::signaling_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             -std::numeric_limits<double>::lowest(),
                             1e300,
                             -1e-300,
                             0.1};  // not exactly representable
  std::uniform_real_distribution<double> uniform(-1e6, 1e6);

  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dims = 1 + rng() % 4;
    const std::size_t count = rng() % 200;
    std::vector<SensorRecord> trace(count);
    for (auto& rec : trace) {
      rec.sensor = static_cast<SensorId>(rng());
      rec.time = rng() % 3 == 0 ? specials[rng() % std::size(specials)] : uniform(rng);
      rec.attrs.resize(dims);
      for (auto& x : rec.attrs) {
        x = rng() % 3 == 0 ? specials[rng() % std::size(specials)] : uniform(rng);
      }
    }
    const auto path = temp_path("bt_prop_" + std::to_string(trial) + ".snt");
    write_trace_binary_file(path, trace);
    expect_bits_equal(read_all(path), trace);
    std::remove(path.c_str());
  }
}

TEST(BinaryTrace, EmptyTraceRoundTrips) {
  const auto path = temp_path("bt_empty.snt");
  write_trace_binary_file(path, {});
  BinaryTraceReader reader(path);
  EXPECT_EQ(reader.total_records(), 0u);
  std::vector<SensorRecord> batch;
  EXPECT_EQ(reader.read_batch(batch, 16), 0u);
  std::remove(path.c_str());
}

TEST(BinaryTrace, ReadTraceFileAutoDetectsBinary) {
  const std::vector<SensorRecord> trace{{3, 60.0, {1.5, 2.5}}, {4, 120.0, {3.5, 4.5}}};
  const auto path = temp_path("bt_auto.snt");
  write_trace_binary_file(path, trace);
  const auto result = read_trace_file(path);
  EXPECT_EQ(result.records, trace);
  EXPECT_EQ(result.malformed_lines, 0u);
  std::remove(path.c_str());
}

TEST(BinaryTrace, WriterRejectsMixedDims) {
  const auto path = temp_path("bt_mixed.snt");
  BinaryTraceWriter w(path);
  w.append(SensorRecord{0, 0.0, {1.0, 2.0}});
  EXPECT_THROW(w.append(SensorRecord{0, 1.0, {1.0}}), std::runtime_error);
  w.close();
  std::remove(path.c_str());
}

TEST(BinaryTrace, WrongMagicRejected) {
  const auto path = temp_path("bt_magic.snt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "XXXXXXXX and then some bytes that are long enough for a header";
  }
  EXPECT_THROW(
      {
        try {
          BinaryTraceReader r(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);
  // The auto-detecting reader treats a non-magic file as CSV instead.
  const auto reader = open_trace_reader(path);
  EXPECT_NE(dynamic_cast<CsvTraceReader*>(reader.get()), nullptr);
  std::remove(path.c_str());
}

TEST(BinaryTrace, TruncatedHeaderRejected) {
  const auto path = temp_path("bt_short.snt");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(kBinaryTraceMagic), 8);
    // Header cut off after the magic.
  }
  EXPECT_THROW(
      {
        try {
          BinaryTraceReader r(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryTrace, TruncatedPayloadYieldsPrefixAndDataLossStatus) {
  const std::vector<SensorRecord> trace{{0, 0.0, {1.0, 2.0}}, {1, 60.0, {3.0, 4.0}}};
  const auto path = temp_path("bt_trunc.snt");
  write_trace_binary_file(path, trace);

  // Chop off the last record's final bytes: the header's count now promises
  // more records than the file holds. That is data loss (a crashed writer,
  // a partial upload), not caller misuse: the reader serves every complete
  // record and ends the stream with a sticky non-ok status.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 5);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  BinaryTraceReader reader(path);
  EXPECT_TRUE(reader.status().is_ok());  // nothing read yet
  EXPECT_EQ(reader.total_records(), 2u);
  std::vector<SensorRecord> batch;
  std::vector<SensorRecord> all;
  while (reader.read_batch(batch, 16) > 0) all.insert(all.end(), batch.begin(), batch.end());
  ASSERT_EQ(all.size(), 1u);
  expect_bits_equal(all, {trace[0]});
  EXPECT_EQ(reader.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(reader.status().message().find("truncated"), std::string::npos)
      << reader.status().to_string();

  // The convenience entry point yields the same prefix with the same status.
  const auto result = read_trace_file(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.status.code(), util::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(BinaryTrace, CorruptDimsRejected) {
  const auto path = temp_path("bt_dims.snt");
  write_trace_binary_file(path, {{0, 0.0, {1.0}}});
  // Overwrite the dims field (offset 8) with 0.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  const char zeros[4] = {};
  f.write(zeros, 4);
  f.close();
  EXPECT_THROW(BinaryTraceReader r(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryTrace, ExpectedDimsMismatchRejected) {
  const auto path = temp_path("bt_want3.snt");
  write_trace_binary_file(path, {{0, 0.0, {1.0, 2.0}}});
  EXPECT_NO_THROW(BinaryTraceReader(path, 2));
  EXPECT_THROW(BinaryTraceReader(path, 3), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryTrace, CsvTranscodePreservesParsedValues) {
  // CSV -> records -> binary -> records must be lossless on the parsed
  // values (the CSV parse itself is where precision is decided).
  const std::string csv =
      "0,0,21.53625,70.124\n"
      "1,300.125,21.7,69.5\n"
      "2,600.0625,-0.0001,1e-12\n";
  const auto csv_path = temp_path("bt_from.csv");
  {
    std::ofstream out(csv_path);
    out << csv;
  }
  const auto parsed = read_trace_file(csv_path);
  const auto bin_path = temp_path("bt_from.snt");
  write_trace_binary_file(bin_path, parsed.records);
  expect_bits_equal(read_all(bin_path, 2), parsed.records);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace sentinel
