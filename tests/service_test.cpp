// Resident fleet service (src/service): wire framing, the determinism
// contract (a trace streamed over N concurrent connections yields the same
// per-region report bytes as ingest_file), admission-control stream
// control, and checkpointed shutdown/resume.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.h"
#include "core/pipeline.h"
#include "service/client.h"
#include "service/frame.h"
#include "service/frame_reader.h"
#include "service/server.h"
#include "sim/simulator.h"
#include "trace/binary_trace.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"

namespace sentinel {
namespace {

/// The golden 7-day scenario from golden_report_test.cpp: 10 GDI sensors,
/// a stuck-at fault on sensor 6 from day 2, an additive offset on sensor 3
/// from day 4. Generated once per process.
const std::vector<SensorRecord>& golden_trace() {
  static const std::vector<SensorRecord> trace = [] {
    sim::GdiEnvironmentConfig ec;
    ec.duration_seconds = 7.0 * kSecondsPerDay;
    ec.seed = 20260806;
    const sim::GdiEnvironment env(ec);
    sim::GdiDeploymentConfig dc;
    dc.num_sensors = 10;
    dc.seed = 20260806;
    return sim::make_gdi_deployment(env, dc).run(ec.duration_seconds).trace;
  }();
  return trace;
}

core::PipelineConfig golden_config() {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 7.0 * kSecondsPerDay;
  ec.seed = 20260806;
  const sim::GdiEnvironment env(ec);
  core::PipelineConfig cfg;
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 2.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  cfg.initial_states.resize(6);
  return cfg;
}

/// Path of the golden trace as an SNTRB1 file (written once per process).
/// The pid keeps concurrent test processes (ctest -j) from rewriting the
/// file under each other's readers.
const std::string& golden_trace_path() {
  static const std::string path = [] {
    const std::string p = testing::TempDir() + "service_golden." +
                          std::to_string(::getpid()) + ".snt";
    write_trace_binary_file(p, golden_trace());
    return p;
  }();
  return path;
}

/// Batch baseline: `regions` regions all ingesting the golden trace from
/// disk, collective finish, rendered fleet report.
std::string batch_report(std::size_t regions, std::size_t threads) {
  core::FleetConfig fc;
  fc.threads = threads;
  core::FleetMonitor fleet(fc);
  for (std::size_t i = 0; i < regions; ++i) {
    fleet.add_region("tenant" + std::to_string(i), golden_config());
  }
  for (std::size_t i = 0; i < regions; ++i) {
    const auto sum = fleet.ingest_file("tenant" + std::to_string(i), golden_trace_path());
    EXPECT_TRUE(sum.status.is_ok());
  }
  fleet.finish();
  return core::to_string(fleet.diagnose());
}

/// Served run: `conns` concurrent connections, one per tenant region, all
/// streaming the golden trace at once; then a final fleet-scope report.
std::string served_report(std::size_t conns, std::size_t threads,
                          std::size_t frame_records = 4096) {
  service::ServerConfig sc;
  sc.fleet.threads = threads;
  sc.region = golden_config();
  service::Server server(std::move(sc));
  server.start();

  std::vector<std::thread> tenants;
  std::vector<std::string> errors(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    tenants.emplace_back([&, i] {
      try {
        service::ClientConfig cc;
        cc.port = server.port();
        cc.frame_records = frame_records;
        service::Client client(cc);
        const auto offset = client.hello("tenant" + std::to_string(i), 2);
        if (!offset.is_ok()) {
          errors[i] = offset.status().to_string();
          return;
        }
        const auto reader = open_trace_reader(golden_trace_path());
        const auto sent = client.stream_reader(*reader);
        if (!sent.is_ok()) errors[i] = sent.status().to_string();
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  }
  for (auto& t : tenants) t.join();
  for (const auto& e : errors) EXPECT_TRUE(e.empty()) << e;

  service::ClientConfig cc;
  cc.port = server.port();
  service::Client control(cc);
  const auto report = control.report(/*finalize=*/true, /*fleet_scope=*/true);
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  server.stop();
  return report.is_ok() ? *report : std::string();
}

TEST(ServiceFraming, RecordCodecRoundTripsThroughFrameReader) {
  std::vector<SensorRecord> records;
  for (std::uint32_t i = 0; i < 100; ++i) {
    records.push_back(SensorRecord{i, 17.5 * i, AttrVec{1.0 + i, -2.0 * i, 0.25}});
  }
  const std::size_t rb = binary_trace_record_bytes(3);
  std::vector<unsigned char> wire(records.size() * rb);
  for (std::size_t i = 0; i < records.size(); ++i) {
    encode_binary_record(wire.data() + i * rb, records[i]);
  }

  service::FrameReader reader(3);
  reader.reset(wire.data(), records.size());
  std::vector<SensorRecord> out;
  std::vector<SensorRecord> all;
  while (reader.read_batch(out, 17) > 0) all.insert(all.end(), out.begin(), out.end());
  ASSERT_EQ(all.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(all[i], records[i]) << "record " << i;
  }
}

TEST(ServiceDeterminism, SingleConnectionMatchesIngestFile) {
  const std::string want = batch_report(1, 1);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(served_report(1, 1), want);
}

TEST(ServiceDeterminism, FourConcurrentConnectionsMatchIngestFileAtAnyThreads) {
  const std::string want = batch_report(4, 1);
  ASSERT_FALSE(want.empty());
  // Fleet threading is byte-invisible, so the serial batch baseline is the
  // reference for both a serial and a sharded resident fleet -- whatever
  // order the four tenants' frames interleave in.
  EXPECT_EQ(served_report(4, 1), want);
  EXPECT_EQ(served_report(4, 4), want);
}

TEST(ServiceDeterminism, TinyFramesDoNotChangeTheReport) {
  // 64-record frames force thousands of ingest calls and many flush
  // barriers; the report must not care how the stream was framed.
  const std::string want = batch_report(1, 1);
  EXPECT_EQ(served_report(1, 1, /*frame_records=*/64), want);
}

TEST(ServiceControlPlane, SnapshotReportMetricsAndHealthAnswerMidStream) {
  service::ServerConfig sc;
  sc.region = golden_config();
  service::Server server(std::move(sc));
  server.start();

  service::ClientConfig cc;
  cc.port = server.port();
  service::Client client(cc);
  ASSERT_TRUE(client.hello("north", 2).is_ok());
  const auto& trace = golden_trace();
  ASSERT_TRUE(client.send({trace.data(), trace.size() / 2}).is_ok());

  // Live snapshot: does not finalize, stream continues afterwards.
  const auto snapshot = client.report(/*finalize=*/false, /*fleet_scope=*/false);
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();
  EXPECT_NE(snapshot->find("network:"), std::string::npos);

  const auto health = client.health_text();
  ASSERT_TRUE(health.is_ok());
  EXPECT_NE(health->find("region north healthy"), std::string::npos) << *health;

  const auto metrics = client.metrics_json();
  ASSERT_TRUE(metrics.is_ok());
  EXPECT_NE(metrics->find("fleet.region.north.records_ingested"), std::string::npos);
  EXPECT_NE(metrics->find("fleet.report_snapshots"), std::string::npos);

  // The rest of the stream still lands and finalizes normally.
  ASSERT_TRUE(client.send({trace.data() + trace.size() / 2, trace.size() - trace.size() / 2})
                  .is_ok());
  const auto final_report = client.report(/*finalize=*/true, /*fleet_scope=*/false);
  ASSERT_TRUE(final_report.is_ok());
  EXPECT_NE(final_report->find("network:"), std::string::npos);
  server.stop();
}

TEST(ServiceAdmission, OutOfOrderFrameIsBouncedWithExpectedSeq) {
  service::ServerConfig sc;
  sc.region = golden_config();
  service::Server server(std::move(sc));
  server.start();

  // Raw socket: drive the protocol by hand to provoke the reject.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  std::vector<unsigned char> hello(4 + 5);
  service::put_u32le(hello.data(), 2);
  std::memcpy(hello.data() + 4, "manual", 5);
  ASSERT_TRUE(service::write_frame(fd, service::FrameType::kHello, hello.data(), hello.size())
                  .is_ok());
  service::Frame f;
  ASSERT_TRUE(service::read_frame(fd, f).is_ok());
  ASSERT_EQ(f.type, service::FrameType::kAck);

  // Frame with seq 7 while the server expects 0.
  const std::size_t rb = binary_trace_record_bytes(2);
  std::vector<unsigned char> payload(service::kRecordsHeaderBytes + rb);
  service::put_u64le(payload.data(), 7);
  service::put_u32le(payload.data() + 8, 1);
  encode_binary_record(payload.data() + service::kRecordsHeaderBytes,
                       SensorRecord{1, 1.0, AttrVec{20.0, 50.0}});
  ASSERT_TRUE(
      service::write_frame(fd, service::FrameType::kRecords, payload.data(), payload.size())
          .is_ok());

  ASSERT_TRUE(service::read_frame(fd, f).is_ok());
  ASSERT_EQ(f.type, service::FrameType::kEvent);
  service::AckBody body;
  ASSERT_TRUE(service::parse_ack(f.payload, body).is_ok());
  EXPECT_EQ(body.code, util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(body.value, 0u);  // "resend from sequence 0"

  // Resending with the expected seq is accepted (no event, flush acks 1).
  service::put_u64le(payload.data(), 0);
  ASSERT_TRUE(
      service::write_frame(fd, service::FrameType::kRecords, payload.data(), payload.size())
          .is_ok());
  ASSERT_TRUE(service::write_frame(fd, service::FrameType::kFlush, nullptr, 0).is_ok());
  ASSERT_TRUE(service::read_frame(fd, f).is_ok());
  ASSERT_EQ(f.type, service::FrameType::kAck);
  ASSERT_TRUE(service::parse_ack(f.payload, body).is_ok());
  EXPECT_EQ(body.code, util::StatusCode::kOk);
  EXPECT_EQ(body.value, 1u);  // records_ingested

  ::close(fd);
  server.stop();
}

TEST(ServiceAdmission, RecordsBeforeHelloIsRejected) {
  service::ServerConfig sc;
  sc.region = golden_config();
  service::Server server(std::move(sc));
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  unsigned char payload[service::kRecordsHeaderBytes] = {};
  ASSERT_TRUE(
      service::write_frame(fd, service::FrameType::kRecords, payload, sizeof payload).is_ok());
  service::Frame f;
  ASSERT_TRUE(service::read_frame(fd, f).is_ok());
  ASSERT_EQ(f.type, service::FrameType::kAck);
  service::AckBody body;
  ASSERT_TRUE(service::parse_ack(f.payload, body).is_ok());
  EXPECT_EQ(body.code, util::StatusCode::kFailedPrecondition);
  ::close(fd);
  server.stop();
}

TEST(ServiceAdmission, ShardFullRejectionsAreRetriedToTheSameReport) {
  // A sharded fleet with a tiny queue bound: frames race the drain worker,
  // so some get bounced with kResourceExhausted and retried by the client.
  // Whether or not any given run provokes a bounce, the report must equal
  // the batch baseline -- the rejection path is byte-invisible.
  const std::string want = batch_report(1, 1);
  service::ServerConfig sc;
  sc.fleet.threads = 2;
  sc.fleet.max_queue_records = 512;
  sc.region = golden_config();
  service::Server server(std::move(sc));
  server.start();

  service::ClientConfig cc;
  cc.port = server.port();
  cc.frame_records = 256;
  service::Client client(cc);
  ASSERT_TRUE(client.hello("tenant0", 2).is_ok());
  const auto reader = open_trace_reader(golden_trace_path());
  const auto sent = client.stream_reader(*reader);
  ASSERT_TRUE(sent.is_ok()) << sent.status().to_string();
  EXPECT_EQ(*sent, golden_trace().size());

  const auto report = client.report(/*finalize=*/true, /*fleet_scope=*/true);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(*report, want);
  RecordProperty("rejected_frames", static_cast<int>(client.rejected_frames()));
  server.stop();
}

TEST(ServiceResume, ShutdownCheckpointThenResumeIsByteIdentical) {
  const std::string want = batch_report(1, 1);
  const std::string dir = testing::TempDir() + "service_resume_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto& trace = golden_trace();
  const std::size_t cut = trace.size() / 2;

  // First server life: stream half the trace, then a clean shutdown commits
  // the final (mid-window) checkpoint.
  {
    service::ServerConfig sc;
    sc.fleet.checkpoint_dir = dir;
    sc.fleet.checkpoint_every_records = 0;  // only the shutdown checkpoint
    sc.region = golden_config();
    service::Server server(std::move(sc));
    server.start();
    service::ClientConfig cc;
    cc.port = server.port();
    service::Client client(cc);
    ASSERT_TRUE(client.hello("tenant0", 2).is_ok());
    ASSERT_TRUE(client.send({trace.data(), cut}).is_ok());
    ASSERT_TRUE(client.flush().is_ok());
    ASSERT_TRUE(client.shutdown_server().is_ok());
    server.stop();
    ASSERT_TRUE(server.stopped());
  }

  // Second life: --resume restores the region; HELLO names the covered
  // offset and the tenant streams the full trace from it. The final report
  // must match a never-interrupted batch run byte for byte.
  {
    service::ServerConfig sc;
    sc.fleet.checkpoint_dir = dir;
    sc.resume = true;
    sc.region = golden_config();
    service::Server server(std::move(sc));
    server.start();
    service::ClientConfig cc;
    cc.port = server.port();
    service::Client client(cc);
    const auto offset = client.hello("tenant0", 2);
    ASSERT_TRUE(offset.is_ok());
    EXPECT_EQ(*offset, cut);
    ASSERT_TRUE(
        client.send({trace.data() + *offset, trace.size() - *offset}).is_ok());
    const auto report = client.report(/*finalize=*/true, /*fleet_scope=*/true);
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(*report, want);
    server.stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(ServiceLifecycle, ReconnectingTenantResumesFromLiveOffset) {
  service::ServerConfig sc;
  sc.region = golden_config();
  service::Server server(std::move(sc));
  server.start();

  const auto& trace = golden_trace();
  const std::size_t cut = trace.size() / 3;
  service::ClientConfig cc;
  cc.port = server.port();
  {
    service::Client first(cc);
    ASSERT_TRUE(first.hello("tenant0", 2).is_ok());
    ASSERT_TRUE(first.send({trace.data(), cut}).is_ok());
    ASSERT_TRUE(first.flush().is_ok());
  }  // connection drops; the region stays resident

  service::Client second(cc);
  const auto offset = second.hello("tenant0", 2);
  ASSERT_TRUE(offset.is_ok());
  EXPECT_EQ(*offset, cut);  // "stream from here"
  ASSERT_TRUE(second.send({trace.data() + cut, trace.size() - cut}).is_ok());
  const auto report = second.report(/*finalize=*/true, /*fleet_scope=*/true);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(*report, batch_report(1, 1));
  server.stop();
}

}  // namespace
}  // namespace sentinel
