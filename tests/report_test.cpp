// Unit tests: diagnosis report rendering (human-readable and JSON).

#include <gtest/gtest.h>

#include "core/report.h"

namespace sentinel::core {
namespace {

TEST(ReportStrings, VerdictAndKindNames) {
  EXPECT_EQ(to_string(Verdict::kNormal), "normal");
  EXPECT_EQ(to_string(Verdict::kError), "error");
  EXPECT_EQ(to_string(Verdict::kAttack), "attack");
  EXPECT_EQ(to_string(AnomalyKind::kNone), "none");
  EXPECT_EQ(to_string(AnomalyKind::kStuckAt), "stuck-at");
  EXPECT_EQ(to_string(AnomalyKind::kCalibration), "calibration");
  EXPECT_EQ(to_string(AnomalyKind::kAdditive), "additive");
  EXPECT_EQ(to_string(AnomalyKind::kRandomNoise), "random-noise");
  EXPECT_EQ(to_string(AnomalyKind::kUnknownError), "unknown-error");
  EXPECT_EQ(to_string(AnomalyKind::kDynamicCreation), "dynamic-creation");
  EXPECT_EQ(to_string(AnomalyKind::kDynamicDeletion), "dynamic-deletion");
  EXPECT_EQ(to_string(AnomalyKind::kDynamicChange), "dynamic-change");
  EXPECT_EQ(to_string(AnomalyKind::kMixedAttack), "mixed-attack");
}

Diagnosis sample_stuck() {
  Diagnosis d;
  d.verdict = Verdict::kError;
  d.kind = AnomalyKind::kStuckAt;
  d.stuck_state = 7;
  d.stuck_value = {15.0, 1.0};
  d.explanation = "all rows share a column";
  return d;
}

TEST(ReportStrings, DiagnosisIncludesEvidence) {
  const auto s = to_string(sample_stuck());
  EXPECT_NE(s.find("error/stuck-at"), std::string::npos);
  EXPECT_NE(s.find("stuck_state=7(15,1)"), std::string::npos);
  EXPECT_NE(s.find("all rows share a column"), std::string::npos);

  Diagnosis cal;
  cal.verdict = Verdict::kError;
  cal.kind = AnomalyKind::kCalibration;
  cal.gain = {0.7, 0.8};
  const auto cs = to_string(cal);
  EXPECT_NE(cs.find("gain=(0.70,0.80)"), std::string::npos);

  Diagnosis change;
  change.verdict = Verdict::kAttack;
  change.kind = AnomalyKind::kDynamicChange;
  change.changed_states = {{1, 9}};
  const auto chs = to_string(change);
  EXPECT_NE(chs.find("1->9"), std::string::npos);
}

TEST(ReportStrings, ReportListsSensors) {
  DiagnosisReport r;
  r.network.verdict = Verdict::kNormal;
  r.sensors[6] = sample_stuck();
  const auto s = to_string(r);
  EXPECT_NE(s.find("network: normal"), std::string::npos);
  EXPECT_NE(s.find("sensor 6: error/stuck-at"), std::string::npos);
}

TEST(ReportJson, DiagnosisFields) {
  const auto j = to_json(sample_stuck());
  EXPECT_NE(j.find("\"verdict\":\"error\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"stuck-at\""), std::string::npos);
  EXPECT_NE(j.find("\"stuck_state\":7"), std::string::npos);
  EXPECT_NE(j.find("\"stuck_value\":[15,1]"), std::string::npos);
  EXPECT_NE(j.find("\"explanation\":\"all rows share a column\""), std::string::npos);
}

TEST(ReportJson, EscapesQuotesAndBackslashes) {
  Diagnosis d;
  d.explanation = "quote \" and backslash \\ here";
  const auto j = to_json(d);
  EXPECT_NE(j.find("quote \\\" and backslash \\\\ here"), std::string::npos);
}

TEST(ReportJson, ReportShape) {
  DiagnosisReport r;
  r.network.verdict = Verdict::kAttack;
  r.network.kind = AnomalyKind::kDynamicDeletion;
  Diagnosis d;
  d.verdict = Verdict::kAttack;
  d.kind = AnomalyKind::kDynamicDeletion;
  r.sensors[8] = d;
  r.sensors[9] = d;
  const auto j = to_json(r);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"network\":{"), std::string::npos);
  EXPECT_NE(j.find("\"sensors\":{\"8\":"), std::string::npos);
  EXPECT_NE(j.find(",\"9\":"), std::string::npos);
  // Balanced braces (crude structural check).
  int depth = 0;
  for (const char c : j) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ReportJson, ChangedStatesArray) {
  Diagnosis d;
  d.verdict = Verdict::kAttack;
  d.kind = AnomalyKind::kDynamicChange;
  d.changed_states = {{1, 9}, {2, 10}};
  const auto j = to_json(d);
  EXPECT_NE(j.find("\"changed_states\":[[1,9],[2,10]]"), std::string::npos);
}

}  // namespace
}  // namespace sentinel::core
