// Tests: trace replay / re-injection (the paper's section 4.2 methodology:
// inject anomalies into a recorded trace).

#include <gtest/gtest.h>

#include <memory>

#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/replay.h"
#include "sim/simulator.h"
#include "util/vecn.h"

namespace sentinel::faults {
namespace {

std::vector<SensorRecord> recorded_deployment(double days, std::uint64_t seed) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = days * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.seed = seed;
  auto simulator = sim::make_gdi_deployment(env, dc);
  return simulator.run(ec.duration_seconds).trace;
}

TEST(TraceEnvironmentTest, ReconstructsTruthFromRecording) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 4.0 * kSecondsPerDay;
  const sim::GdiEnvironment real_env(ec);
  const auto trace = recorded_deployment(4.0, ec.seed);

  const TraceEnvironment reconstructed(trace);
  EXPECT_EQ(reconstructed.dims(), 2u);
  EXPECT_GT(reconstructed.windows(), 90u);

  // The reconstruction tracks the true environment to within the sensor
  // noise / interpolation error.
  double worst = 0.0;
  for (double t = kSecondsPerHour; t < ec.duration_seconds - kSecondsPerHour;
       t += 2.0 * kSecondsPerHour) {
    worst = std::max(worst, vecn::dist(reconstructed.truth(t), real_env.truth(t)));
  }
  EXPECT_LT(worst, 4.0);
}

TEST(TraceEnvironmentTest, RobustToAFaultySensorInTheRecording) {
  // The recording itself contains a stuck sensor; the median-based truth
  // reconstruction must ignore it.
  auto trace = recorded_deployment(2.0, 7);
  for (auto& r : trace) {
    if (r.sensor == 4) r.attrs = {15.0, 1.0};
  }
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 2.0 * kSecondsPerDay;
  ec.seed = 7;
  const sim::GdiEnvironment real_env(ec);
  const TraceEnvironment reconstructed(trace);
  for (double t = kSecondsPerHour; t < ec.duration_seconds; t += 6.0 * kSecondsPerHour) {
    EXPECT_LT(vecn::dist(reconstructed.truth(t), real_env.truth(t)), 4.0) << t;
  }
}

TEST(TraceEnvironmentTest, ClampsAndValidates) {
  EXPECT_THROW(TraceEnvironment({}, {}), std::invalid_argument);
  const std::vector<SensorRecord> tiny{{0, 100.0, {5.0}}, {1, 120.0, {7.0}}};
  const TraceEnvironment env(tiny);
  EXPECT_EQ(env.truth(-100.0), env.truth(0.0));   // clamp left
  EXPECT_EQ(env.truth(1e9), env.truth(100000.0));  // clamp right
}

TEST(InjectIntoTrace, OnlyTargetedSensorsRewritten) {
  const auto trace = recorded_deployment(1.0, 3);
  const TraceEnvironment env(trace);
  InjectionPlan plan;
  plan.add(2, std::make_unique<StuckAtFault>(AttrVec{15.0, 1.0}));

  const auto injected = inject_into_trace(trace, plan, env);
  ASSERT_EQ(injected.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].sensor == 2) {
      EXPECT_EQ(injected[i].attrs, (AttrVec{15.0, 1.0}));
    } else {
      EXPECT_EQ(injected[i].attrs, trace[i].attrs);
    }
    EXPECT_DOUBLE_EQ(injected[i].time, trace[i].time);
  }
}

TEST(InjectIntoTrace, SuppressedPacketsDropped) {
  const auto trace = recorded_deployment(1.0, 3);
  const TraceEnvironment env(trace);
  InjectionPlan plan;
  plan.add(2, std::make_unique<MuteFault>());
  const auto injected = inject_into_trace(trace, plan, env);
  std::size_t sensor2 = 0;
  for (const auto& r : injected) sensor2 += r.sensor == 2;
  EXPECT_EQ(sensor2, 0u);
  EXPECT_LT(injected.size(), trace.size());
}

TEST(InjectIntoTrace, ReinjectedAttackIsClassifiedEndToEnd) {
  // The paper's full section 4.2 loop on a *recording*: reconstruct truth,
  // inject a deletion coalition, run the pipeline, classify.
  const auto trace = recorded_deployment(14.0, 42);
  const TraceEnvironment env(trace);

  InjectionPlan plan;
  for (const SensorId s : {7u, 8u, 9u}) {
    DeletionAttackConfig ac;
    ac.deleted = StateRegion{{31.0, 56.0}, 7.0};
    ac.hold_state = {24.0, 70.0};
    ac.fraction = 0.3;
    plan.add(s, std::make_unique<DynamicDeletionAttack>(ac), 2.0 * kSecondsPerDay);
  }
  const auto attacked = inject_into_trace(trace, plan, env);

  core::PipelineConfig cfg;
  for (double t = 0.0; t < 14.0 * kSecondsPerDay; t += 3.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  Rng rng(2, "replay-kmeans");
  cfg.initial_states = core::kmeans(cfg.initial_states, 6, rng).centroids;

  core::DetectionPipeline p(cfg);
  p.process_trace(attacked);
  const auto report = p.diagnose();
  EXPECT_EQ(report.network.verdict, core::Verdict::kAttack);
  EXPECT_EQ(report.network.kind, core::AnomalyKind::kDynamicDeletion);
}

}  // namespace
}  // namespace sentinel::faults
