// Tests: the columnar windower against the legacy map-based reference.
//
// PR "columnar windowing data plane" rebuilt Windower around slot-indexed
// SoA accumulators and batched kernels; the contract is that every emitted
// ObservationSet is *bit-identical* to what the old std::map-based
// finalization produced. This file embeds that legacy implementation
// verbatim (from the pre-columnar source) as an in-test reference and
// property-tests the two against each other over hostile traces:
// out-of-order timestamps within a window, sparse/absent sensors,
// single-record windows, NaN/negative/huge times, multi-window gaps, and
// special attribute values (inf, denormals, signed zero).
//
// Kernel-level coverage note: the accumulation kernels themselves are
// cross-checked per level in kernels_test.cpp (AccumRows*/SumRows*), and the
// CI scalar job re-runs this whole suite under SENTINEL_KERNELS=scalar, so
// the bit-identity property here is exercised at every dispatch level.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "trace/windower.h"
#include "util/serialize.h"
#include "util/vecn.h"

namespace sentinel {
namespace {

// --- the legacy map-based windower, verbatim -------------------------------

namespace legacy {

class Windower {
 public:
  explicit Windower(double window_seconds) : window_seconds_(window_seconds) {}

  template <typename Fn>
  void add(const SensorRecord& rec, Fn&& on_window) {
    const auto idx = index_for(rec.time);
    if (current_index_ == 0) {
      open_window(idx);
    } else if (idx < current_index_) {
      ++late_records_;
      return;
    } else if (idx > current_index_) {
      on_window(finalize_current());
      for (std::size_t i = current_index_ + 1; i < idx; ++i) {
        ObservationSet empty;
        empty.window_index = i;
        empty.window_start = window_seconds_ * static_cast<double>(i - 1);
        empty.window_end = window_seconds_ * static_cast<double>(i);
        on_window(std::move(empty));
      }
      open_window(idx);
    }
    pending_.push_back(rec);
  }

  std::optional<ObservationSet> flush() {
    if (current_index_ == 0 || pending_.empty()) return std::nullopt;
    auto set = finalize_current();
    open_window(current_index_);
    return set;
  }

  std::size_t late_records() const { return late_records_; }
  std::size_t clamped_records() const { return clamped_records_; }

 private:
  ObservationSet finalize_current() {
    ObservationSet set;
    set.window_index = current_index_;
    set.window_start = window_seconds_ * static_cast<double>(current_index_ - 1);
    set.window_end = window_seconds_ * static_cast<double>(current_index_);
    std::map<SensorId, std::vector<AttrVec>> by_sensor;
    for (auto& rec : pending_) {
      set.raw.push_back(rec.attrs);
      by_sensor[rec.sensor].push_back(std::move(rec.attrs));
    }
    set.rep_sensors.reserve(by_sensor.size());
    set.rep_points.reserve(by_sensor.size());
    set.rep_sums.reserve(by_sensor.size());
    for (auto& [id, samples] : by_sensor) {
      auto rep = vecn::mean(samples);
      set.per_sensor.emplace(id, rep);
      set.rep_sensors.push_back(id);
      set.rep_sums.push_back(vecn::scalar_sum(rep));
      if (set.rep_total.empty()) set.rep_total.assign(rep.size(), 0.0);
      for (std::size_t a = 0; a < set.rep_total.size() && a < rep.size(); ++a) {
        set.rep_total[a] += rep[a];
      }
      set.rep_points.push_back(std::move(rep));
    }
    if (!set.raw.empty()) vecn::mean_into(set.raw, set.cached_mean);
    return set;
  }

  void open_window(std::size_t index) {
    current_index_ = index;
    pending_.clear();
  }

  std::size_t index_for(double time) {
    const double idx = std::floor(time / window_seconds_);
    if (!(idx >= 0.0)) {
      ++clamped_records_;
      return 1;
    }
    constexpr double kMaxIndex = 9.0e18;
    if (idx >= kMaxIndex) {
      ++clamped_records_;
      return static_cast<std::size_t>(kMaxIndex);
    }
    return static_cast<std::size_t>(idx) + 1;
  }

  double window_seconds_;
  std::size_t current_index_ = 0;
  std::vector<SensorRecord> pending_;
  std::size_t late_records_ = 0;
  std::size_t clamped_records_ = 0;
};

}  // namespace legacy

// --- bit-exact ObservationSet comparison -----------------------------------

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_same_vec(const AttrVec& got, const AttrVec& want, const std::string& tag) {
  ASSERT_EQ(got.size(), want.size()) << tag;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(bits(got[i]), bits(want[i])) << tag << " [" << i << "] got=" << got[i]
                                           << " want=" << want[i];
  }
}

void expect_same_window(const ObservationSet& got, const ObservationSet& want,
                        const std::string& tag, bool expect_raw = true) {
  EXPECT_EQ(got.window_index, want.window_index) << tag;
  EXPECT_EQ(bits(got.window_start), bits(want.window_start)) << tag;
  EXPECT_EQ(bits(got.window_end), bits(want.window_end)) << tag;
  if (expect_raw) {
    ASSERT_EQ(got.raw.size(), want.raw.size()) << tag;
    for (std::size_t r = 0; r < got.raw.size(); ++r) {
      expect_same_vec(got.raw[r], want.raw[r], tag + " raw[" + std::to_string(r) + "]");
    }
    ASSERT_EQ(got.per_sensor.size(), want.per_sensor.size()) << tag;
    auto gi = got.per_sensor.begin();
    auto wi = want.per_sensor.begin();
    for (; gi != got.per_sensor.end(); ++gi, ++wi) {
      EXPECT_EQ(gi->first, wi->first) << tag;
      expect_same_vec(gi->second, wi->second,
                      tag + " per_sensor[" + std::to_string(wi->first) + "]");
    }
  } else {
    EXPECT_TRUE(got.raw.empty()) << tag << ": keep_raw=false must not retain raw";
    EXPECT_TRUE(got.per_sensor.empty()) << tag << ": keep_raw=false must not build the map";
  }
  expect_same_vec(got.cached_mean, want.cached_mean, tag + " cached_mean");
  EXPECT_EQ(got.rep_sensors, want.rep_sensors) << tag;
  ASSERT_EQ(got.rep_points.size(), want.rep_points.size()) << tag;
  for (std::size_t j = 0; j < got.rep_points.size(); ++j) {
    expect_same_vec(got.rep_points[j], want.rep_points[j],
                    tag + " rep_points[" + std::to_string(j) + "]");
  }
  expect_same_vec(got.rep_sums, want.rep_sums, tag + " rep_sums");
  expect_same_vec(got.rep_total, want.rep_total, tag + " rep_total");
}

// --- hostile trace generation ----------------------------------------------

/// A deterministic hostile trace: mostly-forward time walk with backwards
/// jitter inside the window, multi-window jumps (gaps + single-record
/// windows), genuinely late records, degenerate times (NaN / negative /
/// astronomically large), sensors drawn sparsely from a pool (some ids never
/// appear), and attribute values spanning special doubles. Dimensions are
/// uniform per trace -- mismatch handling is tested separately because the
/// legacy path leaves moved-from remnants behind after throwing.
std::vector<SensorRecord> hostile_trace(std::uint64_t seed, std::size_t n, std::size_t dims,
                                        double window) {
  std::mt19937_64 rng(0x5eed0000 + seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  constexpr double kSpecial[] = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(),
                                 std::numeric_limits<double>::denorm_min(), 1e300, -1e-300};
  std::vector<SensorRecord> trace;
  trace.reserve(n);
  double t = 0.25 * window;
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = unit(rng);
    SensorRecord rec;
    if (roll < 0.025) {
      rec.time = std::numeric_limits<double>::quiet_NaN();  // clamps to window 1 (late)
    } else if (roll < 0.05) {
      rec.time = -window * unit(rng) * 10.0;  // negative: clamps to window 1
      // (An astronomically large time clamps to index ~9e18 and the gap
      // emission loop would then emit ~1e18 empty windows -- identical in
      // both implementations but far too slow to property-test here; the
      // clamp itself is covered by the NaN/negative cases above.)
    } else if (roll < 0.10) {
      t += window * (2.0 + std::floor(unit(rng) * 4.0));  // gap: skip 2-5 windows
      rec.time = t;
    } else if (roll < 0.15) {
      rec.time = t - window * (1.0 + unit(rng));  // genuinely late
    } else {
      t += window * 0.15 * unit(rng);
      rec.time = t - window * 0.4 * unit(rng);  // out-of-order within the window
    }
    rec.sensor = static_cast<SensorId>(rng() % 11);  // sparse: many absent per window
    rec.attrs.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      if (unit(rng) < 0.08) {
        rec.attrs[d] = kSpecial[rng() % std::size(kSpecial)];
      } else {
        rec.attrs[d] = (unit(rng) - 0.5) * std::pow(10.0, 6.0 * unit(rng) - 3.0);
      }
    }
    trace.push_back(std::move(rec));
  }
  return trace;
}

std::vector<ObservationSet> run_legacy(const std::vector<SensorRecord>& trace, double window,
                                       std::size_t* late = nullptr,
                                       std::size_t* clamped = nullptr) {
  legacy::Windower w(window);
  std::vector<ObservationSet> out;
  for (const auto& rec : trace) w.add(rec, [&](ObservationSet&& s) { out.push_back(std::move(s)); });
  if (auto last = w.flush()) out.push_back(std::move(*last));
  if (late) *late = w.late_records();
  if (clamped) *clamped = w.clamped_records();
  return out;
}

std::vector<ObservationSet> run_columnar(const std::vector<SensorRecord>& trace, double window,
                                         std::size_t batch, bool keep_raw,
                                         std::size_t* late = nullptr,
                                         std::size_t* clamped = nullptr) {
  Windower w(WindowerConfig{window, keep_raw});
  std::vector<ObservationSet> out;
  const auto sink = [&](ObservationSet&& s) { out.push_back(std::move(s)); };
  for (std::size_t i = 0; i < trace.size(); i += batch) {
    const std::size_t n = std::min(batch, trace.size() - i);
    w.add_batch(std::span<const SensorRecord>(trace.data() + i, n), sink);
  }
  if (auto last = w.flush()) out.push_back(std::move(*last));
  if (late) *late = w.late_records();
  if (clamped) *clamped = w.clamped_records();
  return out;
}

// --- properties ------------------------------------------------------------

TEST(WindowerColumnar, BitIdenticalToLegacyOverHostileTraces) {
  const double window = 60.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (const std::size_t dims : {1ul, 2ul, 5ul}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " dims=" + std::to_string(dims));
      const auto trace = hostile_trace(seed, 800, dims, window);
      std::size_t llate = 0, lclamped = 0;
      const auto want = run_legacy(trace, window, &llate, &lclamped);
      for (const std::size_t batch : {1ul, 7ul, 64ul, trace.size()}) {
        std::size_t clate = 0, cclamped = 0;
        const auto got = run_columnar(trace, window, batch, /*keep_raw=*/true, &clate, &cclamped);
        const std::string tag = "batch=" + std::to_string(batch);
        EXPECT_EQ(clate, llate) << tag;
        EXPECT_EQ(cclamped, lclamped) << tag;
        ASSERT_EQ(got.size(), want.size()) << tag;
        for (std::size_t k = 0; k < got.size(); ++k) {
          expect_same_window(got[k], want[k], tag + " window[" + std::to_string(k) + "]");
        }
      }
    }
  }
}

TEST(WindowerColumnar, KeepRawOffMatchesRepArraysWithEmptyHistory) {
  const double window = 60.0;
  const auto trace = hostile_trace(42, 600, 3, window);
  const auto want = run_legacy(trace, window);
  const auto got = run_columnar(trace, window, /*batch=*/32, /*keep_raw=*/false);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    expect_same_window(got[k], want[k], "window[" + std::to_string(k) + "]",
                       /*expect_raw=*/false);
    // The lean window must still report occupancy and the overall mean.
    EXPECT_EQ(got[k].empty(), want[k].empty());
    EXPECT_EQ(got[k].sensor_count(), want[k].sensor_count());
    if (!got[k].empty()) {
      expect_same_vec(got[k].overall_mean(), want[k].overall_mean(),
                      "overall_mean[" + std::to_string(k) + "]");
    }
  }
}

TEST(WindowerColumnar, SingleRecordWindowsAndExactBoundaries) {
  // One record per window plus records exactly on window boundaries (time =
  // k*w belongs to window k+1 under the half-open convention).
  const double window = 10.0;
  std::vector<SensorRecord> trace;
  for (std::size_t k = 0; k < 20; ++k) {
    SensorRecord rec;
    rec.sensor = static_cast<SensorId>(k % 3);
    rec.time = static_cast<double>(k) * 3.0 * window;  // every 3rd window only
    rec.attrs = {static_cast<double>(k) * 0.1, -1.0 / (static_cast<double>(k) + 1.0)};
    trace.push_back(std::move(rec));
  }
  const auto want = run_legacy(trace, window);
  for (const std::size_t batch : {1ul, 5ul, trace.size()}) {
    const auto got = run_columnar(trace, window, batch, /*keep_raw=*/true);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      expect_same_window(got[k], want[k],
                         "batch=" + std::to_string(batch) + " window[" + std::to_string(k) + "]");
      EXPECT_EQ(got[k].empty(), want[k].empty());
    }
  }
}

TEST(WindowerColumnar, DimensionMismatchThrowsLegacyMessage) {
  // A sensor whose samples disagree in width throws for the lowest such
  // sensor id (the legacy vecn::mean order); after the throw the columnar
  // windower is reset and usable, which the legacy one never guaranteed.
  Windower w(WindowerConfig{60.0, true});
  const auto sink = [](ObservationSet&&) {};
  std::vector<SensorRecord> recs;
  recs.push_back({.sensor = 4, .time = 5.0, .attrs = {1.0, 2.0}});
  recs.push_back({.sensor = 4, .time = 6.0, .attrs = {1.0, 2.0, 3.0}});
  recs.push_back({.sensor = 7, .time = 70.0, .attrs = {9.0}});  // closes window 1
  try {
    w.add_batch(std::span<const SensorRecord>(recs.data(), recs.size()), sink);
    FAIL() << "expected dimension mismatch";
  } catch (const std::invalid_argument& e) {
    // Identical to what legacy finalize_current surfaced via vecn::mean.
    std::string want;
    try {
      std::vector<AttrVec> samples = {{1.0, 2.0}, {1.0, 2.0, 3.0}};
      (void)vecn::mean(samples);
    } catch (const std::invalid_argument& le) {
      want = le.what();
    }
    EXPECT_EQ(std::string(e.what()), want);
  }
  // Still usable: the poisoned window was discarded, window 2 accumulates.
  std::size_t emitted = 0;
  SensorRecord ok{.sensor = 1, .time = 75.0, .attrs = {1.0, 1.0}};
  w.add(ok, [&](ObservationSet&&) { ++emitted; });
  auto last = w.flush();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->window_index, 2u);
  EXPECT_EQ(last->sensor_count(), 1u);
}

TEST(WindowerColumnar, SaveLoadRoundTripContinuesBitIdentically) {
  // Checkpoint mid-window, restore into a fresh windower, and continue both
  // with the remainder of the trace: every subsequent window must match the
  // uninterrupted run bit-for-bit (load() replays the arrival-order log to
  // rebuild the columnar accumulators).
  const double window = 60.0;
  const auto trace = hostile_trace(7, 500, 3, window);
  const std::size_t cut = 217;  // deliberately mid-window, mid-batch

  const auto want = run_columnar(trace, window, 16, /*keep_raw=*/true);

  Windower first(WindowerConfig{window, true});
  std::vector<ObservationSet> got;
  const auto sink = [&](ObservationSet&& s) { got.push_back(std::move(s)); };
  first.add_batch(std::span<const SensorRecord>(trace.data(), cut), sink);

  std::ostringstream blob(std::ios::binary);
  serialize::BinaryWriter sw(blob);
  first.save(sw);

  Windower resumed(WindowerConfig{window, true});
  std::istringstream in(blob.str(), std::ios::binary);
  serialize::BinaryReader sr(in);
  resumed.load(sr);

  resumed.add_batch(std::span<const SensorRecord>(trace.data() + cut, trace.size() - cut), sink);
  if (auto last = resumed.flush()) got.push_back(std::move(*last));

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    expect_same_window(got[k], want[k], "window[" + std::to_string(k) + "]");
  }
}

// --- fleet determinism over a hostile stream -------------------------------

TEST(WindowerColumnar, FleetReportIdenticalAcrossThreadsOnHostileTrace) {
  // The batched shard handoff must not change results: a hostile trace
  // (out-of-order, sparse, degenerate times) through threads=1 and threads=4
  // fleets yields byte-identical reports.
  const double window = kSecondsPerHour;
  const auto make_trace = [&](std::uint64_t seed) {
    auto t = hostile_trace(seed, 1200, 2, window);
    // Scale hostile times into a few days so the pipeline sees real windows.
    for (auto& rec : t) {
      if (std::isfinite(rec.time) && rec.time >= 0.0) rec.time *= 40.0;
    }
    return t;
  };
  const std::vector<std::vector<SensorRecord>> traces = {make_trace(1), make_trace(2)};

  const auto run = [&](std::size_t threads) {
    core::FleetConfig fc;
    fc.threads = threads;
    core::FleetMonitor fleet(fc);
    core::PipelineConfig cfg;
    cfg.window_seconds = window;
    cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
    fleet.add_region("alpha", cfg);
    fleet.add_region("beta", cfg);
    const std::vector<std::string> names = {"alpha", "beta"};
    for (std::size_t i = 0;; ++i) {
      bool any = false;
      for (std::size_t r = 0; r < traces.size(); ++r) {
        if (i < traces[r].size()) {
          fleet.add_record(names[r], traces[r][i]);
          any = true;
        }
      }
      if (!any) break;
    }
    fleet.finish();
    return core::to_string(fleet.diagnose());
  };

  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace sentinel
