// Streaming use of the pipeline, the way a real base station would run it:
// records are pushed one at a time with add_record(); the pipeline closes
// windows as time advances, and the monitor prints alarm edges and a daily
// diagnosis as they happen -- "on-the-fly", no batch pass.

#include <cstdio>
#include <memory>

#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

int main() {
  using namespace sentinel;
  const double duration = 10.0 * kSecondsPerDay;

  sim::GdiEnvironmentConfig env_cfg;
  env_cfg.duration_seconds = duration;
  const sim::GdiEnvironment env(env_cfg);
  auto simulator = sim::make_gdi_deployment(env, {});

  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(4, std::make_unique<faults::AdditiveFault>(AttrVec{8.0, 5.0}),
            4.0 * kSecondsPerDay);
  simulator.set_transform(faults::make_transform(plan));
  const auto trace = simulator.run(duration).trace;

  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < kSecondsPerDay; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(9, "live-kmeans");
  cfg.initial_states = core::kmeans(history, 6, rng).centroids;
  core::DetectionPipeline pipeline(cfg);

  // Stream records; react to window completions by diffing the history size.
  std::size_t seen_windows = 0;
  std::map<SensorId, bool> filtered_state;
  int last_day_reported = -1;

  for (const auto& rec : trace) {
    pipeline.add_record(rec);
    while (seen_windows < pipeline.windows_processed()) {
      const auto& w = pipeline.history()[seen_windows++];
      for (const auto& [sensor, info] : w.sensors) {
        bool& prev = filtered_state[sensor];
        if (info.filtered_alarm && !prev) {
          std::printf("[day %4.1f] ALARM RAISED  sensor %u (mapped to state %u, correct %u)\n",
                      w.window_start / kSecondsPerDay, sensor, info.mapped, w.correct);
        } else if (!info.filtered_alarm && prev) {
          std::printf("[day %4.1f] alarm cleared sensor %u\n",
                      w.window_start / kSecondsPerDay, sensor);
        }
        prev = info.filtered_alarm;
      }
      const int day = static_cast<int>(w.window_start / kSecondsPerDay);
      if (day != last_day_reported) {
        last_day_reported = day;
        const auto net = pipeline.diagnose_network();
        std::printf("[day %4d] daily check: network %s, %zu model states, %zu tracks\n", day,
                    core::to_string(net.verdict).c_str(), pipeline.model_states().size(),
                    pipeline.tracks().total_tracks());
      }
    }
  }
  pipeline.finish();

  std::printf("\nfinal diagnosis:\n%s", core::to_string(pipeline.diagnose()).c_str());
  return 0;
}
