// Side-by-side run of the three detectors on one calibration-fault scenario:
// Sentinel (this paper), the Warrender-style HMM detector (needs a clean
// training phase, detection only), and the median-deviation rule (detection
// only). Shows what "distinguishing errors from attacks" buys.

#include <cstdio>
#include <memory>

#include "baseline/median_detector.h"
#include "baseline/warrender.h"
#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "trace/windower.h"

namespace {

using namespace sentinel;

core::PipelineConfig make_config(const sim::Environment& env, double duration) {
  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < duration; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(5, "shootout-kmeans");
  cfg.initial_states = core::kmeans(history, 6, rng).centroids;
  return cfg;
}

std::vector<SensorRecord> simulate(const sim::Environment& env, double duration, bool inject) {
  auto simulator = sim::make_gdi_deployment(env, {});
  auto plan = std::make_shared<faults::InjectionPlan>();
  if (inject) {
    plan->add(6, std::make_unique<faults::CalibrationFault>(AttrVec{0.70, 0.80}),
              2.0 * kSecondsPerDay);
  }
  simulator.set_transform(faults::make_transform(plan));
  return simulator.run(duration).trace;
}

}  // namespace

int main() {
  using namespace sentinel;
  const double duration = 14.0 * kSecondsPerDay;

  sim::GdiEnvironmentConfig env_cfg;
  env_cfg.duration_seconds = duration;
  const sim::GdiEnvironment env(env_cfg);

  const auto clean_trace = simulate(env, duration, false);
  const auto faulty_trace = simulate(env, duration, true);

  // --- Sentinel ---
  core::DetectionPipeline pipeline(make_config(env, duration));
  pipeline.process_trace(faulty_trace);
  std::printf("=== sentinel ===\n%s\n", core::to_string(pipeline.diagnose()).c_str());

  // --- Warrender baseline: train on the clean run's observable sequence ---
  core::DetectionPipeline clean_pipeline(make_config(env, duration));
  clean_pipeline.process_trace(clean_trace);
  std::vector<hmm::StateId> train_seq, test_seq;
  for (const auto& w : clean_pipeline.history()) train_seq.push_back(w.observable);
  for (const auto& w : pipeline.history()) test_seq.push_back(w.observable);

  baseline::WarrenderDetector warrender((baseline::WarrenderConfig()));
  const auto stats = warrender.train(train_seq);
  const auto flags = warrender.detect(test_seq);
  std::size_t flagged = 0;
  for (const bool f : flags) flagged += f;
  std::printf("=== warrender baseline ===\n");
  std::printf("trained %zu Baum-Welch iterations on a guaranteed-clean run (eta %.3f)\n",
              stats.iterations, stats.threshold);
  std::printf("flagged %zu/%zu windows; cannot localize the sensor or name the fault\n\n",
              flagged, flags.size());

  // --- Median-deviation baseline ---
  baseline::MedianDetector median_det((baseline::MedianDetectorConfig()));
  for (const auto& w : window_trace(faulty_trace, 3600.0)) {
    if (!w.empty()) median_det.process(w);
  }
  std::printf("=== median-deviation baseline ===\n");
  for (SensorId s = 0; s < 10; ++s) {
    const std::size_t n = median_det.windows(s);
    if (n == 0) continue;
    const double rate = 100.0 * static_cast<double>(median_det.flags(s)) /
                        static_cast<double>(n);
    if (rate > 1.0) std::printf("sensor %u flagged in %.1f%% of windows\n", s, rate);
  }
  std::printf("localizes the sensor but cannot say error vs attack, nor the type\n");
  return 0;
}
