// The paper's proposed future extension, implemented: "as a future extension
// of this work we are considering the application of the proposed
// methodology to monitor intrusions and failures in a large cluster of
// machines dedicated to running an e-commerce application" (section 6).
//
// Here the "sensors" are per-replica monitoring agents reporting
// (cpu_utilization %, p99 latency ms) for a fleet of 12 web servers behind a
// load balancer. The hidden environment is the offered load (night / day /
// flash-sale peak); replicas see the same load plus per-replica jitter --
// exactly the p_j = Theta(t) + N_j model of section 3.1. We inject:
//   - a degraded replica whose latency reads 2x (a calibration-style fault:
//     a misbehaving metrics exporter), and
//   - a coalition of 3 compromised replicas that under-report load during
//     the flash sale (a Dynamic Deletion attack hiding a traffic spike from
//     the autoscaler).
// The same DetectionPipeline classifies both without any domain change.

#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>

#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "util/vecn.h"

namespace {

using namespace sentinel;

// Offered-load environment: (cpu %, p99 latency ms). Night ~ (25, 80),
// daytime ~ (55, 120), and a daily three-hour flash sale at 18:00 ~ (70, 150).
class ClusterLoadEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }

  AttrVec truth(double t) const override {
    using std::numbers::pi;
    const double hours = std::fmod(t / kSecondsPerHour, 24.0);
    const bool flash_sale = hours >= 18.0 && hours < 21.0;
    if (flash_sale) return {70.0, 150.0};
    // Smooth day/night swing, busiest mid-afternoon.
    const double carrier = std::cos(2.0 * pi * (hours - 15.0) / 24.0);
    const double day = std::tanh(2.5 * carrier) / std::tanh(2.5);  // -1 night, +1 day
    const double cpu = 40.0 + 15.0 * day;
    const double latency = 100.0 + 20.0 * day;
    return {cpu, latency};
  }
};

}  // namespace

int main() {
  using namespace sentinel;
  const double duration = 14.0 * kSecondsPerDay;
  const ClusterLoadEnvironment env;

  // 12 replica monitors, reporting every 5 minutes; agent jitter is larger
  // than mote noise (sampling windows, GC pauses).
  sim::Simulator simulator(env);
  const std::size_t kReplicas = 12;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    sim::MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.noise_sigma = 2.0;
    mc.seed = 77;
    simulator.add_mote(mc);
  }

  auto plan = std::make_shared<faults::InjectionPlan>();
  // Replica 3: broken metrics exporter doubles reported latency from day 4.
  plan->add(3, std::make_unique<faults::CalibrationFault>(AttrVec{1.0, 2.0}),
            4.0 * kSecondsPerDay);
  // Replicas 8-11: compromised, they hide the flash-sale spike by reporting
  // values that hold the fleet-wide mean at the ordinary daytime level.
  // (A third of the fleet is the minimum that can steer the mean that far
  // without reporting negative latencies.)
  for (const SensorId s : {8u, 9u, 10u, 11u}) {
    faults::DeletionAttackConfig ac;
    ac.deleted = faults::StateRegion{{70.0, 150.0}, 20.0};
    ac.hold_state = {55.0, 120.0};
    ac.fraction = 4.0 / static_cast<double>(kReplicas);
    ac.ranges = {faults::ValueRange{0.0, 100.0}, faults::ValueRange{0.0, 10000.0}};
    plan->add(s, std::make_unique<faults::DynamicDeletionAttack>(ac), 2.0 * kSecondsPerDay);
  }
  simulator.set_transform(faults::make_transform(plan));
  const auto trace = simulator.run(duration).trace;

  // Pipeline configuration: wider thresholds -- load states are far apart.
  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 10.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(21, "cluster-kmeans");
  cfg.initial_states = core::kmeans(history, 4, rng).centroids;
  cfg.model_states.merge_threshold = 15.0;
  cfg.model_states.spawn_threshold = 25.0;
  cfg.classifier.change_attr_tol = 12.0;

  core::DetectionPipeline pipeline(cfg);
  pipeline.process_trace(trace);

  std::printf("=== cluster monitor: %zu replicas, %zu windows ===\n", kReplicas,
              pipeline.windows_processed());
  std::printf("load states learned:\n");
  const auto m_c = pipeline.correct_model();
  const auto lookup = pipeline.centroid_lookup();
  for (const auto id : m_c.states()) {
    if (const auto c = lookup(id)) {
      std::printf("  (cpu %.0f%%, p99 %.0fms)  occupancy %.3f\n", (*c)[0], (*c)[1],
                  m_c.occupancy()[*m_c.index_of(id)]);
    }
  }

  const auto report = pipeline.diagnose();
  std::printf("\ndiagnosis:\n%s", core::to_string(report).c_str());
  std::printf("\nmachine-readable:\n%s\n", core::to_json(report).c_str());

  std::printf("\nexpected: the flash-sale state is deleted by a coalition (attack verdict\n");
  std::printf("for replicas 8-11) while replica 3's doubled latency is a per-replica\n");
  std::printf("calibration error -- two different recovery actions.\n");
  return 0;
}
