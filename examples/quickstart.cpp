// Quickstart: simulate a small deployment, inject a stuck-at fault, run the
// detection pipeline, print the diagnosis.
//
//   $ ./example_quickstart
//
// Walks through the whole public API in ~60 lines: environment, motes,
// injection plan, pipeline, diagnosis.

#include <cstdio>
#include <memory>

#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

int main() {
  using namespace sentinel;

  // 1. A GDI-like environment: diurnal temperature, anti-correlated humidity.
  sim::GdiEnvironmentConfig env_cfg;
  env_cfg.duration_seconds = 7.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(env_cfg);

  // 2. Ten motes sampling every 5 minutes over a lossy radio.
  sim::GdiDeploymentConfig dep_cfg;
  auto simulator = sim::make_gdi_deployment(env, dep_cfg);

  // 3. Sensor 6 gets stuck at (15, 1) from day 2.
  auto plan = std::make_shared<faults::InjectionPlan>();
  plan->add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
            2.0 * kSecondsPerDay);
  simulator.set_transform(faults::make_transform(plan));

  const sim::SimulationResult sim_result = simulator.run(env_cfg.duration_seconds);
  std::printf("simulated %zu records (%zu lost on the radio, %zu malformed)\n",
              sim_result.stats.sampled, sim_result.stats.lost, sim_result.stats.malformed);

  // 4. Configure the pipeline: initial model states from a day of history.
  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < kSecondsPerDay; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(1, "quickstart-kmeans");
  cfg.initial_states = core::kmeans(history, 6, rng).centroids;

  // 5. Feed the trace and diagnose.
  core::DetectionPipeline pipeline(cfg);
  pipeline.process_trace(sim_result.trace);

  std::printf("processed %zu windows, model has %zu states\n", pipeline.windows_processed(),
              pipeline.model_states().size());
  const core::DiagnosisReport report = pipeline.diagnose();
  std::printf("%s", core::to_string(report).c_str());
  return 0;
}
