// Attack scenario with a recovery action -- the reason the paper insists on
// *distinguishing* errors from attacks: "distinguishing faults from attacks
// is necessary to initiate a correct recovery action."
//
// A coalition of three sensors mounts a Dynamic Deletion attack that erases
// the warm daytime state. The pipeline detects and classifies it; the
// response here excludes the implicated sensors and re-runs the analysis on
// the surviving ones, recovering the correct environment model.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/attack_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "util/vecn.h"

namespace {

using namespace sentinel;

core::PipelineConfig make_config(const sim::Environment& env, double duration) {
  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < duration; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(3, "attack-response-kmeans");
  cfg.initial_states = core::kmeans(history, 6, rng).centroids;
  return cfg;
}

void print_model(const core::DetectionPipeline& p, const char* title) {
  std::printf("%s\n", title);
  const auto m_c = p.correct_model();
  const auto lookup = p.centroid_lookup();
  for (const auto id : m_c.states()) {
    const auto c = lookup(id);
    std::printf("  state %s  occupancy %.3f\n",
                c ? vecn::to_string(*c, 0).c_str() : "?", m_c.occupancy()[*m_c.index_of(id)]);
  }
}

}  // namespace

int main() {
  using namespace sentinel;
  const double duration = 14.0 * kSecondsPerDay;

  sim::GdiEnvironmentConfig env_cfg;
  env_cfg.duration_seconds = duration;
  const sim::GdiEnvironment env(env_cfg);
  auto simulator = sim::make_gdi_deployment(env, {});

  auto plan = std::make_shared<faults::InjectionPlan>();
  for (const SensorId s : {7u, 8u, 9u}) {
    faults::DeletionAttackConfig ac;
    ac.deleted = faults::StateRegion{{31.0, 56.0}, 7.0};
    ac.hold_state = {24.0, 70.0};
    ac.fraction = 0.3;
    plan->add(s, std::make_unique<faults::DynamicDeletionAttack>(ac), 2.0 * kSecondsPerDay);
  }
  simulator.set_transform(faults::make_transform(plan));
  const auto sim_result = simulator.run(duration);

  // Phase 1: detect and classify.
  core::DetectionPipeline pipeline(make_config(env, duration));
  pipeline.process_trace(sim_result.trace);
  const auto report = pipeline.diagnose();
  std::printf("=== phase 1: detection ===\n%s\n", core::to_string(report).c_str());
  print_model(pipeline, "observed (attacked) correct model:");

  if (report.network.verdict != core::Verdict::kAttack) {
    std::printf("\nno attack detected; nothing to recover from\n");
    return 0;
  }

  // Phase 2: recovery -- quarantine every sensor holding an error/attack
  // track during the attack and rebuild the model from the rest.
  std::set<SensorId> quarantined;
  for (const auto& [sensor, diag] : report.sensors) {
    if (diag.verdict == core::Verdict::kAttack) quarantined.insert(sensor);
  }
  std::printf("\n=== phase 2: recovery ===\nquarantining sensors:");
  for (const SensorId s : quarantined) std::printf(" %u", s);
  std::printf("\n");

  std::vector<SensorRecord> surviving;
  std::copy_if(sim_result.trace.begin(), sim_result.trace.end(), std::back_inserter(surviving),
               [&](const SensorRecord& r) { return quarantined.count(r.sensor) == 0; });

  core::DetectionPipeline recovered(make_config(env, duration));
  recovered.process_trace(surviving);
  std::printf("\nafter quarantine: %s\n",
              core::to_string(recovered.diagnose_network()).c_str());
  print_model(recovered, "recovered correct model (warm state restored):");
  return 0;
}
