// The paper's headline scenario end-to-end: a month-long GDI-like deployment
// with two degraded sensors -- sensor 6 drifting its humidity channel to the
// floor (then stuck) and sensor 7 with a calibration error -- exactly the
// two real faults the paper discovered in the Great Duck Island data
// (section 4.1, Fig. 8).
//
// Prints the correct Markov model of the environment (Fig. 7), the
// per-sensor diagnoses, and the alarm statistics.

#include <cstdio>
#include <memory>

#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "trace/health.h"
#include "util/vecn.h"

int main() {
  using namespace sentinel;

  sim::GdiEnvironmentConfig env_cfg;
  env_cfg.duration_seconds = 31.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(env_cfg);

  auto simulator = sim::make_gdi_deployment(env, {});

  auto plan = std::make_shared<faults::InjectionPlan>();
  // Sensor 6: the transducer degrades -- humidity decays toward ~1 over four
  // days starting on day 8 (the field-study observation that sensors fail
  // days before their electronics), then the electronics die and the node
  // reports a constant (15, 1), the paper's stuck state.
  plan->add(6, std::make_unique<faults::DriftFault>(/*attr=*/1, /*floor=*/1.0,
                                                    /*start_time=*/8.0 * kSecondsPerDay,
                                                    /*drift_seconds=*/4.0 * kSecondsPerDay),
            /*start_time=*/0.0, /*end_time=*/12.0 * kSecondsPerDay);
  plan->add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
            /*start_time=*/12.0 * kSecondsPerDay);
  // Sensor 7: miscalibrated from the start, reads low on both channels.
  plan->add(7, std::make_unique<faults::CalibrationFault>(AttrVec{0.70, 0.80}));
  simulator.set_transform(faults::make_transform(plan));

  const auto sim_result = simulator.run(env_cfg.duration_seconds);

  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < env_cfg.duration_seconds; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(7, "gdi-month-kmeans");
  cfg.initial_states = core::kmeans(history, 6, rng).centroids;

  core::DetectionPipeline pipeline(cfg);
  pipeline.process_trace(sim_result.trace);

  std::printf("=== month summary ===\n");
  std::printf("records delivered: %zu (of %zu sampled; %zu lost, %zu malformed)\n",
              sim_result.stats.delivered, sim_result.stats.sampled, sim_result.stats.lost,
              sim_result.stats.malformed);
  std::printf("windows: %zu processed, %zu skipped\n\n", pipeline.windows_processed(),
              pipeline.windows_skipped());

  std::printf("=== correct model of the environment (Fig. 7) ===\n");
  const auto m_c = pipeline.correct_model();
  const auto lookup = pipeline.centroid_lookup();
  for (const auto id : m_c.states()) {
    const auto c = lookup(id);
    std::printf("  state %u %s  occupancy %.3f\n", id,
                c ? vecn::to_string(*c, 0).c_str() : "?",
                m_c.occupancy()[*m_c.index_of(id)]);
  }

  std::printf("\n=== diagnosis ===\n%s", core::to_string(pipeline.diagnose()).c_str());

  std::printf("\n=== per-sensor raw alarm rates ===\n");
  for (SensorId s = 0; s < 10; ++s) {
    const std::size_t n = pipeline.alarms().window_count(s);
    if (n == 0) continue;
    std::printf("  sensor %u: %5.1f%% of %zu windows%s\n", s,
                100.0 * static_cast<double>(pipeline.alarms().raw_count(s)) /
                    static_cast<double>(n),
                n, (s == 6 || s == 7) ? "   <- injected fault" : "");
  }

  std::printf("\n=== trace health (operations view) ===\n");
  for (const auto& h : analyze_health(sim_result.trace, 5.0 * kSecondsPerMinute)) {
    std::printf("  %s\n", to_string(h).c_str());
  }
  return 0;
}
