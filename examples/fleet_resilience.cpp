// Fleet + checkpointing, together: three cluster-head regions monitored by
// one base station; the base station checkpoints every region daily and
// "crashes" halfway through the deployment, restoring all pipelines from the
// latest checkpoints and continuing. One region has a degraded sensor; in
// another, a majority of sensors is compromised -- which defeats that
// region's own majority assumption but is caught at the fleet tier by the
// cross-region structural check.

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "core/fleet.h"
#include "core/offline_kmeans.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

namespace {

using namespace sentinel;

core::PipelineConfig region_config(const sim::Environment& env) {
  core::PipelineConfig cfg;
  std::vector<AttrVec> history;
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(11, "fleet-kmeans");
  cfg.initial_states = core::kmeans(history, 6, rng).centroids;
  return cfg;
}

}  // namespace

int main() {
  using namespace sentinel;
  const double duration = 12.0 * kSecondsPerDay;
  const double crash_at = 6.0 * kSecondsPerDay;

  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = duration;
  const sim::GdiEnvironment env(ec);

  // Per-region traces. Region "east" gets a calibration fault on sensor 2;
  // region "south" has 4 of 6 sensors compromised with a change attack.
  std::map<std::string, std::vector<SensorRecord>> traces;
  std::uint64_t seed = 100;
  for (const std::string name : {"north", "east", "south"}) {
    sim::Simulator s(env);
    for (std::size_t i = 0; i < 6; ++i) {
      sim::MoteConfig mc;
      mc.id = static_cast<SensorId>(i);
      mc.noise_sigma = 0.4;
      mc.seed = seed;
      s.add_mote(mc);
    }
    auto plan = std::make_shared<faults::InjectionPlan>();
    if (name == "east") {
      plan->add(2, std::make_unique<faults::CalibrationFault>(AttrVec{0.70, 0.80}),
                2.0 * kSecondsPerDay);
    } else if (name == "south") {
      for (SensorId m = 0; m < 4; ++m) {
        faults::ChangeAttackConfig ac;
        ac.victim = faults::StateRegion{{12.0, 94.0}, 8.0};
        ac.observed_as = {20.0, 55.0};
        ac.fraction = 4.0 / 6.0;
        plan->add(m, std::make_unique<faults::DynamicChangeAttack>(ac), 2.0 * kSecondsPerDay);
      }
    }
    s.set_transform(faults::make_transform(plan));
    traces[name] = s.run(duration).trace;
    ++seed;
  }

  // Phase 1: run until the crash, checkpointing each region daily.
  core::FleetMonitor fleet;
  for (const auto& [name, trace] : traces) fleet.add_region(name, region_config(env));

  std::map<std::string, std::string> checkpoints;
  double next_checkpoint = kSecondsPerDay;
  std::map<std::string, std::size_t> cursor;
  const auto feed_until = [&](core::FleetMonitor& f, double t_end) {
    for (auto& [name, trace] : traces) {
      auto& i = cursor[name];
      while (i < trace.size() && trace[i].time < t_end) f.add_record(name, trace[i++]);
    }
  };

  while (next_checkpoint <= crash_at) {
    feed_until(fleet, next_checkpoint);
    for (const auto& name : fleet.region_names()) {
      std::ostringstream os;
      fleet.region(name).save_checkpoint(os);
      checkpoints[name] = os.str();
    }
    next_checkpoint += kSecondsPerDay;
  }
  std::printf("day %.0f: base station crash -- %zu regions checkpointed\n",
              crash_at / kSecondsPerDay, checkpoints.size());

  // Phase 2: cold restart -- every region restored from its checkpoint.
  // The replay runs with a worker pool (FleetConfig::threads): regions drain
  // concurrently, and the report is bit-identical to a serial run
  // (docs/CONCURRENCY.md), so turning threads up is purely a wall-clock knob.
  core::FleetConfig fleet_cfg;
  fleet_cfg.threads = 2;
  core::FleetMonitor restored(fleet_cfg);
  for (const auto& [name, trace] : traces) {
    (void)trace;
    std::istringstream is(checkpoints.at(name));
    restored.add_region(name, region_config(env), is);
  }
  feed_until(restored, duration + 1.0);
  restored.finish();

  const auto report = restored.diagnose();
  std::printf("\n=== fleet report after restart ===\n%s", core::to_string(report).c_str());
  std::printf("\nexpected: east/sensor 2 calibration error; south flagged as a structural\n");
  std::printf("outlier (its internal majority is compromised, the fleet tier catches it)\n");
  return 0;
}
