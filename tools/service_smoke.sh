#!/usr/bin/env bash
# Byte-identity smoke for the resident service (docs/SERVICE.md): the same
# traces run through `fleet` (batch, one-shot) and through `serve` + `stream`
# (resident daemon, loopback SNTRS1) must print identical report bytes.
#
#   tools/service_smoke.sh <path-to-sentinel_cli> [workdir]
#
# Exits nonzero when the server never comes up or the reports diverge.
set -euo pipefail

CLI=${1:?usage: service_smoke.sh <path-to-sentinel_cli> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

"$CLI" simulate "$WORK/north.csv" --days 2 --seed 11
"$CLI" simulate "$WORK/south.csv" --days 2 --seed 12 --scenario stuck-at
"$CLI" fleet "$WORK/north.csv" "$WORK/south.csv" > "$WORK/fleet.txt"

rm -f "$WORK/port.txt"
"$CLI" serve --bootstrap "$WORK/north.csv" --port 0 --port-file "$WORK/port.txt" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  [ -s "$WORK/port.txt" ] && break
  sleep 0.1
done
[ -s "$WORK/port.txt" ] || { echo "service smoke: server never published its port" >&2; exit 1; }
PORT=$(cat "$WORK/port.txt")

"$CLI" stream "$WORK/north.csv" "$WORK/south.csv" --port "$PORT" \
  --report --final --shutdown > "$WORK/stream.txt"
wait "$SERVER_PID"
trap - EXIT

diff -u "$WORK/fleet.txt" "$WORK/stream.txt"
echo "service smoke: reports byte-identical ($(wc -c < "$WORK/fleet.txt") bytes)"
