#!/usr/bin/env python3
"""Self-test for bench_compare.py's gate semantics.

Runs bench_compare as a subprocess over synthetic google-benchmark JSON and
asserts the documented exit-code contract:

    0  same machine, release builds, no regression beyond the threshold
    1  a regression beyond the threshold
    2  refused: machine mismatch, missing machine.* fields, or -- the case
       that once let debug numbers into the committed baselines -- either
       file stamped with a library_build_type other than "release"

Usage: bench_compare_selftest.py /path/to/bench_compare.py
"""

import json
import os
import subprocess
import sys
import tempfile

MACHINE = {
    "machine.hardware_threads": 8,
    "machine.usable_concurrency": 8,
    "machine.kernel_level": "avx2",
}


def make_doc(items_per_second, build_type="release", machine=None):
    context = {"library_build_type": build_type}
    context.update(MACHINE if machine is None else machine)
    return {
        "context": context,
        "benchmarks": [
            {
                "name": "BM_Fused",
                "run_type": "iteration",
                "real_time": 100.0,
                "time_unit": "ns",
                "items_per_second": items_per_second,
            }
        ],
    }


def run_case(script, workdir, label, base_doc, cand_doc, expect_rc):
    base = os.path.join(workdir, f"{label}_base.json")
    cand = os.path.join(workdir, f"{label}_cand.json")
    with open(base, "w", encoding="utf-8") as fh:
        json.dump(base_doc, fh)
    with open(cand, "w", encoding="utf-8") as fh:
        json.dump(cand_doc, fh)
    proc = subprocess.run(
        [sys.executable, script, base, cand],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if proc.returncode != expect_rc:
        print(f"FAIL [{label}]: expected exit {expect_rc}, got {proc.returncode}")
        print(proc.stdout)
        print(proc.stderr)
        return False
    print(f"ok [{label}]: exit {proc.returncode}")
    return True


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} /path/to/bench_compare.py")
    script = sys.argv[1]
    ok = True
    with tempfile.TemporaryDirectory() as workdir:
        # Clean pass: same machine, both release, candidate slightly faster.
        ok &= run_case(script, workdir, "pass",
                       make_doc(1e6), make_doc(1.05e6), 0)
        # Regression beyond the default 15% threshold.
        ok &= run_case(script, workdir, "regression",
                       make_doc(1e6), make_doc(0.5e6), 1)
        # Debug refusal: a baseline measured from a debug tree must be
        # refused outright, never compared (exit 2 = CI skip).
        ok &= run_case(script, workdir, "debug_baseline",
                       make_doc(1e6, build_type="debug"), make_doc(1e6), 2)
        # Debug refusal, candidate side.
        ok &= run_case(script, workdir, "debug_candidate",
                       make_doc(1e6), make_doc(1e6, build_type="debug"), 2)
        # Missing build-type stamp is not release either.
        ok &= run_case(script, workdir, "unstamped_baseline",
                       make_doc(1e6, build_type=None), make_doc(1e6), 2)
        # Cross-machine refusal: any machine.* field disagreeing.
        other = dict(MACHINE, **{"machine.kernel_level": "scalar"})
        ok &= run_case(script, workdir, "machine_mismatch",
                       make_doc(1e6), make_doc(1e6, machine=other), 2)
        # No machine.* fields at all: cannot prove same machine.
        ok &= run_case(script, workdir, "machine_absent",
                       make_doc(1e6, machine={}), make_doc(1e6), 2)
    if not ok:
        sys.exit(1)
    print("bench_compare_selftest: all cases passed")


if __name__ == "__main__":
    main()
