// Chaos orchestrator for the crash-consistent checkpoint store.
//
// Generates a deterministic two-region workload, then for every registered
// fault point (util/fault_test.h): forks a child, arms the point, lets the
// child pull the plug mid-run (std::_Exit -- no destructors, no flush),
// recovers a fresh fleet from the surviving store, replays each trace tail,
// and compares the recovered FleetReport byte-for-byte against an
// uninterrupted baseline. Exit status is nonzero when any cell of the
// matrix mismatches -- the CI chaos job's pass/fail signal.
//
//   chaos_runner [--list] [--dir=<root>] [--points=a,b,c] [--threads=1,4]
//                [--every=<records>] [--nth=1] [--keep] [--serve]
//
// --serve switches to the resident-service drill (docs/SERVICE.md): fork an
// in-process `service::Server` child with checkpointing, stream the workload
// to it over SNTRS1 connections, SIGKILL the daemon mid-stream, restart it
// with resume, stream the remainder from the offsets HELLO reports, and
// compare the final fleet report byte-for-byte against an uninterrupted
// batch baseline. SIGKILL needs no compiled-in fault points, so --serve
// works in any build, Release included.
//
// The same proof runs as a gtest (tests/crash_recovery_test.cpp); this tool
// exists for CI wiring, manual poking at single points, and for running the
// matrix against configurations the test suite does not pin (thread counts,
// commit intervals). See docs/RELIABILITY.md.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/checkpoint_store.h"
#include "core/fleet.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/simulator.h"
#include "trace/binary_trace.h"
#include "trace/trace_reader.h"
#include "util/fault_test.h"

namespace {

using namespace sentinel;
namespace fault = util::fault;

constexpr std::size_t kIngestBatch = 512;

class TwoPhaseEnvironment final : public sim::Environment {
 public:
  std::size_t dims() const override { return 2; }
  AttrVec truth(double t) const override {
    const auto phase = static_cast<long>(t / (3.0 * kSecondsPerHour));
    return (phase % 2 == 0) ? AttrVec{10.0, 60.0} : AttrVec{30.0, 40.0};
  }
};

core::PipelineConfig region_config() {
  core::PipelineConfig cfg;
  cfg.window_seconds = kSecondsPerHour;
  cfg.initial_states = {{10.0, 60.0}, {30.0, 40.0}};
  return cfg;
}

struct Options {
  std::string root;
  std::vector<std::string> points{fault::kCatalog, fault::kCatalog + std::size(fault::kCatalog)};
  std::vector<std::size_t> threads{1, 4};
  std::size_t every = 1500;
  std::uint64_t nth = 1;
  bool keep = false;
  bool serve = false;
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

struct Workload {
  std::vector<std::string> regions{"north", "south"};
  std::map<std::string, std::string> trace_path;
};

Workload make_workload(const std::string& root) {
  Workload w;
  std::uint64_t seed = 1;
  for (const auto& r : w.regions) {
    TwoPhaseEnvironment env;
    sim::Simulator s(env);
    for (std::size_t i = 0; i < 6; ++i) {
      sim::MoteConfig mc;
      mc.id = static_cast<SensorId>(i);
      mc.noise_sigma = 0.3;
      mc.seed = seed;
      s.add_mote(mc);
    }
    const std::string path = root + "/" + r + ".snt";
    write_trace_binary_file(path, s.run(2.0 * kSecondsPerDay).trace);
    w.trace_path[r] = path;
    ++seed;
  }
  return w;
}

/// Run the fleet over the workload. Empty `store_dir` = no checkpointing
/// (the baseline); `skip` = per-region resume offsets.
std::string run_fleet(const Workload& w, std::size_t threads, const std::string& store_dir,
                      std::size_t every,
                      const std::map<std::string, std::uint64_t>* skip = nullptr) {
  core::FleetConfig fc;
  fc.threads = threads;
  fc.checkpoint_dir = store_dir;
  fc.checkpoint_every_records = every;
  core::FleetMonitor fleet(fc);
  for (const auto& r : w.regions) {
    std::uint64_t offset = 0;
    if (skip != nullptr) {
      const auto resumed = fleet.add_region_resumed(r, region_config());
      if (!resumed.is_ok()) {
        throw std::runtime_error("region " + r + ": " + resumed.status().to_string());
      }
      offset = resumed.value();
    } else {
      fleet.add_region(r, region_config());
    }
    const auto reader = open_trace_reader(w.trace_path.at(r));
    fleet.ingest(r, *reader, kIngestBatch, offset);
  }
  fleet.finish();
  return to_string(fleet.diagnose());
}

/// One matrix cell: kill at `point` (hit `nth`), recover, compare.
bool run_cell(const Workload& w, const Options& opt, const std::string& point,
              std::size_t threads, const std::string& baseline) {
  const std::string dir = opt.root + "/pt_" + core::CheckpointStore::sanitize(point) + "_t" +
                          std::to_string(threads);
  std::filesystem::remove_all(dir);

  const pid_t pid = fork();
  if (pid == 0) {
    fault::Config fc;
    fc.mode = fault::Mode::kRunLength;
    fc.point = point;
    fc.nth = opt.nth;
    fault::init(std::move(fc));
    try {
      (void)run_fleet(w, threads, dir, opt.every);
    } catch (...) {
      std::_Exit(99);
    }
    std::_Exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (code != fault::kPlugPulledExit && code != 0) {
    std::cout << "  " << point << " t=" << threads << ": FAIL (child exit " << code << ")\n";
    return false;
  }

  std::string recovered;
  try {
    std::map<std::string, std::uint64_t> skip;  // filled by add_region_resumed
    recovered = run_fleet(w, threads, dir, opt.every, &skip);
  } catch (const std::exception& e) {
    std::cout << "  " << point << " t=" << threads << ": FAIL (recovery: " << e.what() << ")\n";
    return false;
  }
  const bool ok = recovered == baseline;
  std::cout << "  " << point << " t=" << threads
            << (code == 0 ? " (not reached)" : " (plug pulled)")
            << (ok ? ": ok" : ": FAIL (report diverges)") << '\n';
  if (!opt.keep) std::filesystem::remove_all(dir);
  return ok;
}

std::vector<SensorRecord> load_trace(const std::string& path) {
  const auto reader = open_trace_reader(path);
  std::vector<SensorRecord> all;
  std::vector<SensorRecord> batch;
  while (reader->read_batch(batch, kIngestBatch) > 0) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

struct ServeChild {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Fork an in-process resident service; the child reports its ephemeral
/// port back over a pipe before entering the accept loop.
ServeChild spawn_server(std::size_t threads, const std::string& dir, std::size_t every,
                        bool resume) {
  int pfd[2];
  if (pipe(pfd) != 0) throw std::runtime_error("spawn_server: pipe failed");
  const pid_t pid = fork();
  if (pid == 0) {
    close(pfd[0]);
    service::ServerConfig sc;
    sc.fleet.threads = threads;
    sc.fleet.checkpoint_dir = dir;
    sc.fleet.checkpoint_every_records = every;
    sc.region = region_config();
    sc.resume = resume;
    try {
      service::Server server(std::move(sc));
      const std::uint16_t port = server.port();
      if (write(pfd[1], &port, sizeof port) != sizeof port) std::_Exit(97);
      close(pfd[1]);
      server.run();  // until kShutdown or the parent's SIGKILL
    } catch (...) {
      std::_Exit(97);
    }
    std::_Exit(0);
  }
  close(pfd[1]);
  ServeChild child;
  child.pid = pid;
  if (read(pfd[0], &child.port, sizeof child.port) != sizeof child.port) {
    close(pfd[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    throw std::runtime_error("spawn_server: daemon died before reporting its port");
  }
  close(pfd[0]);
  return child;
}

/// The resident-service drill: stream most of the workload, SIGKILL the
/// daemon with unflushed frames in flight, restart with resume, stream the
/// tails from the offsets HELLO reports, and byte-compare the final report.
bool run_serve_cell(const Workload& w, const Options& opt, std::size_t threads,
                    const std::string& baseline) {
  const std::string dir = opt.root + "/serve_t" + std::to_string(threads);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::map<std::string, std::vector<SensorRecord>> recs;
  for (const auto& r : w.regions) recs[r] = load_trace(w.trace_path.at(r));

  // First life: stream ~3/4 of each region with a sync barrier, force a
  // checkpoint commit, then put the tail on the wire WITHOUT flushing and
  // pull the plug -- the daemon dies with frames mid-ingest.
  const auto first = spawn_server(threads, dir, opt.every, /*resume=*/false);
  try {
    service::ClientConfig cc;
    cc.port = first.port;
    for (const auto& r : w.regions) {
      const auto& all = recs.at(r);
      const std::size_t cut = all.size() * 3 / 4;
      service::Client client(cc);
      if (!client.hello(r, 2).is_ok()) throw std::runtime_error("hello failed");
      if (!client.send({all.data(), cut}).is_ok()) throw std::runtime_error("send failed");
      if (!client.flush().is_ok()) throw std::runtime_error("flush failed");
    }
    service::Client control(cc);
    if (!control.checkpoint().is_ok()) throw std::runtime_error("checkpoint failed");
    for (const auto& r : w.regions) {
      const auto& all = recs.at(r);
      const std::size_t cut = all.size() * 3 / 4;
      service::Client client(cc);
      (void)client.hello(r, 2);
      (void)client.send({all.data() + cut, all.size() - cut});  // no flush: in flight
    }
  } catch (const std::exception& e) {
    std::cout << "  serve t=" << threads << ": FAIL (stream: " << e.what() << ")\n";
    kill(first.pid, SIGKILL);
    int status = 0;
    waitpid(first.pid, &status, 0);
    return false;
  }
  kill(first.pid, SIGKILL);
  int status = 0;
  waitpid(first.pid, &status, 0);

  // Second life: resume from the surviving store. HELLO names how many
  // records each region's restored state covers; the tenants stream the
  // full trace and the client-side skip drops the covered prefix.
  std::string recovered;
  std::uint64_t resumed_from = 0;
  try {
    const auto second = spawn_server(threads, dir, opt.every, /*resume=*/true);
    service::ClientConfig cc;
    cc.port = second.port;
    for (const auto& r : w.regions) {
      const auto& all = recs.at(r);
      service::Client client(cc);
      const auto offset = client.hello(r, 2);
      if (!offset.is_ok()) throw std::runtime_error("resume hello failed");
      if (*offset > all.size()) throw std::runtime_error("offset past end of trace");
      resumed_from += *offset;
      if (!client.send({all.data() + *offset, all.size() - *offset}).is_ok()) {
        throw std::runtime_error("resume send failed");
      }
      if (!client.flush().is_ok()) throw std::runtime_error("resume flush failed");
    }
    service::Client control(cc);
    const auto report = control.report(/*finalize=*/true, /*fleet_scope=*/true);
    if (!report.is_ok()) throw std::runtime_error("report failed");
    recovered = *report;
    (void)control.shutdown_server();
    waitpid(second.pid, &status, 0);
  } catch (const std::exception& e) {
    std::cout << "  serve t=" << threads << ": FAIL (recovery: " << e.what() << ")\n";
    return false;
  }

  const bool ok = recovered == baseline;
  std::cout << "  serve t=" << threads << " (SIGKILL mid-stream, resumed covering "
            << resumed_from << " records)" << (ok ? ": ok" : ": FAIL (report diverges)") << '\n';
  if (!opt.keep) std::filesystem::remove_all(dir);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = (std::filesystem::temp_directory_path() / "sentinel_chaos").string();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg == "--list") {
      for (const char* p : fault::kCatalog) std::cout << p << '\n';
      return 0;
    } else if (arg.rfind("--dir=", 0) == 0) {
      opt.root = val();
    } else if (arg.rfind("--points=", 0) == 0) {
      opt.points = split(val(), ',');
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads.clear();
      for (const auto& t : split(val(), ',')) opt.threads.push_back(std::stoul(t));
    } else if (arg.rfind("--every=", 0) == 0) {
      opt.every = std::stoul(val());
    } else if (arg.rfind("--nth=", 0) == 0) {
      opt.nth = std::stoull(val());
    } else if (arg == "--keep") {
      opt.keep = true;
    } else if (arg == "--serve") {
      opt.serve = true;
    } else {
      std::cerr << "chaos_runner: unknown argument " << arg << "\n"
                << "usage: chaos_runner [--list] [--dir=<root>] [--points=a,b,c]\n"
                << "                    [--threads=1,4] [--every=N] [--nth=N] [--keep]\n"
                << "                    [--serve]\n";
      return 2;
    }
  }
  if (opt.serve) {
    // SIGKILL drill against the resident service: no compiled-in fault
    // points needed, so it runs (and is CI-run) in Release builds too.
    std::filesystem::create_directories(opt.root);
    const Workload w = make_workload(opt.root);
    std::size_t failures = 0;
    for (const std::size_t threads : opt.threads) {
      const std::string baseline = run_fleet(w, threads, "", opt.every);
      std::cout << "serve threads=" << threads << " (baseline " << baseline.size()
                << " bytes)\n";
      if (!run_serve_cell(w, opt, threads, baseline)) ++failures;
    }
    if (failures > 0) {
      std::cout << failures << " serve cell(s) FAILED\n";
      return 1;
    }
    std::cout << "all " << opt.threads.size() << " serve cells recovered byte-identically\n";
    return 0;
  }
#ifndef SENTINEL_FAULT_INJECTION
  std::cerr << "chaos_runner: built without SENTINEL_FAULT_INJECTION; "
               "fault points are no-ops and no plug can be pulled.\n";
  return 2;
#endif
  std::filesystem::create_directories(opt.root);
  const Workload w = make_workload(opt.root);

  std::size_t failures = 0;
  for (const std::size_t threads : opt.threads) {
    const std::string baseline = run_fleet(w, threads, "", opt.every);
    std::cout << "threads=" << threads << " (baseline " << baseline.size() << " bytes)\n";
    for (const auto& point : opt.points) {
      if (!run_cell(w, opt, point, threads, baseline)) ++failures;
    }
  }
  if (failures > 0) {
    std::cout << failures << " cell(s) FAILED\n";
    return 1;
  }
  std::cout << "all " << opt.points.size() * opt.threads.size()
            << " cells recovered byte-identically\n";
  return 0;
}
