# CLI smoke test: simulate -> analyze (saving a checkpoint) -> resume.

set(trace ${WORK}/cli_smoke_trace.csv)
set(ckpt ${WORK}/cli_smoke.ckpt)

execute_process(COMMAND ${CLI} simulate ${trace} --days 6 --scenario stuck-at
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed: ${out}")
endif()

execute_process(COMMAND ${CLI} analyze ${trace} --save-checkpoint ${ckpt}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed: ${out}")
endif()
if(NOT out MATCHES "stuck-at")
  message(FATAL_ERROR "analyze did not classify the stuck-at fault:\n${out}")
endif()

execute_process(COMMAND ${CLI} analyze ${trace} --checkpoint ${ckpt} --json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume failed: ${out}")
endif()
if(NOT out MATCHES "\"kind\":\"stuck-at\"")
  message(FATAL_ERROR "resumed analyze lost the diagnosis:\n${out}")
endif()

execute_process(COMMAND ${CLI} scenarios RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "dynamic-creation")
  message(FATAL_ERROR "scenarios listing failed:\n${out}")
endif()

execute_process(COMMAND ${CLI} health ${trace} RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "completeness")
  message(FATAL_ERROR "health report failed:\n${out}")
endif()

set(clean ${WORK}/cli_smoke_clean.csv)
set(attacked ${WORK}/cli_smoke_attacked.csv)
execute_process(COMMAND ${CLI} simulate ${clean} --days 10 RESULT_VARIABLE rc)
execute_process(COMMAND ${CLI} inject ${clean} ${attacked} --scenario deletion
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inject failed: ${out}")
endif()
execute_process(COMMAND ${CLI} analyze ${attacked} RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "dynamic-deletion")
  message(FATAL_ERROR "re-injected attack not classified:\n${out}")
endif()

execute_process(COMMAND ${CLI} analyze ${trace} --auto RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "stuck-at")
  message(FATAL_ERROR "auto-tuned analyze failed:\n${out}")
endif()
