# CLI smoke test: simulate -> analyze (saving a checkpoint) -> resume.

set(trace ${WORK}/cli_smoke_trace.csv)
set(ckpt ${WORK}/cli_smoke.ckpt)

execute_process(COMMAND ${CLI} simulate ${trace} --days 6 --scenario stuck-at
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed: ${out}")
endif()

execute_process(COMMAND ${CLI} analyze ${trace} --save-checkpoint ${ckpt}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed: ${out}")
endif()
if(NOT out MATCHES "stuck-at")
  message(FATAL_ERROR "analyze did not classify the stuck-at fault:\n${out}")
endif()

execute_process(COMMAND ${CLI} analyze ${trace} --checkpoint ${ckpt} --json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume failed: ${out}")
endif()
if(NOT out MATCHES "\"kind\":\"stuck-at\"")
  message(FATAL_ERROR "resumed analyze lost the diagnosis:\n${out}")
endif()

execute_process(COMMAND ${CLI} scenarios RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "dynamic-creation")
  message(FATAL_ERROR "scenarios listing failed:\n${out}")
endif()

execute_process(COMMAND ${CLI} health ${trace} RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "completeness")
  message(FATAL_ERROR "health report failed:\n${out}")
endif()

set(clean ${WORK}/cli_smoke_clean.csv)
set(attacked ${WORK}/cli_smoke_attacked.csv)
execute_process(COMMAND ${CLI} simulate ${clean} --days 10 RESULT_VARIABLE rc)
execute_process(COMMAND ${CLI} inject ${clean} ${attacked} --scenario deletion
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inject failed: ${out}")
endif()
execute_process(COMMAND ${CLI} analyze ${attacked} RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "dynamic-deletion")
  message(FATAL_ERROR "re-injected attack not classified:\n${out}")
endif()

execute_process(COMMAND ${CLI} analyze ${trace} --auto RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "stuck-at")
  message(FATAL_ERROR "auto-tuned analyze failed:\n${out}")
endif()

# Crash-consistent checkpoint store (docs/RELIABILITY.md): analyze commits an
# epoch on the first run, resumes from it on the second, and the printed
# diagnosis must not change. A corrupted manifest must fail with a one-line
# data-loss status and a nonzero exit, never a garbage report.
set(store ${WORK}/cli_smoke_store)
file(REMOVE_RECURSE ${store})
execute_process(COMMAND ${CLI} analyze ${trace} --resume ${store}
                RESULT_VARIABLE rc OUTPUT_VARIABLE first ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT err MATCHES "checkpoint committed")
  message(FATAL_ERROR "analyze with checkpoint store failed:\n${first}\n${err}")
endif()
execute_process(COMMAND ${CLI} analyze ${trace} --resume ${store}
                RESULT_VARIABLE rc OUTPUT_VARIABLE second ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT err MATCHES "resumed from")
  message(FATAL_ERROR "analyze resume failed:\n${second}\n${err}")
endif()
if(NOT first STREQUAL second)
  message(FATAL_ERROR "resumed analyze report diverges from the original")
endif()

execute_process(COMMAND ${CLI} fleet ${trace} --resume ${store} --checkpoint-every 2000
                RESULT_VARIABLE rc OUTPUT_VARIABLE fleet_first)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet with checkpoint store failed:\n${fleet_first}")
endif()
execute_process(COMMAND ${CLI} fleet ${trace} --resume ${store} --checkpoint-every 2000
                RESULT_VARIABLE rc OUTPUT_VARIABLE fleet_second ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT err MATCHES "resumed: checkpoint covers")
  message(FATAL_ERROR "fleet resume failed:\n${fleet_second}\n${err}")
endif()
if(NOT fleet_first STREQUAL fleet_second)
  message(FATAL_ERROR "resumed fleet report diverges from the original")
endif()

file(READ ${store}/MANIFEST manifest)
string(SUBSTRING "${manifest}" 0 20 truncated)
file(WRITE ${store}/MANIFEST "${truncated}")
execute_process(COMMAND ${CLI} fleet ${trace} --resume ${store}
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "data-loss")
  message(FATAL_ERROR "corrupt manifest not rejected (rc=${rc}):\n${err}")
endif()
