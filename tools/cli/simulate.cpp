// Subcommands that generate or inspect traces: simulate, inject, health,
// scenarios. Split out of the historical monolithic sentinel_cli.cpp;
// output is byte-identical to it.

#include <cstdio>
#include <memory>

#include "cli/common.h"
#include "faults/replay.h"
#include "trace/health.h"
#include "trace/trace_io.h"

namespace sentinel::cli {

int cmd_scenarios(const Args&) {
  for (const auto k : bench::all_injection_kinds()) {
    std::printf("%-14s expected: %s/%s\n", bench::to_string(k),
                core::to_string(bench::expected_verdict(k)).c_str(),
                core::to_string(bench::expected_kind(k)).c_str());
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  const double days = opt_double(args, "--days", 14.0);
  const auto seed = static_cast<std::uint64_t>(opt_double(args, "--seed", 42.0));
  const std::string scenario = opt_str(args, "--scenario", "clean");
  const auto kind = kind_by_name(scenario);
  if (!kind) {
    std::fprintf(stderr, "unknown scenario '%s' (try: sentinel_cli scenarios)\n",
                 scenario.c_str());
    return 2;
  }

  bench::ScenarioConfig sc;
  sc.duration_days = days;
  sc.seed = seed;

  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = days * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.seed = seed;
  auto simulator = sim::make_gdi_deployment(env, dc);
  auto plan = std::make_shared<faults::InjectionPlan>();
  if (const auto inject = bench::make_injection(*kind, seed)) inject(*plan, env);
  simulator.set_transform(faults::make_transform(plan));
  const auto result = simulator.run(ec.duration_seconds);

  const AttrSchema schema = gdi_schema();
  write_trace_file(args.path, result.trace, &schema);
  std::printf("wrote %zu records (%zu sampled, %zu lost, %zu malformed) to %s\n",
              result.trace.size(), result.stats.sampled, result.stats.lost,
              result.stats.malformed, args.path.c_str());
  std::printf("scenario: %s\n", bench::to_string(*kind));
  return 0;
}

int cmd_inject(const Args& args) {
  const auto read = read_trace_file(args.path);
  if (read.records.empty()) {
    std::fprintf(stderr, "no parseable records in %s\n", args.path.c_str());
    return 1;
  }
  const std::string scenario = opt_str(args, "--scenario", "stuck-at");
  const auto kind = kind_by_name(scenario);
  if (!kind || *kind == bench::InjectionKind::kClean) {
    std::fprintf(stderr, "unknown or empty scenario '%s'\n", scenario.c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(opt_double(args, "--seed", 42.0));

  // Ground truth reconstructed from the recording itself (paper 4.2 on real
  // data); the injection starts one-seventh into the recording.
  const faults::TraceEnvironment env(read.records);
  const double t0 = read.records.front().time;
  const double t1 = read.records.back().time;
  faults::InjectionPlan plan;
  bench::make_injection(*kind, seed, t0 + (t1 - t0) / 7.0)(plan, env);
  const auto injected = faults::inject_into_trace(read.records, plan, env);

  const AttrSchema schema = gdi_schema();
  write_trace_file(args.path2, injected, &schema);
  std::printf("injected %s into %zu sensors; wrote %zu records to %s\n",
              bench::to_string(*kind), plan.injected_sensors().size(), injected.size(),
              args.path2.c_str());
  return 0;
}

int cmd_health(const Args& args) {
  const auto read = read_trace_file(args.path);
  if (read.records.empty()) {
    std::fprintf(stderr, "no parseable records in %s\n", args.path.c_str());
    return 1;
  }
  const double period = opt_double(args, "--period", 5.0 * kSecondsPerMinute);
  for (const auto& h : analyze_health(read.records, period)) {
    std::printf("%s\n", to_string(h).c_str());
  }
  return 0;
}

}  // namespace sentinel::cli
