// Shared plumbing of the sentinel_cli subcommands: argument parsing, option
// lookup, the metrics-JSON exporter, and the trace-bootstrap helpers the
// batch fleet and the resident service both use (one bootstrap function is
// what keeps `serve` reports byte-identical to `fleet` reports over the same
// traces). Each subcommand lives in its own translation unit under
// tools/cli/; tools/sentinel_cli.cpp is only the dispatch table.

#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/scenario.h"
#include "core/config.h"
#include "core/pipeline.h"
#include "util/metrics.h"

namespace sentinel::cli {

/// Print the usage text; returns the CLI's usage exit code (2).
int usage();

struct Args {
  std::string command;
  std::string path;
  std::string path2;
  std::vector<std::string> paths;  // fleet/stream: one trace per region
  std::map<std::string, std::string> options;
};

std::optional<Args> parse(int argc, char** argv);

double opt_double(const Args& a, const std::string& key, double fallback);
std::string opt_str(const Args& a, const std::string& key, const std::string& fallback);

void inject_pipeline_counters(util::MetricsSnapshot& snap, const std::string& prefix,
                              const core::PipelineCounters& c);

/// Parse --screen-mode into cfg (default off, the historical path). Prints
/// and returns false on an unknown mode.
bool apply_screen_mode(const Args& args, core::PipelineConfig& cfg);

void inject_screen_stats(util::MetricsSnapshot& snap, const std::string& prefix,
                         const screen::ScreenStats& s);

int write_metrics_json(const Args& args, const util::MetricsSnapshot& snap);

std::optional<bench::InjectionKind> kind_by_name(const std::string& name);

/// Bootstrap cfg.initial_states from the first trace in `paths` that parses
/// and yields at least k windows (offline clustering over per-window means,
/// paper section 4.1). Deterministic: Rng(7, "cli-kmeans"), so every caller
/// that bootstraps from the same traces gets the same states. False when no
/// trace is long enough.
bool bootstrap_initial_states(const std::vector<std::string>& paths, core::PipelineConfig& cfg,
                              std::size_t k);

/// One (region name, trace path) pair per input: names derive from the file
/// stem, deduplicated with "#n" suffixes -- the region-naming scheme shared
/// by `fleet` and `stream`.
std::vector<std::pair<std::string, std::string>> region_feeds(
    const std::vector<std::string>& paths);

// One entry point per subcommand (each in its own TU under tools/cli/).
int cmd_scenarios(const Args& args);
int cmd_simulate(const Args& args);
int cmd_inject(const Args& args);
int cmd_health(const Args& args);
int cmd_analyze(const Args& args);
int cmd_fleet(const Args& args);
int cmd_convert(const Args& args);
int cmd_serve(const Args& args);
int cmd_stream(const Args& args);

}  // namespace sentinel::cli
