#include "cli/common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/offline_kmeans.h"
#include "trace/trace_io.h"
#include "trace/windower.h"
#include "util/rng.h"

namespace sentinel::cli {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sentinel_cli simulate <out.csv> [--days N] [--seed S] [--scenario KIND]\n"
               "  sentinel_cli analyze <trace.csv> [--window SECONDS] [--states K] [--json] [--auto]\n"
               "               [--checkpoint IN] [--save-checkpoint OUT] [--resume DIR]\n"
               "               [--screen-mode off|screen|full] [--timers] [--metrics-json PATH]\n"
               "  sentinel_cli fleet <trace1> [<trace2> ...] [--window SECONDS] [--states K]\n"
               "               [--threads N] [--timers] [--metrics-json PATH]\n"
               "               [--resume DIR] [--checkpoint-every N]\n"
               "               [--screen-mode off|screen|full]\n"
               "  sentinel_cli serve --bootstrap <trace> [--port P] [--port-file PATH]\n"
               "               [--window SECONDS] [--states K] [--threads N]\n"
               "               [--resume DIR] [--checkpoint-dir DIR] [--checkpoint-every N]\n"
               "               [--checkpoint-interval SECONDS] [--screen-mode off|screen|full]\n"
               "  sentinel_cli stream <trace1> [<trace2> ...] --port P [--frame-records N]\n"
               "               [--report] [--final] [--shutdown] [--metrics-json PATH]\n"
               "  sentinel_cli inject <in.csv> <out.csv> [--scenario KIND] [--seed S]\n"
               "  sentinel_cli health <trace.csv> [--period SECONDS]\n"
               "  sentinel_cli convert <in> <out> [--to csv|binary]\n"
               "  sentinel_cli scenarios\n");
  return 2;
}

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  int i = 2;
  if (args.command == "simulate" || args.command == "analyze" || args.command == "health" ||
      args.command == "inject" || args.command == "convert") {
    if (argc < 3 || argv[2][0] == '-') return std::nullopt;
    args.path = argv[2];
    i = 3;
  }
  if (args.command == "inject" || args.command == "convert") {
    if (argc < 4 || argv[3][0] == '-') return std::nullopt;
    args.path2 = argv[3];
    i = 4;
  }
  if (args.command == "fleet" || args.command == "stream") {
    while (i < argc && argv[i][0] != '-') args.paths.emplace_back(argv[i++]);
    if (args.paths.empty()) return std::nullopt;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) return std::nullopt;
    if (flag == "--json" || flag == "--auto" || flag == "--timers" || flag == "--report" ||
        flag == "--final" || flag == "--shutdown") {
      args.options[flag] = "1";
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    args.options[flag] = argv[++i];
  }
  return args;
}

double opt_double(const Args& a, const std::string& key, double fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stod(it->second);
}

std::string opt_str(const Args& a, const std::string& key, const std::string& fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : it->second;
}

void inject_pipeline_counters(util::MetricsSnapshot& snap, const std::string& prefix,
                              const core::PipelineCounters& c) {
  snap.add_counter(prefix + "windows_processed", c.windows_processed);
  snap.add_counter(prefix + "windows_skipped", c.windows_skipped);
  snap.add_counter(prefix + "state_spawns", c.state_spawns);
  snap.add_counter(prefix + "state_merges", c.state_merges);
  snap.add_counter(prefix + "raw_alarms", c.raw_alarms);
  snap.add_counter(prefix + "filtered_alarms", c.filtered_alarms);
  snap.add_counter(prefix + "track_opens", c.track_opens);
  snap.add_counter(prefix + "track_closes", c.track_closes);
  snap.add_counter(prefix + "hmm_updates", c.hmm_updates);
  snap.add_counter(prefix + "late_records", c.late_records);
  snap.add_counter(prefix + "clamped_records", c.clamped_records);
}

bool apply_screen_mode(const Args& args, core::PipelineConfig& cfg) {
  const std::string mode = opt_str(args, "--screen-mode", "off");
  if (!screen::parse_screen_mode(mode.c_str(), cfg.screen.mode)) {
    std::fprintf(stderr, "unknown --screen-mode '%s' (expected off|screen|full)\n", mode.c_str());
    return false;
  }
  return true;
}

void inject_screen_stats(util::MetricsSnapshot& snap, const std::string& prefix,
                         const screen::ScreenStats& s) {
  snap.add_counter(prefix + "sensors", s.sensors);
  snap.add_counter(prefix + "escalated", s.escalated);
  snap.add_counter(prefix + "escalations", s.escalations);
  snap.add_counter(prefix + "deescalations", s.deescalations);
  snap.add_counter(prefix + "chi2_trips", s.chi2_trips);
  snap.add_counter(prefix + "runs_trips", s.runs_trips);
  snap.add_counter(prefix + "screened_windows", s.screened_windows);
  snap.add_counter(prefix + "escalated_windows", s.escalated_windows);
}

int write_metrics_json(const Args& args, const util::MetricsSnapshot& snap) {
  const std::string path = opt_str(args, "--metrics-json", "");
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (out) out << snap.to_json() << '\n';
  if (!out) {
    std::fprintf(stderr, "cannot write metrics json %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics written to %s\n", path.c_str());
  return 0;
}

std::optional<bench::InjectionKind> kind_by_name(const std::string& name) {
  for (const auto k : bench::all_injection_kinds()) {
    if (name == bench::to_string(k)) return k;
  }
  return std::nullopt;
}

bool bootstrap_initial_states(const std::vector<std::string>& paths, core::PipelineConfig& cfg,
                              std::size_t k) {
  Rng rng(7, "cli-kmeans");
  for (const auto& path : paths) {
    try {
      const auto read = read_trace_file(path);
      std::vector<AttrVec> history;
      for (const auto& w : window_trace(read.records, cfg.window_seconds)) {
        if (!w.empty()) history.push_back(w.overall_mean());
      }
      if (history.size() < k) continue;
      cfg.initial_states = core::kmeans(history, k, rng).centroids;
      return true;
    } catch (const std::exception&) {
      continue;
    }
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> region_feeds(
    const std::vector<std::string>& paths) {
  std::vector<std::pair<std::string, std::string>> feeds;
  for (const auto& path : paths) {
    const auto slash = path.find_last_of("/\\");
    std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
    const auto dot = stem.rfind('.');
    if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
    std::string name = stem;
    for (std::size_t n = 2; std::any_of(feeds.begin(), feeds.end(),
                                        [&](const auto& f) { return f.first == name; });
         ++n) {
      name = stem + "#" + std::to_string(n);
    }
    feeds.emplace_back(name, path);
  }
  return feeds;
}

}  // namespace sentinel::cli
