// `sentinel_cli convert`: streaming CSV <-> SNTRB1 transcoder. Split out of
// the historical monolithic sentinel_cli.cpp; output is byte-identical.

#include <cstdio>
#include <fstream>
#include <vector>

#include "cli/common.h"
#include "trace/binary_trace.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"

namespace sentinel::cli {

int cmd_convert(const Args& args) {
  std::string to = opt_str(args, "--to", "");
  if (to.empty()) {
    // Infer the target format from the output extension.
    const auto dot = args.path2.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : args.path2.substr(dot);
    to = (ext == ".snt" || ext == ".bin") ? "binary" : "csv";
  }
  if (to != "csv" && to != "binary") {
    std::fprintf(stderr, "unknown target format '%s' (expected csv or binary)\n", to.c_str());
    return 2;
  }

  const auto reader = open_trace_reader(args.path);
  std::vector<SensorRecord> batch;
  std::size_t total = 0;
  if (to == "binary") {
    BinaryTraceWriter writer(args.path2);
    while (reader->read_batch(batch, TraceReader::kDefaultBatch) > 0) {
      writer.append(batch);
      total += batch.size();
    }
    writer.close();
  } else {
    std::ofstream out(args.path2);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.path2.c_str());
      return 1;
    }
    while (reader->read_batch(batch, TraceReader::kDefaultBatch) > 0) {
      write_trace(out, batch);
      total += batch.size();
    }
    if (!out) {
      std::fprintf(stderr, "write failed for %s\n", args.path2.c_str());
      return 1;
    }
  }
  if (reader->malformed_lines() > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n", reader->malformed_lines());
  }
  std::printf("wrote %zu records to %s (%s)\n", total, args.path2.c_str(), to.c_str());
  return 0;
}

}  // namespace sentinel::cli
