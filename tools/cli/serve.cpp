// `sentinel_cli serve` / `sentinel_cli stream`: the resident fleet service
// and its streaming client (docs/SERVICE.md).
//
//   serve  -- keep one FleetMonitor alive behind a localhost TCP listener.
//             Tenants bind regions over SNTRS1 connections; reports, metrics
//             and health are served live; checkpoints commit on a timer and
//             a final one commits at shutdown so `serve --resume` continues
//             bit-identically after a crash or restart.
//   stream -- feed trace files to a running server, one connection (and
//             region) per file, then optionally fetch the fleet report and
//             shut the server down. `stream` + `serve` over the same traces
//             print the same report bytes as `fleet` (test-enforced),
//             because all three share the bootstrap, region naming, and the
//             SNTRB1 record codec.

#include <csignal>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cli/common.h"
#include "service/client.h"
#include "service/server.h"
#include "trace/trace_reader.h"

namespace sentinel::cli {

namespace {

service::Server* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: request_stop is an atomic store + pipe write.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int cmd_serve(const Args& args) {
  service::ServerConfig sc;
  sc.port = static_cast<std::uint16_t>(opt_double(args, "--port", 0.0));
  sc.fleet.threads = static_cast<std::size_t>(opt_double(args, "--threads", 1.0));
  const std::string resume_dir = opt_str(args, "--resume", "");
  sc.fleet.checkpoint_dir = opt_str(args, "--checkpoint-dir", resume_dir);
  sc.resume = !resume_dir.empty();
  sc.fleet.checkpoint_every_records = static_cast<std::size_t>(opt_double(
      args, "--checkpoint-every", static_cast<double>(core::FleetConfig{}.checkpoint_every_records)));
  sc.checkpoint_interval_seconds = opt_double(args, "--checkpoint-interval", 0.0);

  sc.region.window_seconds = opt_double(args, "--window", sc.region.window_seconds);
  sc.region.stage_timers = args.options.count("--timers") > 0;
  if (!apply_screen_mode(args, sc.region)) return 2;
  const auto k = static_cast<std::size_t>(opt_double(args, "--states", 6.0));

  // The resident fleet serves every tenant from one region config, so the
  // initial model states must come from a bootstrap trace named up front --
  // the same kmeans bootstrap `fleet` runs on its first parseable trace,
  // which is what keeps served reports comparable with batch runs.
  const std::string bootstrap = opt_str(args, "--bootstrap", "");
  if (bootstrap.empty()) {
    std::fprintf(stderr, "serve requires --bootstrap <trace> for the initial model states\n");
    return 2;
  }
  if (!bootstrap_initial_states({bootstrap}, sc.region, k)) {
    std::fprintf(stderr, "no trace long enough to bootstrap %zu initial states\n", k);
    return 1;
  }

  std::unique_ptr<service::Server> server;
  try {
    server = std::make_unique<service::Server>(sc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // Publish the bound port (ephemeral when --port 0) where scripts and the
  // chaos harness can read it before connecting.
  const std::string port_file = opt_str(args, "--port-file", "");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server->port()));
    std::fclose(f);
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%u\n", static_cast<unsigned>(server->port()));

  g_server = server.get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  server->run();
  g_server = nullptr;
  std::fprintf(stderr, "server drained and stopped\n");
  return 0;
}

int cmd_stream(const Args& args) {
  const auto port = static_cast<std::uint16_t>(opt_double(args, "--port", 0.0));
  if (port == 0) {
    std::fprintf(stderr, "stream requires --port <server port>\n");
    return 2;
  }
  service::ClientConfig cc;
  cc.port = port;
  cc.frame_records = static_cast<std::size_t>(opt_double(args, "--frame-records", 4096.0));

  // One connection (and region) per trace, named exactly as `fleet` names
  // its regions from the same paths.
  const auto feeds = region_feeds(args.paths);
  std::uint64_t rejected = 0;
  for (const auto& [name, path] : feeds) {
    std::unique_ptr<TraceReader> reader;
    try {
      reader = open_trace_reader(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[region %s] cannot open %s: %s\n", name.c_str(), path.c_str(),
                   e.what());
      return 1;
    }
    // CSV traces do not declare their dimensionality up front: read one
    // batch to learn it, then replay that batch over the connection.
    std::vector<SensorRecord> first;
    std::size_t dims = reader->dims();
    if (dims == 0) {
      reader->read_batch(first, TraceReader::kDefaultBatch);
      if (first.empty()) {
        std::fprintf(stderr, "[region %s] no parseable records in %s\n", name.c_str(),
                     path.c_str());
        return 1;
      }
      dims = first.front().attrs.size();
    }
    try {
      service::Client client(cc);
      const auto offset = client.hello(name, dims);
      if (!offset.is_ok()) {
        std::fprintf(stderr, "[region %s] hello failed: %s\n", name.c_str(),
                     offset.status().to_string().c_str());
        return 1;
      }
      std::uint64_t sent_total = 0;
      std::size_t skip = static_cast<std::size_t>(*offset);
      if (skip < first.size()) {
        const std::span<const SensorRecord> tail(first.data() + skip, first.size() - skip);
        if (const auto st = client.send(tail); !st.is_ok()) {
          std::fprintf(stderr, "[region %s] stream failed: %s\n", name.c_str(),
                       st.to_string().c_str());
          return 1;
        }
        sent_total += tail.size();
        skip = 0;
      } else {
        skip -= first.size();
      }
      const auto sent = client.stream_reader(*reader, skip);
      if (!sent.is_ok()) {
        std::fprintf(stderr, "[region %s] stream failed: %s\n", name.c_str(),
                     sent.status().to_string().c_str());
        return 1;
      }
      sent_total += *sent;
      rejected += client.rejected_frames();
      std::fprintf(stderr, "[region %s] streamed %llu records from %s (skipped %llu covered)\n",
                   name.c_str(), static_cast<unsigned long long>(sent_total), path.c_str(),
                   static_cast<unsigned long long>(*offset));
      for (const auto& ev : client.health_events()) {
        std::fprintf(stderr, "[region %s] health: %s\n", name.c_str(),
                     util::Status(ev.code, ev.message).to_string().c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[region %s] %s\n", name.c_str(), e.what());
      return 1;
    }
  }
  if (rejected > 0) {
    std::fprintf(stderr, "admission control rejected %llu frames (resent)\n",
                 static_cast<unsigned long long>(rejected));
  }

  // Control-plane tail on a fresh connection: report, metrics, shutdown.
  try {
    service::Client client(cc);
    if (args.options.count("--report")) {
      const bool finalize = args.options.count("--final") > 0;
      const auto report = client.report(finalize, /*fleet_scope=*/true);
      if (!report.is_ok()) {
        std::fprintf(stderr, "report failed: %s\n", report.status().to_string().c_str());
        return 1;
      }
      std::printf("%s", report->c_str());
    }
    if (args.options.count("--metrics-json")) {
      const auto metrics = client.metrics_json();
      if (!metrics.is_ok()) {
        std::fprintf(stderr, "metrics failed: %s\n", metrics.status().to_string().c_str());
        return 1;
      }
      const std::string path = opt_str(args, "--metrics-json", "");
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write metrics json %s\n", path.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", metrics->c_str());
      std::fclose(f);
      std::fprintf(stderr, "metrics written to %s\n", path.c_str());
    }
    if (args.options.count("--shutdown")) {
      if (const auto st = client.shutdown_server(); !st.is_ok()) {
        std::fprintf(stderr, "shutdown failed: %s\n", st.to_string().c_str());
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace sentinel::cli
