// `sentinel_cli fleet`: batch multi-region run, one region per trace file.
// Split out of the historical monolithic sentinel_cli.cpp; output is
// byte-identical to it. The bootstrap and region-naming helpers now live in
// cli/common.cpp because `serve`/`stream` share them -- that sharing is what
// makes a served run's report comparable byte-for-byte with this command's.

#include <cstdio>
#include <map>

#include "cli/common.h"
#include "core/fleet.h"

namespace sentinel::cli {

int cmd_fleet(const Args& args) {
  core::FleetConfig fc;
  fc.threads = static_cast<std::size_t>(opt_double(args, "--threads", 1.0));
  const std::string resume_dir = opt_str(args, "--resume", "");
  fc.checkpoint_dir = resume_dir;
  fc.checkpoint_every_records = static_cast<std::size_t>(opt_double(
      args, "--checkpoint-every", static_cast<double>(core::FleetConfig{}.checkpoint_every_records)));
  core::FleetMonitor fleet(fc);

  core::PipelineConfig cfg;
  cfg.window_seconds = opt_double(args, "--window", cfg.window_seconds);
  cfg.stage_timers = args.options.count("--timers") > 0;
  if (!apply_screen_mode(args, cfg)) return 2;
  const auto k = static_cast<std::size_t>(opt_double(args, "--states", 6.0));

  // Bootstrap the shared initial model states from the first trace that
  // parses (offline clustering over per-window means, paper section 4.1).
  // A trace that cannot even bootstrap will quarantine its region later.
  if (!bootstrap_initial_states(args.paths, cfg, k)) {
    std::fprintf(stderr, "no trace long enough to bootstrap %zu initial states\n", k);
    return 1;
  }

  // One region per trace; region names derive from the file stem.
  const auto feeds = region_feeds(args.paths);
  std::map<std::string, std::size_t> skip;  // resume offsets per region
  for (const auto& [name, path] : feeds) {
    if (resume_dir.empty()) {
      fleet.add_region(name, cfg);
      continue;
    }
    // Restore from the store's last committed epoch; a corrupt entry is a
    // one-line status + nonzero exit, never a silently-fresh region.
    const auto resumed = fleet.add_region_resumed(name, cfg);
    if (!resumed.is_ok()) {
      std::fprintf(stderr, "%s\n", resumed.status().to_string().c_str());
      return 1;
    }
    skip[name] = static_cast<std::size_t>(resumed.value());
    if (resumed.value() > 0) {
      std::fprintf(stderr, "[region %s] resumed: checkpoint covers %llu records\n", name.c_str(),
                   static_cast<unsigned long long>(resumed.value()));
    }
  }

  for (const auto& [name, path] : feeds) {
    const auto sum = fleet.ingest_file(name, path, 0, skip[name]);
    std::fprintf(stderr, "[region %s] ingested %zu records from %s%s%s\n", name.c_str(),
                 sum.records, path.c_str(), sum.status.is_ok() ? "" : " -- ",
                 sum.status.is_ok() ? "" : sum.status.to_string().c_str());
  }
  if (!resume_dir.empty()) fleet.checkpoint_now();
  fleet.finish();
  const auto report = fleet.diagnose();
  std::printf("%s", core::to_string(report).c_str());

  auto snap = util::metrics().snapshot();
  for (const auto& [name, path] : feeds) {
    const auto& st = fleet.region_health(name);
    if (st.health == core::RegionHealth::kQuarantined) continue;
    const auto& rp = fleet.region(name);
    inject_pipeline_counters(snap, "region." + name + ".", rp.counters());
    if (rp.screens() != nullptr) {
      inject_screen_stats(snap, "region." + name + ".screen.", rp.screen_stats());
    }
    // Backpressure attribution (satellite of the resident-service work): how
    // often and how long the producer blocked on this region's full shard.
    snap.add_counter("region." + name + ".backpressure_waits", st.backpressure_waits);
    snap.add_counter("region." + name + ".backpressure_block_ns", st.backpressure_block_ns);
  }
  return write_metrics_json(args, snap);
}

}  // namespace sentinel::cli
