// `sentinel_cli analyze`: single-trace detection run with optional
// checkpoint restore/save and crash-consistent resume. Split out of the
// historical monolithic sentinel_cli.cpp; output is byte-identical to it.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "cli/common.h"
#include "core/autotune.h"
#include "core/checkpoint_store.h"
#include "core/offline_kmeans.h"
#include "trace/trace_io.h"
#include "trace/windower.h"
#include "util/rng.h"
#include "util/vecn.h"

namespace sentinel::cli {

int cmd_analyze(const Args& args) {
  const auto read = read_trace_file(args.path);
  if (read.records.empty()) {
    std::fprintf(stderr, "no parseable records in %s (%s)\n", args.path.c_str(),
                 to_string(read.malformed).c_str());
    return 1;
  }
  std::fprintf(stderr, "read %zu records (skipped: %s)\n", read.records.size(),
               to_string(read.malformed).c_str());
  if (!read.status.is_ok()) {
    std::fprintf(stderr, "warning: source ended early: %s\n", read.status.to_string().c_str());
  }

  core::PipelineConfig cfg;
  cfg.window_seconds = opt_double(args, "--window", cfg.window_seconds);
  cfg.stage_timers = args.options.count("--timers") > 0;
  if (!apply_screen_mode(args, cfg)) return 2;
  const auto k = static_cast<std::size_t>(opt_double(args, "--states", 6.0));

  Rng rng(7, "cli-kmeans");
  if (args.options.count("--auto")) {
    // Derive thresholds and S_o from the data (core/autotune.h).
    const auto tuned = core::suggest_configuration(read.records, cfg.window_seconds, k, rng);
    cfg.initial_states = tuned.initial_states;
    cfg.model_states = tuned.suggested;
    std::fprintf(stderr,
                 "auto-tune: noise %.2f, regime spacing %.1f%s -> merge %.1f, spawn %.1f\n",
                 tuned.noise_scale, tuned.state_spacing,
                 tuned.scales_separated ? "" : " (WARNING: scales not separated)",
                 tuned.suggested.merge_threshold, tuned.suggested.spawn_threshold);
  } else {
    // Bootstrap the initial model states from the trace itself (offline
    // clustering over per-window means, paper section 4.1).
    std::vector<AttrVec> history;
    for (const auto& w : window_trace(read.records, cfg.window_seconds)) {
      if (!w.empty()) history.push_back(w.overall_mean());
    }
    if (history.size() < k) {
      std::fprintf(stderr, "trace too short: %zu windows for %zu initial states\n",
                   history.size(), k);
      return 1;
    }
    cfg.initial_states = core::kmeans(history, k, rng).centroids;
  }

  std::unique_ptr<core::DetectionPipeline> pipeline;
  const std::string checkpoint_in = opt_str(args, "--checkpoint", "");
  const std::string resume_dir = opt_str(args, "--resume", "");
  if (!checkpoint_in.empty() && !resume_dir.empty()) {
    std::fprintf(stderr, "--checkpoint and --resume are mutually exclusive\n");
    return 2;
  }

  // --resume: restore from the crash-consistent store's last committed epoch
  // and fast-forward past the records that epoch already covers. Any torn or
  // corrupt state surfaces as a clean one-line status + nonzero exit.
  std::unique_ptr<core::CheckpointStore> store;
  std::uint64_t skip = 0;
  if (!resume_dir.empty()) {
    store = std::make_unique<core::CheckpointStore>(resume_dir);
    const auto manifest = store->load_manifest();
    if (manifest.is_ok()) {
      const auto it = manifest->regions.find("analyze");
      if (it != manifest->regions.end()) {
        std::string bytes;
        if (const util::Status s = store->read_region(it->second, bytes); !s.is_ok()) {
          std::fprintf(stderr, "%s\n", s.to_string().c_str());
          return 1;
        }
        std::istringstream in(bytes);
        try {
          pipeline = std::make_unique<core::DetectionPipeline>(cfg, in);
        } catch (const std::exception& e) {
          const util::Status s(util::StatusCode::kDataLoss,
                               "checkpoint restore failed: " + std::string(e.what()));
          std::fprintf(stderr, "%s\n", s.to_string().c_str());
          return 1;
        }
        skip = it->second.records_applied;
        std::fprintf(stderr, "resumed from %s epoch %llu (skipping %llu covered records)\n",
                     resume_dir.c_str(), static_cast<unsigned long long>(it->second.epoch),
                     static_cast<unsigned long long>(skip));
      }
    } else if (manifest.status().code() != util::StatusCode::kNotFound) {
      std::fprintf(stderr, "%s\n", manifest.status().to_string().c_str());
      return 1;
    }
  }
  if (!pipeline && !checkpoint_in.empty()) {
    std::ifstream in(checkpoint_in);
    if (!in) {
      std::fprintf(stderr, "cannot open checkpoint %s\n", checkpoint_in.c_str());
      return 1;
    }
    try {
      pipeline = std::make_unique<core::DetectionPipeline>(cfg, in);
    } catch (const std::exception& e) {
      const util::Status s(util::StatusCode::kDataLoss,
                           "checkpoint " + checkpoint_in + ": " + std::string(e.what()));
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "resumed from checkpoint %s\n", checkpoint_in.c_str());
  }
  if (!pipeline) pipeline = std::make_unique<core::DetectionPipeline>(cfg);

  if (skip >= read.records.size()) {
    if (skip > read.records.size()) {
      std::fprintf(stderr, "warning: checkpoint covers %llu records but trace holds %zu\n",
                   static_cast<unsigned long long>(skip), read.records.size());
    }
  } else if (skip > 0) {
    const std::vector<SensorRecord> tail(read.records.begin() + static_cast<std::ptrdiff_t>(skip),
                                         read.records.end());
    pipeline->process_trace(tail);
  } else {
    pipeline->process_trace(read.records);
  }

  const auto report = pipeline->diagnose();
  if (args.options.count("--json")) {
    std::printf("%s\n", core::to_json(report).c_str());
  } else {
    std::printf("windows: %zu processed, %zu skipped; %zu model states\n",
                pipeline->windows_processed(), pipeline->windows_skipped(),
                pipeline->model_states().size());
    const auto m_c = pipeline->correct_model();
    const auto lookup = pipeline->centroid_lookup();
    std::printf("environment model M_C:\n");
    for (const auto id : m_c.states()) {
      if (const auto c = lookup(id)) {
        std::printf("  state %-4u %-12s occupancy %.3f\n", id, vecn::to_string(*c, 0).c_str(),
                    m_c.occupancy()[*m_c.index_of(id)]);
      }
    }
    std::printf("%s", core::to_string(report).c_str());
  }

  const std::string checkpoint_out = opt_str(args, "--save-checkpoint", "");
  if (!checkpoint_out.empty()) {
    std::ofstream out(checkpoint_out);
    if (!out) {
      std::fprintf(stderr, "cannot write checkpoint %s\n", checkpoint_out.c_str());
      return 1;
    }
    pipeline->save_checkpoint(out);
    std::fprintf(stderr, "checkpoint written to %s\n", checkpoint_out.c_str());
  }

  if (store) {
    core::RegionCheckpointMeta meta;
    meta.records_applied =
        std::max<std::uint64_t>(skip, static_cast<std::uint64_t>(read.records.size()));
    if (const util::Status s = store->commit_region("analyze", *pipeline, meta); !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "checkpoint committed to %s (%llu records covered)\n",
                 resume_dir.c_str(), static_cast<unsigned long long>(meta.records_applied));
  }

  auto snap = util::metrics().snapshot();
  inject_pipeline_counters(snap, "pipeline.", pipeline->counters());
  if (pipeline->screens() != nullptr) {
    inject_screen_stats(snap, "pipeline.screen.", pipeline->screen_stats());
  }
  return write_metrics_json(args, snap);
}

}  // namespace sentinel::cli
