#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on throughput regression.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Exit codes:
    0  no benchmark regressed by more than the threshold
    1  at least one benchmark regressed (or an input is unreadable/malformed)
    2  refused: the two files were not measured on the same machine, or one
       of them came from a non-release build

The baseline is a committed BENCH_*.json (e.g. BENCH_screen.json); the
candidate is the JSON a fresh run of the same bench binary just wrote. Rows
are matched by benchmark name. When a file carries aggregate rows (from
--benchmark_repetitions), the median aggregate is compared and the raw
iteration rows are ignored -- medians are what the committed baselines store
for noisy single-core boxes. Throughput (items_per_second, higher is better)
is preferred; benchmarks without it fall back to real_time (lower is better,
normalized through time_unit).

The refusal rule: benchmark numbers only mean something relative to the
machine that produced them. Every bench binary stamps machine.* fields into
the JSON context (bench/metrics_main.h) -- the CPU budget (hardware threads,
cgroup-capped usable concurrency) and the kernel dispatch level the host
selected. If either file lacks those fields, or any of them disagree, the
diff is refused with exit 2 (CI treats that as a skip, not a failure): a
"regression" measured against a baseline from a different CPU budget or a
different SIMD level is noise, not signal.

The same logic refuses debug numbers outright: the bench binaries stamp the
application's build type into the context as library_build_type (overriding
google-benchmark's own key, which describes how the benchmark LIBRARY was
compiled -- irrelevant and misleadingly "debug" with distro packages). A
baseline or candidate whose library_build_type is not "release" is refused
with exit 2: -O0 throughput is not comparable to anything.
"""

import argparse
import json
import sys

# Multipliers to nanoseconds for google-benchmark time_unit values.
_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(1)
    if "benchmarks" not in doc or "context" not in doc:
        print(f"bench_compare: {path} is not google-benchmark JSON "
              "(missing 'benchmarks' or 'context')", file=sys.stderr)
        sys.exit(1)
    return doc


def machine_fields(doc):
    return {k: v for k, v in doc["context"].items() if k.startswith("machine.")}


def check_same_machine(base_doc, cand_doc, base_path, cand_path):
    base = machine_fields(base_doc)
    cand = machine_fields(cand_doc)
    if not base or not cand:
        missing = base_path if not base else cand_path
        print(f"bench_compare: REFUSED -- {missing} has no machine.* context "
              "fields; cannot prove both files came from the same machine",
              file=sys.stderr)
        sys.exit(2)
    if base != cand:
        print("bench_compare: REFUSED -- machine context differs:", file=sys.stderr)
        for key in sorted(set(base) | set(cand)):
            bval = base.get(key, "<absent>")
            cval = cand.get(key, "<absent>")
            marker = "" if bval == cval else "   <-- differs"
            print(f"  {key}: baseline={bval} candidate={cval}{marker}",
                  file=sys.stderr)
        sys.exit(2)


def check_release_build(doc, path):
    build = doc["context"].get("library_build_type")
    if build != "release":
        print(f"bench_compare: REFUSED -- {path} was produced by a "
              f"'{build}' build (library_build_type); only release-build "
              "numbers are comparable. Re-run the bench from a release tree "
              "(-DCMAKE_BUILD_TYPE=Release).", file=sys.stderr)
        sys.exit(2)


def comparable_rows(doc, path):
    """Name -> row. Median aggregates when present, else iteration rows."""
    rows = {}
    have_aggregates = any(b.get("run_type") == "aggregate"
                          for b in doc["benchmarks"])
    for b in doc["benchmarks"]:
        if have_aggregates:
            if b.get("aggregate_name") != "median":
                continue
            # Aggregate names carry a "name_median" suffix; strip it so the
            # row matches a file that has no aggregates.
            name = b["name"]
            if name.endswith("_median"):
                name = name[: -len("_median")]
        else:
            if b.get("run_type") not in (None, "iteration"):
                continue
            name = b["name"]
        if name in rows:
            print(f"bench_compare: {path}: duplicate benchmark '{name}'",
                  file=sys.stderr)
            sys.exit(1)
        rows[name] = b
    return rows


def real_time_ns(row):
    return row["real_time"] * _TIME_UNIT_NS.get(row.get("time_unit", "ns"), 1.0)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_*.json to compare against")
    ap.add_argument("candidate", help="freshly generated benchmark JSON")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="fail when throughput drops by more than this many "
                         "percent (default: %(default)s)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    check_same_machine(base_doc, cand_doc, args.baseline, args.candidate)
    check_release_build(base_doc, args.baseline)
    check_release_build(cand_doc, args.candidate)

    base_rows = comparable_rows(base_doc, args.baseline)
    cand_rows = comparable_rows(cand_doc, args.candidate)
    common = [n for n in base_rows if n in cand_rows]
    if not common:
        print("bench_compare: no benchmark names in common", file=sys.stderr)
        sys.exit(1)
    for name in sorted(set(base_rows) - set(cand_rows)):
        print(f"  (baseline only, skipped) {name}")
    for name in sorted(set(cand_rows) - set(base_rows)):
        print(f"  (candidate only, skipped) {name}")

    regressions = []
    width = max(len(n) for n in common)
    for name in common:
        b, c = base_rows[name], cand_rows[name]
        if "items_per_second" in b and "items_per_second" in c:
            # Throughput: higher is better.
            delta_pct = (c["items_per_second"] / b["items_per_second"] - 1.0) * 100.0
            metric = "items/s"
        else:
            # Wall time: lower is better; express as throughput delta.
            delta_pct = (real_time_ns(b) / real_time_ns(c) - 1.0) * 100.0
            metric = "1/real_time"
        flag = ""
        if delta_pct < -args.threshold:
            regressions.append((name, delta_pct))
            flag = "   REGRESSION"
        print(f"  {name:<{width}}  {delta_pct:+7.1f}% ({metric}){flag}")

    if regressions:
        print(f"\nbench_compare: FAIL -- {len(regressions)} benchmark(s) "
              f"regressed more than {args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: OK ({len(common)} benchmark(s) within "
          f"{args.threshold:.0f}%)")


if __name__ == "__main__":
    main()
