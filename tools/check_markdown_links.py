#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every tracked-looking *.md under the repo root (skipping build output
and .git), extracts inline links/images `[text](target)`, and verifies:

  - relative file targets exist on disk (case-sensitive, like GitHub),
  - `file#anchor` / `#anchor` targets name a real heading in the target
    file, using GitHub's heading-slug rules (lowercase, punctuation
    stripped, spaces to hyphens, duplicate slugs suffixed -1, -2, ...).

External schemes (http/https/mailto) are out of scope -- CI must not
depend on the network. Exits nonzero listing every broken link.

Usage: python3 tools/check_markdown_links.py [repo_root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "third_party", "node_modules"}
# Inline link or image: [text](target "optional title"). Non-greedy text,
# target stops at whitespace or the closing paren.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading, seen):
    """GitHub's anchor algorithm: strip markup, lowercase, drop punctuation,
    hyphenate spaces, then de-duplicate with -1, -2, ... suffixes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)  # emphasis markers
    slug = "".join(c for c in text.lower() if c.isalnum() or c in " -")
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def anchors_of(path, cache):
    if path not in cache:
        seen = {}
        slugs = set()
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for line in f:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    slugs.add(github_slug(m.group(2), seen))
        cache[path] = slugs
    return cache[path]


def iter_markdown(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code(text):
    """Remove fenced and inline code spans so example links are not checked."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    anchor_cache = {}
    broken = []
    checked = 0

    for md in iter_markdown(root):
        rel_md = os.path.relpath(md, root)
        with open(md, encoding="utf-8") as f:
            body = strip_code(f.read())
        for m in LINK_RE.finditer(body):
            target = m.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, mailto:
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = os.path.normpath(os.path.join(os.path.dirname(md), path_part))
            else:
                dest = md  # pure '#anchor' self-link
            if not os.path.exists(dest):
                broken.append(f"{rel_md}: missing file: {target}")
                continue
            if anchor and dest.endswith(".md"):
                if anchor not in anchors_of(dest, anchor_cache):
                    broken.append(f"{rel_md}: missing anchor: {target}")

    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"all {checked} relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
