// sentinel_cli -- command-line front end for the library.
//
//   sentinel_cli simulate <out.csv> [--days N] [--seed S] [--scenario KIND]
//       Generate a synthetic GDI-like deployment trace, optionally with one
//       of the canonical fault/attack injections (stuck-at, calibration,
//       additive, random-noise, creation, deletion, change, mixed, benign).
//
//   sentinel_cli analyze <trace.csv> [--window SECONDS] [--states K] [--auto]
//                [--json] [--checkpoint IN] [--save-checkpoint OUT]
//                [--resume DIR]
//       --auto derives the clustering thresholds and initial states from the
//       trace itself (core/autotune.h) instead of the defaults.
//       Run the detection pipeline over a CSV trace (sensor,time,attrs...)
//       and print the diagnosis; optionally resume from / write a
//       checkpoint. --resume uses a crash-consistent checkpoint store
//       (docs/RELIABILITY.md): the pipeline restores from the store's last
//       committed epoch, replays only the trace tail past the records the
//       checkpoint already covers, and commits a fresh epoch at the end. A
//       corrupt or torn store prints a one-line status and exits nonzero --
//       never a garbage report.
//
//   sentinel_cli inject <in.csv> <out.csv> [--scenario KIND] [--seed S]
//       Re-inject a canonical fault/attack into a *recorded* trace (the
//       paper's section 4.2 methodology): ground truth is reconstructed from
//       the recording itself and the targeted sensors' readings rewritten.
//
//   sentinel_cli health <trace.csv> [--period SECONDS]
//       Per-sensor trace health report: completeness, gaps, noise.
//
//   sentinel_cli convert <in> <out> [--to csv|binary]
//       Transcode a trace between CSV and the SNTRB1 binary format. The
//       input format is auto-detected by magic bytes; the output format
//       follows --to, or the output extension (.snt/.bin = binary) when the
//       flag is absent. Streams batch-by-batch: converts traces larger than
//       RAM.
//
//   sentinel_cli fleet <trace1> [<trace2> ...] [--window SECONDS] [--states K]
//                [--threads N] [--timers] [--metrics-json PATH]
//                [--resume DIR] [--checkpoint-every N]
//       Run a multi-region fleet, one region per trace file. A trace that
//       cannot be opened or turns out malformed/truncated quarantines its
//       region; the remaining regions complete and report normally.
//       --resume points at a crash-consistent checkpoint store: each region
//       restores from its last committed epoch (fresh when absent), replays
//       only its trace tail, and commits periodically while ingesting
//       (--checkpoint-every records, default 262144). A corrupt store entry
//       prints a one-line status and exits nonzero.
//
//   sentinel_cli scenarios
//       List the canonical injection scenarios.
//
// analyze and fleet accept --metrics-json PATH (dump the process metrics
// registry plus per-region pipeline counters as JSON) and --timers (record
// coarse per-stage wall-clock histograms; observational only, reports are
// byte-identical either way).
//
// Every command that reads a trace (analyze, inject, health, convert,
// fleet) accepts CSV or binary input interchangeably -- detection is by
// file content, never by extension.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/scenario.h"
#include "faults/replay.h"
#include "core/autotune.h"
#include "core/checkpoint_store.h"
#include "core/fleet.h"
#include "core/offline_kmeans.h"
#include "core/pipeline.h"
#include "trace/binary_trace.h"
#include "trace/health.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"
#include "util/fault_test.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/vecn.h"

namespace {

using namespace sentinel;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sentinel_cli simulate <out.csv> [--days N] [--seed S] [--scenario KIND]\n"
               "  sentinel_cli analyze <trace.csv> [--window SECONDS] [--states K] [--json] [--auto]\n"
               "               [--checkpoint IN] [--save-checkpoint OUT] [--resume DIR]\n"
               "               [--screen-mode off|screen|full] [--timers] [--metrics-json PATH]\n"
               "  sentinel_cli fleet <trace1> [<trace2> ...] [--window SECONDS] [--states K]\n"
               "               [--threads N] [--timers] [--metrics-json PATH]\n"
               "               [--resume DIR] [--checkpoint-every N]\n"
               "               [--screen-mode off|screen|full]\n"
               "  sentinel_cli inject <in.csv> <out.csv> [--scenario KIND] [--seed S]\n"
               "  sentinel_cli health <trace.csv> [--period SECONDS]\n"
               "  sentinel_cli convert <in> <out> [--to csv|binary]\n"
               "  sentinel_cli scenarios\n");
  return 2;
}

struct Args {
  std::string command;
  std::string path;
  std::string path2;
  std::vector<std::string> paths;  // fleet: one trace per region
  std::map<std::string, std::string> options;
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  int i = 2;
  if (args.command == "simulate" || args.command == "analyze" || args.command == "health" ||
      args.command == "inject" || args.command == "convert") {
    if (argc < 3 || argv[2][0] == '-') return std::nullopt;
    args.path = argv[2];
    i = 3;
  }
  if (args.command == "inject" || args.command == "convert") {
    if (argc < 4 || argv[3][0] == '-') return std::nullopt;
    args.path2 = argv[3];
    i = 4;
  }
  if (args.command == "fleet") {
    while (i < argc && argv[i][0] != '-') args.paths.emplace_back(argv[i++]);
    if (args.paths.empty()) return std::nullopt;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) return std::nullopt;
    if (flag == "--json" || flag == "--auto" || flag == "--timers") {
      args.options[flag] = "1";
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    args.options[flag] = argv[++i];
  }
  return args;
}

double opt_double(const Args& a, const std::string& key, double fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stod(it->second);
}

std::string opt_str(const Args& a, const std::string& key, const std::string& fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : it->second;
}

void inject_pipeline_counters(util::MetricsSnapshot& snap, const std::string& prefix,
                              const core::PipelineCounters& c) {
  snap.add_counter(prefix + "windows_processed", c.windows_processed);
  snap.add_counter(prefix + "windows_skipped", c.windows_skipped);
  snap.add_counter(prefix + "state_spawns", c.state_spawns);
  snap.add_counter(prefix + "state_merges", c.state_merges);
  snap.add_counter(prefix + "raw_alarms", c.raw_alarms);
  snap.add_counter(prefix + "filtered_alarms", c.filtered_alarms);
  snap.add_counter(prefix + "track_opens", c.track_opens);
  snap.add_counter(prefix + "track_closes", c.track_closes);
  snap.add_counter(prefix + "hmm_updates", c.hmm_updates);
  snap.add_counter(prefix + "late_records", c.late_records);
  snap.add_counter(prefix + "clamped_records", c.clamped_records);
}

/// Parse --screen-mode into cfg (default off, the historical path). Prints
/// and returns false on an unknown mode.
bool apply_screen_mode(const Args& args, core::PipelineConfig& cfg) {
  const std::string mode = opt_str(args, "--screen-mode", "off");
  if (!screen::parse_screen_mode(mode.c_str(), cfg.screen.mode)) {
    std::fprintf(stderr, "unknown --screen-mode '%s' (expected off|screen|full)\n", mode.c_str());
    return false;
  }
  return true;
}

void inject_screen_stats(util::MetricsSnapshot& snap, const std::string& prefix,
                         const screen::ScreenStats& s) {
  snap.add_counter(prefix + "sensors", s.sensors);
  snap.add_counter(prefix + "escalated", s.escalated);
  snap.add_counter(prefix + "escalations", s.escalations);
  snap.add_counter(prefix + "deescalations", s.deescalations);
  snap.add_counter(prefix + "chi2_trips", s.chi2_trips);
  snap.add_counter(prefix + "runs_trips", s.runs_trips);
  snap.add_counter(prefix + "screened_windows", s.screened_windows);
  snap.add_counter(prefix + "escalated_windows", s.escalated_windows);
}

int write_metrics_json(const Args& args, const util::MetricsSnapshot& snap) {
  const std::string path = opt_str(args, "--metrics-json", "");
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (out) out << snap.to_json() << '\n';
  if (!out) {
    std::fprintf(stderr, "cannot write metrics json %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics written to %s\n", path.c_str());
  return 0;
}

std::optional<bench::InjectionKind> kind_by_name(const std::string& name) {
  for (const auto k : bench::all_injection_kinds()) {
    if (name == bench::to_string(k)) return k;
  }
  return std::nullopt;
}

int cmd_scenarios() {
  for (const auto k : bench::all_injection_kinds()) {
    std::printf("%-14s expected: %s/%s\n", bench::to_string(k),
                core::to_string(bench::expected_verdict(k)).c_str(),
                core::to_string(bench::expected_kind(k)).c_str());
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  const double days = opt_double(args, "--days", 14.0);
  const auto seed = static_cast<std::uint64_t>(opt_double(args, "--seed", 42.0));
  const std::string scenario = opt_str(args, "--scenario", "clean");
  const auto kind = kind_by_name(scenario);
  if (!kind) {
    std::fprintf(stderr, "unknown scenario '%s' (try: sentinel_cli scenarios)\n",
                 scenario.c_str());
    return 2;
  }

  bench::ScenarioConfig sc;
  sc.duration_days = days;
  sc.seed = seed;

  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = days * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.seed = seed;
  auto simulator = sim::make_gdi_deployment(env, dc);
  auto plan = std::make_shared<faults::InjectionPlan>();
  if (const auto inject = bench::make_injection(*kind, seed)) inject(*plan, env);
  simulator.set_transform(faults::make_transform(plan));
  const auto result = simulator.run(ec.duration_seconds);

  const AttrSchema schema = gdi_schema();
  write_trace_file(args.path, result.trace, &schema);
  std::printf("wrote %zu records (%zu sampled, %zu lost, %zu malformed) to %s\n",
              result.trace.size(), result.stats.sampled, result.stats.lost,
              result.stats.malformed, args.path.c_str());
  std::printf("scenario: %s\n", bench::to_string(*kind));
  return 0;
}

int cmd_inject(const Args& args) {
  const auto read = read_trace_file(args.path);
  if (read.records.empty()) {
    std::fprintf(stderr, "no parseable records in %s\n", args.path.c_str());
    return 1;
  }
  const std::string scenario = opt_str(args, "--scenario", "stuck-at");
  const auto kind = kind_by_name(scenario);
  if (!kind || *kind == bench::InjectionKind::kClean) {
    std::fprintf(stderr, "unknown or empty scenario '%s'\n", scenario.c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(opt_double(args, "--seed", 42.0));

  // Ground truth reconstructed from the recording itself (paper 4.2 on real
  // data); the injection starts one-seventh into the recording.
  const faults::TraceEnvironment env(read.records);
  const double t0 = read.records.front().time;
  const double t1 = read.records.back().time;
  faults::InjectionPlan plan;
  bench::make_injection(*kind, seed, t0 + (t1 - t0) / 7.0)(plan, env);
  const auto injected = faults::inject_into_trace(read.records, plan, env);

  const AttrSchema schema = gdi_schema();
  write_trace_file(args.path2, injected, &schema);
  std::printf("injected %s into %zu sensors; wrote %zu records to %s\n",
              bench::to_string(*kind), plan.injected_sensors().size(), injected.size(),
              args.path2.c_str());
  return 0;
}

int cmd_health(const Args& args) {
  const auto read = read_trace_file(args.path);
  if (read.records.empty()) {
    std::fprintf(stderr, "no parseable records in %s\n", args.path.c_str());
    return 1;
  }
  const double period = opt_double(args, "--period", 5.0 * kSecondsPerMinute);
  for (const auto& h : analyze_health(read.records, period)) {
    std::printf("%s\n", to_string(h).c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  const auto read = read_trace_file(args.path);
  if (read.records.empty()) {
    std::fprintf(stderr, "no parseable records in %s (%s)\n", args.path.c_str(),
                 to_string(read.malformed).c_str());
    return 1;
  }
  std::fprintf(stderr, "read %zu records (skipped: %s)\n", read.records.size(),
               to_string(read.malformed).c_str());
  if (!read.status.is_ok()) {
    std::fprintf(stderr, "warning: source ended early: %s\n", read.status.to_string().c_str());
  }

  core::PipelineConfig cfg;
  cfg.window_seconds = opt_double(args, "--window", cfg.window_seconds);
  cfg.stage_timers = args.options.count("--timers") > 0;
  if (!apply_screen_mode(args, cfg)) return 2;
  const auto k = static_cast<std::size_t>(opt_double(args, "--states", 6.0));

  Rng rng(7, "cli-kmeans");
  if (args.options.count("--auto")) {
    // Derive thresholds and S_o from the data (core/autotune.h).
    const auto tuned = core::suggest_configuration(read.records, cfg.window_seconds, k, rng);
    cfg.initial_states = tuned.initial_states;
    cfg.model_states = tuned.suggested;
    std::fprintf(stderr,
                 "auto-tune: noise %.2f, regime spacing %.1f%s -> merge %.1f, spawn %.1f\n",
                 tuned.noise_scale, tuned.state_spacing,
                 tuned.scales_separated ? "" : " (WARNING: scales not separated)",
                 tuned.suggested.merge_threshold, tuned.suggested.spawn_threshold);
  } else {
    // Bootstrap the initial model states from the trace itself (offline
    // clustering over per-window means, paper section 4.1).
    std::vector<AttrVec> history;
    for (const auto& w : window_trace(read.records, cfg.window_seconds)) {
      if (!w.empty()) history.push_back(w.overall_mean());
    }
    if (history.size() < k) {
      std::fprintf(stderr, "trace too short: %zu windows for %zu initial states\n",
                   history.size(), k);
      return 1;
    }
    cfg.initial_states = core::kmeans(history, k, rng).centroids;
  }

  std::unique_ptr<core::DetectionPipeline> pipeline;
  const std::string checkpoint_in = opt_str(args, "--checkpoint", "");
  const std::string resume_dir = opt_str(args, "--resume", "");
  if (!checkpoint_in.empty() && !resume_dir.empty()) {
    std::fprintf(stderr, "--checkpoint and --resume are mutually exclusive\n");
    return 2;
  }

  // --resume: restore from the crash-consistent store's last committed epoch
  // and fast-forward past the records that epoch already covers. Any torn or
  // corrupt state surfaces as a clean one-line status + nonzero exit.
  std::unique_ptr<core::CheckpointStore> store;
  std::uint64_t skip = 0;
  if (!resume_dir.empty()) {
    store = std::make_unique<core::CheckpointStore>(resume_dir);
    const auto manifest = store->load_manifest();
    if (manifest.is_ok()) {
      const auto it = manifest->regions.find("analyze");
      if (it != manifest->regions.end()) {
        std::string bytes;
        if (const util::Status s = store->read_region(it->second, bytes); !s.is_ok()) {
          std::fprintf(stderr, "%s\n", s.to_string().c_str());
          return 1;
        }
        std::istringstream in(bytes);
        try {
          pipeline = std::make_unique<core::DetectionPipeline>(cfg, in);
        } catch (const std::exception& e) {
          const util::Status s(util::StatusCode::kDataLoss,
                               "checkpoint restore failed: " + std::string(e.what()));
          std::fprintf(stderr, "%s\n", s.to_string().c_str());
          return 1;
        }
        skip = it->second.records_applied;
        std::fprintf(stderr, "resumed from %s epoch %llu (skipping %llu covered records)\n",
                     resume_dir.c_str(), static_cast<unsigned long long>(it->second.epoch),
                     static_cast<unsigned long long>(skip));
      }
    } else if (manifest.status().code() != util::StatusCode::kNotFound) {
      std::fprintf(stderr, "%s\n", manifest.status().to_string().c_str());
      return 1;
    }
  }
  if (!pipeline && !checkpoint_in.empty()) {
    std::ifstream in(checkpoint_in);
    if (!in) {
      std::fprintf(stderr, "cannot open checkpoint %s\n", checkpoint_in.c_str());
      return 1;
    }
    try {
      pipeline = std::make_unique<core::DetectionPipeline>(cfg, in);
    } catch (const std::exception& e) {
      const util::Status s(util::StatusCode::kDataLoss,
                           "checkpoint " + checkpoint_in + ": " + std::string(e.what()));
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "resumed from checkpoint %s\n", checkpoint_in.c_str());
  }
  if (!pipeline) pipeline = std::make_unique<core::DetectionPipeline>(cfg);

  if (skip >= read.records.size()) {
    if (skip > read.records.size()) {
      std::fprintf(stderr, "warning: checkpoint covers %llu records but trace holds %zu\n",
                   static_cast<unsigned long long>(skip), read.records.size());
    }
  } else if (skip > 0) {
    const std::vector<SensorRecord> tail(read.records.begin() + static_cast<std::ptrdiff_t>(skip),
                                         read.records.end());
    pipeline->process_trace(tail);
  } else {
    pipeline->process_trace(read.records);
  }

  const auto report = pipeline->diagnose();
  if (args.options.count("--json")) {
    std::printf("%s\n", core::to_json(report).c_str());
  } else {
    std::printf("windows: %zu processed, %zu skipped; %zu model states\n",
                pipeline->windows_processed(), pipeline->windows_skipped(),
                pipeline->model_states().size());
    const auto m_c = pipeline->correct_model();
    const auto lookup = pipeline->centroid_lookup();
    std::printf("environment model M_C:\n");
    for (const auto id : m_c.states()) {
      if (const auto c = lookup(id)) {
        std::printf("  state %-4u %-12s occupancy %.3f\n", id, vecn::to_string(*c, 0).c_str(),
                    m_c.occupancy()[*m_c.index_of(id)]);
      }
    }
    std::printf("%s", core::to_string(report).c_str());
  }

  const std::string checkpoint_out = opt_str(args, "--save-checkpoint", "");
  if (!checkpoint_out.empty()) {
    std::ofstream out(checkpoint_out);
    if (!out) {
      std::fprintf(stderr, "cannot write checkpoint %s\n", checkpoint_out.c_str());
      return 1;
    }
    pipeline->save_checkpoint(out);
    std::fprintf(stderr, "checkpoint written to %s\n", checkpoint_out.c_str());
  }

  if (store) {
    core::RegionCheckpointMeta meta;
    meta.records_applied =
        std::max<std::uint64_t>(skip, static_cast<std::uint64_t>(read.records.size()));
    if (const util::Status s = store->commit_region("analyze", *pipeline, meta); !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "checkpoint committed to %s (%llu records covered)\n",
                 resume_dir.c_str(), static_cast<unsigned long long>(meta.records_applied));
  }

  auto snap = util::metrics().snapshot();
  inject_pipeline_counters(snap, "pipeline.", pipeline->counters());
  if (pipeline->screens() != nullptr) {
    inject_screen_stats(snap, "pipeline.screen.", pipeline->screen_stats());
  }
  return write_metrics_json(args, snap);
}

int cmd_fleet(const Args& args) {
  core::FleetConfig fc;
  fc.threads = static_cast<std::size_t>(opt_double(args, "--threads", 1.0));
  const std::string resume_dir = opt_str(args, "--resume", "");
  fc.checkpoint_dir = resume_dir;
  fc.checkpoint_every_records = static_cast<std::size_t>(opt_double(
      args, "--checkpoint-every", static_cast<double>(core::FleetConfig{}.checkpoint_every_records)));
  core::FleetMonitor fleet(fc);

  core::PipelineConfig cfg;
  cfg.window_seconds = opt_double(args, "--window", cfg.window_seconds);
  cfg.stage_timers = args.options.count("--timers") > 0;
  if (!apply_screen_mode(args, cfg)) return 2;
  const auto k = static_cast<std::size_t>(opt_double(args, "--states", 6.0));

  // Bootstrap the shared initial model states from the first trace that
  // parses (offline clustering over per-window means, paper section 4.1).
  // A trace that cannot even bootstrap will quarantine its region later.
  Rng rng(7, "cli-kmeans");
  for (const auto& path : args.paths) {
    try {
      const auto read = read_trace_file(path);
      std::vector<AttrVec> history;
      for (const auto& w : window_trace(read.records, cfg.window_seconds)) {
        if (!w.empty()) history.push_back(w.overall_mean());
      }
      if (history.size() < k) continue;
      cfg.initial_states = core::kmeans(history, k, rng).centroids;
      break;
    } catch (const std::exception&) {
      continue;
    }
  }
  if (cfg.initial_states.empty()) {
    std::fprintf(stderr, "no trace long enough to bootstrap %zu initial states\n", k);
    return 1;
  }

  // One region per trace; region names derive from the file stem.
  std::vector<std::pair<std::string, std::string>> feeds;  // region -> path
  std::map<std::string, std::size_t> skip;                 // resume offsets per region
  for (const auto& path : args.paths) {
    const auto slash = path.find_last_of("/\\");
    std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
    const auto dot = stem.rfind('.');
    if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
    std::string name = stem;
    for (std::size_t n = 2; std::any_of(feeds.begin(), feeds.end(),
                                        [&](const auto& f) { return f.first == name; });
         ++n) {
      name = stem + "#" + std::to_string(n);
    }
    feeds.emplace_back(name, path);
    if (resume_dir.empty()) {
      fleet.add_region(name, cfg);
      continue;
    }
    // Restore from the store's last committed epoch; a corrupt entry is a
    // one-line status + nonzero exit, never a silently-fresh region.
    const auto resumed = fleet.add_region_resumed(name, cfg);
    if (!resumed.is_ok()) {
      std::fprintf(stderr, "%s\n", resumed.status().to_string().c_str());
      return 1;
    }
    skip[name] = static_cast<std::size_t>(resumed.value());
    if (resumed.value() > 0) {
      std::fprintf(stderr, "[region %s] resumed: checkpoint covers %llu records\n", name.c_str(),
                   static_cast<unsigned long long>(resumed.value()));
    }
  }

  for (const auto& [name, path] : feeds) {
    const auto sum = fleet.ingest_file(name, path, 0, skip[name]);
    std::fprintf(stderr, "[region %s] ingested %zu records from %s%s%s\n", name.c_str(),
                 sum.records, path.c_str(), sum.status.is_ok() ? "" : " -- ",
                 sum.status.is_ok() ? "" : sum.status.to_string().c_str());
  }
  if (!resume_dir.empty()) fleet.checkpoint_now();
  fleet.finish();
  const auto report = fleet.diagnose();
  std::printf("%s", core::to_string(report).c_str());

  auto snap = util::metrics().snapshot();
  for (const auto& [name, path] : feeds) {
    if (fleet.region_health(name).health == core::RegionHealth::kQuarantined) continue;
    const auto& rp = fleet.region(name);
    inject_pipeline_counters(snap, "region." + name + ".", rp.counters());
    if (rp.screens() != nullptr) {
      inject_screen_stats(snap, "region." + name + ".screen.", rp.screen_stats());
    }
  }
  return write_metrics_json(args, snap);
}

int cmd_convert(const Args& args) {
  std::string to = opt_str(args, "--to", "");
  if (to.empty()) {
    // Infer the target format from the output extension.
    const auto dot = args.path2.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : args.path2.substr(dot);
    to = (ext == ".snt" || ext == ".bin") ? "binary" : "csv";
  }
  if (to != "csv" && to != "binary") {
    std::fprintf(stderr, "unknown target format '%s' (expected csv or binary)\n", to.c_str());
    return 2;
  }

  const auto reader = open_trace_reader(args.path);
  std::vector<SensorRecord> batch;
  std::size_t total = 0;
  if (to == "binary") {
    BinaryTraceWriter writer(args.path2);
    while (reader->read_batch(batch, TraceReader::kDefaultBatch) > 0) {
      writer.append(batch);
      total += batch.size();
    }
    writer.close();
  } else {
    std::ofstream out(args.path2);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.path2.c_str());
      return 1;
    }
    while (reader->read_batch(batch, TraceReader::kDefaultBatch) > 0) {
      write_trace(out, batch);
      total += batch.size();
    }
    if (!out) {
      std::fprintf(stderr, "write failed for %s\n", args.path2.c_str());
      return 1;
    }
  }
  if (reader->malformed_lines() > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed lines\n", reader->malformed_lines());
  }
  std::printf("wrote %zu records to %s (%s)\n", total, args.path2.c_str(), to.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Arm crash-fault injection from SENTINEL_FAULT_* when the build compiles
  // the points in -- lets the chaos harness pull the plug on the real CLI.
  sentinel::util::fault::init_from_env();
  const auto args = parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "scenarios") return cmd_scenarios();
    if (args->command == "simulate") return cmd_simulate(*args);
    if (args->command == "analyze") return cmd_analyze(*args);
    if (args->command == "fleet") return cmd_fleet(*args);
    if (args->command == "health") return cmd_health(*args);
    if (args->command == "inject") return cmd_inject(*args);
    if (args->command == "convert") return cmd_convert(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
