// sentinel_cli -- command-line front end for the library.
//
//   sentinel_cli simulate <out.csv> [--days N] [--seed S] [--scenario KIND]
//       Generate a synthetic GDI-like deployment trace, optionally with one
//       of the canonical fault/attack injections (stuck-at, calibration,
//       additive, random-noise, creation, deletion, change, mixed, benign).
//
//   sentinel_cli analyze <trace.csv> [--window SECONDS] [--states K] [--auto]
//                [--json] [--checkpoint IN] [--save-checkpoint OUT]
//                [--resume DIR]
//       --auto derives the clustering thresholds and initial states from the
//       trace itself (core/autotune.h) instead of the defaults.
//       Run the detection pipeline over a CSV trace (sensor,time,attrs...)
//       and print the diagnosis; optionally resume from / write a
//       checkpoint. --resume uses a crash-consistent checkpoint store
//       (docs/RELIABILITY.md): the pipeline restores from the store's last
//       committed epoch, replays only the trace tail past the records the
//       checkpoint already covers, and commits a fresh epoch at the end. A
//       corrupt or torn store prints a one-line status and exits nonzero --
//       never a garbage report.
//
//   sentinel_cli inject <in.csv> <out.csv> [--scenario KIND] [--seed S]
//       Re-inject a canonical fault/attack into a *recorded* trace (the
//       paper's section 4.2 methodology): ground truth is reconstructed from
//       the recording itself and the targeted sensors' readings rewritten.
//
//   sentinel_cli health <trace.csv> [--period SECONDS]
//       Per-sensor trace health report: completeness, gaps, noise.
//
//   sentinel_cli convert <in> <out> [--to csv|binary]
//       Transcode a trace between CSV and the SNTRB1 binary format. The
//       input format is auto-detected by magic bytes; the output format
//       follows --to, or the output extension (.snt/.bin = binary) when the
//       flag is absent. Streams batch-by-batch: converts traces larger than
//       RAM.
//
//   sentinel_cli fleet <trace1> [<trace2> ...] [--window SECONDS] [--states K]
//                [--threads N] [--timers] [--metrics-json PATH]
//                [--resume DIR] [--checkpoint-every N]
//       Run a multi-region fleet, one region per trace file. A trace that
//       cannot be opened or turns out malformed/truncated quarantines its
//       region; the remaining regions complete and report normally.
//       --resume points at a crash-consistent checkpoint store: each region
//       restores from its last committed epoch (fresh when absent), replays
//       only its trace tail, and commits periodically while ingesting
//       (--checkpoint-every records, default 262144). A corrupt store entry
//       prints a one-line status and exits nonzero.
//
//   sentinel_cli serve --bootstrap <trace> [--port P] [--port-file PATH] ...
//       Resident fleet service: keep one FleetMonitor alive behind a
//       localhost TCP listener (SNTRS1 protocol, docs/SERVICE.md). Tenants
//       bind regions per connection; reports/metrics/health are served
//       live; `serve --resume DIR` continues bit-identically from the last
//       committed checkpoint.
//
//   sentinel_cli stream <trace1> [<trace2> ...] --port P [--report] [--final]
//                [--shutdown] [--metrics-json PATH]
//       Feed traces to a running server, one connection per region; then
//       optionally fetch the fleet report and shut the server down.
//
//   sentinel_cli scenarios
//       List the canonical injection scenarios.
//
// analyze and fleet accept --metrics-json PATH (dump the process metrics
// registry plus per-region pipeline counters as JSON) and --timers (record
// coarse per-stage wall-clock histograms; observational only, reports are
// byte-identical either way).
//
// Every command that reads a trace (analyze, inject, health, convert,
// fleet, stream) accepts CSV or binary input interchangeably -- detection
// is by file content, never by extension.
//
// Each subcommand is its own translation unit under tools/cli/; this file
// is only the dispatch table.

#include <cstdio>
#include <cstring>

#include "cli/common.h"
#include "util/fault_test.h"

int main(int argc, char** argv) {
  // Arm crash-fault injection from SENTINEL_FAULT_* when the build compiles
  // the points in -- lets the chaos harness pull the plug on the real CLI.
  sentinel::util::fault::init_from_env();
  using sentinel::cli::Args;
  const auto args = sentinel::cli::parse(argc, argv);
  if (!args) return sentinel::cli::usage();

  struct Entry {
    const char* name;
    int (*run)(const Args&);
  };
  static constexpr Entry kCommands[] = {
      {"scenarios", sentinel::cli::cmd_scenarios},
      {"simulate", sentinel::cli::cmd_simulate},
      {"analyze", sentinel::cli::cmd_analyze},
      {"fleet", sentinel::cli::cmd_fleet},
      {"serve", sentinel::cli::cmd_serve},
      {"stream", sentinel::cli::cmd_stream},
      {"health", sentinel::cli::cmd_health},
      {"inject", sentinel::cli::cmd_inject},
      {"convert", sentinel::cli::cmd_convert},
  };
  try {
    for (const Entry& e : kCommands) {
      if (args->command == e.name) return e.run(*args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return sentinel::cli::usage();
}
