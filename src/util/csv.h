// Minimal CSV reading/writing for sensor traces and bench output.
// Deliberately simple: comma-separated, no quoting (trace fields are numeric),
// '#' comment lines, tolerant of blank lines. Malformed rows are surfaced to
// the caller rather than silently dropped — the GDI data's missing/malformed
// packets are part of the paper's evaluation.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sentinel::csv {

/// Split a line on commas; fields are trimmed of surrounding whitespace.
std::vector<std::string> split(std::string_view line);

/// Parse a field to double; nullopt on malformed content (empty, non-numeric,
/// trailing junk).
std::optional<double> parse_double(std::string_view field);

/// Join fields with commas.
std::string join(const std::vector<std::string>& fields);

/// Format a double with `precision` significant decimal digits after the
/// point, trimming to a compact form.
std::string format(double value, int precision = 6);

}  // namespace sentinel::csv
