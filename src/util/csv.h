// Minimal CSV reading/writing for sensor traces and bench output.
// Deliberately simple: comma-separated, no quoting (trace fields are numeric),
// '#' comment lines, tolerant of blank lines. Malformed rows are surfaced to
// the caller rather than silently dropped — the GDI data's missing/malformed
// packets are part of the paper's evaluation.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sentinel::csv {

/// Split a line on commas; fields are trimmed of surrounding whitespace.
std::vector<std::string> split(std::string_view line);

/// Allocation-free variant: split into string_views over `line`'s buffer.
/// `out` is cleared and reused; the views are valid only while the backing
/// buffer of `line` is. This is the hot-path splitter -- the trace readers
/// call it once per line with a reused scratch vector.
void split_into(std::string_view line, std::vector<std::string_view>& out);

/// Parse a field to double; nullopt on malformed content (empty, non-numeric,
/// trailing junk). Allocation-free (std::from_chars); accepts an optional
/// leading '+' and the usual inf/nan spellings, rejects hex floats.
std::optional<double> parse_double(std::string_view field);

/// Join fields with commas.
std::string join(const std::vector<std::string>& fields);

/// Format a double with `precision` significant decimal digits after the
/// point, trimming to a compact form.
std::string format(double value, int precision = 6);

}  // namespace sentinel::csv
