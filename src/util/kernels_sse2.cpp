// SSE2 kernel level. Two 128-bit accumulators model the four reduction lanes
// of kernels.h (acc01 = lanes 0/1, acc23 = lanes 2/3); tails fall back to the
// scalar lane updates, so results are bit-identical to the scalar reference.
// Compiled with -msse2 -ffp-contract=off.

#include "util/kernels.h"

#include <cfloat>
#include <emmintrin.h>
#include <limits>

namespace sentinel::kern {

namespace {

struct Lanes {
  __m128d a01;
  __m128d a23;
};

inline double reduce_tree(Lanes l) {
  // (lane0 + lane1) + (lane2 + lane3)
  const __m128d s01 = _mm_add_sd(l.a01, _mm_unpackhi_pd(l.a01, l.a01));
  const __m128d s23 = _mm_add_sd(l.a23, _mm_unpackhi_pd(l.a23, l.a23));
  return _mm_cvtsd_f64(_mm_add_sd(s01, s23));
}

inline void store_lanes(Lanes l, double out[4]) {
  _mm_storeu_pd(out, l.a01);
  _mm_storeu_pd(out + 2, l.a23);
}

inline double finish_reduction(double lane[4]) {
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double dist2_sse2(const double* a, const double* b, std::size_t n) {
  Lanes acc{_mm_setzero_pd(), _mm_setzero_pd()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 = _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc.a01 = _mm_add_pd(acc.a01, _mm_mul_pd(d01, d01));
    acc.a23 = _mm_add_pd(acc.a23, _mm_mul_pd(d23, d23));
  }
  if (i == n) return reduce_tree(acc);
  double lane[4];
  store_lanes(acc, lane);
  for (int l = 0; i < n; ++i, ++l) {
    const double d = a[i] - b[i];
    lane[l] += d * d;
  }
  return finish_reduction(lane);
}

void dist2_block_sse2(const double* block, std::size_t count, std::size_t stride,
                      const double* p, double* out) {
  for (std::size_t s = 0; s < count; ++s) {
    out[s] = dist2_sse2(block + s * stride, p, stride);
  }
}

double dot_sse2(const double* a, const double* b, std::size_t n) {
  Lanes acc{_mm_setzero_pd(), _mm_setzero_pd()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc.a01 = _mm_add_pd(acc.a01, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc.a23 = _mm_add_pd(acc.a23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  if (i == n) return reduce_tree(acc);
  double lane[4];
  store_lanes(acc, lane);
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return finish_reduction(lane);
}

double sum_sse2(const double* a, std::size_t n) {
  Lanes acc{_mm_setzero_pd(), _mm_setzero_pd()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc.a01 = _mm_add_pd(acc.a01, _mm_loadu_pd(a + i));
    acc.a23 = _mm_add_pd(acc.a23, _mm_loadu_pd(a + i + 2));
  }
  if (i == n) return reduce_tree(acc);
  double lane[4];
  store_lanes(acc, lane);
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i];
  return finish_reduction(lane);
}

double sumsq_sse2(const double* a, std::size_t n) {
  Lanes acc{_mm_setzero_pd(), _mm_setzero_pd()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a01 = _mm_loadu_pd(a + i);
    const __m128d a23 = _mm_loadu_pd(a + i + 2);
    acc.a01 = _mm_add_pd(acc.a01, _mm_mul_pd(a01, a01));
    acc.a23 = _mm_add_pd(acc.a23, _mm_mul_pd(a23, a23));
  }
  if (i == n) return reduce_tree(acc);
  double lane[4];
  store_lanes(acc, lane);
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i] * a[i];
  return finish_reduction(lane);
}

void sum_sumsq_sse2(const double* a, std::size_t n, double* sum_out, double* sumsq_out) {
  Lanes s{_mm_setzero_pd(), _mm_setzero_pd()};
  Lanes q{_mm_setzero_pd(), _mm_setzero_pd()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a01 = _mm_loadu_pd(a + i);
    const __m128d a23 = _mm_loadu_pd(a + i + 2);
    s.a01 = _mm_add_pd(s.a01, a01);
    s.a23 = _mm_add_pd(s.a23, a23);
    q.a01 = _mm_add_pd(q.a01, _mm_mul_pd(a01, a01));
    q.a23 = _mm_add_pd(q.a23, _mm_mul_pd(a23, a23));
  }
  if (i == n) {
    *sum_out = reduce_tree(s);
    *sumsq_out = reduce_tree(q);
    return;
  }
  double ls[4];
  double lq[4];
  store_lanes(s, ls);
  store_lanes(q, lq);
  for (int l = 0; i < n; ++i, ++l) {
    ls[l] += a[i];
    lq[l] += a[i] * a[i];
  }
  *sum_out = finish_reduction(ls);
  *sumsq_out = finish_reduction(lq);
}

void vec_mat_sse2(const double* x, const double* m, std::size_t rows, std::size_t cols,
                  std::size_t stride, double* out) {
  // Column-tiled like the AVX2 level; per output element the additions stay
  // in ascending-r order, so results match the classic nested loop exactly.
  std::size_t j = 0;
  for (; j + 2 <= cols; j += 2) {
    __m128d acc = _mm_loadu_pd(out + j);
    const double* mj = m + j;
    for (std::size_t r = 0; r < rows; ++r) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(x[r]), _mm_loadu_pd(mj + r * stride)));
    }
    _mm_storeu_pd(out + j, acc);
  }
  for (; j < cols; ++j) {
    double acc = out[j];
    for (std::size_t r = 0; r < rows; ++r) acc += x[r] * m[r * stride + j];
    out[j] = acc;
  }
}

void mat_vec_sse2(const double* m, const double* x, std::size_t rows, std::size_t cols,
                  std::size_t stride, double* out) {
  for (std::size_t r = 0; r < rows; ++r) out[r] = dot_sse2(m + r * stride, x, cols);
}

void mat_vec_block_sse2(const double* m, const double* xs, std::size_t count,
                        std::size_t xstride, std::size_t rows, std::size_t cols,
                        std::size_t stride, double* out) {
  for (std::size_t k = 0; k < count; ++k) {
    mat_vec_sse2(m, xs + k * xstride, rows, cols, stride, out + k * rows);
  }
}

void scale_sse2(double* v, std::size_t n, double s) {
  const __m128d k = _mm_set1_pd(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) _mm_storeu_pd(v + i, _mm_mul_pd(_mm_loadu_pd(v + i), k));
  for (; i < n; ++i) v[i] *= s;
}

void div_scale_sse2(double* v, std::size_t n, double d) {
  const __m128d k = _mm_set1_pd(d);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) _mm_storeu_pd(v + i, _mm_div_pd(_mm_loadu_pd(v + i), k));
  for (; i < n; ++i) v[i] /= d;
}

void ema_scale_bump_rows_sse2(double* base, const std::size_t* offs, const std::uint32_t* cols,
                              std::size_t count, std::size_t n, double s, double bump) {
  const __m128d k = _mm_set1_pd(s);
  for (std::size_t r = 0; r < count; ++r) {
    double* v = base + offs[r];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) _mm_storeu_pd(v + i, _mm_mul_pd(_mm_loadu_pd(v + i), k));
    for (; i < n; ++i) v[i] *= s;
    v[cols[r]] += bump;
  }
}

void div_scale_rows_sse2(double* base, const std::size_t* offs, const double* divisors,
                         std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) div_scale_sse2(base + offs[r], n, divisors[r]);
}

void accum_rows_sse2(double* base, const std::size_t* offs, const double* const* srcs,
                     std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) {
    double* v = base + offs[r];
    const double* s = srcs[r];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      _mm_storeu_pd(v + i, _mm_add_pd(_mm_loadu_pd(v + i), _mm_loadu_pd(s + i)));
    }
    for (; i < n; ++i) v[i] += s[i];
  }
}

void sum_rows_sse2(double* out, const double* const* srcs, std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) {
    const double* s = srcs[r];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      _mm_storeu_pd(out + i, _mm_add_pd(_mm_loadu_pd(out + i), _mm_loadu_pd(s + i)));
    }
    for (; i < n; ++i) out[i] += s[i];
  }
}

void axpy_sse2(double* y, const double* x, std::size_t n, double a) {
  const __m128d k = _mm_set1_pd(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d yy = _mm_loadu_pd(y + i);
    _mm_storeu_pd(y + i, _mm_add_pd(yy, _mm_mul_pd(k, _mm_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void mul_axpy_sse2(double* y, const double* a, const double* b, std::size_t n, double s) {
  const __m128d k = _mm_set1_pd(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d p = _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d yy = _mm_loadu_pd(y + i);
    _mm_storeu_pd(y + i, _mm_add_pd(yy, _mm_mul_pd(k, p)));
  }
  for (; i < n; ++i) y[i] += s * (a[i] * b[i]);
}

void mul_sse2(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

double normalize_sse2(double* v, std::size_t n) {
  double c = sum_sse2(v, n);
  if (c <= 0.0) c = DBL_MIN;
  const double inv = 1.0 / c;
  scale_sse2(v, n, inv);
  return inv;
}

MaxPlusResult max_plus_sse2(const double* x, const double* y, std::size_t n) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  __m128d bv01 = _mm_set1_pd(kNegInf);
  __m128d bv23 = _mm_set1_pd(kNegInf);
  __m128d bi01 = _mm_setzero_pd();
  __m128d bi23 = _mm_setzero_pd();
  __m128d idx01 = _mm_set_pd(1.0, 0.0);
  __m128d idx23 = _mm_set_pd(3.0, 2.0);
  const __m128d four = _mm_set1_pd(4.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d v01 = _mm_add_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i));
    const __m128d v23 = _mm_add_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2));
    // v > best, quiet on NaN (cmpgt raises no update for NaN operands).
    const __m128d m01 = _mm_cmpgt_pd(v01, bv01);
    const __m128d m23 = _mm_cmpgt_pd(v23, bv23);
    bv01 = _mm_or_pd(_mm_and_pd(m01, v01), _mm_andnot_pd(m01, bv01));
    bv23 = _mm_or_pd(_mm_and_pd(m23, v23), _mm_andnot_pd(m23, bv23));
    bi01 = _mm_or_pd(_mm_and_pd(m01, idx01), _mm_andnot_pd(m01, bi01));
    bi23 = _mm_or_pd(_mm_and_pd(m23, idx23), _mm_andnot_pd(m23, bi23));
    idx01 = _mm_add_pd(idx01, four);
    idx23 = _mm_add_pd(idx23, four);
  }
  double bv[4];
  double bi[4];
  _mm_storeu_pd(bv, bv01);
  _mm_storeu_pd(bv + 2, bv23);
  _mm_storeu_pd(bi, bi01);
  _mm_storeu_pd(bi + 2, bi23);
  for (int l = 0; i < n; ++i, ++l) {
    const double v = x[i] + y[i];
    if (v > bv[l]) {
      bv[l] = v;
      bi[l] = static_cast<double>(i);
    }
  }
  MaxPlusResult r{bv[0], static_cast<std::size_t>(bi[0])};
  for (int l = 1; l < 4; ++l) {
    const auto cand = static_cast<std::size_t>(bi[l]);
    if (bv[l] > r.value || (bv[l] == r.value && cand < r.index)) {
      r.value = bv[l];
      r.index = cand;
    }
  }
  return r;
}

constexpr Kernels kSse2Kernels{
    "sse2",        dist2_block_sse2, dist2_sse2, dot_sse2,       sum_sse2,
    sumsq_sse2,    sum_sumsq_sse2,
    vec_mat_sse2,  mat_vec_sse2,     mat_vec_block_sse2,
    scale_sse2,    div_scale_sse2,
    ema_scale_bump_rows_sse2, div_scale_rows_sse2,
    accum_rows_sse2, sum_rows_sse2,
    axpy_sse2,     mul_sse2,         mul_axpy_sse2,
    normalize_sse2, max_plus_sse2,
};

}  // namespace

const Kernels& sse2_kernels() { return kSse2Kernels; }

}  // namespace sentinel::kern
