// Crash-fault injection: named "pull the plug" points on every durable-state
// transition (checkpoint serialization, temp-file write, fsync, atomic
// rename, manifest commit, shard drain and ingest batch boundaries).
//
// A fault point is a single macro call naming the transition it guards:
//
//   SENTINEL_FAULT_POINT(util::fault::kRegionPreRename);
//
// When the subsystem is armed (init()/init_from_env()) a point may terminate
// the process *immediately* -- std::_Exit, no destructors, no stream flush,
// no atexit -- which is the closest a test can get to losing power at that
// instruction. The chaos harness (tools/chaos_runner, the CrashRecovery
// tests) forks a child, arms a point, lets the plug get pulled, and then
// proves recovery from the surviving on-disk state.
//
// Two kill modes, mirroring the katana FaultTest pattern the design follows:
//  - kRunLength: die on the nth hit of a named point (deterministic; nth = 0
//    arms pure hit counting without ever dying),
//  - kIndependent: die at each hit with independent probability p from a
//    seeded generator (finds schedules a human would not enumerate).
//
// Cost: when the SENTINEL_FAULT_INJECTION compile option is off (Release
// builds by default) the macro expands to a no-op -- zero code, zero data.
// When compiled in but not armed, a point is one relaxed atomic load. Points
// sit on batch/commit boundaries, never inside per-record loops.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sentinel::util::fault {

/// Exit code of a pulled plug, distinguishable from a clean exit (0) and
/// from generic failure (1) so harnesses can assert the kill actually
/// happened at an armed point.
inline constexpr int kPlugPulledExit = 42;

enum class Mode {
  kNone,         // points are no-ops (the default)
  kRunLength,    // die on the nth hit of `point` (nth = 0: count, never die)
  kIndependent,  // die at each hit with probability `probability`
};

struct Config {
  Mode mode = Mode::kNone;
  /// kRunLength: which point kills ("" = any point, counted globally).
  std::string point;
  /// kRunLength: die on this hit of `point` (1-based; 0 = never, count only).
  std::uint64_t nth = 1;
  /// kIndependent: per-hit death probability.
  double probability = 0.0;
  /// kIndependent: generator seed (same seed = same death schedule).
  std::uint64_t seed = 1;
  int exit_code = kPlugPulledExit;
};

/// Arm (or, with Mode::kNone, disarm) the process-global fault plan and
/// reset all hit counters. Call before the workload under test; thread-safe.
void init(Config cfg);

/// Arm from the environment -- the CLI hook. Reads:
///   SENTINEL_FAULT_MODE   run-length | independent   (unset/none = disarmed)
///   SENTINEL_FAULT_POINT  point name for run-length ("" = any)
///   SENTINEL_FAULT_NTH    hit number for run-length (default 1)
///   SENTINEL_FAULT_PROB   death probability for independent (default 0)
///   SENTINEL_FAULT_SEED   generator seed (default 1)
/// No-op when SENTINEL_FAULT_MODE is unset.
void init_from_env();

/// Disarm and clear counters (tests).
void disarm();

bool armed();

/// Hits recorded at `point` since the last init()/disarm().
std::uint64_t hits(std::string_view point);

/// All (point, hits) pairs recorded so far, in point-name order.
std::vector<std::pair<std::string, std::uint64_t>> all_hits();

/// Human-readable hit summary (one line per point).
std::string report();

/// The pull-the-plug primitive behind SENTINEL_FAULT_POINT. Prefer the
/// macro: it compiles out entirely when injection is disabled.
void plug(const char* point);

// --- Registered fault points -----------------------------------------------
// The catalog is the contract between the durable paths and the chaos
// harness: every name below is reachable by ingesting with checkpointing
// enabled, and tools/chaos_runner kills at each one. Keep docs/RELIABILITY.md
// in sync when adding a point.

/// Streaming ingest, after each batch handed to the region (caller thread).
inline constexpr const char* kIngestBatch = "fleet.ingest.batch";
/// Shard drain, after each applied batch (worker thread; threads > 1 only).
inline constexpr const char* kDrainBatch = "fleet.drain.batch";
/// Entry of a region checkpoint commit, before the shard is quiesced.
inline constexpr const char* kCheckpointBegin = "fleet.ckpt.begin";
/// Region checkpoint temp file created, nothing written yet.
inline constexpr const char* kRegionTempOpen = "ckpt.region.temp-open";
/// Mid-write of the region temp file (leaves a genuinely torn temp).
inline constexpr const char* kRegionTempWrite = "ckpt.region.temp-write";
/// Region temp fully written, not yet fsync'd.
inline constexpr const char* kRegionPreSync = "ckpt.region.pre-sync";
/// Region temp durable, not yet renamed over the final name.
inline constexpr const char* kRegionPreRename = "ckpt.region.pre-rename";
/// Region checkpoint renamed into place; manifest does not name it yet.
inline constexpr const char* kRegionPostRename = "ckpt.region.post-rename";
/// Mid-write of the manifest temp file.
inline constexpr const char* kManifestTempWrite = "ckpt.manifest.temp-write";
/// Manifest temp fully written, not yet fsync'd.
inline constexpr const char* kManifestPreSync = "ckpt.manifest.pre-sync";
/// Manifest temp durable, not yet renamed over MANIFEST.
inline constexpr const char* kManifestPreRename = "ckpt.manifest.pre-rename";
/// Manifest committed; old region epochs not yet garbage-collected.
inline constexpr const char* kManifestPostRename = "ckpt.manifest.post-rename";

inline constexpr const char* kCatalog[] = {
    kIngestBatch,      kDrainBatch,       kCheckpointBegin,  kRegionTempOpen,
    kRegionTempWrite,  kRegionPreSync,    kRegionPreRename,  kRegionPostRename,
    kManifestTempWrite, kManifestPreSync, kManifestPreRename, kManifestPostRename,
};

}  // namespace sentinel::util::fault

#ifdef SENTINEL_FAULT_INJECTION
#define SENTINEL_FAULT_POINT(point) ::sentinel::util::fault::plug(point)
#else
#define SENTINEL_FAULT_POINT(point) ((void)0)
#endif
