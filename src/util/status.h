// Error-as-data plumbing for the ingest tiers.
//
// The readers, the windower, and the fleet's shard drains all face the same
// reality the paper calls out in section 3.1: malformed or missing packets
// are an *input condition*, not a programming error. Throwing on them aborts
// every region sharing the process; returning them as values lets each layer
// count, attribute, and keep going. Status/Result carry those conditions.
// The split rule across the codebase:
//   - constructor/config validation (caller misuse) keeps throwing,
//   - data-dependent failures after construction become Status.
//
// Deliberately tiny -- a code, a message, no payload chains -- so a Status
// costs one string move and the ok() path is branch-plus-enum-compare.

#pragma once

#include <optional>
#include <string>
#include <utility>

namespace sentinel::util {

enum class StatusCode {
  kOk,
  kInvalidArgument,     // caller handed data that can never be valid
  kNotFound,            // named thing does not exist (file, region)
  kDataLoss,            // input is corrupt or truncated; partial data served
  kResourceExhausted,   // a configured bound was hit (queue, rate threshold)
  kFailedPrecondition,  // operation illegal in the current state
  kUnavailable,         // expected input never arrived (silent region)
  kInternal,            // captured exception or invariant violation
};

constexpr const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kDataLoss: return "data-loss";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

class Status {
 public:
  /// Default construction is success; the common return path allocates
  /// nothing.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<code>: <message>" (or just "ok").
  std::string to_string() const {
    if (is_ok()) return "ok";
    std::string out = util::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string to_string(const Status& s) { return s.to_string(); }

/// A value or the Status explaining its absence. value() on a failed Result
/// is caller misuse and asserts via std::optional's UB-free throw path.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return value_.value(); }
  const T& value() const { return value_.value(); }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// The value, or `fallback` when this Result carries an error.
  T value_or(T fallback) const { return value_.value_or(std::move(fallback)); }

 private:
  Status status_;  // ok iff value_ holds
  std::optional<T> value_;
};

}  // namespace sentinel::util
