// Dense row-major matrix with the small set of operations the HMM machinery
// needs: row access, row normalization, stochasticity checks, and the
// row/column inner products the paper's structural classifier (section 3.4)
// is built on.
//
// Storage keeps row/column *capacity* separate from the logical shape (the
// stride is the column capacity) so `grow` — called by the online HMMs every
// time the clusterer spawns a state or a new symbol is interned — can grow
// capacity geometrically and make the common spawn a cheap fill of the newly
// exposed cells instead of a full reallocate-and-copy of A and B.
//
// The column capacity (row stride) is always rounded up to the 4-lane kernel
// width (util/kernels.h), so every row starts 32-byte-strided and the SIMD
// kernels stream rows without straddling. Kernels only read the logical
// `cols()` prefix of a row — padding cells are capacity slack, never data —
// and serialization/equality work on the logical shape, so checkpoint bytes
// are unchanged by the padding.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sentinel {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Identity matrix; the paper initializes A and B to identity (section 3.2).
  static Matrix identity(std::size_t n);

  /// Build from nested initializer data; rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return data_[r * col_cap_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * col_cap_ + c]; }

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Raw storage for the SIMD kernels: row r starts at data() + r * stride().
  /// Only the first cols() entries of each row are data; the rest is slack.
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  /// Row stride of the underlying buffer (the padded column capacity).
  std::size_t stride() const { return col_cap_; }

  std::vector<double> col(std::size_t c) const;

  /// Grow to at least (rows, cols), preserving existing entries; new entries
  /// are `fill`. Used by the online HMM when the clusterer spawns new states.
  /// Growth beyond capacity reallocates with doubled capacity, so a stream of
  /// one-at-a-time spawns costs amortized O(1) copies per exposed cell.
  void grow(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Pre-reserve capacity without changing the logical shape.
  void reserve(std::size_t rows, std::size_t cols);

  /// Normalize each row to sum to one. Rows that sum to ~0 become uniform.
  void normalize_rows();

  /// True if every row is a probability distribution within `tol`.
  bool is_row_stochastic(double tol = 1e-9) const;

  /// <row i, row j> inner product: sum_k m[i][k] * m[j][k].
  double row_dot(std::size_t i, std::size_t j) const;
  /// <col i, col j> inner product: sum_k m[k][i] * m[k][j].
  double col_dot(std::size_t i, std::size_t j) const;

  /// Matrix product (this * other).
  Matrix multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Max |a-b| over entries; matrices must have equal shape.
  double max_abs_diff(const Matrix& other) const;

  /// Fixed-precision dump, one row per line — used by the bench harnesses to
  /// print the paper's tables.
  std::string to_string(int precision = 3) const;

  /// Logical equality: same shape, same entries. Capacity slack is ignored.
  bool operator==(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_cap_ = 0;
  std::size_t col_cap_ = 0;  // the row stride of data_
  std::vector<double> data_;
};

}  // namespace sentinel
