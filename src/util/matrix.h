// Dense row-major matrix with the small set of operations the HMM machinery
// needs: row access, row normalization, stochasticity checks, and the
// row/column inner products the paper's structural classifier (section 3.4)
// is built on.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sentinel {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Identity matrix; the paper initializes A and B to identity (section 3.2).
  static Matrix identity(std::size_t n);

  /// Build from nested initializer data; rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::vector<double> col(std::size_t c) const;

  /// Grow to at least (rows, cols), preserving existing entries; new entries
  /// are `fill`. Used by the online HMM when the clusterer spawns new states.
  void grow(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Normalize each row to sum to one. Rows that sum to ~0 become uniform.
  void normalize_rows();

  /// True if every row is a probability distribution within `tol`.
  bool is_row_stochastic(double tol = 1e-9) const;

  /// <row i, row j> inner product: sum_k m[i][k] * m[j][k].
  double row_dot(std::size_t i, std::size_t j) const;
  /// <col i, col j> inner product: sum_k m[k][i] * m[k][j].
  double col_dot(std::size_t i, std::size_t j) const;

  /// Matrix product (this * other).
  Matrix multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Max |a-b| over entries; matrices must have equal shape.
  double max_abs_diff(const Matrix& other) const;

  /// Fixed-precision dump, one row per line — used by the bench harnesses to
  /// print the paper's tables.
  std::string to_string(int precision = 3) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sentinel
