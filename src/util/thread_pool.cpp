#include "util/thread_pool.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace sentinel::util {

std::size_t quota_from_cfs(long long quota_us, long long period_us) {
  if (quota_us <= 0 || period_us <= 0) return 0;  // -1 (or absent) = no quota
  return std::max<long long>(1, quota_us / period_us);
}

std::size_t quota_from_cpu_max(const std::string& text) {
  std::istringstream is(text);
  std::string quota;
  long long period = 0;
  if (!(is >> quota)) return 0;
  if (quota == "max") return 0;
  long long q = 0;
  try {
    q = std::stoll(quota);
  } catch (...) {
    return 0;
  }
  if (!(is >> period)) period = 100000;  // kernel default when omitted
  return quota_from_cfs(q, period);
}

namespace {

std::size_t cgroup_cpu_quota() {
  // cgroup v2 unified hierarchy.
  if (std::ifstream f("/sys/fs/cgroup/cpu.max"); f) {
    std::string line;
    std::getline(f, line);
    if (const std::size_t q = quota_from_cpu_max(line)) return q;
  }
  // cgroup v1 cpu controller.
  long long quota = -1;
  long long period = 0;
  if (std::ifstream f("/sys/fs/cgroup/cpu/cpu.cfs_quota_us"); f) f >> quota;
  if (std::ifstream f("/sys/fs/cgroup/cpu/cpu.cfs_period_us"); f) f >> period;
  return quota_from_cfs(quota, period);
}

}  // namespace

std::size_t default_concurrency() {
  std::size_t n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (const std::size_t q = cgroup_cpu_quota()) n = std::min(n, q);
  return n;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_concurrency();
  logical_size_ = threads;
  if (threads == 1) {
    // A single worker serializes every task anyway: skip the thread and the
    // queue handoff entirely and run tasks inline at post() (see header).
    inline_mode_ = true;
    return;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::post: null task");
  if (inline_mode_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool::post on stopping pool");
    }
    // Recursive: a task posting nested work runs it immediately rather than
    // deadlocking on its own lock.
    std::lock_guard<std::recursive_mutex> run(inline_mu_);
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("ThreadPool::post on stopping pool");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace sentinel::util
