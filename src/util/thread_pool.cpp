#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sentinel::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::post: null task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("ThreadPool::post on stopping pool");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace sentinel::util
