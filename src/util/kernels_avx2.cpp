// AVX2 kernel level. One 256-bit register holds the four reduction lanes of
// kernels.h directly; tails fall back to the scalar lane updates, so results
// are bit-identical to the scalar reference. No FMA in value-bearing
// arithmetic (see kernels.h). Compiled with -mavx2 -mfma -ffp-contract=off;
// dispatch guarantees these bodies only run when cpuid reports AVX2+FMA.

#include "util/kernels.h"

#include <cfloat>
#include <immintrin.h>
#include <limits>

namespace sentinel::kern {

namespace {

inline double reduce_tree(__m256d acc) {
  // (lane0 + lane1) + (lane2 + lane3)
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d s01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  const __m128d s23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
  return _mm_cvtsd_f64(_mm_add_sd(s01, s23));
}

inline double finish_reduction(double lane[4]) {
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double dist2_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  if (i == n) return reduce_tree(acc);
  alignas(32) double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (int l = 0; i < n; ++i, ++l) {
    const double d = a[i] - b[i];
    lane[l] += d * d;
  }
  return finish_reduction(lane);
}

void dist2_block_avx2(const double* block, std::size_t count, std::size_t stride,
                      const double* p, double* out) {
  if (stride == 4) {
    // The dominant shape: 2- or 3-attribute centroids padded to one vector.
    const __m256d q = _mm256_loadu_pd(p);
    std::size_t s = 0;
    for (; s + 2 <= count; s += 2) {
      const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(block + s * 4), q);
      const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(block + s * 4 + 4), q);
      out[s] = reduce_tree(_mm256_mul_pd(d0, d0));
      out[s + 1] = reduce_tree(_mm256_mul_pd(d1, d1));
    }
    for (; s < count; ++s) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(block + s * 4), q);
      out[s] = reduce_tree(_mm256_mul_pd(d, d));
    }
    return;
  }
  if (stride == 8) {
    // 5..8-attribute rows (the perf_screen fleet shape). Unrolls the two
    // vector iterations of dist2_avx2; per lane the accumulation is
    // (0 + d0^2) + d1^2 there and d0^2 + d1^2 here -- squares are never
    // -0.0, so adding from +0.0 is exact and the results are bit-identical.
    const __m256d q0 = _mm256_loadu_pd(p);
    const __m256d q1 = _mm256_loadu_pd(p + 4);
    for (std::size_t s = 0; s < count; ++s) {
      const double* row = block + s * 8;
      const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(row), q0);
      const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(row + 4), q1);
      out[s] = reduce_tree(_mm256_add_pd(_mm256_mul_pd(d0, d0), _mm256_mul_pd(d1, d1)));
    }
    return;
  }
  for (std::size_t s = 0; s < count; ++s) {
    out[s] = dist2_avx2(block + s * stride, p, stride);
  }
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  if (i == n) return reduce_tree(acc);
  alignas(32) double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return finish_reduction(lane);
}

double sum_avx2(const double* a, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  if (i == n) return reduce_tree(acc);
  alignas(32) double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i];
  return finish_reduction(lane);
}

double sumsq_avx2(const double* a, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  if (i == n) return reduce_tree(acc);
  alignas(32) double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i] * a[i];
  return finish_reduction(lane);
}

void sum_sumsq_avx2(const double* a, std::size_t n, double* sum_out, double* sumsq_out) {
  __m256d s = _mm256_setzero_pd();
  __m256d q = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    s = _mm256_add_pd(s, v);
    q = _mm256_add_pd(q, _mm256_mul_pd(v, v));
  }
  if (i == n) {
    *sum_out = reduce_tree(s);
    *sumsq_out = reduce_tree(q);
    return;
  }
  alignas(32) double ls[4];
  alignas(32) double lq[4];
  _mm256_storeu_pd(ls, s);
  _mm256_storeu_pd(lq, q);
  for (int l = 0; i < n; ++i, ++l) {
    ls[l] += a[i];
    lq[l] += a[i] * a[i];
  }
  *sum_out = finish_reduction(ls);
  *sumsq_out = finish_reduction(lq);
}

void vec_mat_avx2(const double* x, const double* m, std::size_t rows, std::size_t cols,
                  std::size_t stride, double* out) {
  // Column-tiled: each 4-wide output tile stays in a register across the
  // whole row sweep, so out is touched once per tile instead of once per
  // row. Per output element the additions still happen in ascending-r order
  // from the initial out[j], so results are bit-identical to the classic
  // r-outer nested loop.
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    __m256d acc = _mm256_loadu_pd(out + j);
    const double* mj = m + j;
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256d xr = _mm256_set1_pd(x[r]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(xr, _mm256_loadu_pd(mj + r * stride)));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < cols; ++j) {
    double acc = out[j];
    for (std::size_t r = 0; r < rows; ++r) acc += x[r] * m[r * stride + j];
    out[j] = acc;
  }
}

void mat_vec_avx2(const double* m, const double* x, std::size_t rows, std::size_t cols,
                  std::size_t stride, double* out) {
  for (std::size_t r = 0; r < rows; ++r) out[r] = dot_avx2(m + r * stride, x, cols);
}

void mat_vec_block_avx2(const double* m, const double* xs, std::size_t count,
                        std::size_t xstride, std::size_t rows, std::size_t cols,
                        std::size_t stride, double* out) {
  for (std::size_t k = 0; k < count; ++k) {
    mat_vec_avx2(m, xs + k * xstride, rows, cols, stride, out + k * rows);
  }
}

void scale_avx2(double* v, std::size_t n, double s) {
  const __m256d k = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), k));
  for (; i < n; ++i) v[i] *= s;
}

void div_scale_avx2(double* v, std::size_t n, double d) {
  const __m256d k = _mm256_set1_pd(d);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_loadu_pd(v + i), k));
  for (; i < n; ++i) v[i] /= d;
}

void ema_scale_bump_rows_avx2(double* base, const std::size_t* offs, const std::uint32_t* cols,
                              std::size_t count, std::size_t n, double s, double bump) {
  const __m256d k = _mm256_set1_pd(s);
  for (std::size_t r = 0; r < count; ++r) {
    double* v = base + offs[r];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), k));
    for (; i < n; ++i) v[i] *= s;
    v[cols[r]] += bump;
  }
}

void div_scale_rows_avx2(double* base, const std::size_t* offs, const double* divisors,
                         std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) div_scale_avx2(base + offs[r], n, divisors[r]);
}

void accum_rows_avx2(double* base, const std::size_t* offs, const double* const* srcs,
                     std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) {
    double* v = base + offs[r];
    const double* s = srcs[r];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(v + i, _mm256_add_pd(_mm256_loadu_pd(v + i), _mm256_loadu_pd(s + i)));
    }
    for (; i < n; ++i) v[i] += s[i];
  }
}

void sum_rows_avx2(double* out, const double* const* srcs, std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) {
    const double* s = srcs[r];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i), _mm256_loadu_pd(s + i)));
    }
    for (; i < n; ++i) out[i] += s[i];
  }
}

void axpy_avx2(double* y, const double* x, std::size_t n, double a) {
  const __m256d k = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d yy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(yy, _mm256_mul_pd(k, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void mul_axpy_avx2(double* y, const double* a, const double* b, std::size_t n, double s) {
  const __m256d k = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d yy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(yy, _mm256_mul_pd(k, p)));
  }
  for (; i < n; ++i) y[i] += s * (a[i] * b[i]);
}

void mul_avx2(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

double normalize_avx2(double* v, std::size_t n) {
  double c = sum_avx2(v, n);
  if (c <= 0.0) c = DBL_MIN;
  const double inv = 1.0 / c;
  scale_avx2(v, n, inv);
  return inv;
}

MaxPlusResult max_plus_avx2(const double* x, const double* y, std::size_t n) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  __m256d bv = _mm256_set1_pd(kNegInf);
  __m256d bi = _mm256_setzero_pd();
  __m256d idx = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d four = _mm256_set1_pd(4.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d m = _mm256_cmp_pd(v, bv, _CMP_GT_OQ);  // quiet: NaN never wins
    bv = _mm256_blendv_pd(bv, v, m);
    bi = _mm256_blendv_pd(bi, idx, m);
    idx = _mm256_add_pd(idx, four);
  }
  alignas(32) double lane_v[4];
  alignas(32) double lane_i[4];
  _mm256_storeu_pd(lane_v, bv);
  _mm256_storeu_pd(lane_i, bi);
  for (int l = 0; i < n; ++i, ++l) {
    const double v = x[i] + y[i];
    if (v > lane_v[l]) {
      lane_v[l] = v;
      lane_i[l] = static_cast<double>(i);
    }
  }
  MaxPlusResult r{lane_v[0], static_cast<std::size_t>(lane_i[0])};
  for (int l = 1; l < 4; ++l) {
    const auto cand = static_cast<std::size_t>(lane_i[l]);
    if (lane_v[l] > r.value || (lane_v[l] == r.value && cand < r.index)) {
      r.value = lane_v[l];
      r.index = cand;
    }
  }
  return r;
}

constexpr Kernels kAvx2Kernels{
    "avx2",        dist2_block_avx2, dist2_avx2, dot_avx2,       sum_avx2,
    sumsq_avx2,    sum_sumsq_avx2,
    vec_mat_avx2,  mat_vec_avx2,     mat_vec_block_avx2,
    scale_avx2,    div_scale_avx2,
    ema_scale_bump_rows_avx2, div_scale_rows_avx2,
    accum_rows_avx2, sum_rows_avx2,
    axpy_avx2,     mul_avx2,         mul_axpy_avx2,
    normalize_avx2, max_plus_avx2,
};

}  // namespace

const Kernels& avx2_kernels() { return kAvx2Kernels; }

}  // namespace sentinel::kern
