#include "util/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/kernels.h"

namespace sentinel {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows),
      cols_(cols),
      row_cap_(rows),
      col_cap_(kern::padded(cols)),
      data_(rows * col_cap_, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    std::copy(rows[r].begin(), rows[r].end(),
              m.data_.begin() + static_cast<std::ptrdiff_t>(r * m.col_cap_));
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * col_cap_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * col_cap_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * col_cap_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * col_cap_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  std::vector<double> v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::grow(std::size_t rows, std::size_t cols, double fill) {
  rows = std::max(rows, rows_);
  cols = std::max(cols, cols_);
  if (rows == rows_ && cols == cols_) return;

  if (rows > row_cap_ || cols > col_cap_) {
    // Reallocate with geometric headroom so a stream of single-state spawns
    // (the clusterer's usual pattern) doesn't copy A/B on every spawn.
    const std::size_t nrc = std::max(rows, std::max<std::size_t>(1, row_cap_ * 2));
    const std::size_t ncc = kern::padded(std::max(cols, std::max<std::size_t>(1, col_cap_ * 2)));
    std::vector<double> nd(nrc * ncc, fill);
    for (std::size_t r = 0; r < rows_; ++r) {
      std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r * col_cap_),
                data_.begin() + static_cast<std::ptrdiff_t>(r * col_cap_ + cols_),
                nd.begin() + static_cast<std::ptrdiff_t>(r * ncc));
    }
    data_ = std::move(nd);
    row_cap_ = nrc;
    col_cap_ = ncc;
  } else {
    // Fits in capacity: only the newly exposed cells need initializing (the
    // slack may hold fill values from an earlier grow with a different fill).
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = cols_; c < cols; ++c) data_[r * col_cap_ + c] = fill;
    }
    for (std::size_t r = rows_; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) data_[r * col_cap_ + c] = fill;
    }
  }
  rows_ = rows;
  cols_ = cols;
}

void Matrix::reserve(std::size_t rows, std::size_t cols) {
  if (rows <= row_cap_ && cols <= col_cap_) return;
  const std::size_t nrc = std::max(rows, row_cap_);
  const std::size_t ncc = kern::padded(std::max(cols, col_cap_));
  std::vector<double> nd(nrc * ncc, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r * col_cap_),
              data_.begin() + static_cast<std::ptrdiff_t>(r * col_cap_ + cols_),
              nd.begin() + static_cast<std::ptrdiff_t>(r * ncc));
  }
  data_ = std::move(nd);
  row_cap_ = nrc;
  col_cap_ = ncc;
}

void Matrix::normalize_rows() {
  for (std::size_t r = 0; r < rows_; ++r) {
    auto rw = row(r);
    double s = 0.0;
    for (const double x : rw) s += x;
    if (s <= 1e-300) {
      const double u = 1.0 / static_cast<double>(cols_);
      for (double& x : rw) x = u;
    } else {
      for (double& x : rw) x /= s;
    }
  }
}

bool Matrix::is_row_stochastic(double tol) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (const double x : row(r)) {
      if (x < -tol || x > 1.0 + tol) return false;
      s += x;
    }
    if (std::abs(s - 1.0) > tol) return false;
  }
  return true;
}

double Matrix::row_dot(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= rows_) throw std::out_of_range("Matrix::row_dot");
  double s = 0.0;
  const auto ri = row(i);
  const auto rj = row(j);
  for (std::size_t k = 0; k < cols_; ++k) s += ri[k] * rj[k];
  return s;
}

double Matrix::col_dot(std::size_t i, std::size_t j) const {
  if (i >= cols_ || j >= cols_) throw std::out_of_range("Matrix::col_dot");
  double s = 0.0;
  for (std::size_t k = 0; k < rows_; ++k) s += (*this)(k, i) * (*this)(k, j);
  return s;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) out(i, j) += a * other(k, j);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      m = std::max(m, std::abs((*this)(r, c) - other(r, c)));
    }
  }
  return m;
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if ((*this)(r, c) != other(r, c)) return false;
    }
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof buf, "%8.*f", precision, (*this)(r, c));
      out += buf;
      if (c + 1 < cols_) out += ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace sentinel
