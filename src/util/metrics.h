// Process-wide observability registry: named counters and fixed-bucket
// histograms cheap enough to live on ingest hot paths.
//
// Design constraints, in order:
//   1. Hot-path cost ~ one relaxed atomic add. Each metric's storage is
//      sharded into cache-line-sized cells; a thread picks its cell once
//      (thread_local round-robin) and never contends with other threads'
//      increments, so a counter add is a relaxed fetch_add on a line this
//      thread effectively owns.
//   2. Observational only. Nothing in the registry feeds back into
//      detection: snapshots are taken outside the hot path, and metrics-on
//      vs metrics-off runs are bit-identical by construction (enforced by
//      the golden tests).
//   3. Registration is rare and locked; handles are stable. Callers resolve
//      Counter&/Histogram& once (constructor time) and keep the reference --
//      the registry never moves or frees a registered metric.
//
// Snapshots are plain data: merge() folds several (e.g. registry + derived
// per-region values injected via add_counter) and renders as text or JSON.
// See docs/OBSERVABILITY.md for the metric catalog.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sentinel::util {

/// Stripe count per metric. Power of two, sized to the worker counts the
/// fleet actually runs (FleetConfig::threads); more threads than stripes
/// still works, they just share cells.
inline constexpr std::size_t kMetricStripes = 16;

/// This thread's stripe, assigned round-robin on first use.
std::size_t metric_stripe();

class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    cells_[metric_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Sum over all stripes. Relaxed reads: exact once writers are quiescent,
  /// a consistent-enough sample while they are not.
  std::uint64_t total() const noexcept;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kMetricStripes];
  std::string name_;
};

/// Fixed-bucket histogram over non-negative integer samples (counts, queue
/// depths, nanoseconds). Bucket i counts samples <= bounds[i]; one implicit
/// overflow bucket catches the rest. Bounds are fixed at registration so
/// recording never allocates or rebalances.
class Histogram {
 public:
  void record(std::uint64_t sample) noexcept;

  struct Snapshot {
    std::vector<std::uint64_t> bounds;  // upper bounds, ascending
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;            // total samples
    std::uint64_t sum = 0;              // sum of samples
  };
  Snapshot snapshot() const;

  const std::string& name() const { return name_; }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Geometric bucket bounds: first, first*factor, ... (`count` bounds).
  /// The default shape for duration histograms.
  static std::vector<std::uint64_t> exponential_bounds(std::uint64_t first, double factor,
                                                       std::size_t count);

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<std::uint64_t> bounds);

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> sum{0};
    // Bucket counts for this stripe live in counts_[stripe * n_buckets ...].
  };
  std::string name_;
  std::vector<std::uint64_t> bounds_;
  std::size_t n_buckets_ = 0;  // bounds_.size() + 1
  Cell cells_[kMetricStripes];
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // stripes * n_buckets
};

/// A point-in-time, plain-data view of a metric set. Mergeable so exporters
/// can fold the registry with values computed elsewhere (per-region pipeline
/// counters, health states) into one document.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Inject or accumulate an externally-computed counter value.
  void add_counter(std::string_view name, std::uint64_t value);

  /// Fold `other` into this snapshot (counters add; same-name histograms
  /// must share bounds and add bucket-wise).
  void merge(const MetricsSnapshot& other);

  /// One metric per line: "name value" / histogram lines with buckets.
  std::string to_text() const;
  /// {"counters": {...}, "histograms": {name: {bounds, counts, count, sum}}}
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime; resolve once, keep the handle.
  Counter& counter(std::string_view name);
  /// Find-or-create; `bounds` must be non-empty and ascending (throws
  /// std::invalid_argument otherwise, and on a bounds mismatch with an
  /// already-registered histogram of the same name).
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  MetricsSnapshot snapshot() const;

  /// Zero every cell (registrations survive; handles stay valid). For test
  /// and bench isolation -- not meant for production use.
  void reset();

 private:
  mutable std::mutex mu_;  // registration and enumeration; never on add paths
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry every tier reports into.
MetricsRegistry& metrics();

/// Monotonic nanoseconds for duration metrics.
std::uint64_t monotonic_ns();

/// Scope timer recording elapsed nanoseconds into a histogram; a null
/// histogram disables it entirely (no clock read), which is how the
/// per-stage pipeline timers stay free when toggled off.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* h) : h_(h), start_(h ? monotonic_ns() : 0) {}
  ~ScopedTimerNs() {
    if (h_ != nullptr) h_->record(monotonic_ns() - start_);
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

}  // namespace sentinel::util
