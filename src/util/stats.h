// Running statistics used across the library:
//  - RunningStats: Welford mean/variance (classifier's ratio/difference test,
//    false-alarm accounting, workload calibration),
//  - Ema: scalar exponential moving average,
//  - Histogram: fixed-bin histogram for the bench harnesses,
//  - quantile/median helpers for the median-deviation baseline.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sentinel {

/// Numerically stable (Welford) running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Scalar exponential moving average with learning factor alpha in (0,1).
class Ema {
 public:
  explicit Ema(double alpha);

  void add(double x);
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the edge
/// bins. Used by benches to summarize alarm/latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  /// Approximate p-quantile (0..1) by linear scan of bins.
  double quantile(double p) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact median of a sample (copies + nth_element). Empty input -> 0.
double median(std::span<const double> xs);

/// Exact p-quantile (0 <= p <= 1) by sorting a copy. Empty input -> 0.
double quantile(std::span<const double> xs, double p);

}  // namespace sentinel
