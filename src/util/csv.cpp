#include "util/csv.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sentinel::csv {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<std::string> split(std::string_view line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      out.emplace_back(trim(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::optional<double> parse_double(std::string_view field) {
  field = trim(field);
  if (field.empty()) return std::nullopt;
  // strtod needs a NUL-terminated buffer.
  std::string buf(field);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string join(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += fields[i];
    if (i + 1 < fields.size()) out += ',';
  }
  return out;
}

std::string format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  // Trim trailing zeros (but keep at least one digit after the point).
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

}  // namespace sentinel::csv
