#include "util/csv.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace sentinel::csv {

namespace {

// Branch-predictable whitespace test: same set as isspace in the C locale,
// without the per-character libc call (trim runs on every field of every
// line, so the call overhead was visible in the parse profile).
constexpr bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<std::string> split(std::string_view line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      out.emplace_back(trim(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

void split_into(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  for (;;) {
    // memchr beats a per-character loop even at trace-line field widths.
    const void* c = std::memchr(line.data() + start, ',', line.size() - start);
    if (c == nullptr) {
      out.push_back(trim(line.substr(start)));
      return;
    }
    const auto pos = static_cast<std::size_t>(static_cast<const char*>(c) - line.data());
    out.push_back(trim(line.substr(start, pos - start)));
    start = pos + 1;
  }
}

std::optional<double> parse_double(std::string_view field) {
  field = trim(field);
  // from_chars does not take a leading '+' (strtod did); strip one, but only
  // when a value follows it -- "+-3" and a bare "+" stay malformed.
  if (!field.empty() && field.front() == '+') {
    field.remove_prefix(1);
    if (!field.empty() && (field.front() == '+' || field.front() == '-')) return std::nullopt;
  }
  if (field.empty()) return std::nullopt;

  // Exact fast path (Clinger): fixed-notation values with <= 15 significant
  // digits. The mantissa fits a double exactly (10^15 < 2^53) and so does
  // 10^frac_digits, so one division yields the correctly-rounded result --
  // identical to from_chars, several times cheaper. Nearly every field a
  // trace file holds ("300.125", "21.53625") takes this path; anything with
  // an exponent, a long mantissa, or a bare trailing point falls through.
  {
    const char* p = field.data();
    const char* const end = p + field.size();
    bool neg = false;
    if (*p == '-') {
      neg = true;
      ++p;
    }
    std::uint64_t mant = 0;
    int digits = 0;
    int frac_digits = 0;
    bool seen_point = false;
    bool simple = p != end;
    for (; p != end; ++p) {
      const char c = *p;
      if (c >= '0' && c <= '9') {
        mant = mant * 10 + static_cast<std::uint64_t>(c - '0');  // overflow -> digits > 15
        ++digits;
        if (seen_point) ++frac_digits;
      } else if (c == '.' && !seen_point) {
        seen_point = true;
      } else {
        simple = false;
        break;
      }
    }
    if (simple && digits > 0 && digits <= 15 && !(seen_point && frac_digits == 0)) {
      static constexpr double kPow10[] = {1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7,
                                          1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15};
      const double v = static_cast<double>(mant) / kPow10[frac_digits];
      return neg ? -v : v;
    }
  }

  double v = 0.0;
  const char* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), end, v);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

std::string join(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += fields[i];
    if (i + 1 < fields.size()) out += ',';
  }
  return out;
}

std::string format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  // Trim trailing zeros (but keep at least one digit after the point).
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

}  // namespace sentinel::csv
