// Deterministic, stream-splittable randomness.
//
// Every stochastic component (environment weather, sensor noise, link loss,
// fault/attack models, workload generators) takes an Rng constructed from a
// master seed plus a purpose tag, so experiments are reproducible and
// components never share a stream (adding a sensor does not perturb the
// weather).

#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace sentinel {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent stream: hash(seed, tag) seeds the child.
  /// FNV-1a over the tag, mixed with the parent seed via splitmix64.
  Rng(std::uint64_t seed, std::string_view tag) : engine_(derive(seed, tag)) {}

  static std::uint64_t derive(std::uint64_t seed, std::string_view tag) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : tag) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ull;
    }
    // splitmix64 finalizer over seed ^ tag-hash.
    std::uint64_t z = seed ^ h;
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Sample an index from an unnormalized non-negative weight vector.
  template <typename Container>
  std::size_t categorical(const Container& weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    double u = uniform() * total;
    std::size_t i = 0;
    for (const double w : weights) {
      if (u < w) return i;
      u -= w;
      ++i;
    }
    return weights.size() ? weights.size() - 1 : 0;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sentinel
