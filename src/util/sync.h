// Small synchronization helpers.

#pragma once

#include <mutex>

namespace sentinel::util {

/// A mutex that copy/move construction and assignment treat as a fresh,
/// unlocked mutex. Lets value-semantic classes (OnlineHmm, DetectionPipeline)
/// guard `mutable` lazy caches without losing copyability: the cache contents
/// copy with the object, the lock does not.
class CopyableMutex {
 public:
  CopyableMutex() = default;
  CopyableMutex(const CopyableMutex&) noexcept {}
  CopyableMutex(CopyableMutex&&) noexcept {}
  CopyableMutex& operator=(const CopyableMutex&) noexcept { return *this; }
  CopyableMutex& operator=(CopyableMutex&&) noexcept { return *this; }

  std::mutex& get() const { return mu_; }

 private:
  mutable std::mutex mu_;
};

}  // namespace sentinel::util
