// Fixed-size worker pool shared by the fleet tier and the simulation
// harness. Deliberately minimal: a bounded set of workers draining one FIFO
// task queue. submit() returns a std::future so exceptions thrown inside a
// task propagate to whoever joins it (std::future::get rethrows); post() is
// the fire-and-forget variant for tasks that report through their own
// channel (the fleet's shard queues capture exceptions explicitly).
//
// Destruction drains: queued tasks still run before the workers join, so a
// pool can be torn down without orphaning submitted work. Tasks must not
// block on other tasks of the same pool (no nested submit-and-wait), or a
// pool smaller than the wait chain deadlocks.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sentinel::util {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a fire-and-forget task. The task must not throw; wrap throwing
  /// work with submit() (future-propagated) or catch inside the task.
  void post(std::function<void()> task);

  /// Enqueue a task and get a future for its result. Exceptions thrown by
  /// the task are captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware, for callers that want to share
  /// workers instead of owning a pool (bench trace generation). Created on
  /// first use; lives for the process.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sentinel::util
