// Fixed-size worker pool shared by the fleet tier and the simulation
// harness. Deliberately minimal: a bounded set of workers draining one FIFO
// task queue. submit() returns a std::future so exceptions thrown inside a
// task propagate to whoever joins it (std::future::get rethrows); post() is
// the fire-and-forget variant for tasks that report through their own
// channel (the fleet's shard queues capture exceptions explicitly).
//
// Destruction drains: queued tasks still run before the workers join, so a
// pool can be torn down without orphaning submitted work. Tasks must not
// block on other tasks of the same pool (no nested submit-and-wait), or a
// pool smaller than the wait chain deadlocks.
//
// A pool sized to ONE worker spawns no thread at all: a single worker
// serializes every task anyway, so post() runs the task inline on the
// posting thread under a (recursive) mutex -- same one-at-a-time ordering,
// none of the enqueue/wake/context-switch handoff. Two visible differences,
// both documented behavior: a task posted from inside a task runs
// immediately (nested post) instead of after the outer task, and a
// throwing post()ed task propagates to the poster instead of terminating a
// worker -- post() tasks must not throw either way.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace sentinel::util {

/// Usable parallelism for sizing pools: std::thread::hardware_concurrency()
/// capped by the container's cgroup CPU quota (v2 cpu.max, v1
/// cpu.cfs_quota_us / cpu.cfs_period_us). hardware_concurrency() reports the
/// host's cores even inside a quota-limited container, and a pool sized to
/// the host oversubscribes the quota and stalls on throttling. Quotas floor-
/// divide (2.5 CPUs -> 2 workers) with a minimum of 1; always at least 1.
std::size_t default_concurrency();

/// Parse a cgroup v2 cpu.max payload ("<quota> <period>" or "max <period>").
/// Returns 0 when unlimited or unparseable, else max(1, quota / period).
std::size_t quota_from_cpu_max(const std::string& text);

/// Derive the CPU cap from cgroup v1 cfs values (quota_us == -1 means
/// unlimited). Returns 0 when unlimited or invalid, else max(1, quota/period).
std::size_t quota_from_cfs(long long quota_us, long long period_us);

class ThreadPool {
 public:
  /// threads == 0 picks default_concurrency() -- hardware threads capped by
  /// the cgroup CPU quota (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a fire-and-forget task. The task must not throw; wrap throwing
  /// work with submit() (future-propagated) or catch inside the task.
  void post(std::function<void()> task);

  /// Enqueue a task and get a future for its result. Exceptions thrown by
  /// the task are captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Logical worker count -- what the pool was sized to, whether the
  /// workers are real threads or the inline single-worker mode.
  std::size_t size() const { return logical_size_; }

  /// Process-wide pool sized to the hardware, for callers that want to share
  /// workers instead of owning a pool (bench trace generation). Created on
  /// first use; lives for the process.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::size_t logical_size_ = 0;
  bool inline_mode_ = false;           // size 1: run tasks on the poster
  std::recursive_mutex inline_mu_;     // serializes inline execution
};

}  // namespace sentinel::util
