#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

namespace sentinel::util {

std::size_t metric_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& cell : cells_) sum += cell.v.load(std::memory_order_relaxed);
  return sum;
}

Histogram::Histogram(std::string name, std::vector<std::uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)), n_buckets_(bounds_.size() + 1) {
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(kMetricStripes * n_buckets_);
  for (std::size_t i = 0; i < kMetricStripes * n_buckets_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(std::uint64_t sample) noexcept {
  // Branchless-enough bucket search: bounds are few (<= ~32), ascending.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), sample) - bounds_.begin());
  const std::size_t stripe = metric_stripe();
  counts_[stripe * n_buckets_ + bucket].fetch_add(1, std::memory_order_relaxed);
  cells_[stripe].sum.fetch_add(sample, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(n_buckets_, 0);
  for (std::size_t s = 0; s < kMetricStripes; ++s) {
    snap.sum += cells_[s].sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < n_buckets_; ++b) {
      snap.counts[b] += counts_[s * n_buckets_ + b].load(std::memory_order_relaxed);
    }
  }
  for (const auto c : snap.counts) snap.count += c;
  return snap;
}

std::vector<std::uint64_t> Histogram::exponential_bounds(std::uint64_t first, double factor,
                                                         std::size_t count) {
  if (first == 0 || factor <= 1.0) {
    throw std::invalid_argument("Histogram::exponential_bounds: need first >= 1, factor > 1");
  }
  std::vector<std::uint64_t> bounds;
  bounds.reserve(count);
  double b = static_cast<double>(first);
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<std::uint64_t>(b);
    // Guarantee strict ascent even once rounding flattens the curve.
    bounds.push_back(bounds.empty() ? v : std::max(v, bounds.back() + 1));
    b *= factor;
  }
  return bounds;
}

void MetricsSnapshot::add_counter(std::string_view name, std::uint64_t value) {
  counters[std::string(name)] += value;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, snap] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, snap);
    if (inserted) continue;
    Histogram::Snapshot& mine = it->second;
    if (mine.bounds != snap.bounds) {
      throw std::invalid_argument("MetricsSnapshot::merge: bounds mismatch for " + name);
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) mine.counts[i] += snap.counts[i];
    mine.count += snap.count;
    mine.sum += snap.sum;
  }
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) os << name << ' ' << value << '\n';
  for (const auto& [name, h] : histograms) {
    os << name << " count " << h.count << " sum " << h.sum;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << " le_";
      if (i < h.bounds.size()) {
        os << h.bounds[i];
      } else {
        os << "inf";
      }
      os << '=' << h.counts[i];
    }
    os << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ',';
      os << h.bounds[i];
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) os << ',';
      os << h.counts[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << h.sum << '}';
  }
  os << "}}";
  return os.str();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  auto owned = std::unique_ptr<Counter>(new Counter(std::string(name)));
  Counter& ref = *owned;
  counters_.emplace(ref.name(), std::move(owned));
  return ref;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument("MetricsRegistry::histogram: bounds must be ascending: " +
                                std::string(name));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds) {
      throw std::invalid_argument("MetricsRegistry::histogram: bounds mismatch for " +
                                  std::string(name));
    }
    return *it->second;
  }
  auto owned = std::unique_ptr<Histogram>(new Histogram(std::string(name), std::move(bounds)));
  Histogram& ref = *owned;
  histograms_.emplace(ref.name(), std::move(owned));
  return ref;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->total());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace(name, h->snapshot());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    for (auto& cell : c->cells_) cell.v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& cell : h->cells_) cell.sum.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMetricStripes * h->n_buckets_; ++i) {
      h->counts_[i].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlives all users
  return *registry;
}

}  // namespace sentinel::util
