#include "util/fault_test.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <sstream>

namespace sentinel::util::fault {

namespace {

struct State {
  Config cfg;
  std::map<std::string, std::uint64_t, std::less<>> hits;
  std::uint64_t any_hits = 0;  // kRunLength with point == "": global counter
  std::mt19937_64 rng;
};

std::mutex& mu() {
  static std::mutex m;
  return m;
}

State& state() {
  static State s;
  return s;
}

/// Fast-path gate: plug() is called on every batch/commit boundary of every
/// build with injection compiled in, so the disarmed cost must be one
/// relaxed load.
std::atomic<bool>& armed_flag() {
  static std::atomic<bool> a{false};
  return a;
}

/// Last words through fd 2 with no stream machinery -- the process is about
/// to vanish without unwinding, so nothing buffered would survive anyway.
void last_words(const char* point) {
  const char* pre = "fault: plug pulled at ";
  // write(2) results are deliberately ignored: there is no fallback when
  // stderr is gone, and the exit code already carries the signal.
  [[maybe_unused]] auto r1 = ::write(2, pre, std::strlen(pre));
  [[maybe_unused]] auto r2 = ::write(2, point, std::strlen(point));
  [[maybe_unused]] auto r3 = ::write(2, "\n", 1);
}

}  // namespace

void init(Config cfg) {
  std::lock_guard<std::mutex> lock(mu());
  State& s = state();
  s.cfg = std::move(cfg);
  s.hits.clear();
  s.any_hits = 0;
  s.rng.seed(s.cfg.seed);
  armed_flag().store(s.cfg.mode != Mode::kNone, std::memory_order_release);
}

void init_from_env() {
  const char* mode = std::getenv("SENTINEL_FAULT_MODE");
  if (mode == nullptr || std::strcmp(mode, "none") == 0) return;
  Config cfg;
  if (std::strcmp(mode, "run-length") == 0) {
    cfg.mode = Mode::kRunLength;
  } else if (std::strcmp(mode, "independent") == 0) {
    cfg.mode = Mode::kIndependent;
  } else {
    return;  // unknown mode: stay disarmed rather than guess
  }
  if (const char* v = std::getenv("SENTINEL_FAULT_POINT")) cfg.point = v;
  if (const char* v = std::getenv("SENTINEL_FAULT_NTH")) {
    cfg.nth = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("SENTINEL_FAULT_PROB")) {
    cfg.probability = std::strtod(v, nullptr);
  }
  if (const char* v = std::getenv("SENTINEL_FAULT_SEED")) {
    cfg.seed = std::strtoull(v, nullptr, 10);
  }
  init(std::move(cfg));
}

void disarm() { init(Config{}); }

bool armed() { return armed_flag().load(std::memory_order_acquire); }

std::uint64_t hits(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu());
  const auto it = state().hits.find(point);
  return it == state().hits.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> all_hits() {
  std::lock_guard<std::mutex> lock(mu());
  return {state().hits.begin(), state().hits.end()};
}

std::string report() {
  std::ostringstream os;
  for (const auto& [point, n] : all_hits()) {
    os << point << ": " << n << " hit" << (n == 1 ? "" : "s") << '\n';
  }
  return os.str();
}

void plug(const char* point) {
  if (!armed_flag().load(std::memory_order_relaxed)) return;
  bool die = false;
  int exit_code = kPlugPulledExit;
  {
    std::lock_guard<std::mutex> lock(mu());
    State& s = state();
    const std::uint64_t n = ++s.hits[point];
    ++s.any_hits;
    exit_code = s.cfg.exit_code;
    switch (s.cfg.mode) {
      case Mode::kRunLength: {
        const std::uint64_t count =
            s.cfg.point.empty() ? s.any_hits : (s.cfg.point == point ? n : 0);
        die = s.cfg.nth != 0 && count == s.cfg.nth;
        break;
      }
      case Mode::kIndependent: {
        std::uniform_real_distribution<double> u(0.0, 1.0);
        die = u(s.rng) < s.cfg.probability;
        break;
      }
      case Mode::kNone:
        break;
    }
  }
  if (die) {
    last_words(point);
    // _Exit, not exit/abort: no destructors, no flushing, no signal handler
    // -- the simulated power cut leaves exactly the bytes already durable.
    std::_Exit(exit_code);
  }
}

}  // namespace sentinel::util::fault
