// A minimal sorted-vector map for per-window records on the pipeline hot
// path. The per-window history entries (WindowSummary::sensors) used to be
// std::map, which costs one node allocation per sensor per window; a sorted
// flat vector is one allocation per window, cache-friendly to iterate, and
// still offers the map-like read API (find / count / at / ordered iteration)
// the benches and examples use.
//
// Keys must be appended in strictly ascending order (append() enforces it);
// that is the natural order of the pipeline loops, which iterate sensors in
// ascending id order.

#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sentinel::util {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = const_iterator;  // read-only container: keys are ordered

  FlatMap() = default;

  /// Append a key/value; `key` must be greater than every existing key.
  void append(const K& key, V value) {
    if (!data_.empty() && !(data_.back().first < key)) {
      throw std::logic_error("FlatMap::append: keys must be strictly ascending");
    }
    data_.emplace_back(key, std::move(value));
  }

  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  const_iterator find(const K& key) const {
    const auto it = lower_bound(key);
    return (it != data_.end() && it->first == key) ? it : data_.end();
  }

  std::size_t count(const K& key) const { return find(key) == data_.end() ? 0 : 1; }

  const V& at(const K& key) const {
    const auto it = find(key);
    if (it == data_.end()) throw std::out_of_range("FlatMap::at: missing key");
    return it->second;
  }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  bool operator==(const FlatMap&) const = default;

 private:
  const_iterator lower_bound(const K& key) const {
    return std::lower_bound(data_.begin(), data_.end(), key,
                            [](const value_type& v, const K& k) { return v.first < k; });
  }

  std::vector<value_type> data_;
};

/// Non-owning view over a sorted (key, value) run -- same read API as
/// FlatMap, but the storage lives elsewhere (a SlabArena in the pipeline's
/// window history, so retaining a window costs no per-window allocation).
/// The viewed run must outlive the view and be sorted ascending by key.
template <typename K, typename V>
class FlatMapView {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = const value_type*;
  using iterator = const_iterator;

  FlatMapView() = default;
  FlatMapView(const value_type* data, std::size_t size) : data_(data), size_(size) {}

  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  const_iterator find(const K& key) const {
    const auto it = lower_bound(key);
    return (it != end() && it->first == key) ? it : end();
  }

  std::size_t count(const K& key) const { return find(key) == end() ? 0 : 1; }

  const V& at(const K& key) const {
    const auto it = find(key);
    if (it == end()) throw std::out_of_range("FlatMapView::at: missing key");
    return it->second;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  friend bool operator==(const FlatMapView& a, const FlatMapView& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  const_iterator lower_bound(const K& key) const {
    return std::lower_bound(begin(), end(), key,
                            [](const value_type& v, const K& k) { return v.first < k; });
  }

  const value_type* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sentinel::util
