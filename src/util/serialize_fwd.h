// Forward declarations for the checkpoint codec interfaces, so model headers
// can declare Writer/Reader-based save/load without pulling in iostreams and
// the codec implementations (util/serialize.h).

#pragma once

namespace sentinel::serialize {

class Writer;
class Reader;

/// Checkpoint wire codec. Text is the default (diffable, byte-compatible
/// with all prior checkpoints); binary is smaller and faster to parse.
enum class Format { kText, kBinary };

}  // namespace sentinel::serialize
