// Attribute-vector math.
//
// The paper models the environment as a multidimensional parameter
// Theta(t) = <x_1, ..., x_n> (temperature, humidity, pressure, ...).
// AttrVec is that vector; every module that manipulates sensor readings or
// model-state centroids uses the small helpers here.

#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/kernels.h"

namespace sentinel {

using AttrVec = std::vector<double>;

namespace vecn {

inline void check_same_size(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("AttrVec dimension mismatch: " + std::to_string(a.size()) +
                                " vs " + std::to_string(b.size()));
  }
}

/// Euclidean distance ||a - b||. Reduction uses the fixed lane-striped tree
/// of util/kernels.h (identical to sequential accumulation for n <= 3, the
/// attribute dimensions the paper's deployments use).
inline double dist(std::span<const double> a, std::span<const double> b) {
  check_same_size(a, b);
  return std::sqrt(kern::k().dist2(a.data(), b.data(), a.size()));
}

/// Squared Euclidean distance; cheaper when only comparisons are needed.
inline double dist2(std::span<const double> a, std::span<const double> b) {
  check_same_size(a, b);
  return kern::k().dist2(a.data(), b.data(), a.size());
}

/// Component sum with a fixed, documented accumulation order: two
/// interleaved partials (even indices into one, odd into the other), folded
/// once at the end. Every producer and consumer of per-sensor scalar sums
/// (the windower's cached rep_sums, the screen tier's residuals) uses this
/// exact order, so a sum computed at aggregation time is bit-identical to
/// one recomputed from the vector. The two-partial shape also breaks the
/// serial add chain, which matters on the per-sensor line-rate path.
inline double scalar_sum(std::span<const double> a) {
  double s0 = 0.0;
  double s1 = 0.0;
  std::size_t i = 0;
  for (; i + 1 < a.size(); i += 2) {
    s0 += a[i];
    s1 += a[i + 1];
  }
  if (i < a.size()) s0 += a[i];
  return s0 + s1;
}

/// Euclidean norm ||a||.
inline double norm(std::span<const double> a) {
  double s = 0.0;
  for (const double x : a) s += x * x;
  return std::sqrt(s);
}

inline AttrVec add(std::span<const double> a, std::span<const double> b) {
  check_same_size(a, b);
  AttrVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

inline AttrVec sub(std::span<const double> a, std::span<const double> b) {
  check_same_size(a, b);
  AttrVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

inline AttrVec scale(std::span<const double> a, double k) {
  AttrVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] * k;
  return r;
}

/// In-place exponential moving average: a = (1 - alpha) * a + alpha * b.
/// This is the centroid update of the paper's eq. (6) and the A/B updates
/// of section 3.2.
inline void ema_update(AttrVec& a, std::span<const double> b, double alpha) {
  check_same_size(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = (1.0 - alpha) * a[i] + alpha * b[i];
}

/// Element-wise mean of a set of vectors. Throws if the set is empty or
/// dimensions disagree.
inline AttrVec mean(std::span<const AttrVec> points) {
  if (points.empty()) throw std::invalid_argument("vecn::mean of empty set");
  AttrVec m(points.front().size(), 0.0);
  for (const AttrVec& p : points) {
    check_same_size(m, p);
    for (std::size_t i = 0; i < m.size(); ++i) m[i] += p[i];
  }
  const double inv = 1.0 / static_cast<double>(points.size());
  for (double& x : m) x *= inv;
  return m;
}

/// Allocation-free variant of `mean`: writes the element-wise mean of
/// `points` into `out` (resized to the point dimension). Arithmetic is
/// identical to `mean` — accumulate in iteration order, then scale once by
/// 1/count — so results are bit-identical.
inline void mean_into(std::span<const AttrVec> points, AttrVec& out) {
  if (points.empty()) throw std::invalid_argument("vecn::mean of empty set");
  out.assign(points.front().size(), 0.0);
  for (const AttrVec& p : points) {
    check_same_size(out, p);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += p[i];
  }
  const double inv = 1.0 / static_cast<double>(points.size());
  for (double& x : out) x *= inv;
}

/// Index of the nearest vector in `centers` to `p`; this is the paper's
/// argmin_k ||s_k - p|| used by eqs. (2) and (3). Throws if `centers` is empty.
inline std::size_t nearest(std::span<const AttrVec> centers, std::span<const double> p) {
  if (centers.empty()) throw std::invalid_argument("vecn::nearest with no centers");
  // Validate dimensions once per scan (cheap integer compares) so the
  // distance loop below runs without per-candidate throw machinery.
  for (const AttrVec& c : centers) check_same_size(c, p);
  const auto& k = kern::k();
  const std::size_t n = p.size();
  std::size_t best = 0;
  double best_d = k.dist2(centers[0].data(), p.data(), n);
  for (std::size_t i = 1; i < centers.size(); ++i) {
    const double d = k.dist2(centers[i].data(), p.data(), n);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

/// Pretty "(24,70)"-style rendering used throughout the paper's tables.
inline std::string to_string(std::span<const double> a, int precision = 0) {
  std::string s = "(";
  char buf[64];
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, a[i]);
    s += buf;
    if (i + 1 < a.size()) s += ",";
  }
  s += ")";
  return s;
}

}  // namespace vecn
}  // namespace sentinel
