#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sentinel {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Ema::Ema(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("Ema: alpha must be in (0,1)");
  }
}

void Ema::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = (1.0 - alpha_) * value_ + alpha_ * x;
  }
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto b = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1); }

double Histogram::quantile(double p) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::size_t>(p * static_cast<double>(total_));
  std::size_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum > target) return 0.5 * (bin_lo(b) + bin_hi(b));
  }
  return hi_;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("quantile: p out of [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace sentinel
