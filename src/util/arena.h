// Slab arena: append-only bulk allocator with stable addresses.
//
// The pipeline's window history retains a per-sensor info row for every
// sensor in every window. Giving each WindowSummary its own vector means one
// heap allocation per window at steady state; parking the rows in a shared
// arena instead amortizes that to one allocation per kMinChunk rows
// (~0.0002 allocations/window for a 4096-row chunk and a handful of
// sensors). Chunks are never moved or freed until the arena is cleared, so
// spans handed out by alloc() stay valid for the arena's lifetime -- exactly
// the contract a FlatMapView over history rows needs.

#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace sentinel::util {

template <typename T>
class SlabArena {
 public:
  /// Carve out `n` contiguous default-constructed elements. The returned
  /// span stays valid until clear()/destruction (chunks are never
  /// reallocated). Allocations larger than the chunk size get a dedicated
  /// chunk.
  std::span<T> alloc(std::size_t n) {
    if (n == 0) return {};
    if (chunks_.empty() || used_ + n > chunk_cap_) {
      chunk_cap_ = std::max<std::size_t>(kMinChunk, n);
      chunks_.push_back(std::make_unique<T[]>(chunk_cap_));
      used_ = 0;
    }
    T* base = chunks_.back().get() + used_;
    used_ += n;
    return {base, n};
  }

  /// Drop all chunks. Invalidates every span previously returned.
  void clear() {
    chunks_.clear();
    chunk_cap_ = 0;
    used_ = 0;
  }

 private:
  static constexpr std::size_t kMinChunk = 4096;

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t chunk_cap_ = 0;  // capacity of the current (last) chunk
  std::size_t used_ = 0;       // elements consumed in the current chunk
};

}  // namespace sentinel::util
