#include "util/mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SENTINEL_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sentinel::util {

std::optional<MappedFile> MappedFile::map(const std::string& path) {
#if SENTINEL_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (data == MAP_FAILED) return std::nullopt;
  return MappedFile(data, size);
#else
  (void)path;
  return std::nullopt;
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
#if SENTINEL_HAVE_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
  data_ = nullptr;
  size_ = 0;
}

}  // namespace sentinel::util
