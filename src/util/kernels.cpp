// Scalar kernel level + the once-at-startup dispatch.
//
// The scalar implementations below are the *reference semantics*: four
// accumulator lanes striped over the input, combined as a fixed pairwise
// tree (see kernels.h). The SSE2/AVX2 translation units implement the same
// tree with intrinsics; this file is compiled with -ffp-contract=off so the
// compiler cannot fuse the mul+add pairs and break cross-level bit-identity.

#include "util/kernels.h"

#include <cfloat>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace sentinel::kern {

namespace {

inline double reduce_tree(const double lane[4]) {
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double dist2_scalar(const double* a, const double* b, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double d = a[i + l] - b[i + l];
      lane[l] += d * d;
    }
  }
  for (int l = 0; i < n; ++i, ++l) {
    const double d = a[i] - b[i];
    lane[l] += d * d;
  }
  return reduce_tree(lane);
}

void dist2_block_scalar(const double* block, std::size_t count, std::size_t stride,
                        const double* p, double* out) {
  for (std::size_t s = 0; s < count; ++s) {
    out[s] = dist2_scalar(block + s * stride, p, stride);
  }
}

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) lane[l] += a[i + l] * b[i + l];
  }
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return reduce_tree(lane);
}

double sum_scalar(const double* a, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) lane[l] += a[i + l];
  }
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i];
  return reduce_tree(lane);
}

double sumsq_scalar(const double* a, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) lane[l] += a[i + l] * a[i + l];
  }
  for (int l = 0; i < n; ++i, ++l) lane[l] += a[i] * a[i];
  return reduce_tree(lane);
}

void sum_sumsq_scalar(const double* a, std::size_t n, double* sum_out, double* sumsq_out) {
  double ls[4] = {0.0, 0.0, 0.0, 0.0};
  double lq[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      ls[l] += a[i + l];
      lq[l] += a[i + l] * a[i + l];
    }
  }
  for (int l = 0; i < n; ++i, ++l) {
    ls[l] += a[i];
    lq[l] += a[i] * a[i];
  }
  *sum_out = reduce_tree(ls);
  *sumsq_out = reduce_tree(lq);
}

void vec_mat_scalar(const double* x, const double* m, std::size_t rows, std::size_t cols,
                    std::size_t stride, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    const double* row = m + r * stride;
    for (std::size_t j = 0; j < cols; ++j) out[j] += xr * row[j];
  }
}

void mat_vec_scalar(const double* m, const double* x, std::size_t rows, std::size_t cols,
                    std::size_t stride, double* out) {
  for (std::size_t r = 0; r < rows; ++r) out[r] = dot_scalar(m + r * stride, x, cols);
}

void mat_vec_block_scalar(const double* m, const double* xs, std::size_t count,
                          std::size_t xstride, std::size_t rows, std::size_t cols,
                          std::size_t stride, double* out) {
  for (std::size_t k = 0; k < count; ++k) {
    mat_vec_scalar(m, xs + k * xstride, rows, cols, stride, out + k * rows);
  }
}

void scale_scalar(double* v, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= s;
}

void div_scale_scalar(double* v, std::size_t n, double d) {
  for (std::size_t i = 0; i < n; ++i) v[i] /= d;
}

void ema_scale_bump_rows_scalar(double* base, const std::size_t* offs,
                                const std::uint32_t* cols, std::size_t count,
                                std::size_t n, double s, double bump) {
  for (std::size_t r = 0; r < count; ++r) {
    double* v = base + offs[r];
    scale_scalar(v, n, s);
    v[cols[r]] += bump;
  }
}

void div_scale_rows_scalar(double* base, const std::size_t* offs, const double* divisors,
                           std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) div_scale_scalar(base + offs[r], n, divisors[r]);
}

void accum_rows_scalar(double* base, const std::size_t* offs, const double* const* srcs,
                       std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) {
    double* v = base + offs[r];
    const double* s = srcs[r];
    for (std::size_t i = 0; i < n; ++i) v[i] += s[i];
  }
}

void sum_rows_scalar(double* out, const double* const* srcs, std::size_t count, std::size_t n) {
  for (std::size_t r = 0; r < count; ++r) {
    const double* s = srcs[r];
    for (std::size_t i = 0; i < n; ++i) out[i] += s[i];
  }
}

void axpy_scalar(double* y, const double* x, std::size_t n, double a) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void mul_scalar(double* out, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void mul_axpy_scalar(double* y, const double* a, const double* b, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) y[i] += s * (a[i] * b[i]);
}

double normalize_scalar(double* v, std::size_t n) {
  double c = sum_scalar(v, n);
  if (c <= 0.0) c = DBL_MIN;
  const double inv = 1.0 / c;
  scale_scalar(v, n, inv);
  return inv;
}

MaxPlusResult max_plus_scalar(const double* x, const double* y, std::size_t n) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double bv[4] = {kNegInf, kNegInf, kNegInf, kNegInf};
  std::size_t bi[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double v = x[i + l] + y[i + l];
      if (v > bv[l]) {
        bv[l] = v;
        bi[l] = i + l;
      }
    }
  }
  for (int l = 0; i < n; ++i, ++l) {
    const double v = x[i] + y[i];
    if (v > bv[l]) {
      bv[l] = v;
      bi[l] = i;
    }
  }
  MaxPlusResult r{bv[0], bi[0]};
  for (int l = 1; l < 4; ++l) {
    if (bv[l] > r.value || (bv[l] == r.value && bi[l] < r.index)) {
      r.value = bv[l];
      r.index = bi[l];
    }
  }
  return r;
}

constexpr Kernels kScalarKernels{
    "scalar",        dist2_block_scalar, dist2_scalar, dot_scalar,       sum_scalar,
    sumsq_scalar,    sum_sumsq_scalar,
    vec_mat_scalar,  mat_vec_scalar,     mat_vec_block_scalar,
    scale_scalar,    div_scale_scalar,
    ema_scale_bump_rows_scalar, div_scale_rows_scalar,
    accum_rows_scalar, sum_rows_scalar,
    axpy_scalar,     mul_scalar,         mul_axpy_scalar,
    normalize_scalar, max_plus_scalar,
};

Level detect_best() {
#if defined(SENTINEL_X86_KERNELS)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return Level::avx2;
  if (__builtin_cpu_supports("sse2")) return Level::sse2;
#endif
  return Level::scalar;
}

Level resolve_active() {
  const Level best = detect_best();
  const char* env = std::getenv("SENTINEL_KERNELS");
  if (env == nullptr || env[0] == '\0') return best;
  Level want;
  if (!parse_level(env, want)) {
    std::fprintf(stderr, "sentinel: SENTINEL_KERNELS='%s' not one of scalar|sse2|avx2; using %s\n",
                 env, level_name(best));
    return best;
  }
  if (!level_supported(want)) {
    std::fprintf(stderr, "sentinel: SENTINEL_KERNELS=%s unsupported on this CPU; using %s\n",
                 env, level_name(best));
    return best;
  }
  return want;
}

}  // namespace

#if defined(SENTINEL_X86_KERNELS)
// Defined in kernels_sse2.cpp / kernels_avx2.cpp (compiled with the matching
// ISA flags and -ffp-contract=off).
const Kernels& sse2_kernels();
const Kernels& avx2_kernels();
#endif

const Kernels& table(Level level) {
#if defined(SENTINEL_X86_KERNELS)
  if (level == Level::avx2 && level_supported(Level::avx2)) return avx2_kernels();
  if (level >= Level::sse2 && level_supported(Level::sse2)) return sse2_kernels();
#endif
  (void)level;
  return kScalarKernels;
}

bool level_supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(detect_best());
}

Level active_level() {
  static const Level level = resolve_active();
  return level;
}

const Kernels& k() {
  static const Kernels& active = table(active_level());
  return active;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::scalar: return "scalar";
    case Level::sse2: return "sse2";
    case Level::avx2: return "avx2";
  }
  return "scalar";
}

bool parse_level(const char* text, Level& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    out = Level::scalar;
  } else if (std::strcmp(text, "sse2") == 0) {
    out = Level::sse2;
  } else if (std::strcmp(text, "avx2") == 0) {
    out = Level::avx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace sentinel::kern
