// Read-only memory-mapped file.
//
// The trace readers parse straight out of the mapping (zero-copy: no read()
// into a buffer, no per-line copies). Platforms or files where mmap is
// unavailable (non-POSIX builds, pipes, /proc files reporting zero size)
// return nullopt from map() and callers fall back to buffered stream reads,
// so mapping is always an optimization, never a requirement.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace sentinel::util {

class MappedFile {
 public:
  /// Map `path` read-only. nullopt when the file cannot be opened or mapped;
  /// an empty regular file maps successfully to an empty view.
  static std::optional<MappedFile> map(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view view() const { return {static_cast<const char*>(data_), size_}; }
  std::size_t size() const { return size_; }

 private:
  MappedFile(void* data, std::size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;  // nullptr for an empty file
  std::size_t size_ = 0;
};

}  // namespace sentinel::util
