// Runtime-dispatched SIMD compute kernels for the per-window math path.
//
// Every numeric inner loop the pipeline runs per window -- the eq. (2)/(5)
// centroid distance scans, the scaled HMM forward/backward recursions, the
// log-space Viterbi max-plus rows, and the online EMA gain updates -- funnels
// through the function table returned by k(). The implementation level
// (AVX2+FMA, SSE2, or portable scalar) is selected exactly once at startup
// from cpuid, overridable with SENTINEL_KERNELS=scalar|sse2|avx2.
//
// Reduction semantics are fixed, not implementation-defined: every reduction
// (dist2, dot, sum, mat_vec, normalize, max_plus) uses the same 4-lane
// striped pairwise tree --
//
//   lane l accumulates elements l, l+4, l+8, ... (ascending, from +0.0);
//   result = (lane0 + lane1) + (lane2 + lane3)
//
// -- and the scalar fallback implements the *same* tree with four scalar
// accumulators, so all three levels are bit-identical to one another on every
// input (infinities, signed zeros, denormals included; NaN payload bits are
// the one exception -- x86 NaN propagation is operand-order dependent and the
// compiler may commute scalar multiplies, so only *which* results are NaN is
// guaranteed, not their payloads). To keep that guarantee, no
// kernel uses FMA in value-bearing arithmetic (a fused multiply-add rounds
// once where mul+add rounds twice), and the kernel translation units are
// compiled with -ffp-contract=off so the compiler cannot fuse behind our
// back. The AVX2 level still requires the FMA cpuid bit -- it identifies the
// Haswell+ generation the 256-bit paths are tuned for -- it just does not
// contract our arithmetic.
//
// max_plus reproduces sequential first-max semantics exactly: each lane keeps
// the first element that strictly exceeds its running max, and the cross-lane
// combine prefers strictly-greater values, breaking exact ties toward the
// smaller index. The winner of that tournament is provably the first global
// maximum of the sequential scan, so Viterbi backpointers are unchanged.

#pragma once

#include <cstddef>
#include <cstdint>

namespace sentinel::kern {

enum class Level { scalar = 0, sse2 = 1, avx2 = 2 };

struct MaxPlusResult {
  double value;
  std::size_t index;
};

/// The kernel function table. All pointers are non-null at every level.
struct Kernels {
  const char* name;

  /// out[s] = striped squared distance between p and block + s*stride, both
  /// read over the full `stride` width. Callers keep pad cells at +0.0 in
  /// both operands, which leaves the reduction bit-identical to one over the
  /// unpadded dimension (squares are never -0.0).
  void (*dist2_block)(const double* block, std::size_t count, std::size_t stride,
                      const double* p, double* out);
  /// Striped squared distance ||a - b||^2 over n elements.
  double (*dist2)(const double* a, const double* b, std::size_t n);
  /// Striped inner product <a, b>.
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// Striped sum of a[0..n).
  double (*sum)(const double* a, std::size_t n);
  /// Striped sum of squares a[i]^2 over n elements (the second raw moment
  /// numerator the screen tier's chi-squared statistic reduces over).
  double (*sumsq)(const double* a, std::size_t n);
  /// Fused windowed-moment reduction: *sum_out = striped sum of a,
  /// *sumsq_out = striped sum of a^2, one pass over the input. Each moment
  /// uses its own 4-lane tree, so both results are bit-identical to the
  /// separate sum/sumsq kernels at every level.
  void (*sum_sumsq)(const double* a, std::size_t n, double* sum_out, double* sumsq_out);

  /// out[j] += x[i] * m[i*stride + j], i ascending 0..rows. Per output lane
  /// this is the plain sequential accumulation order (no striping), so it is
  /// bit-identical to the classic nested loop at every level.
  void (*vec_mat)(const double* x, const double* m, std::size_t rows, std::size_t cols,
                  std::size_t stride, double* out);
  /// out[i] = striped dot of row i of m (stride apart) with x, over cols.
  void (*mat_vec)(const double* m, const double* x, std::size_t rows, std::size_t cols,
                  std::size_t stride, double* out);
  /// Multi-RHS mat_vec over one matrix: for each k in [0, count),
  /// out[k*rows + r] = striped dot of row r of m with xs + k*xstride.
  /// Bit-identical to `count` independent mat_vec calls at every level.
  void (*mat_vec_block)(const double* m, const double* xs, std::size_t count,
                        std::size_t xstride, std::size_t rows, std::size_t cols,
                        std::size_t stride, double* out);

  /// v[i] *= s.
  void (*scale)(double* v, std::size_t n, double s);
  /// v[i] /= d. Kept as an IEEE division per element (not a reciprocal
  /// multiply) so it matches pre-kernel scalar code bit-for-bit.
  void (*div_scale)(double* v, std::size_t n, double d);
  /// Batched online-EMA row update over scattered rows: for each r in
  /// [0, count), with v = base + offs[r]: v[i] *= s over [0, n), then
  /// v[cols[r]] += bump. Rows are processed in batch order with the scale
  /// strictly before the bump per row, so a batch is bit-identical to the
  /// same sequence of per-row scale() calls and scalar bumps. Callers may
  /// pass n as the padded stride: slack cells hold +0.0 and 0.0*s == +0.0.
  void (*ema_scale_bump_rows)(double* base, const std::size_t* offs,
                              const std::uint32_t* cols, std::size_t count,
                              std::size_t n, double s, double bump);
  /// Batched per-row IEEE division over scattered rows: for each r,
  /// (base + offs[r])[i] /= divisors[r] over [0, n). Bit-identical to
  /// per-row div_scale at every level.
  void (*div_scale_rows)(double* base, const std::size_t* offs,
                         const double* divisors, std::size_t count, std::size_t n);
  /// Batched columnar accumulate over scattered destination rows (the
  /// windower's per-sensor running sums): for each r in [0, count),
  /// (base + offs[r])[i] += srcs[r][i] over [0, n). Rows are processed in
  /// batch order with elements ascending within a row, so repeated offsets
  /// accumulate exactly like the equivalent sequence of scalar loops --
  /// elementwise adds, no reduction, trivially bit-identical at every level.
  void (*accum_rows)(double* base, const std::size_t* offs,
                     const double* const* srcs, std::size_t count, std::size_t n);
  /// Many-rows-into-one accumulate (the windower's whole-window total):
  /// out[i] += srcs[r][i], r ascending then i ascending within each row. Per
  /// output element the additions happen in row order -- the accumulation
  /// order of vecn::mean_into -- so results are bit-identical to that loop
  /// and to one another at every level.
  void (*sum_rows)(double* out, const double* const* srcs, std::size_t count, std::size_t n);
  /// y[i] += a * x[i]; multiply then add, each rounded (no FMA).
  void (*axpy)(double* y, const double* x, std::size_t n, double a);
  /// out[i] = a[i] * b[i]. out may alias a or b.
  void (*mul)(double* out, const double* a, const double* b, std::size_t n);
  /// y[i] += s * (a[i] * b[i]); each multiply and the add rounded separately
  /// (no FMA). Elementwise, so trivially bit-identical across levels.
  void (*mul_axpy)(double* y, const double* a, const double* b, std::size_t n, double s);

  /// Fused scale-and-normalize for the scaled forward/backward passes:
  /// c = striped sum of v; if c <= 0 it is clamped to DBL_MIN (the classic
  /// scaled-recursion guard); v is scaled by 1/c in place and 1/c returned.
  double (*normalize)(double* v, std::size_t n);

  /// max over i of x[i] + y[i] with sequential first-max index semantics.
  /// n == 0 yields {-inf, 0}. NaN entries are never selected.
  MaxPlusResult (*max_plus)(const double* x, const double* y, std::size_t n);
};

/// Table for a given level. Always safe to call for level_supported() levels;
/// an unsupported level silently degrades to the best supported one (so
/// non-x86 builds still link and behave identically).
const Kernels& table(Level level);

/// True if this CPU can execute kernels at `level` (scalar is always true).
bool level_supported(Level level);

/// The level resolved once at startup: SENTINEL_KERNELS override if set and
/// supported, else the best the CPU advertises.
Level active_level();

/// The active kernel table (resolved once; subsequent calls are a load).
const Kernels& k();

const char* level_name(Level level);

/// Parse "scalar" / "sse2" / "avx2". Returns false on anything else.
bool parse_level(const char* text, Level& out);

/// Round a row length up to the 4-lane kernel width. Centroid and matrix row
/// storage is padded to this stride so SIMD rows never straddle a tail.
constexpr std::size_t padded(std::size_t n) { return (n + 3) & ~static_cast<std::size_t>(3); }

}  // namespace sentinel::kern
