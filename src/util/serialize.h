// Checkpoint (de)serialization shared by all persistent model state.
//
// Two wire codecs behind one Writer/Reader interface:
//
//  - Text (the default): tagged, whitespace-separated tokens with
//    full-precision doubles, readable with a text editor and diffable across
//    checkpoints. Byte-compatible with every checkpoint this project has
//    ever written.
//  - Binary: the same token stream as fixed-width little-endian values
//    (doubles as IEEE-754 bits, integers as u64, tags length-prefixed),
//    opened by an 8-byte magic. Roughly 2.5x smaller and an order of
//    magnitude faster to parse than text; use it for high-frequency
//    checkpointing where diffability does not matter.
//
// The first byte of a stream negotiates the codec (text checkpoints start
// with a human-readable tag, never 0xB5), so readers auto-detect via
// make_reader(). Readers throw std::runtime_error on tag mismatches or
// truncation so format drift fails loudly.

#pragma once

#include <bit>
#include <cstdint>
#include <iomanip>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/matrix.h"
#include "util/serialize_fwd.h"

namespace sentinel::serialize {

/// First bytes of a binary stream. 0xB5 is not valid UTF-8 ASCII text, so it
/// can never collide with a text checkpoint's leading tag character.
inline constexpr unsigned char kBinaryMagic[8] = {0xB5, 'S', 'N', 'T', 'L', 'B', '1', '\n'};

class Writer {
 public:
  virtual ~Writer() = default;
  virtual void put_double(double v) = 0;
  virtual void put_u64(std::uint64_t v) = 0;
  /// Write a section tag.
  virtual void tag(std::string_view name) = 0;
  /// Section separator (text: '\n'; binary: nothing).
  virtual void newline() = 0;
};

class Reader {
 public:
  virtual ~Reader() = default;
  virtual double get_double() = 0;
  virtual std::uint64_t get_u64() = 0;
  /// Read and verify a section tag.
  virtual void expect(std::string_view name) = 0;
};

class TextWriter final : public Writer {
 public:
  explicit TextWriter(std::ostream& os) : os_(os) {}
  void put_double(double v) override { os_ << std::setprecision(17) << v << ' '; }
  void put_u64(std::uint64_t v) override { os_ << v << ' '; }
  void tag(std::string_view name) override { os_ << name << '\n'; }
  void newline() override { os_ << '\n'; }

 private:
  std::ostream& os_;
};

class TextReader final : public Reader {
 public:
  explicit TextReader(std::istream& is) : is_(is) {}
  double get_double() override { return get<double>(); }
  std::uint64_t get_u64() override { return get<std::uint64_t>(); }
  void expect(std::string_view name) override {
    std::string got;
    if (!(is_ >> got) || got != name) {
      throw std::runtime_error("checkpoint: expected tag '" + std::string(name) + "', got '" +
                               got + "'");
    }
  }

 private:
  template <typename T>
  T get() {
    T v{};
    if (!(is_ >> v)) throw std::runtime_error("checkpoint: truncated stream");
    return v;
  }
  std::istream& is_;
};

class BinaryWriter final : public Writer {
 public:
  /// Writes the magic immediately, so even an empty checkpoint is detectable.
  explicit BinaryWriter(std::ostream& os) : os_(os) {
    os_.write(reinterpret_cast<const char*>(kBinaryMagic), sizeof kBinaryMagic);
  }
  void put_double(double v) override { put_le(std::bit_cast<std::uint64_t>(v)); }
  void put_u64(std::uint64_t v) override { put_le(v); }
  void tag(std::string_view name) override {
    if (name.size() > 255) throw std::invalid_argument("checkpoint: tag too long");
    const unsigned char len = static_cast<unsigned char>(name.size());
    os_.put(static_cast<char>(len));
    os_.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  void newline() override {}

 private:
  void put_le(std::uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    os_.write(buf, 8);
  }
  std::ostream& os_;
};

class BinaryReader final : public Reader {
 public:
  /// Consumes and verifies the magic.
  explicit BinaryReader(std::istream& is) : is_(is) {
    unsigned char got[sizeof kBinaryMagic] = {};
    is_.read(reinterpret_cast<char*>(got), sizeof got);
    if (is_.gcount() != sizeof got ||
        !std::equal(std::begin(got), std::end(got), std::begin(kBinaryMagic))) {
      throw std::runtime_error("checkpoint: bad binary magic");
    }
  }
  double get_double() override { return std::bit_cast<double>(get_le()); }
  std::uint64_t get_u64() override { return get_le(); }
  void expect(std::string_view name) override {
    const int len = is_.get();
    if (len == std::char_traits<char>::eof()) {
      throw std::runtime_error("checkpoint: truncated stream");
    }
    std::string got(static_cast<std::size_t>(len), '\0');
    is_.read(got.data(), len);
    if (is_.gcount() != len || got != name) {
      throw std::runtime_error("checkpoint: expected tag '" + std::string(name) + "', got '" +
                               got + "'");
    }
  }

 private:
  std::uint64_t get_le() {
    unsigned char buf[8];
    is_.read(reinterpret_cast<char*>(buf), 8);
    if (is_.gcount() != 8) throw std::runtime_error("checkpoint: truncated stream");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
  }
  std::istream& is_;
};

inline std::unique_ptr<Writer> make_writer(std::ostream& os, Format format) {
  if (format == Format::kBinary) return std::make_unique<BinaryWriter>(os);
  return std::make_unique<TextWriter>(os);
}

/// Codec negotiation: peek the first byte without consuming it.
inline Format detect_format(std::istream& is) {
  return is.peek() == kBinaryMagic[0] ? Format::kBinary : Format::kText;
}

inline std::unique_ptr<Reader> make_reader(std::istream& is) {
  if (detect_format(is) == Format::kBinary) return std::make_unique<BinaryReader>(is);
  return std::make_unique<TextReader>(is);
}

// --- Typed helpers over the codec interface --------------------------------

template <typename T>
void put(Writer& w, T v) {
  if constexpr (std::is_floating_point_v<T>) {
    w.put_double(v);
  } else if constexpr (std::is_same_v<T, bool>) {
    w.put_u64(v ? 1 : 0);
  } else {
    static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>,
                  "checkpoint integers are unsigned");
    w.put_u64(static_cast<std::uint64_t>(v));
  }
}

inline void tag(Writer& w, std::string_view name) { w.tag(name); }
inline void expect(Reader& r, std::string_view name) { r.expect(name); }

template <typename T>
T get(Reader& r) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(r.get_double());
  } else {
    static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>,
                  "checkpoint integers are unsigned");
    const std::uint64_t v = r.get_u64();
    if (v > std::numeric_limits<T>::max()) {
      throw std::runtime_error("checkpoint: integer out of range");
    }
    return static_cast<T>(v);
  }
}

inline bool get_bool(Reader& r) { return r.get_u64() != 0; }

template <typename T>
void put_vector(Writer& w, const std::vector<T>& v) {
  put(w, v.size());
  for (const T& x : v) put(w, x);
}

template <typename T>
std::vector<T> get_vector(Reader& r) {
  const auto n = get<std::size_t>(r);
  if (n > (1u << 26)) throw std::runtime_error("checkpoint: implausible vector size");
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(get<T>(r));
  return v;
}

inline void put_matrix(Writer& w, const Matrix& m) {
  put(w, m.rows());
  put(w, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) put(w, m(r, c));
  }
}

inline Matrix get_matrix(Reader& r) {
  const auto rows = get<std::size_t>(r);
  const auto cols = get<std::size_t>(r);
  if (rows > (1u << 16) || cols > (1u << 16)) {
    throw std::runtime_error("checkpoint: implausible matrix size");
  }
  Matrix m(rows, cols);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t c = 0; c < cols; ++c) m(row, c) = get<double>(r);
  }
  return m;
}

}  // namespace sentinel::serialize
