// Tiny text (de)serialization helpers shared by the checkpoint code: tagged,
// whitespace-separated tokens with full-precision doubles, readable with a
// text editor and diffable across checkpoints. Readers throw
// std::runtime_error on tag mismatches so format drift fails loudly.

#pragma once

#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/matrix.h"

namespace sentinel::serialize {

/// Write a double with round-trip precision.
inline void put(std::ostream& os, double v) { os << std::setprecision(17) << v << ' '; }
inline void put(std::ostream& os, std::uint64_t v) { os << v << ' '; }
inline void put(std::ostream& os, std::uint32_t v) { os << v << ' '; }
inline void put(std::ostream& os, bool v) { os << (v ? 1 : 0) << ' '; }

/// Write a section tag.
inline void tag(std::ostream& os, const std::string& name) { os << name << '\n'; }

/// Read and verify a section tag.
inline void expect(std::istream& is, const std::string& name) {
  std::string got;
  if (!(is >> got) || got != name) {
    throw std::runtime_error("checkpoint: expected tag '" + name + "', got '" + got + "'");
  }
}

template <typename T>
T get(std::istream& is) {
  T v{};
  if (!(is >> v)) throw std::runtime_error("checkpoint: truncated stream");
  return v;
}

inline bool get_bool(std::istream& is) { return get<int>(is) != 0; }

template <typename T>
void put_vector(std::ostream& os, const std::vector<T>& v) {
  put(os, v.size());
  for (const T& x : v) put(os, x);
}

template <typename T>
std::vector<T> get_vector(std::istream& is) {
  const auto n = get<std::size_t>(is);
  if (n > (1u << 26)) throw std::runtime_error("checkpoint: implausible vector size");
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(get<T>(is));
  return v;
}

inline void put_matrix(std::ostream& os, const Matrix& m) {
  put(os, m.rows());
  put(os, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) put(os, m(r, c));
  }
}

inline Matrix get_matrix(std::istream& is) {
  const auto rows = get<std::size_t>(is);
  const auto cols = get<std::size_t>(is);
  if (rows > (1u << 16) || cols > (1u << 16)) {
    throw std::runtime_error("checkpoint: implausible matrix size");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = get<double>(is);
  }
  return m;
}

}  // namespace sentinel::serialize
