#include "baseline/median_detector.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.h"

namespace sentinel::baseline {

MedianDetector::MedianDetector(MedianDetectorConfig cfg) : cfg_(cfg) {
  if (!(cfg_.k > 0.0) || !(cfg_.min_sigma > 0.0)) {
    throw std::invalid_argument("MedianDetector: bad configuration");
  }
}

std::map<SensorId, bool> MedianDetector::process(const ObservationSet& window) {
  std::map<SensorId, bool> out;
  const auto reps = window.representatives();
  for (const auto& [id, v] : reps) {
    (void)v;
    out[id] = false;
    ++window_counts_[id];
  }
  if (reps.size() < 3) return out;

  const std::size_t dims = reps.front().second.size();
  for (std::size_t a = 0; a < dims; ++a) {
    std::vector<double> xs;
    xs.reserve(reps.size());
    for (const auto& [id, v] : reps) xs.push_back(v[a]);
    const double med = median(xs);
    std::vector<double> devs;
    devs.reserve(xs.size());
    for (const double x : xs) devs.push_back(std::abs(x - med));
    const double sigma = std::max(cfg_.min_sigma, 1.4826 * median(devs));
    for (const auto& [id, v] : reps) {
      if (std::abs(v[a] - med) > cfg_.k * sigma) out[id] = true;
    }
  }
  for (const auto& [id, flagged] : out) {
    if (flagged) ++flag_counts_[id];
  }
  return out;
}

std::size_t MedianDetector::flags(SensorId sensor) const {
  const auto it = flag_counts_.find(sensor);
  return it == flag_counts_.end() ? 0 : it->second;
}

std::size_t MedianDetector::windows(SensorId sensor) const {
  const auto it = window_counts_.find(sensor);
  return it == window_counts_.end() ? 0 : it->second;
}

}  // namespace sentinel::baseline
