#include "baseline/markov_detector.h"

#include <stdexcept>

#include "util/stats.h"

namespace sentinel::baseline {

MarkovChainDetector::MarkovChainDetector(MarkovDetectorConfig cfg) : cfg_(cfg) {
  if (cfg_.window < 2 || !(cfg_.epsilon > 0.0)) {
    throw std::invalid_argument("MarkovChainDetector: bad configuration");
  }
}

MarkovTrainStats MarkovChainDetector::train(const std::vector<hmm::StateId>& clean) {
  if (clean.size() < cfg_.window) {
    throw std::invalid_argument("MarkovChainDetector::train: sequence shorter than window");
  }
  chain_ = hmm::MarkovChain();
  chain_.add_sequence(clean);

  std::vector<double> scores;
  for (std::size_t i = 0; i + cfg_.window <= clean.size(); ++i) {
    const std::vector<hmm::StateId> w(clean.begin() + static_cast<std::ptrdiff_t>(i),
                                      clean.begin() + static_cast<std::ptrdiff_t>(i + cfg_.window));
    scores.push_back(chain_.log_likelihood(w, cfg_.epsilon) /
                     static_cast<double>(cfg_.window - 1));
  }
  threshold_ = quantile(scores, cfg_.threshold_quantile);
  trained_ = true;

  MarkovTrainStats stats;
  stats.states = chain_.num_states();
  stats.transitions = chain_.total_transitions();
  stats.threshold = threshold_;
  return stats;
}

double MarkovChainDetector::score(const std::vector<hmm::StateId>& window) const {
  if (!trained_) throw std::logic_error("MarkovChainDetector::score before train");
  if (window.size() < 2) {
    throw std::invalid_argument("MarkovChainDetector::score: window too short");
  }
  return chain_.log_likelihood(window, cfg_.epsilon) /
         static_cast<double>(window.size() - 1);
}

std::vector<bool> MarkovChainDetector::detect(const std::vector<hmm::StateId>& test) const {
  if (!trained_) throw std::logic_error("MarkovChainDetector::detect before train");
  std::vector<bool> out(test.size(), false);
  for (std::size_t end = cfg_.window; end <= test.size(); ++end) {
    const std::vector<hmm::StateId> w(test.begin() + static_cast<std::ptrdiff_t>(end - cfg_.window),
                                      test.begin() + static_cast<std::ptrdiff_t>(end));
    out[end - 1] = score(w) < threshold_;
  }
  return out;
}

}  // namespace sentinel::baseline
