// Median-deviation baseline: flag a sensor whose window representative
// deviates from the per-attribute median of all sensors by more than
// k robust standard deviations (MAD * 1.4826). The simplest redundancy-based
// detector one would deploy before reaching for the paper's machinery --
// detection only, no fault-vs-attack diagnosis, and blind to coordinated
// coalitions that move the median itself.

#pragma once

#include <map>

#include "trace/windower.h"

namespace sentinel::baseline {

struct MedianDetectorConfig {
  double k = 4.0;          // deviation multiplier
  double min_sigma = 0.5;  // floor on the robust sigma (quiet environments)
};

class MedianDetector {
 public:
  explicit MedianDetector(MedianDetectorConfig cfg);

  /// Flag sensors in one window. Windows with < 3 sensors flag nobody.
  std::map<SensorId, bool> process(const ObservationSet& window);

  std::size_t flags(SensorId sensor) const;
  std::size_t windows(SensorId sensor) const;

 private:
  MedianDetectorConfig cfg_;
  std::map<SensorId, std::size_t> flag_counts_;
  std::map<SensorId, std::size_t> window_counts_;
};

}  // namespace sentinel::baseline
