#include "baseline/warrender.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace sentinel::baseline {

WarrenderDetector::WarrenderDetector(WarrenderConfig cfg) : cfg_(cfg) {
  if (cfg_.num_hidden_states == 0 || cfg_.window == 0) {
    throw std::invalid_argument("WarrenderDetector: bad configuration");
  }
}

hmm::Sequence WarrenderDetector::encode(const std::vector<hmm::StateId>& seq) const {
  hmm::Sequence out;
  out.reserve(seq.size());
  for (const hmm::StateId id : seq) {
    const auto it = symbol_index_.find(id);
    out.push_back(it == symbol_index_.end() ? unknown_symbol_ : it->second);
  }
  return out;
}

WarrenderTrainStats WarrenderDetector::train(const std::vector<hmm::StateId>& clean_sequence) {
  if (clean_sequence.size() < cfg_.window) {
    throw std::invalid_argument("WarrenderDetector::train: sequence shorter than window");
  }
  symbol_index_.clear();
  for (const hmm::StateId id : clean_sequence) {
    symbol_index_.try_emplace(id, symbol_index_.size());
  }
  // Reserve one slot for symbols never seen in training; the Baum-Welch
  // floor keeps its emission probability nonzero so test windows containing
  // it score low instead of -inf.
  unknown_symbol_ = symbol_index_.size();
  const std::size_t num_symbols = symbol_index_.size() + 1;

  Rng rng(cfg_.seed, "warrender-init");
  model_ = hmm::Hmm::random(cfg_.num_hidden_states, num_symbols, rng);

  hmm::BaumWelchOptions opts;
  opts.max_iterations = cfg_.baum_welch_iterations;
  const auto bw = model_.baum_welch({encode(clean_sequence)}, opts);

  // Calibrate eta as a low quantile of the training windows' scores.
  std::vector<double> scores;
  const auto encoded = encode(clean_sequence);
  for (std::size_t i = 0; i + cfg_.window <= encoded.size(); ++i) {
    const hmm::Sequence w(encoded.begin() + static_cast<std::ptrdiff_t>(i),
                          encoded.begin() + static_cast<std::ptrdiff_t>(i + cfg_.window));
    scores.push_back(model_.normalized_log_likelihood(w));
  }
  threshold_ = quantile(scores, cfg_.threshold_quantile);
  trained_ = true;

  WarrenderTrainStats stats;
  stats.iterations = bw.iterations;
  stats.final_log_likelihood =
      bw.log_likelihood_per_iter.empty() ? 0.0 : bw.log_likelihood_per_iter.back();
  stats.threshold = threshold_;
  return stats;
}

double WarrenderDetector::score(const std::vector<hmm::StateId>& window) const {
  if (!trained_) throw std::logic_error("WarrenderDetector::score before train");
  if (window.empty()) throw std::invalid_argument("WarrenderDetector::score: empty window");
  return model_.normalized_log_likelihood(encode(window));
}

std::vector<bool> WarrenderDetector::detect(const std::vector<hmm::StateId>& test) const {
  if (!trained_) throw std::logic_error("WarrenderDetector::detect before train");
  std::vector<bool> out(test.size(), false);
  for (std::size_t end = cfg_.window; end <= test.size(); ++end) {
    const std::vector<hmm::StateId> w(test.begin() + static_cast<std::ptrdiff_t>(end - cfg_.window),
                                      test.begin() + static_cast<std::ptrdiff_t>(end));
    out[end - 1] = score(w) < threshold_;
  }
  return out;
}

}  // namespace sentinel::baseline
