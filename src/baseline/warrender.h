// Warrender-style single-host HMM anomaly detector (the paper's section 2
// comparator, after Warrender, Forrest & Pearlmutter 1999).
//
// The classical recipe the paper argues against:
//  1. an *attack-free training phase* collects a clean symbol sequence,
//  2. Baum-Welch fits an HMM lambda to it (expensive, offline),
//  3. at test time, sliding windows O are scored with Pr{O | lambda} and an
//     anomaly is declared when the normalized log-likelihood drops below a
//     threshold eta (calibrated as a quantile of training-window scores).
//
// Limitations on display (and measured in bench/baseline_comparison): the
// training phase must be guaranteed clean, training cost grows steeply with
// hidden-state count, and the detector flags *that* something is anomalous
// but cannot say what -- no error-vs-attack distinction.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hmm/hmm.h"
#include "hmm/markov_chain.h"

namespace sentinel::baseline {

struct WarrenderConfig {
  std::size_t num_hidden_states = 5;
  std::size_t window = 12;           // scoring window length (symbols)
  double threshold_quantile = 0.01;  // eta = this quantile of training scores
  std::size_t baum_welch_iterations = 50;
  std::uint64_t seed = 1234;
};

struct WarrenderTrainStats {
  std::size_t iterations = 0;
  double final_log_likelihood = 0.0;
  double threshold = 0.0;  // eta on the normalized log-likelihood
};

class WarrenderDetector {
 public:
  explicit WarrenderDetector(WarrenderConfig cfg);

  /// Fit the model to an attack-free sequence of state ids and calibrate the
  /// threshold. Throws if the sequence is shorter than the scoring window.
  WarrenderTrainStats train(const std::vector<hmm::StateId>& clean_sequence);

  bool trained() const { return trained_; }
  double threshold() const { return threshold_; }

  /// Normalized log-likelihood of one window of state ids (unseen ids map to
  /// a reserved rare-symbol slot).
  double score(const std::vector<hmm::StateId>& window) const;

  /// Slide over a test sequence; result[i] = true if the window ending at
  /// position i scores below eta (positions before the first full window are
  /// false).
  std::vector<bool> detect(const std::vector<hmm::StateId>& test_sequence) const;

  const hmm::Hmm& model() const { return model_; }

 private:
  hmm::Sequence encode(const std::vector<hmm::StateId>& seq) const;

  WarrenderConfig cfg_;
  std::map<hmm::StateId, std::size_t> symbol_index_;
  std::size_t unknown_symbol_ = 0;
  hmm::Hmm model_;
  double threshold_ = 0.0;
  bool trained_ = false;
};

}  // namespace sentinel::baseline
