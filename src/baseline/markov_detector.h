// Markov-chain anomaly detector (the paper's related work [11], Jha, Tan &
// Maxion: "Markov Chains, Classifiers, and Intrusion Detection").
//
// A first-order Markov chain is estimated from an attack-free training
// sequence; test windows are scored by their per-transition log-likelihood
// under the chain, and an anomaly is declared below a threshold calibrated
// as a quantile of training-window scores. Cheaper than the Warrender HMM
// (no Baum-Welch) but, per Ye et al. [14] (also cited by the paper), only
// robust at low noise -- the baseline-comparison bench shows both
// properties. Like the other baselines: detection only, no error-vs-attack
// semantics.

#pragma once

#include <cstddef>
#include <vector>

#include "hmm/markov_chain.h"

namespace sentinel::baseline {

struct MarkovDetectorConfig {
  std::size_t window = 12;           // scoring window length (symbols)
  double threshold_quantile = 0.01;  // eta calibration
  double epsilon = 1e-6;             // probability floor for unseen transitions
};

struct MarkovTrainStats {
  std::size_t states = 0;
  std::size_t transitions = 0;
  double threshold = 0.0;
};

class MarkovChainDetector {
 public:
  explicit MarkovChainDetector(MarkovDetectorConfig cfg);

  /// Fit the chain to an attack-free state-id sequence and calibrate eta.
  MarkovTrainStats train(const std::vector<hmm::StateId>& clean_sequence);

  bool trained() const { return trained_; }
  double threshold() const { return threshold_; }
  const hmm::MarkovChain& chain() const { return chain_; }

  /// Per-transition normalized log-likelihood of a window of state ids.
  double score(const std::vector<hmm::StateId>& window) const;

  /// Sliding-window detection; result[i] refers to the window ending at i.
  std::vector<bool> detect(const std::vector<hmm::StateId>& test_sequence) const;

 private:
  MarkovDetectorConfig cfg_;
  hmm::MarkovChain chain_;
  double threshold_ = 0.0;
  bool trained_ = false;
};

}  // namespace sentinel::baseline
