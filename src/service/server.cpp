#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/report.h"
#include "service/frame_reader.h"
#include "util/metrics.h"

namespace sentinel::service {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Per-region fleet state folded into the metrics document, mirroring what
/// the batch CLI injects for --metrics-json so an operator reads the same
/// names either way.
void inject_region_state(util::MetricsSnapshot& snap, const std::string& name,
                         const core::RegionState& st) {
  const std::string prefix = "fleet.region." + name + ".";
  snap.add_counter(prefix + "records_ingested", st.records_ingested);
  snap.add_counter(prefix + "records_dropped", st.records_dropped);
  snap.add_counter(prefix + "malformed_lines", st.malformed.total());
  snap.add_counter(prefix + "backpressure_waits", st.backpressure_waits);
  snap.add_counter(prefix + "backpressure_block_ns", st.backpressure_block_ns);
  snap.add_counter(prefix + "health",
                   static_cast<std::uint64_t>(st.health));
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), fleet_(cfg_.fleet) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("service: pipe() failed: " + std::string(std::strerror(errno)));
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("service: socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    close_fd(listen_fd_);
    close_fd(wake_r_);
    close_fd(wake_w_);
    throw std::runtime_error("service: cannot listen on 127.0.0.1:" +
                             std::to_string(cfg_.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  stop();
  close_fd(listen_fd_);
  close_fd(wake_r_);
  close_fd(wake_w_);
}

void Server::request_stop() {
  // Async-signal-safe: an atomic store and one write(2) on the wake pipe.
  stop_requested_.store(true);
  const unsigned char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
}

void Server::start() {
  run_thread_ = std::thread([this] { run(); });
}

void Server::stop() {
  request_stop();
  if (run_thread_.joinable()) run_thread_.join();
}

void Server::run() {
  if (cfg_.checkpoint_interval_seconds > 0 && !cfg_.fleet.checkpoint_dir.empty()) {
    timer_thread_ = std::thread([this] {
      const auto interval = std::chrono::duration<double>(cfg_.checkpoint_interval_seconds);
      std::unique_lock<std::mutex> lock(timer_mu_);
      while (!timer_cv_.wait_for(lock, interval, [this] { return stop_requested_.load(); })) {
        lock.unlock();
        {
          std::lock_guard<std::mutex> ingest(ingest_mu_);
          fleet_.checkpoint_now();
        }
        lock.lock();
      }
    });
  }

  while (!stop_requested_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_r_, POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_requested_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    std::lock_guard<std::mutex> lock(conns_mu_);
    // Reap connections whose handlers already exited, so a long-lived
    // daemon does not accumulate one joinable thread per past client.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load()) {
        (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      serve_connection(raw->fd);
      raw->done.store(true);
    });
    conns_.push_back(std::move(conn));
  }

  // Teardown: no new connections, unblock every handler's recv, join, then
  // quiesce the fleet and commit the final checkpoint.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (;;) {
    std::unique_ptr<Conn> victim;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      victim = std::move(conns_.back());
      conns_.pop_back();
    }
    if (victim->thread.joinable()) victim->thread.join();
    close_fd(victim->fd);
  }
  if (timer_thread_.joinable()) {
    timer_cv_.notify_all();
    timer_thread_.join();
  }
  shutdown_fleet();
  stopped_.store(true);
}

void Server::shutdown_fleet() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  fleet_.drain();
  // checkpoint_now(), not finish(): the final checkpoint captures mid-window
  // state so a `serve --resume` restart continues the stream bit-identically
  // instead of restarting from a flushed boundary.
  fleet_.checkpoint_now();
}

void Server::serve_connection(int fd) {
  Frame f;
  std::string region;       // bound by HELLO; empty until then
  std::size_t dims = 0;     // fixed at HELLO
  std::uint64_t expected_seq = 0;
  bool health_reported = false;

  while (!stop_requested_.load()) {
    const util::Status st = read_frame(fd, f);
    if (!st.is_ok()) break;  // EOF, truncation, or oversized frame: drop peer

    switch (f.type) {
      case FrameType::kHello:
        handle_hello(fd, f, region, dims, expected_seq);
        break;
      case FrameType::kRecords:
        if (region.empty()) {
          write_ack(fd, util::StatusCode::kFailedPrecondition, 0,
                    "RECORDS before HELLO");
          ::shutdown(fd, SHUT_RDWR);
        } else {
          handle_records(fd, f, region, dims, expected_seq, health_reported);
        }
        break;
      case FrameType::kFlush: {
        if (region.empty()) {
          write_ack(fd, util::StatusCode::kFailedPrecondition, 0, "FLUSH before HELLO");
          break;
        }
        std::uint64_t ingested = 0;
        {
          std::lock_guard<std::mutex> lock(ingest_mu_);
          ingested = fleet_.region_health(region).records_ingested;
        }
        write_ack(fd, util::StatusCode::kOk, ingested);
        break;
      }
      case FrameType::kReport:
        handle_report(fd, f, region);
        break;
      case FrameType::kMetrics:
        handle_metrics(fd);
        break;
      case FrameType::kHealth:
        handle_health(fd);
        break;
      case FrameType::kCheckpoint: {
        {
          std::lock_guard<std::mutex> lock(ingest_mu_);
          fleet_.checkpoint_now();
        }
        write_ack(fd, util::StatusCode::kOk, 0);
        break;
      }
      case FrameType::kShutdown:
        write_ack(fd, util::StatusCode::kOk, 0);
        request_stop();
        return;
      default:
        write_ack(fd, util::StatusCode::kInvalidArgument, 0,
                  "unknown frame type " + std::to_string(static_cast<unsigned>(f.type)));
        break;
    }
  }
}

void Server::handle_hello(int fd, const Frame& f, std::string& region, std::size_t& dims,
                          std::uint64_t& expected_seq) {
  if (!region.empty()) {
    write_ack(fd, util::StatusCode::kFailedPrecondition, 0, "connection already bound");
    return;
  }
  if (f.payload.size() < 5) {
    write_ack(fd, util::StatusCode::kInvalidArgument, 0, "short HELLO payload");
    return;
  }
  const std::uint32_t hello_dims = get_u32le(f.payload.data());
  std::string name(reinterpret_cast<const char*>(f.payload.data()) + 4, f.payload.size() - 4);
  if (hello_dims == 0 || name.empty()) {
    write_ack(fd, util::StatusCode::kInvalidArgument, 0, "HELLO needs dims > 0 and a region name");
    return;
  }

  std::uint64_t offset = 0;  // "stream your trace from this record"
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    bool exists = false;
    for (const auto& existing : fleet_.region_names()) {
      if (existing == name) {
        exists = true;
        break;
      }
    }
    if (exists) {
      // Rebinding a live region (a reconnecting tenant): resume from the
      // records the resident pipeline has already accepted.
      offset = fleet_.region_health(name).records_ingested;
    } else if (cfg_.resume) {
      const auto restored = fleet_.add_region_resumed(name, cfg_.region);
      if (!restored.is_ok()) {
        write_ack(fd, restored.status().code(), 0, restored.status().message());
        return;
      }
      offset = *restored;
    } else {
      fleet_.add_region(name, cfg_.region);
    }
  }

  region = std::move(name);
  dims = hello_dims;
  expected_seq = 0;
  write_ack(fd, util::StatusCode::kOk, offset);
}

void Server::handle_records(int fd, const Frame& f, const std::string& region, std::size_t dims,
                            std::uint64_t& expected_seq, bool& health_reported) {
  if (f.payload.size() < kRecordsHeaderBytes) {
    write_ack(fd, util::StatusCode::kInvalidArgument, 0, "short RECORDS payload");
    ::shutdown(fd, SHUT_RDWR);
    return;
  }
  const std::uint64_t seq = get_u64le(f.payload.data());
  const std::uint32_t count = get_u32le(f.payload.data() + 8);
  const std::size_t record_bytes = binary_trace_record_bytes(dims);
  if (count == 0 || count > cfg_.max_frame_records ||
      f.payload.size() != kRecordsHeaderBytes + count * record_bytes) {
    write_ack(fd, util::StatusCode::kInvalidArgument, 0,
              "RECORDS count/size mismatch (count " + std::to_string(count) + ", payload " +
                  std::to_string(f.payload.size()) + " bytes)");
    ::shutdown(fd, SHUT_RDWR);
    return;
  }

  // Admission control, part 1: per-connection ordering. A frame past the
  // expected sequence number (a client that kept streaming after a reject)
  // is bounced with the sequence to rewind to; a duplicate below it is
  // acknowledged as already-applied so retries are idempotent.
  if (seq != expected_seq) {
    if (seq < expected_seq) return;  // duplicate of an accepted frame
    write_event(fd, util::StatusCode::kFailedPrecondition, expected_seq,
                "out-of-order RECORDS frame");
    return;
  }

  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    // Admission control, part 2: reject-with-status instead of blocking the
    // handler (and with it every other tenant waiting on ingest_mu_) when
    // this region's shard is already at its queue bound.
    if (fleet_.queue_depth(region) >= fleet_.config().max_queue_records) {
      write_event(fd, util::StatusCode::kResourceExhausted, seq, "region queue full");
      return;
    }
    FrameReader reader(dims);
    reader.reset(f.payload.data() + kRecordsHeaderBytes, count);
    const auto sum = fleet_.ingest(region, reader);
    expected_seq = seq + 1;
    if (!sum.status.is_ok() && !health_reported) {
      // One unsolicited health event per connection: the tenant's feed
      // degraded or quarantined its region.
      health_reported = true;
      write_event(fd, sum.status.code(), 0, sum.status.message());
    }
  }
}

void Server::handle_report(int fd, const Frame& f, const std::string& region) {
  if (f.payload.size() < 2) {
    write_ack(fd, util::StatusCode::kInvalidArgument, 0, "short REPORT payload");
    return;
  }
  const bool final = f.payload[0] != 0;
  const bool fleet_scope = f.payload[1] != 0;
  if (!fleet_scope && region.empty()) {
    write_ack(fd, util::StatusCode::kFailedPrecondition, 0, "region REPORT before HELLO");
    return;
  }

  std::string text;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (fleet_scope) {
      if (final) fleet_.finish();
      text = core::to_string(final ? fleet_.diagnose() : fleet_.report_snapshot().report);
    } else {
      if (final) fleet_.finish_region(region);
      const core::FleetReport report =
          final ? fleet_.diagnose() : fleet_.report_snapshot().report;
      const auto it = report.regions.find(region);
      if (it == report.regions.end()) {
        // Quarantined regions carry no diagnosis; surface the health status
        // instead of an empty report.
        write_ack(fd, fleet_.region_health(region).status.code(), 0,
                  fleet_.region_health(region).status.message());
        return;
      }
      text = core::to_string(it->second);
    }
  }
  write_frame(fd, FrameType::kText, text);
}

void Server::handle_metrics(int fd) {
  util::MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    fleet_.drain();
    snap = util::metrics().snapshot();
    for (const auto& [name, st] : fleet_.health()) inject_region_state(snap, name, st);
  }
  write_frame(fd, FrameType::kText, snap.to_json());
}

void Server::handle_health(int fd) {
  std::string text;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    for (const auto& [name, st] : fleet_.health()) {
      text += "region ";
      text += name;
      text += ' ';
      text += core::to_string(st.health);
      text += " records=";
      text += std::to_string(st.records_ingested);
      if (!st.status.is_ok()) {
        text += ' ';
        text += st.status.message();
      }
      text += '\n';
    }
  }
  if (text.empty()) text = "no regions\n";
  write_frame(fd, FrameType::kText, text);
}

}  // namespace sentinel::service
