#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "trace/binary_trace.h"
#include "trace/trace_reader.h"

namespace sentinel::service {

namespace {

util::Status conn_lost(const char* what) {
  return util::Status(util::StatusCode::kUnavailable,
                      std::string("service client: ") + what);
}

}  // namespace

Client::Client(ClientConfig cfg) : cfg_(std::move(cfg)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("service client: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("service client: cannot connect to 127.0.0.1:" +
                             std::to_string(cfg_.port) + ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (cfg_.frame_records == 0) cfg_.frame_records = 4096;
  if (cfg_.flush_every_frames == 0) cfg_.flush_every_frames = 32;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::process_event(const AckBody& body) {
  if (body.code == util::StatusCode::kResourceExhausted ||
      body.code == util::StatusCode::kFailedPrecondition) {
    // Stream control: rewind to the sequence number the server names (the
    // earliest one wins when several rejects pile up).
    if (!rewind_pending_ || body.value < rewind_seq_) rewind_seq_ = body.value;
    rewind_pending_ = true;
    return;
  }
  health_events_.push_back(body);
}

util::Status Client::drain_events() {
  for (;;) {
    pollfd p{fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, 0);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0 || (p.revents & POLLIN) == 0) return util::Status::ok();
    // A frame header is readable; only kEvents arrive unsolicited, and on
    // loopback the rest of the frame follows within the same delivery.
    const util::Status st = read_frame(fd_, scratch_);
    if (!st.is_ok()) return conn_lost("connection lost while streaming");
    if (scratch_.type != FrameType::kEvent) {
      return util::Status(util::StatusCode::kInternal,
                          "service client: unexpected frame while streaming");
    }
    AckBody body;
    if (const auto ps = parse_ack(scratch_.payload, body); !ps.is_ok()) return ps;
    process_event(body);
  }
}

util::Status Client::read_until(FrameType type, Frame& f) {
  for (;;) {
    const util::Status st = read_frame(fd_, f);
    if (!st.is_ok()) return conn_lost("connection lost awaiting reply");
    if (f.type == type) return util::Status::ok();
    if (f.type == FrameType::kEvent) {
      AckBody body;
      if (const auto ps = parse_ack(f.payload, body); !ps.is_ok()) return ps;
      process_event(body);
      continue;
    }
    if (f.type == FrameType::kAck) {
      // An error ack in place of the expected reply.
      AckBody body;
      if (const auto ps = parse_ack(f.payload, body); !ps.is_ok()) return ps;
      return util::Status(body.code, body.message);
    }
    return util::Status(util::StatusCode::kInternal, "service client: unexpected reply frame");
  }
}

util::Result<std::uint64_t> Client::hello(const std::string& region, std::size_t dims) {
  std::vector<unsigned char> payload(4 + region.size());
  put_u32le(payload.data(), static_cast<std::uint32_t>(dims));
  std::memcpy(payload.data() + 4, region.data(), region.size());
  if (const auto st = write_frame(fd_, FrameType::kHello, payload.data(), payload.size());
      !st.is_ok()) {
    return st;
  }
  Frame f;
  if (const auto st = read_until(FrameType::kAck, f); !st.is_ok()) return st;
  AckBody body;
  if (const auto st = parse_ack(f.payload, body); !st.is_ok()) return st;
  if (body.code != util::StatusCode::kOk) return util::Status(body.code, body.message);
  dims_ = dims;
  record_bytes_ = binary_trace_record_bytes(dims);
  pending_base_ = 0;
  return body.value;
}

void Client::seal_current() {
  if (cur_records_ == 0) return;
  put_u64le(cur_.data(), pending_base_ + pending_.size());
  put_u32le(cur_.data() + 8, static_cast<std::uint32_t>(cur_records_));
  pending_.push_back(std::move(cur_));
  cur_.clear();
  cur_records_ = 0;
  ++frames_since_flush_;
}

util::Status Client::transmit(std::size_t index) {
  const auto& frame = pending_[index];
  return write_frame(fd_, FrameType::kRecords, frame.data(), frame.size());
}

util::Status Client::send(std::span<const SensorRecord> recs) {
  if (dims_ == 0) return util::Status(util::StatusCode::kFailedPrecondition, "send before hello");
  for (const SensorRecord& rec : recs) {
    if (cur_.empty()) cur_.resize(kRecordsHeaderBytes);
    cur_.resize(cur_.size() + record_bytes_);
    encode_binary_record(cur_.data() + cur_.size() - record_bytes_, rec);
    if (++cur_records_ == cfg_.frame_records) {
      seal_current();
      // Transmit eagerly so the server overlaps ingest with our encoding;
      // acceptance is settled at the next barrier.
      if (const auto st = transmit(pending_.size() - 1); !st.is_ok()) return st;
      ++send_cursor_;
      if (const auto st = drain_events(); !st.is_ok()) return st;
      if (!rewind_pending_ && frames_since_flush_ < cfg_.flush_every_frames) continue;
      if (const auto st = sync(); !st.is_ok()) return st;
    }
  }
  return util::Status::ok();
}

util::Status Client::flush() {
  if (dims_ == 0) return util::Status(util::StatusCode::kFailedPrecondition, "flush before hello");
  return sync();
}

util::Status Client::sync() {
  seal_current();
  double backoff = cfg_.retry_backoff_seconds;
  for (;;) {
    if (rewind_pending_) {
      // The server names the sequence to resend from; everything below it
      // was accepted and can be dropped.
      rewind_pending_ = false;
      ++rejected_frames_;
      while (!pending_.empty() && pending_base_ < rewind_seq_) {
        pending_.pop_front();
        ++pending_base_;
      }
      send_cursor_ = 0;  // retransmit every still-pending frame
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff = std::min(backoff * 2, 0.05);
      }
    }
    for (; send_cursor_ < pending_.size(); ++send_cursor_) {
      if (const auto st = transmit(send_cursor_); !st.is_ok()) return st;
      if (const auto st = drain_events(); !st.is_ok()) return st;
      if (rewind_pending_) break;
    }
    if (rewind_pending_) continue;

    // Barrier: the ack arrives after the server classified every earlier
    // frame (TCP preserves our send order), so a clean ack means everything
    // pending was accepted.
    if (const auto st = write_frame(fd_, FrameType::kFlush, nullptr, 0); !st.is_ok()) return st;
    Frame f;
    if (const auto st = read_until(FrameType::kAck, f); !st.is_ok()) return st;
    AckBody body;
    if (const auto st = parse_ack(f.payload, body); !st.is_ok()) return st;
    if (body.code != util::StatusCode::kOk) return util::Status(body.code, body.message);
    if (rewind_pending_) continue;  // a reject raced ahead of the ack

    pending_base_ += pending_.size();  // sequence numbers keep counting up
    pending_.clear();
    send_cursor_ = 0;
    frames_since_flush_ = 0;
    return util::Status::ok();
  }
}

util::Result<std::uint64_t> Client::stream_reader(TraceReader& reader, std::size_t skip_records) {
  if (skip_records > 0) reader.skip_records(skip_records);
  std::vector<SensorRecord> batch;
  std::uint64_t sent = 0;
  for (;;) {
    const std::size_t n = reader.read_batch(batch, TraceReader::kDefaultBatch);
    if (n == 0) break;
    if (const auto st = send(std::span<const SensorRecord>(batch.data(), n)); !st.is_ok()) {
      return st;
    }
    sent += n;
  }
  if (const auto st = reader.status(); !st.is_ok()) return st;
  if (const auto st = flush(); !st.is_ok()) return st;
  return sent;
}

util::Result<std::string> Client::report(bool finalize, bool fleet_scope) {
  if (dims_ != 0) {
    if (const auto st = sync(); !st.is_ok()) return st;
  }
  unsigned char payload[2] = {static_cast<unsigned char>(finalize ? 1 : 0),
                              static_cast<unsigned char>(fleet_scope ? 1 : 0)};
  if (const auto st = write_frame(fd_, FrameType::kReport, payload, sizeof payload);
      !st.is_ok()) {
    return st;
  }
  Frame f;
  if (const auto st = read_until(FrameType::kText, f); !st.is_ok()) return st;
  return std::string(reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
}

util::Result<std::string> Client::metrics_json() {
  if (dims_ != 0) {
    if (const auto st = sync(); !st.is_ok()) return st;
  }
  if (const auto st = write_frame(fd_, FrameType::kMetrics, nullptr, 0); !st.is_ok()) return st;
  Frame f;
  if (const auto st = read_until(FrameType::kText, f); !st.is_ok()) return st;
  return std::string(reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
}

util::Result<std::string> Client::health_text() {
  if (dims_ != 0) {
    if (const auto st = sync(); !st.is_ok()) return st;
  }
  if (const auto st = write_frame(fd_, FrameType::kHealth, nullptr, 0); !st.is_ok()) return st;
  Frame f;
  if (const auto st = read_until(FrameType::kText, f); !st.is_ok()) return st;
  return std::string(reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
}

util::Status Client::checkpoint() {
  if (dims_ != 0) {
    if (const auto st = sync(); !st.is_ok()) return st;
  }
  if (const auto st = write_frame(fd_, FrameType::kCheckpoint, nullptr, 0); !st.is_ok()) {
    return st;
  }
  Frame f;
  if (const auto st = read_until(FrameType::kAck, f); !st.is_ok()) return st;
  AckBody body;
  if (const auto st = parse_ack(f.payload, body); !st.is_ok()) return st;
  if (body.code != util::StatusCode::kOk) return util::Status(body.code, body.message);
  return util::Status::ok();
}

util::Status Client::shutdown_server() {
  if (dims_ != 0) {
    if (const auto st = sync(); !st.is_ok()) return st;
  }
  if (const auto st = write_frame(fd_, FrameType::kShutdown, nullptr, 0); !st.is_ok()) return st;
  Frame f;
  if (const auto st = read_until(FrameType::kAck, f); !st.is_ok()) return st;
  AckBody body;
  if (const auto st = parse_ack(f.payload, body); !st.is_ok()) return st;
  if (body.code != util::StatusCode::kOk) return util::Status(body.code, body.message);
  return util::Status::ok();
}

}  // namespace sentinel::service
