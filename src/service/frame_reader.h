// FrameReader: adapts one kRecords frame's payload to the batch TraceReader
// interface, which is what lets the fused decode -> window -> screen
// columnar ingest path run unchanged on network input -- the server feeds
// each accepted frame through FleetMonitor::ingest exactly like a file, so
// the per-region report bytes cannot depend on whether records arrived over
// a socket or from an SNTRB1 trace on disk (test-enforced).
//
// The reader borrows the frame buffer (no copy); reset() repoints it at the
// next frame. Records decode through trace/binary_trace.h's shared record
// codec, so a record is bit-identical to its on-disk form.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "trace/binary_trace.h"
#include "trace/trace_reader.h"

namespace sentinel::service {

class FrameReader final : public TraceReader {
 public:
  /// `dims` is fixed at HELLO time for the connection's lifetime.
  explicit FrameReader(std::size_t dims)
      : dims_(dims), record_bytes_(binary_trace_record_bytes(dims)) {}

  /// Point the reader at `count` encoded records starting at `records`
  /// (count * binary_trace_record_bytes(dims) valid bytes). The buffer must
  /// outlive the pump loop draining this reader.
  void reset(const unsigned char* records, std::size_t count) {
    base_ = records;
    count_ = count;
    next_ = 0;
  }

  std::size_t read_batch(std::vector<SensorRecord>& out, std::size_t max_records) override {
    const std::size_t n = std::min(max_records, count_ - next_);
    if (out.size() < n) out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      decode_binary_record(base_ + (next_ + i) * record_bytes_, dims_, out[i]);
    }
    next_ += n;
    out.resize(n);
    return n;
  }

  std::size_t comment_lines() const override { return 0; }
  std::size_t dims() const override { return dims_; }
  std::size_t record_bytes() const { return record_bytes_; }

 private:
  std::size_t dims_;
  std::size_t record_bytes_;
  const unsigned char* base_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
};

}  // namespace sentinel::service
