#include "service/frame.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace sentinel::service {

namespace {

/// Read exactly `len` bytes; false with `*eof = true` when the connection
/// ended cleanly before the first byte.
bool read_exact(int fd, unsigned char* buf, std::size_t len, bool* eof) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (eof != nullptr) *eof = (n == 0 && got == 0);
    return false;
  }
  return true;
}

bool write_all(int fd, const unsigned char* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a vanished peer is a Status, not a SIGPIPE.
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

util::Status read_frame(int fd, Frame& f, std::size_t max_bytes) {
  unsigned char len_le[4];
  bool eof = false;
  if (!read_exact(fd, len_le, sizeof len_le, &eof)) {
    if (eof) return util::Status(util::StatusCode::kUnavailable, "");
    return util::Status(util::StatusCode::kDataLoss, "service: short frame header");
  }
  const std::uint32_t len = get_u32le(len_le);
  if (len == 0 || len > max_bytes) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "service: frame length " + std::to_string(len) + " out of bounds");
  }
  unsigned char type = 0;
  if (!read_exact(fd, &type, 1, nullptr)) {
    return util::Status(util::StatusCode::kDataLoss, "service: truncated frame");
  }
  f.type = static_cast<FrameType>(type);
  f.payload.resize(len - 1);
  if (len > 1 && !read_exact(fd, f.payload.data(), f.payload.size(), nullptr)) {
    return util::Status(util::StatusCode::kDataLoss, "service: truncated frame");
  }
  return util::Status::ok();
}

util::Status write_frame(int fd, FrameType type, const unsigned char* payload, std::size_t len) {
  unsigned char header[5];
  put_u32le(header, static_cast<std::uint32_t>(len + 1));
  header[4] = static_cast<unsigned char>(type);
  if (!write_all(fd, header, sizeof header) || (len > 0 && !write_all(fd, payload, len))) {
    return util::Status(util::StatusCode::kUnavailable,
                        std::string("service: write failed: ") + std::strerror(errno));
  }
  return util::Status::ok();
}

util::Status write_frame(int fd, FrameType type, const std::string& payload) {
  return write_frame(fd, type, reinterpret_cast<const unsigned char*>(payload.data()),
                     payload.size());
}

namespace {

util::Status write_ack_shaped(int fd, FrameType type, util::StatusCode code,
                              std::uint64_t value, const std::string& message) {
  std::vector<unsigned char> payload(kAckHeaderBytes + message.size());
  payload[0] = static_cast<unsigned char>(code);
  put_u64le(payload.data() + 1, value);
  std::memcpy(payload.data() + kAckHeaderBytes, message.data(), message.size());
  return write_frame(fd, type, payload.data(), payload.size());
}

}  // namespace

util::Status write_ack(int fd, util::StatusCode code, std::uint64_t value,
                       const std::string& message) {
  return write_ack_shaped(fd, FrameType::kAck, code, value, message);
}

util::Status write_event(int fd, util::StatusCode code, std::uint64_t value,
                         const std::string& message) {
  return write_ack_shaped(fd, FrameType::kEvent, code, value, message);
}

util::Status parse_ack(const std::vector<unsigned char>& payload, AckBody& body) {
  if (payload.size() < kAckHeaderBytes) {
    return util::Status(util::StatusCode::kDataLoss, "service: short ack payload");
  }
  body.code = static_cast<util::StatusCode>(payload[0]);
  body.value = get_u64le(payload.data() + 1);
  body.message.assign(reinterpret_cast<const char*>(payload.data()) + kAckHeaderBytes,
                      payload.size() - kAckHeaderBytes);
  return util::Status::ok();
}

}  // namespace sentinel::service
