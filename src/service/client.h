// Client side of the resident fleet service (SNTRS1; service/frame.h).
//
// The streaming contract mirrors the server's admission control: records
// are encoded into sequence-numbered kRecords frames that stay buffered
// client-side until a kFlush barrier acknowledges them. The server may
// reject a frame asynchronously (shard full, out-of-order) with a kEvent
// naming the sequence number to resend from; the client rewinds its buffer
// and retransmits, so a tenant's records reach the region's pipeline
// exactly once and in send order no matter how often it was bounced --
// which is what keeps a served report byte-identical to a batch run of the
// same trace (test-enforced).
//
// Single-threaded: one Client per connection, all calls from one thread.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "service/frame.h"
#include "trace/record.h"
#include "util/status.h"

namespace sentinel {
class TraceReader;
}

namespace sentinel::service {

struct ClientConfig {
  /// Server port on 127.0.0.1 (the service never leaves loopback).
  std::uint16_t port = 0;
  /// Records per kRecords frame. Larger frames amortize syscalls and framing
  /// but hold more memory per unacknowledged frame.
  std::size_t frame_records = 4096;
  /// Sync-barrier cadence: after this many sealed frames a flush() runs
  /// automatically, which is what bounds the resend buffer (at most
  /// flush_every_frames * frame_records records are ever buffered).
  std::size_t flush_every_frames = 32;
  /// Initial wait before retransmitting after a shard-full rejection;
  /// doubles per consecutive rejection up to ~50 ms.
  double retry_backoff_seconds = 0.0005;
};

class Client {
 public:
  /// Connects to 127.0.0.1:cfg.port; throws std::runtime_error on failure.
  explicit Client(ClientConfig cfg);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Bind this connection to `region` with `dims`-attribute records. The
  /// returned value is the record offset to stream from (0 for a fresh
  /// region; the covered count when the server resumed it from a checkpoint
  /// or the region is already live).
  util::Result<std::uint64_t> hello(const std::string& region, std::size_t dims);

  /// Append records to the stream. Encodes into frames, transmits, and runs
  /// the automatic flush cadence; a non-ok status means the connection is
  /// unusable (server gone), not that records were rejected -- rejections
  /// are retried internally.
  util::Status send(std::span<const SensorRecord> recs);

  /// Sync barrier: returns ok only once every frame sent so far has been
  /// accepted into the region (resending through rejections as needed).
  util::Status flush();

  /// Pump `reader` dry through send()/flush(). `skip_records` fast-forwards
  /// past records the server already covers (the hello() return). Returns
  /// the number of records streamed.
  util::Result<std::uint64_t> stream_reader(TraceReader& reader, std::size_t skip_records = 0);

  /// REPORT request: the rendered report text. `finalize` closes partial
  /// windows first (end of stream); `fleet_scope` selects the whole-fleet
  /// rendering over the bound region's. Implies flush().
  util::Result<std::string> report(bool finalize, bool fleet_scope);

  /// METRICS / HEALTH requests (flush() first so the numbers cover
  /// everything sent).
  util::Result<std::string> metrics_json();
  util::Result<std::string> health_text();

  /// Ask the server to commit a checkpoint for every region now.
  util::Status checkpoint();

  /// Ask the server to drain, commit a final checkpoint, and exit.
  util::Status shutdown_server();

  /// Unsolicited health events the server pushed (region degraded or
  /// quarantined mid-stream).
  const std::vector<AckBody>& health_events() const { return health_events_; }

  /// Frames the server bounced with shard-full (admission control) that the
  /// client retransmitted. Observability for tests and the bench.
  std::uint64_t rejected_frames() const { return rejected_frames_; }

 private:
  /// Seal the partial frame (if any) into the pending queue.
  void seal_current();
  /// Transmit pending frames from the send cursor, then run the kFlush
  /// barrier, rewinding and resending until the stream is clean.
  util::Status sync();
  /// Fold one kEvent into rewind/health state.
  void process_event(const AckBody& body);
  /// Drain any already-arrived frames without blocking (only kEvents can
  /// arrive unsolicited).
  util::Status drain_events();
  /// Read frames (blocking) until one of `type` arrives; events on the way
  /// are processed.
  util::Status read_until(FrameType type, Frame& f);
  util::Status transmit(std::size_t index);

  ClientConfig cfg_;
  int fd_ = -1;
  std::size_t dims_ = 0;
  std::size_t record_bytes_ = 0;

  /// Sealed, not-yet-barrier-acknowledged frames; frame i carries sequence
  /// number pending_base_ + i.
  std::deque<std::vector<unsigned char>> pending_;
  std::uint64_t pending_base_ = 0;
  std::size_t send_cursor_ = 0;  // next pending_ index to transmit
  std::size_t frames_since_flush_ = 0;

  /// Partial frame under construction (12-byte header + records so far).
  std::vector<unsigned char> cur_;
  std::size_t cur_records_ = 0;

  bool rewind_pending_ = false;
  std::uint64_t rewind_seq_ = 0;
  std::uint64_t rejected_frames_ = 0;
  std::vector<AckBody> health_events_;

  Frame scratch_;
};

}  // namespace sentinel::service
