// Wire protocol of the resident fleet service ("SNTRS1"; docs/SERVICE.md).
//
// A connection carries a sequence of length-prefixed frames in each
// direction over localhost TCP:
//
//   offset 0  length  u32 LE   bytes that follow (type byte + payload)
//   offset 4  type    u8       FrameType
//   offset 5  payload length-1 bytes
//
// Client -> server:
//   kHello      u32 dims, region name (rest of payload). Binds the
//               connection to a region/tenant; replied with kAck whose
//               value is the number of records the region already covers
//               (0 fresh, the checkpoint offset after serve --resume, the
//               live records_ingested when rebinding an existing region) --
//               i.e. "stream your trace from this offset".
//   kRecords    u64 seq, u32 count, count * binary_trace_record_bytes(dims)
//               bytes of SNTRB1-encoded records (the exact on-disk record
//               payload; see trace/binary_trace.h). Accepted silently when
//               seq is the connection's next expected sequence number and
//               the region's shard has room; otherwise rejected with a
//               kEvent (admission control -- the client rewinds and
//               resends; docs/SERVICE.md#admission-control).
//   kFlush      empty. Sync barrier: replied with kAck (value = region's
//               records_ingested) only after every earlier kRecords frame
//               was accepted or rejected, so a client that saw no kEvent by
//               the time the ack arrives knows everything landed.
//   kReport     u8 final (0 = live snapshot via report_snapshot(), 1 =
//               finalize first), u8 scope (0 = bound region, 1 = whole
//               fleet). Replied with kText holding the report rendering.
//   kMetrics    empty; kText reply with the compact-JSON metrics export.
//   kHealth     empty; kText reply with per-region health lines.
//   kCheckpoint empty; commit a checkpoint for every region now (kAck).
//   kShutdown   empty; kAck, then the server drains every shard, commits a
//               final checkpoint, and exits its accept loop.
//
// Server -> client:
//   kAck        u8 status code, u64 value, message (rest). Reply to hello/
//               flush/checkpoint/shutdown, and the error reply to any
//               request that cannot be served.
//   kEvent      u8 status code, u64 value, message. Unsolicited stream
//               control: kResourceExhausted = shard full, value names the
//               seq to resend from; kFailedPrecondition = out-of-order seq,
//               value names the expected seq; any other code = the region's
//               health changed (value 0, message carries the status).
//   kText       reply payload for report/metrics/health requests.
//
// All integers little-endian. Frames are bounded by kMaxFrameBytes so a
// garbage length prefix cannot request an arbitrary allocation.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sentinel::service {

enum class FrameType : unsigned char {
  kHello = 'H',
  kRecords = 'R',
  kFlush = 'F',
  kReport = 'P',
  kMetrics = 'M',
  kHealth = 'L',
  kCheckpoint = 'C',
  kShutdown = 'S',
  kAck = 'a',
  kEvent = 'e',
  kText = 'p',
};

/// Frame size cap: generous for record batches (a 64 Ki-record frame of
/// 16-dim records is ~8.5 MiB) while keeping a corrupt length prefix from
/// requesting an absurd allocation.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// kRecords payload header: u64 seq + u32 count, before the record bytes.
inline constexpr std::size_t kRecordsHeaderBytes = 12;
/// kAck / kEvent payload header: u8 code + u64 value, before the message.
inline constexpr std::size_t kAckHeaderBytes = 9;

inline void put_u32le(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

inline void put_u64le(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

inline std::uint32_t get_u32le(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t get_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// One decoded frame. The payload buffer is reused across read_frame calls.
struct Frame {
  FrameType type = FrameType::kAck;
  std::vector<unsigned char> payload;
};

/// Read one frame from `fd` (blocking). Non-ok on EOF (kUnavailable with an
/// empty message when the peer closed cleanly between frames), on a short
/// or failed read (kDataLoss), and on a length prefix beyond `max_bytes`
/// (kInvalidArgument). `f.payload` is reused.
util::Status read_frame(int fd, Frame& f, std::size_t max_bytes = kMaxFrameBytes);

/// Write one frame to `fd` (blocking, SIGPIPE suppressed). Non-ok when the
/// peer is gone or the write fails.
util::Status write_frame(int fd, FrameType type, const unsigned char* payload, std::size_t len);
util::Status write_frame(int fd, FrameType type, const std::string& payload);

/// Encode/write the kAck / kEvent shapes (u8 code + u64 value + message).
util::Status write_ack(int fd, util::StatusCode code, std::uint64_t value,
                       const std::string& message = "");
util::Status write_event(int fd, util::StatusCode code, std::uint64_t value,
                         const std::string& message = "");

/// Decoded kAck / kEvent payload.
struct AckBody {
  util::StatusCode code = util::StatusCode::kOk;
  std::uint64_t value = 0;
  std::string message;
};

/// Parse a kAck / kEvent payload; non-ok on a short payload.
util::Status parse_ack(const std::vector<unsigned char>& payload, AckBody& body);

}  // namespace sentinel::service
