// Resident fleet service: a localhost TCP listener that keeps one
// FleetMonitor alive across connections -- the run-forever refactor of the
// batch entry points (see docs/SERVICE.md for the protocol and tenant
// model).
//
// Threading model (docs/CONCURRENCY.md#service):
//   - the accept loop runs on the thread calling run() (or a background
//     thread via start());
//   - each connection gets a handler thread that parses frames;
//   - every FleetMonitor call is serialized under one ingest mutex, which
//     is what preserves the fleet's single-producer contract: the "producer
//     thread" becomes "exactly one producer at a time", and per-region
//     record order is each connection's send order -- so any interleaving
//     of tenants yields the same per-region report bytes as ingest_file of
//     the same records (test-enforced);
//   - an optional timer thread commits incremental checkpoints through the
//     fleet's store every checkpoint_interval_seconds.
//
// Shutdown (request_stop(), a kShutdown frame, or a signal handler calling
// request_stop(), which is async-signal-safe) stops the accept loop,
// unblocks and joins every connection, drains all shards, and commits a
// final checkpoint -- so a restart with ServerConfig::resume continues
// bit-identically (chaos-tested, SIGKILL included).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.h"
#include "core/pipeline.h"
#include "service/frame.h"

namespace sentinel::service {

struct ServerConfig {
  /// Port to bind on 127.0.0.1; 0 = ephemeral (read the choice via port()).
  std::uint16_t port = 0;
  /// The resident fleet (threads, queue bounds, checkpoint_dir, cadence).
  core::FleetConfig fleet;
  /// Per-tenant region configuration: every region a HELLO binds is created
  /// from this one config, so all tenants run the same detection parameters
  /// (initial states included -- which is what makes a served region's
  /// report comparable against a batch run of the same trace).
  core::PipelineConfig region;
  /// Restore regions from fleet.checkpoint_dir's last committed epoch at
  /// HELLO time (serve --resume). The HELLO ack tells the client how many
  /// records the restored state already covers.
  bool resume = false;
  /// Commit incremental checkpoints on a timer thread this often
  /// (0 = record-cadence only via FleetConfig::checkpoint_every_records).
  double checkpoint_interval_seconds = 0.0;
  /// Upper bound on records per kRecords frame (admission sanity check).
  std::size_t max_frame_records = 1u << 16;
};

class Server {
 public:
  /// Binds and listens; throws std::runtime_error when the socket cannot be
  /// set up (port in use, no loopback).
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral choice when cfg.port was 0).
  std::uint16_t port() const { return port_; }

  /// Accept loop; blocks until a shutdown is requested, then tears down
  /// connections, drains the fleet, and commits the final checkpoint.
  void run();

  /// run() on a background thread (tests, benches, the in-process chaos
  /// child). Pair with stop().
  void start();

  /// Request shutdown and, when start() was used, join the background
  /// thread. Safe to call more than once.
  void stop();

  /// Async-signal-safe shutdown request: sets the stop flag and pokes the
  /// accept loop's wake pipe. The caller (run()/stop()) does the actual
  /// teardown.
  void request_stop();

  bool stopped() const { return stopped_.load(); }

  /// The resident fleet -- test/bench access; external callers must not
  /// touch the ingestion API while connections are live.
  core::FleetMonitor& fleet() { return fleet_; }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};  // handler exited; accept loop reaps
  };

  void serve_connection(int fd);
  void handle_hello(int fd, const Frame& f, std::string& region, std::size_t& dims,
                    std::uint64_t& expected_seq);
  void handle_records(int fd, const Frame& f, const std::string& region, std::size_t dims,
                      std::uint64_t& expected_seq, bool& health_reported);
  void handle_report(int fd, const Frame& f, const std::string& region);
  void handle_metrics(int fd);
  void handle_health(int fd);
  void shutdown_fleet();

  ServerConfig cfg_;
  core::FleetMonitor fleet_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_r_ = -1;  // accept-loop wake pipe (request_stop writes wake_w_)
  int wake_w_ = -1;

  /// Serializes every FleetMonitor call across connection handlers, report
  /// requests, the checkpoint timer, and shutdown.
  std::mutex ingest_mu_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};

  std::thread run_thread_;  // only when start() was used

  std::thread timer_thread_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
};

}  // namespace sentinel::service
