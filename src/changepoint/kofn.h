// k-of-n alarm filter: raise a filtered alarm when at least k of the last n
// raw alarms fired; clear when the count drops below k (paper section 3.1's
// simple approach, with k <= n).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "changepoint/alarm_filter.h"

namespace sentinel::changepoint {

class KofNFilter final : public AlarmFilter {
 public:
  KofNFilter(std::size_t k, std::size_t n);

  bool update(bool raw_alarm) override;
  bool active() const override { return active_; }
  void reset() override;
  std::string name() const override;
  void save(serialize::Writer& w) const override;
  void load(serialize::Reader& r) override;

  std::size_t k() const { return k_; }
  std::size_t n() const { return n_; }
  std::size_t count() const { return count_; }

 private:
  std::size_t k_;
  std::size_t n_;
  /// Last-n raw alarms as a fixed ring buffer (head_ = oldest slot). The
  /// filter runs once per sensor per window, so update() stays a handful of
  /// array ops instead of deque bookkeeping.
  std::vector<std::uint8_t> window_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  std::size_t count_ = 0;
  bool active_ = false;
};

AlarmFilterFactory make_kofn_factory(std::size_t k, std::size_t n);

}  // namespace sentinel::changepoint
