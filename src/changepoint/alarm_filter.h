// Alarm-filter interface (paper section 3.1, "Alarm Filtering").
//
// Raw alarms a^j are noisy (the paper measures ~1.5% false-alarm rate on a
// healthy GDI node); a filter turns the Bernoulli raw-alarm stream of one
// sensor into a clean filtered alarm b^j. The paper proposes the simple
// k-of-n rule and points at SPRT and CUSUM for the sophisticated variants;
// all three live here behind one interface.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "util/serialize_fwd.h"

namespace sentinel::changepoint {

class AlarmFilter {
 public:
  virtual ~AlarmFilter() = default;

  /// Feed one raw alarm observation; returns the filtered alarm state after
  /// this step (true = filtered alarm raised).
  virtual bool update(bool raw_alarm) = 0;

  /// Current filtered state without feeding.
  virtual bool active() const = 0;

  virtual void reset() = 0;

  virtual std::string name() const = 0;

  /// Persist / restore the filter's *mutable run state* only -- the
  /// configuration is reconstructed by the factory, never serialized.
  /// Implementations open with a kind tag so restoring into a filter built
  /// from a different AlarmFilterConfig fails loudly (std::runtime_error
  /// from the codec), not silently. Used by the resumable checkpoint
  /// section (see DetectionPipeline::CheckpointScope).
  virtual void save(serialize::Writer& w) const = 0;
  virtual void load(serialize::Reader& r) = 0;
};

using AlarmFilterPtr = std::unique_ptr<AlarmFilter>;

/// Factory signature so the pipeline can stamp one filter per sensor.
using AlarmFilterFactory = std::function<AlarmFilterPtr()>;

}  // namespace sentinel::changepoint
