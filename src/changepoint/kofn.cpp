#include "changepoint/kofn.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/serialize.h"

namespace sentinel::changepoint {

KofNFilter::KofNFilter(std::size_t k, std::size_t n) : k_(k), n_(n), window_(n, 0) {
  if (k == 0 || n == 0 || k > n) throw std::invalid_argument("KofNFilter: need 1 <= k <= n");
}

bool KofNFilter::update(bool raw_alarm) {
  if (filled_ == n_) {
    count_ -= window_[head_];
  } else {
    ++filled_;
  }
  window_[head_] = raw_alarm ? 1 : 0;
  if (raw_alarm) ++count_;
  head_ = head_ + 1 == n_ ? 0 : head_ + 1;
  active_ = count_ >= k_;
  return active_;
}

void KofNFilter::reset() {
  std::fill(window_.begin(), window_.end(), 0);
  head_ = 0;
  filled_ = 0;
  count_ = 0;
  active_ = false;
}

std::string KofNFilter::name() const {
  return "kofn(" + std::to_string(k_) + "/" + std::to_string(n_) + ")";
}

void KofNFilter::save(serialize::Writer& w) const {
  serialize::tag(w, "kofn");
  serialize::put_vector(w, window_);
  serialize::put(w, head_);
  serialize::put(w, filled_);
  serialize::put(w, count_);
  serialize::put(w, active_);
}

void KofNFilter::load(serialize::Reader& r) {
  serialize::expect(r, "kofn");
  auto window = serialize::get_vector<std::uint8_t>(r);
  if (window.size() != n_) {
    throw std::runtime_error("checkpoint: kofn window length " +
                             std::to_string(window.size()) + " does not match configured n=" +
                             std::to_string(n_));
  }
  window_ = std::move(window);
  head_ = serialize::get<std::size_t>(r);
  filled_ = serialize::get<std::size_t>(r);
  count_ = serialize::get<std::size_t>(r);
  active_ = serialize::get_bool(r);
  if (head_ >= n_ || filled_ > n_ || count_ > n_) {
    throw std::runtime_error("checkpoint: kofn state out of range");
  }
}

AlarmFilterFactory make_kofn_factory(std::size_t k, std::size_t n) {
  return [k, n] { return std::make_unique<KofNFilter>(k, n); };
}

}  // namespace sentinel::changepoint
