#include "changepoint/kofn.h"

#include <stdexcept>
#include <string>

namespace sentinel::changepoint {

KofNFilter::KofNFilter(std::size_t k, std::size_t n) : k_(k), n_(n) {
  if (k == 0 || n == 0 || k > n) throw std::invalid_argument("KofNFilter: need 1 <= k <= n");
}

bool KofNFilter::update(bool raw_alarm) {
  window_.push_back(raw_alarm);
  if (raw_alarm) ++count_;
  if (window_.size() > n_) {
    if (window_.front()) --count_;
    window_.pop_front();
  }
  active_ = count_ >= k_;
  return active_;
}

void KofNFilter::reset() {
  window_.clear();
  count_ = 0;
  active_ = false;
}

std::string KofNFilter::name() const {
  return "kofn(" + std::to_string(k_) + "/" + std::to_string(n_) + ")";
}

AlarmFilterFactory make_kofn_factory(std::size_t k, std::size_t n) {
  return [k, n] { return std::make_unique<KofNFilter>(k, n); };
}

}  // namespace sentinel::changepoint
