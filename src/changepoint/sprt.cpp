#include "changepoint/sprt.h"

#include <cmath>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::changepoint {

SprtFilter::SprtFilter(SprtConfig cfg) : cfg_(cfg) {
  const bool probs_ok = cfg.p0 > 0.0 && cfg.p0 < 1.0 && cfg.p1 > 0.0 && cfg.p1 < 1.0 &&
                        cfg.p1 > cfg.p0;
  const bool errors_ok = cfg.alpha > 0.0 && cfg.alpha < 1.0 && cfg.beta > 0.0 && cfg.beta < 1.0;
  if (!probs_ok || !errors_ok) throw std::invalid_argument("SprtFilter: bad configuration");

  step_on_ = std::log(cfg.p1 / cfg.p0);
  step_off_ = std::log((1.0 - cfg.p1) / (1.0 - cfg.p0));
  upper_ = std::log((1.0 - cfg.beta) / cfg.alpha);
  lower_ = std::log(cfg.beta / (1.0 - cfg.alpha));
}

bool SprtFilter::update(bool raw_alarm) {
  llr_ += raw_alarm ? step_on_ : step_off_;
  if (llr_ >= upper_) {
    active_ = true;
    llr_ = 0.0;
    ++decisions_;
  } else if (llr_ <= lower_) {
    active_ = false;
    llr_ = 0.0;
    ++decisions_;
  }
  return active_;
}

void SprtFilter::reset() {
  llr_ = 0.0;
  active_ = false;
  decisions_ = 0;
}

void SprtFilter::save(serialize::Writer& w) const {
  serialize::tag(w, "sprt");
  serialize::put(w, llr_);
  serialize::put(w, active_);
  serialize::put(w, decisions_);
}

void SprtFilter::load(serialize::Reader& r) {
  serialize::expect(r, "sprt");
  llr_ = serialize::get<double>(r);
  active_ = serialize::get_bool(r);
  decisions_ = serialize::get<std::size_t>(r);
}

AlarmFilterFactory make_sprt_factory(SprtConfig cfg) {
  return [cfg] { return std::make_unique<SprtFilter>(cfg); };
}

}  // namespace sentinel::changepoint
