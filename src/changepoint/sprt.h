// Wald's Sequential Probability Ratio Test over a Bernoulli raw-alarm stream
// (Basseville & Nikiforov, cited by the paper as the sophisticated
// alternative to k-of-n filtering).
//
// H0: raw alarms fire with the nominal false-alarm rate p0 (healthy sensor).
// H1: raw alarms fire with rate p1 (faulty/malicious sensor), p1 > p0.
//
// The log-likelihood ratio accumulates per observation and is compared with
// thresholds a = ln((1-beta)/alpha) and b = ln(beta/(1-alpha)) derived from
// the designed error rates. A decision restarts the test; the filtered alarm
// holds the last decision (H1 = alarm active) so that the filter behaves as a
// latch that SPRT re-evaluates continuously.

#pragma once

#include "changepoint/alarm_filter.h"

namespace sentinel::changepoint {

struct SprtConfig {
  double p0 = 0.02;     // nominal false-alarm probability under H0
  double p1 = 0.50;     // raw-alarm probability under H1
  double alpha = 0.01;  // designed false-positive rate
  double beta = 0.01;   // designed false-negative rate
};

class SprtFilter final : public AlarmFilter {
 public:
  explicit SprtFilter(SprtConfig cfg);

  bool update(bool raw_alarm) override;
  bool active() const override { return active_; }
  void reset() override;
  std::string name() const override { return "sprt"; }
  void save(serialize::Writer& w) const override;
  void load(serialize::Reader& r) override;

  double log_likelihood_ratio() const { return llr_; }
  /// Decisions made since construction/reset (for average-run-length stats).
  std::size_t decisions() const { return decisions_; }

 private:
  SprtConfig cfg_;
  double step_on_;    // LLR increment when a raw alarm fires
  double step_off_;   // LLR increment when it does not
  double upper_;      // accept H1 at llr >= upper_
  double lower_;      // accept H0 at llr <= lower_
  double llr_ = 0.0;
  bool active_ = false;
  std::size_t decisions_ = 0;
};

AlarmFilterFactory make_sprt_factory(SprtConfig cfg);

}  // namespace sentinel::changepoint
