// Two-sided Bernoulli CUSUM alarm filter (Page's test; Basseville &
// Nikiforov). The onset chart accumulates evidence for H1 (sensor faulty)
// while the alarm is clear; once the alarm is raised, a mirrored recovery
// chart accumulates evidence for H0 and clears the alarm -- giving CUSUM both
// fast onset detection and a principled clear condition.

#pragma once

#include "changepoint/alarm_filter.h"

namespace sentinel::changepoint {

struct CusumConfig {
  double p0 = 0.02;      // raw-alarm rate under H0
  double p1 = 0.50;      // raw-alarm rate under H1
  double threshold = 4.0;  // decision threshold h on the cumulative LLR
};

class CusumFilter final : public AlarmFilter {
 public:
  explicit CusumFilter(CusumConfig cfg);

  bool update(bool raw_alarm) override;
  bool active() const override { return active_; }
  void reset() override;
  std::string name() const override { return "cusum"; }
  void save(serialize::Writer& w) const override;
  void load(serialize::Reader& r) override;

  double statistic() const { return s_; }

 private:
  CusumConfig cfg_;
  double on_step_true_, on_step_false_;    // LLR(H1:H0) increments
  double off_step_true_, off_step_false_;  // LLR(H0:H1) increments
  double s_ = 0.0;
  bool active_ = false;
};

AlarmFilterFactory make_cusum_factory(CusumConfig cfg);

}  // namespace sentinel::changepoint
