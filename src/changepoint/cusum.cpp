#include "changepoint/cusum.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::changepoint {

CusumFilter::CusumFilter(CusumConfig cfg) : cfg_(cfg) {
  const bool probs_ok = cfg.p0 > 0.0 && cfg.p0 < 1.0 && cfg.p1 > 0.0 && cfg.p1 < 1.0 &&
                        cfg.p1 > cfg.p0;
  if (!probs_ok || !(cfg.threshold > 0.0)) throw std::invalid_argument("CusumFilter: bad config");

  on_step_true_ = std::log(cfg.p1 / cfg.p0);
  on_step_false_ = std::log((1.0 - cfg.p1) / (1.0 - cfg.p0));
  off_step_true_ = -on_step_true_;
  off_step_false_ = -on_step_false_;
}

bool CusumFilter::update(bool raw_alarm) {
  if (!active_) {
    s_ = std::max(0.0, s_ + (raw_alarm ? on_step_true_ : on_step_false_));
    if (s_ >= cfg_.threshold) {
      active_ = true;
      s_ = 0.0;
    }
  } else {
    s_ = std::max(0.0, s_ + (raw_alarm ? off_step_true_ : off_step_false_));
    if (s_ >= cfg_.threshold) {
      active_ = false;
      s_ = 0.0;
    }
  }
  return active_;
}

void CusumFilter::reset() {
  s_ = 0.0;
  active_ = false;
}

void CusumFilter::save(serialize::Writer& w) const {
  serialize::tag(w, "cusum");
  serialize::put(w, s_);
  serialize::put(w, active_);
}

void CusumFilter::load(serialize::Reader& r) {
  serialize::expect(r, "cusum");
  s_ = serialize::get<double>(r);
  active_ = serialize::get_bool(r);
}

AlarmFilterFactory make_cusum_factory(CusumConfig cfg) {
  return [cfg] { return std::make_unique<CusumFilter>(cfg); };
}

}  // namespace sentinel::changepoint
