#include "core/classifier.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/vecn.h"

namespace sentinel::core {

namespace {

using hmm::StateId;

/// Dominant column index of a row, by emission mass.
std::size_t argmax_row(const Matrix& b, std::size_t r) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < b.cols(); ++c) {
    if (b(r, c) > b(r, best)) best = c;
  }
  return best;
}

struct FitResult {
  double parameter = 0.0;     // g for calibration, k for additive
  double residual_var = 0.0;  // variance of residuals around the fit
};

/// Least-squares x_e = g * x_c.
FitResult fit_gain(const std::vector<double>& xc, const std::vector<double>& xe) {
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xc.size(); ++i) {
    sxx += xc[i] * xc[i];
    sxy += xc[i] * xe[i];
  }
  FitResult f;
  f.parameter = sxx > 1e-12 ? sxy / sxx : 1.0;
  // Mean-square residual (biased) -- we care about magnitude, not estimator
  // properties.
  double ms = 0.0;
  for (std::size_t i = 0; i < xc.size(); ++i) {
    const double r = xe[i] - f.parameter * xc[i];
    ms += r * r;
  }
  f.residual_var = ms / static_cast<double>(xc.size());
  return f;
}

/// Least-squares x_e = x_c + k.
FitResult fit_offset(const std::vector<double>& xc, const std::vector<double>& xe) {
  FitResult f;
  double sum = 0.0;
  for (std::size_t i = 0; i < xc.size(); ++i) sum += xe[i] - xc[i];
  f.parameter = sum / static_cast<double>(xc.size());
  double ms = 0.0;
  for (std::size_t i = 0; i < xc.size(); ++i) {
    const double r = xe[i] - xc[i] - f.parameter;
    ms += r * r;
  }
  f.residual_var = ms / static_cast<double>(xc.size());
  return f;
}

}  // namespace

FilteredEmission filter_emission(const hmm::OnlineHmm& m,
                                 const std::vector<StateId>& hidden_keep, bool drop_bottom,
                                 const ClassifierConfig& cfg) {
  FilteredEmission out;
  // Structural analysis runs on the decreasing-gain (long-run frequency)
  // estimate: the fixed-gain EMA with gamma = 0.9 only remembers the last
  // couple of windows, so intermittent signatures (a duty-cycled Creation
  // attack splitting a row) would oscillate instead of accumulating.
  const Matrix full = m.emission_matrix_avg();
  const auto& hidden_ids = m.hidden_states();
  const auto& symbol_ids = m.symbols();

  const std::set<StateId> keep(hidden_keep.begin(), hidden_keep.end());

  std::vector<std::size_t> col_idx;
  for (std::size_t c = 0; c < symbol_ids.size(); ++c) {
    if (drop_bottom && symbol_ids[c] == hmm::kBottomSymbol) continue;
    col_idx.push_back(c);
  }
  if (col_idx.empty()) return out;

  // Row filter: requested ids, and enough mass left after dropping bottom.
  std::vector<std::size_t> row_idx;
  for (std::size_t r = 0; r < hidden_ids.size(); ++r) {
    if (!keep.empty() && keep.find(hidden_ids[r]) == keep.end()) continue;
    double mass = 0.0;
    for (const std::size_t c : col_idx) mass += full(r, c);
    if (mass < cfg.min_row_mass) continue;
    row_idx.push_back(r);
  }
  if (row_idx.empty()) return out;

  // Build and renormalize.
  Matrix b(row_idx.size(), col_idx.size());
  for (std::size_t r = 0; r < row_idx.size(); ++r) {
    for (std::size_t c = 0; c < col_idx.size(); ++c) b(r, c) = full(row_idx[r], col_idx[c]);
  }
  b.normalize_rows();

  // Column filter: drop spurious symbols, renormalize again.
  std::vector<std::size_t> strong_cols;
  for (std::size_t c = 0; c < b.cols(); ++c) {
    double mass = 0.0;
    for (std::size_t r = 0; r < b.rows(); ++r) mass += b(r, c);
    if (mass >= cfg.min_symbol_mass) strong_cols.push_back(c);
  }
  if (strong_cols.empty()) return out;
  Matrix b2(b.rows(), strong_cols.size());
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < strong_cols.size(); ++c) b2(r, c) = b(r, strong_cols[c]);
  }
  b2.normalize_rows();

  out.b = std::move(b2);
  for (const std::size_t r : row_idx) out.hidden.push_back(hidden_ids[r]);
  for (const std::size_t c : strong_cols) out.symbols.push_back(symbol_ids[col_idx[c]]);
  return out;
}

OrthogonalityReport orthogonality(const FilteredEmission& f, const ClassifierConfig& cfg) {
  OrthogonalityReport rep;
  const Matrix& b = f.b;
  if (b.rows() == 0 || b.cols() == 0) return rep;

  // Cross products are normalized to cosine similarity: structural sharing
  // (two rows emitting the same symbol, one row split over two symbols)
  // makes the vectors near-proportional (cosine ~1) regardless of how the
  // probability mass divides, while boundary leakage between adjacent
  // clusters stays small. Self products stay raw: they measure row
  // concentration (the paper's "> 0.8 for i = j").
  for (std::size_t i = 0; i < b.rows(); ++i) {
    rep.min_row_self = std::min(rep.min_row_self, b.row_dot(i, i));
    for (std::size_t j = i + 1; j < b.rows(); ++j) {
      const double denom = std::sqrt(b.row_dot(i, i) * b.row_dot(j, j));
      const double cross = denom > 0.0 ? b.row_dot(i, j) / denom : 0.0;
      rep.max_row_cross = std::max(rep.max_row_cross, cross);
      if (cross > cfg.offdiag_max) rep.row_violations.emplace_back(f.hidden[i], f.hidden[j]);
    }
  }
  for (std::size_t i = 0; i < b.cols(); ++i) {
    rep.min_col_self = std::min(rep.min_col_self, b.col_dot(i, i));
    for (std::size_t j = i + 1; j < b.cols(); ++j) {
      const double denom = std::sqrt(b.col_dot(i, i) * b.col_dot(j, j));
      const double cross = denom > 0.0 ? b.col_dot(i, j) / denom : 0.0;
      rep.max_col_cross = std::max(rep.max_col_cross, cross);
      if (cross > cfg.offdiag_max) rep.col_violations.emplace_back(f.symbols[i], f.symbols[j]);
    }
  }
  rep.rows_orthogonal = rep.max_row_cross <= cfg.offdiag_max;
  rep.cols_orthogonal = rep.max_col_cross <= cfg.offdiag_max;
  return rep;
}

Diagnosis classify_network(const hmm::OnlineHmm& m_co,
                           const std::vector<StateId>& significant_hidden,
                           const CentroidLookup& centroid, const ClassifierConfig& cfg,
                           std::size_t implicated_sensors) {
  Diagnosis d;
  const FilteredEmission f = filter_emission(m_co, significant_hidden, false, cfg);
  if (f.empty()) {
    d.explanation = "M_CO has no significant structure yet";
    return d;
  }
  d.co = orthogonality(f, cfg);

  if (implicated_sensors < cfg.min_implicated_sensors) {
    // No coalition: whatever distortion B^CO carries is the bounded bias a
    // single faulty sensor imposes on the network mean. Leave the diagnosis
    // to the per-sensor B^CE analysis.
    d.verdict = Verdict::kNormal;
    d.kind = AnomalyKind::kNone;
    d.explanation = d.co.rows_orthogonal && d.co.cols_orthogonal
                        ? "B^CO orthogonal"
                        : "B^CO distorted but no coalition: single-sensor bias, deferred to B^CE";
    return d;
  }

  const bool row_viol = !d.co.rows_orthogonal;
  // A column violation witnesses Dynamic Creation only when it involves a
  // *fabricated* observable -- a symbol that is not itself one of the
  // correct states. When both columns are correct states, the coupling is
  // the residue of a many-to-one collapse (Deletion): the deleted state's
  // row leaks a little self-emission near the attack region boundary, and
  // that residual column is near-parallel to the hold column.
  const std::set<StateId> hidden_set(f.hidden.begin(), f.hidden.end());
  bool col_viol = false;
  for (const auto& [si, sj] : d.co.col_violations) {
    if (hidden_set.find(si) == hidden_set.end() || hidden_set.find(sj) == hidden_set.end()) {
      col_viol = true;
      break;
    }
  }
  if (row_viol && col_viol) {
    d.verdict = Verdict::kAttack;
    d.kind = AnomalyKind::kMixedAttack;
    d.explanation = "rows and columns of B^CO both non-orthogonal";
    return d;
  }
  if (col_viol) {
    d.verdict = Verdict::kAttack;
    d.kind = AnomalyKind::kDynamicCreation;
    d.explanation = "a correct state is associated with multiple observable states";
    return d;
  }
  if (row_viol) {
    d.verdict = Verdict::kAttack;
    d.kind = AnomalyKind::kDynamicDeletion;
    d.explanation = "multiple correct states are associated with one observable state";
    return d;
  }

  // Orthogonal: Dynamic Change manifests as a one-to-one c -> o mapping with
  // different attributes.
  for (std::size_t r = 0; r < f.b.rows(); ++r) {
    const std::size_t c = argmax_row(f.b, r);
    const StateId h_id = f.hidden[r];
    const StateId s_id = f.symbols[c];
    if (h_id == s_id) continue;
    const auto hc = centroid(h_id);
    const auto sc = centroid(s_id);
    if (!hc || !sc) continue;
    if (vecn::dist(*hc, *sc) > cfg.change_attr_tol) d.changed_states.emplace_back(h_id, s_id);
  }
  if (!d.changed_states.empty()) {
    d.verdict = Verdict::kAttack;
    d.kind = AnomalyKind::kDynamicChange;
    d.explanation = "correct states observed with different attributes";
    return d;
  }

  d.verdict = Verdict::kNormal;
  d.kind = AnomalyKind::kNone;
  d.explanation = "B^CO orthogonal and attribute-consistent";
  return d;
}

Diagnosis classify_sensor(const hmm::OnlineHmm& m_ce, const Diagnosis& network,
                          bool coalition_member,
                          const std::vector<hmm::StateId>& significant_hidden,
                          const CentroidLookup& centroid, const ClassifierConfig& cfg) {
  Diagnosis d;
  d.co = network.co;

  if (network.verdict == Verdict::kAttack && coalition_member) {
    d.verdict = Verdict::kAttack;
    d.kind = network.kind;
    d.changed_states = network.changed_states;
    d.explanation = "sensor implicated in network-level attack";
    return d;
  }

  const FilteredEmission f =
      filter_emission(m_ce, significant_hidden, /*drop_bottom=*/true, cfg);
  if (f.empty()) {
    d.verdict = Verdict::kNormal;
    d.kind = AnomalyKind::kNone;
    d.explanation = "track carries no informative error observations";
    return d;
  }
  d.ce = orthogonality(f, cfg);

  // --- Stuck-at: one column collects (approximately) all rows' mass. ---
  std::size_t best_col = 0;
  std::size_t best_count = 0;
  for (std::size_t c = 0; c < f.b.cols(); ++c) {
    std::size_t count = 0;
    for (std::size_t r = 0; r < f.b.rows(); ++r) {
      if (f.b(r, c) >= cfg.stuck_min) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best_col = c;
    }
  }
  const auto required = std::max<std::size_t>(
      cfg.stuck_min_states,
      static_cast<std::size_t>(std::ceil(0.8 * static_cast<double>(f.b.rows()))));
  if (f.b.rows() >= cfg.stuck_min_states && best_count >= required) {
    d.verdict = Verdict::kError;
    d.kind = AnomalyKind::kStuckAt;
    d.stuck_state = f.symbols[best_col];
    if (const auto c = centroid(*d.stuck_state)) d.stuck_value = *c;
    std::ostringstream os;
    os << best_count << "/" << f.b.rows() << " correct states emit the same error state";
    d.explanation = os.str();
    return d;
  }

  // --- One-to-one c <-> e: calibration vs additive. ---
  // Pair each sufficiently concentrated correct-state row with its dominant
  // error state; weak rows (transitional states whose error images scatter)
  // are left out of the pairing, like the paper's own Table 5, whose rows
  // carry only 0.5-0.9 of their mass on the paired state.
  {
    std::vector<std::pair<AttrVec, AttrVec>> pairs;  // (x_c, x_e)
    std::set<std::size_t> used_cols;
    bool distinct = true;
    for (std::size_t r = 0; r < f.b.rows(); ++r) {
      const std::size_t c = argmax_row(f.b, r);
      if (f.b(r, c) < cfg.pair_min) continue;
      if (!used_cols.insert(c).second) distinct = false;
      const auto cc = centroid(f.hidden[r]);
      const auto ec = centroid(f.symbols[c]);
      if (cc && ec) pairs.emplace_back(*cc, *ec);
    }
    if (distinct && pairs.size() >= cfg.min_pairs) {
      const std::size_t dims = pairs.front().first.size();
      double total_cal = 0.0, total_add = 0.0;
      bool cal_ok = true, add_ok = true;
      AttrVec gains(dims), offsets(dims);
      for (std::size_t a = 0; a < dims; ++a) {
        std::vector<double> xc, xe;
        for (const auto& [pc, pe] : pairs) {
          xc.push_back(pc[a]);
          xe.push_back(pe[a]);
        }
        const FitResult cal = fit_gain(xc, xe);
        const FitResult add = fit_offset(xc, xe);
        gains[a] = cal.parameter;
        offsets[a] = add.parameter;
        total_cal += cal.residual_var;
        total_add += add.residual_var;
        // Scale-aware acceptance: absolute floor plus a bound relative to
        // the attribute's span across the paired correct states.
        const auto [lo, hi] = std::minmax_element(xc.begin(), xc.end());
        const double rel = cfg.rel_fit_tol * (*hi - *lo);
        const double ceiling = std::max(cfg.diff_var_max, rel * rel);
        cal_ok = cal_ok && cal.residual_var <= ceiling;
        add_ok = add_ok && add.residual_var <= ceiling;
      }
      if (cal_ok && (total_cal <= total_add || !add_ok)) {
        d.verdict = Verdict::kError;
        d.kind = AnomalyKind::kCalibration;
        d.gain = gains;
        d.evidence_var = total_cal / static_cast<double>(dims);
        d.explanation = "constant attribute ratio between correct and error states";
        return d;
      }
      if (add_ok) {
        d.verdict = Verdict::kError;
        d.kind = AnomalyKind::kAdditive;
        d.offset = offsets;
        d.evidence_var = total_add / static_cast<double>(dims);
        d.explanation = "constant attribute difference between correct and error states";
        return d;
      }
    }
  }

  // --- Neither signature: diffuse emissions read as random noise, anything
  // else is an unknown error (the network-level Dynamic Change re-check
  // already happened in classify_network and came back clean). ---
  d.verdict = Verdict::kError;
  if (d.ce->min_row_self < cfg.diag_min && d.ce->rows_orthogonal) {
    d.kind = AnomalyKind::kRandomNoise;
    d.explanation = "diffuse B^CE rows: error states scatter per correct state";
  } else {
    d.kind = AnomalyKind::kUnknownError;
    d.explanation = "B^CE matches no known error signature";
  }
  return d;
}

}  // namespace sentinel::core
