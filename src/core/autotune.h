// Data-driven parameter suggestion.
//
// The paper's validity argument leans on "the system parameters [being]
// properly tuned (e.g., the Model State Identification module does not
// generate too many model states)" without saying how. This module derives
// the clustering thresholds from the trace itself:
//
//   noise_scale    -- how far same-sensor readings scatter within a window
//                     (the measurement-noise floor; merging below this is
//                     mandatory or noise mints states);
//   state_spacing  -- typical distance between the environment's regimes
//                     (median nearest-neighbor distance among k-means
//                     centroids of the per-window means);
//   merge          ~ max(4 x noise, spacing / 3): comfortably above noise,
//                     comfortably below the regime spacing;
//   spawn          ~ spacing / 2, capped below the spacing so genuinely new
//                     regimes (faults!) still get their own state and
//                     bounded above merge.
//
// suggest_configuration() returns the evidence alongside the suggestion, so
// an operator can sanity-check the two scales are actually separated; if
// they are not (spacing < a few noise units), the method's assumptions are
// questionable for this deployment and `scales_separated` says so.

#pragma once

#include <cstddef>
#include <vector>

#include "core/config.h"
#include "trace/record.h"
#include "util/rng.h"

namespace sentinel::core {

struct TuningReport {
  double noise_scale = 0.0;    // median within-window per-sensor RMS spread
  double state_spacing = 0.0;  // median nearest-neighbor centroid distance
  bool scales_separated = false;  // spacing > 4 x noise
  ModelStateConfig suggested;
  std::vector<AttrVec> initial_states;  // k-means centroids over window means
};

/// Analyze a (presumed mostly-healthy) trace and suggest clustering
/// parameters plus the initial state set S_o. Throws std::invalid_argument
/// when the trace is too short to windowize into at least k nonempty
/// windows.
TuningReport suggest_configuration(const std::vector<SensorRecord>& records,
                                   double window_seconds, std::size_t k, Rng& rng);

}  // namespace sentinel::core
