// Pipeline configuration, mirroring the paper's Table 1 plus the tuning
// knobs sections 3.1 and 3.4 describe in prose (clustering merge/spawn
// thresholds, alarm-filter choice, classifier orthogonality thresholds).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "screen/screen.h"
#include "trace/record.h"

namespace sentinel::core {

enum class FilterKind {
  kKofN,   // simple k-of-n rule (paper's default suggestion)
  kSprt,   // Wald sequential probability ratio test
  kCusum,  // Page's cumulative sum
};

struct ModelStateConfig {
  /// Learning factor for the centroid EMA update, eq. (6). Paper: 0.10.
  double alpha = 0.10;
  /// Merge two model states closer than this ("merging two states that are
  /// too close to each other into a single state", section 3.1). Sized so
  /// the surviving states are spaced comfortably wider than the observable
  /// bias a single faulty sensor can induce on the network mean (~attribute
  /// range / K).
  double merge_threshold = 6.0;
  /// Spawn a new state when an observation is farther than this from its
  /// nearest state ("creating a new state s_{M+1} = p_j").
  double spawn_threshold = 9.0;
  /// Hard cap so pathological data cannot blow up the state set.
  std::size_t max_states = 16;
};

struct ClassifierConfig {
  /// Orthogonality thresholds. diag_min bounds the raw self-product
  /// sum_k b_ik^2 (row concentration; the paper's "> 0.8 for i = j").
  /// Cross products are evaluated as *cosine similarity* (normalized by the
  /// vector norms): genuine structural sharing -- a Deletion collapsing two
  /// rows onto one symbol, a Creation splitting one row over two symbols --
  /// yields near-proportional vectors (cosine ~1), while the boundary
  /// leakage that windowed clustering inevitably produces stays small.
  double diag_min = 0.8;
  double offdiag_max = 0.35;
  /// Stuck-at: minimum emission mass a row must put on the shared column.
  double stuck_min = 0.6;
  /// Stuck-at: at least this many distinct hidden states must share the
  /// column (one pair alone cannot witness "independent of the correct
  /// state").
  std::size_t stuck_min_states = 2;
  /// Calibration/Additive: a correct-state row takes part in the
  /// (correct, error) pairing when its dominant error symbol carries at
  /// least pair_min of the row's mass (the paper pairs states the same way
  /// -- its Table 5 rows are only ~0.5-0.9 dominant); at least min_pairs
  /// such rows with *distinct* dominants are needed for the constant
  /// ratio/difference test.
  double pair_min = 0.6;
  std::size_t min_pairs = 2;
  /// Dynamic Change: attribute distance beyond which a correct state and its
  /// observable image count as "different attributes".
  double change_attr_tol = 4.0;
  /// Hidden states/symbols with occupancy below this fraction are ignored
  /// during structural analysis (the paper's spurious states).
  double min_occupancy = 0.02;
  /// Emission-matrix filtering: rows keeping less than this mass after the
  /// bottom symbol is removed carry no error information and are dropped;
  /// columns with less total mass than this are treated as spurious symbols.
  double min_row_mass = 0.15;
  double min_symbol_mass = 0.20;
  /// Calibration vs additive: a one-parameter fit (x_e = g*x_c or
  /// x_e = x_c + k) is accepted when its per-attribute residual variance
  /// stays below max(diff_var_max, (rel_fit_tol * span(x_c))^2) -- an
  /// absolute floor for near-constant attributes plus a scale-relative bound
  /// so the test works for 20-unit temperatures and 300-unit latencies
  /// alike. When both models fit, the smaller total residual wins.
  double diff_var_max = 2.0;
  double rel_fit_tol = 0.15;
  /// A sensor's track must have seen at least this many anomalous windows
  /// before its B^CE is considered diagnosable.
  std::size_t min_track_anomalies = 3;
  /// Attack verdicts from B^CO require a *coordinated coalition*: at least
  /// this many implicated sensors whose error tracks share the same dominant
  /// error state (coalition members inject the same steering value, so their
  /// tracks coincide; independently faulty sensors do not). A single sensor
  /// can steer the network mean by at most (attribute range) / K -- the bias
  /// regime of an accidental error -- and the paper's attack experiments
  /// compromise one-third of the network. Coalition-free distortions of
  /// B^CO are classified through B^CE instead.
  std::size_t min_implicated_sensors = 2;
};

struct AlarmFilterConfig {
  FilterKind kind = FilterKind::kKofN;
  // k-of-n parameters.
  std::size_t k = 3;
  std::size_t n = 5;
  // SPRT / CUSUM parameters.
  double p0 = 0.05;
  double p1 = 0.60;
  double sprt_alpha = 0.01;
  double sprt_beta = 0.01;
  double cusum_threshold = 4.0;
};

struct PipelineConfig {
  /// Observation window w. The paper uses 12 samples x 5 minutes = 1 hour.
  double window_seconds = 12.0 * 5.0 * kSecondsPerMinute;
  /// Initial model states S_o ("selected randomly or based on historical
  /// data"; the paper runs an offline clustering for the initial 6 states).
  std::vector<AttrVec> initial_states;
  /// HMM learning factors (paper Table 1: beta = gamma = 0.90).
  double beta = 0.90;
  double gamma = 0.90;

  ModelStateConfig model_states;
  AlarmFilterConfig alarm_filter;
  ClassifierConfig classifier;

  /// Windows with fewer surviving sensors than this are skipped (cannot form
  /// a meaningful majority).
  std::size_t min_sensors_per_window = 3;

  /// Keep the per-window WindowSummary series (history(), the input to
  /// core/smoothing.h and the figure benches). The append is the hot path's
  /// only steady-state allocation; deployments that need just diagnoses --
  /// e.g. fleet regions at scale -- can turn it off, leaving history() empty.
  /// Detection and diagnosis results are unaffected either way.
  bool record_history = true;

  /// Retain each window's raw attribute vectors and per-sensor sample map in
  /// the ObservationSet handed to the stages (WindowerConfig::keep_raw).
  /// The pipeline consumes only the flat rep arrays and the cached window
  /// mean, so this is off by default; with it off the fused ingest path is
  /// allocation-free per record at steady state. Turn it on when external
  /// window consumers need ObservationSet::raw / per_sensor. Detection,
  /// diagnosis, and report bytes are identical either way.
  bool keep_raw = false;

  /// First-tier screening (screen/screen.h). The default mode (off) takes
  /// exactly the historical code path: no screen state is allocated, no
  /// screen work runs per window, and checkpoints carry no screen section --
  /// reports and checkpoint bytes are identical to a build without the tier.
  /// kScreen gates the per-sensor mapping/alarm/HMM stages behind the cheap
  /// screens; kFull runs the screens observationally next to the full path.
  screen::ScreenConfig screen;

  /// Record coarse per-stage wall-clock histograms (spawn scan, state
  /// identification, alarm filtering, HMM updates, centroid update) into the
  /// process-global metrics registry. Off by default: with the toggle off the
  /// pipeline takes no clock reads at all, so the hot path is untouched.
  /// Purely observational -- reports and checkpoints are byte-identical
  /// either way.
  bool stage_timers = false;
};

}  // namespace sentinel::core
