#include "core/autotune.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/offline_kmeans.h"
#include "trace/windower.h"
#include "util/stats.h"
#include "util/vecn.h"

namespace sentinel::core {

TuningReport suggest_configuration(const std::vector<SensorRecord>& records,
                                   double window_seconds, std::size_t k, Rng& rng) {
  // Re-window keeping raw samples: we need the within-window, within-sensor
  // scatter, which the per-sensor representatives average away.
  std::map<std::size_t, std::map<SensorId, std::vector<AttrVec>>> grouped;
  for (const auto& r : records) {
    const auto w = static_cast<std::size_t>(r.time / window_seconds);
    grouped[w][r.sensor].push_back(r.attrs);
  }

  std::vector<double> spreads;
  std::vector<AttrVec> window_means;
  for (const auto& [w, sensors] : grouped) {
    std::vector<AttrVec> all;
    for (const auto& [sensor, samples] : sensors) {
      for (const auto& s : samples) all.push_back(s);
      if (samples.size() < 2) continue;
      // RMS distance of a sensor's samples to its own window mean.
      const AttrVec mean = vecn::mean(samples);
      double ms = 0.0;
      for (const auto& s : samples) ms += vecn::dist2(mean, s);
      spreads.push_back(std::sqrt(ms / static_cast<double>(samples.size())));
    }
    if (!all.empty()) window_means.push_back(vecn::mean(all));
  }
  if (window_means.size() < k) {
    throw std::invalid_argument("suggest_configuration: trace too short for k states");
  }

  TuningReport report;
  report.noise_scale = median(spreads);

  const auto km = kmeans(window_means, k, rng);
  report.initial_states = km.centroids;

  // Regime spacing: when k exceeds the true regime count, k-means packs
  // redundant centroids inside each regime; collapse centroids that sit
  // close together -- relative to the overall extent of the state space --
  // before measuring the spacing, so the statistic reflects regimes, not
  // sub-noise/sub-weather splits.
  double max_pairwise = 0.0;
  for (std::size_t i = 0; i < km.centroids.size(); ++i) {
    for (std::size_t j = i + 1; j < km.centroids.size(); ++j) {
      max_pairwise = std::max(max_pairwise, vecn::dist(km.centroids[i], km.centroids[j]));
    }
  }
  const double collapse = std::max(4.0 * report.noise_scale, max_pairwise / 5.0);
  std::vector<AttrVec> regimes;
  for (const auto& c : km.centroids) {
    bool absorbed = false;
    for (const auto& r : regimes) {
      if (vecn::dist(c, r) <= collapse) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) regimes.push_back(c);
  }
  if (regimes.size() < 2) {
    report.state_spacing = collapse;  // no resolvable structure beyond noise
  } else {
    std::vector<double> nn;
    for (std::size_t i = 0; i < regimes.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < regimes.size(); ++j) {
        if (i != j) best = std::min(best, vecn::dist(regimes[i], regimes[j]));
      }
      nn.push_back(best);
    }
    report.state_spacing = median(nn);
  }
  report.scales_separated = report.state_spacing > 4.0 * report.noise_scale;

  // Merge: above the noise floor, below the regime spacing. Spawn: half the
  // spacing (a fresh regime halfway between two known ones deserves its own
  // state), strictly above merge.
  ModelStateConfig cfg;
  cfg.merge_threshold = std::max(4.0 * report.noise_scale, report.state_spacing / 3.0);
  cfg.spawn_threshold = std::max(report.state_spacing / 2.0, 1.5 * cfg.merge_threshold);
  report.suggested = cfg;
  return report;
}

}  // namespace sentinel::core
