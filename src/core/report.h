// Diagnosis output types (paper section 3.4 and Fig. 5).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hmm/markov_chain.h"
#include "trace/record.h"

namespace sentinel::core {

enum class Verdict {
  kNormal,  // no structural anomaly
  kError,   // accidental fault
  kAttack,  // malicious activity
};

enum class AnomalyKind {
  kNone,
  // Errors (section 3.3, fault model).
  kStuckAt,
  kCalibration,
  kAdditive,
  kRandomNoise,  // diffuse B^CE; the paper notes this blurs into error-free
  kUnknownError,
  // Attacks (section 3.3, attack model).
  kDynamicCreation,
  kDynamicDeletion,
  kDynamicChange,
  kMixedAttack,
};

std::string to_string(Verdict v);
std::string to_string(AnomalyKind k);

/// Orthogonality analysis of an emission matrix (section 3.4): which row and
/// column pairs violate sum_k b_ik b_jk = delta_ij.
struct OrthogonalityReport {
  bool rows_orthogonal = true;
  bool cols_orthogonal = true;
  double min_row_self = 1.0;   // min_i <row_i, row_i>
  double max_row_cross = 0.0;  // max_{i != j} <row_i, row_j>
  double min_col_self = 1.0;
  double max_col_cross = 0.0;
  /// Offending (i, j) hidden-state id pairs (rows) / symbol id pairs (cols).
  std::vector<std::pair<hmm::StateId, hmm::StateId>> row_violations;
  std::vector<std::pair<hmm::StateId, hmm::StateId>> col_violations;
};

struct Diagnosis {
  Verdict verdict = Verdict::kNormal;
  AnomalyKind kind = AnomalyKind::kNone;
  OrthogonalityReport co;  // B^CO analysis (network level)
  std::optional<OrthogonalityReport> ce;  // B^CE analysis (sensor level)

  // Evidence, populated per kind.
  std::optional<hmm::StateId> stuck_state;  // stuck-at: the shared error state
  AttrVec stuck_value;                      // stuck-at: its attributes
  AttrVec gain;          // calibration: mean x_e / x_c per attribute
  AttrVec offset;        // additive: mean x_e - x_c per attribute
  double evidence_var = 0.0;  // variance of the winning constant test
  std::vector<std::pair<hmm::StateId, hmm::StateId>> changed_states;  // change attack: (c, o)

  std::string explanation;  // human-readable rationale
};

std::string to_string(const Diagnosis& d);

/// Combined pipeline output: the network-level verdict plus one diagnosis per
/// sensor with an error/attack track.
struct DiagnosisReport {
  Diagnosis network;
  std::map<SensorId, Diagnosis> sensors;
};

std::string to_string(const DiagnosisReport& r);

/// Machine-readable rendering for downstream tooling (dashboards, alerting).
/// Flat JSON, no external dependencies.
std::string to_json(const Diagnosis& d);
std::string to_json(const DiagnosisReport& r);

}  // namespace sentinel::core
