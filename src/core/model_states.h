// Model State Identification (paper section 3.1, eqs. (3), (5), (6)).
//
// Maintains the set S = {s_1, ..., s_M} of model states that synthetically
// describe the physical conditions traversed by the environment *and by
// error/attack data*. An on-line clustering algorithm updates centroids with
// an EMA (eq. (6)), merges states that drift too close together, and spawns a
// new state when an observation lands too far from every existing state --
// which is how a stuck-at sensor's bogus regime gets its own state, e.g. the
// paper's (15, 1).
//
// State ids are stable: a merge keeps the older state's id, and the merged
// id's last centroid stays queryable so emission matrices built against it
// remain interpretable.
//
// Storage is flat: one contiguous centroid buffer in slot order plus an
// id->slot hash index. Slot order always equals ascending-id order (spawns
// append monotonically increasing ids; merges keep the older id, i.e. the
// earlier slot), which keeps every distance scan and tie-break identical to
// the original per-state-struct layout while map() runs as a tight loop over
// consecutive memory and is_active()/centroid()/resolve() are O(1) lookups.
//
// The per-slot stride is dims() rounded up to the 4-lane kernel width
// (util/kernels.h) and padding cells are zero, so map()/maybe_spawn() scan
// whole blocks of slots with the SIMD dist2_block kernel. Zero pads add
// exactly +0.0 to a reduction lane, so padded distances are bit-identical to
// the unpadded ones.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.h"
#include "hmm/markov_chain.h"
#include "trace/record.h"
#include "util/serialize_fwd.h"

namespace sentinel::core {

using hmm::StateId;

struct ModelState {
  StateId id = 0;
  AttrVec centroid;
};

class ModelStateSet {
 public:
  /// Start from the initial estimate S_o (offline k-means over history, or
  /// random -- the paper reports both work). Throws if empty.
  ModelStateSet(ModelStateConfig cfg, std::vector<AttrVec> initial);

  /// eq. (3): the active state nearest to p.
  StateId map(const AttrVec& p) const { return ids_[map_slot(p)]; }

  /// eq. (3) by storage slot: index into ids()/centroid_at() of the active
  /// state nearest to p. Slots are ascending-id order and stay valid until
  /// the next maybe_spawn / update / load.
  std::size_t map_slot(std::span<const double> p) const;

  /// Spawn pass: create a state s_{M+1} = p for every observation farther
  /// than spawn_threshold from its nearest state (respecting max_states).
  /// Returns ids of states created. Run *before* mapping a window so a fresh
  /// fault regime is representable immediately.
  std::vector<StateId> maybe_spawn(std::span<const AttrVec> points);
  std::vector<StateId> maybe_spawn(const std::vector<AttrVec>& points) {
    return maybe_spawn(std::span<const AttrVec>(points));
  }

  /// Spawn pass that also records each point's nearest slot from the same
  /// scan. When the returned list is empty (the steady state), `slots[j]` is
  /// exactly map_slot(points[j]) under the final centroids, so the caller's
  /// eq. (3) mapping pass can skip its scans. When states *were* created a
  /// later spawn may be nearer to an earlier point than its recorded slot --
  /// callers must remap (identify_states does its own scans then).
  std::vector<StateId> maybe_spawn_mapped(std::span<const AttrVec> points,
                                          std::vector<std::size_t>& slots);

  /// eqs. (5)+(6): EMA-update each state's centroid from the observations
  /// mapped to it, then merge states closer than merge_threshold.
  void update(const std::vector<AttrVec>& points);

  /// Same, but reusing per-point slot labels already computed by the caller
  /// (identify_states maps the very same representatives for eq. (3); the
  /// centroids cannot have changed in between, so remapping is redundant).
  /// `slots[j]` must be map_slot(points[j]) under the current centroids.
  void update_labeled(std::span<const AttrVec> points, std::span<const std::size_t> slots);

  /// Snapshot of the active states in slot (== ascending id) order.
  std::vector<ModelState> states() const;
  std::size_t size() const { return ids_.size(); }
  std::size_t dims() const { return dims_; }

  /// Active state ids in slot order.
  const std::vector<StateId>& ids() const { return ids_; }
  /// Centroid of the state in storage slot `slot` (no bounds check).
  std::span<const double> centroid_at(std::size_t slot) const {
    return {centroids_.data() + slot * stride_, dims_};
  }

  /// Centroid by id; falls back to the last known centroid of a merged-away
  /// state. nullopt for ids never seen.
  std::optional<AttrVec> centroid(StateId id) const;

  /// True if `id` is currently an active state.
  bool is_active(StateId id) const { return slot_of_.find(id) != slot_of_.end(); }

  /// If `id` was merged away, the id it was folded into (transitively).
  /// O(1): the merge lineage is path-compressed eagerly at merge time.
  StateId resolve(StateId id) const {
    const auto it = resolved_.find(id);
    return it == resolved_.end() ? id : it->second;
  }

  std::size_t spawn_count() const { return spawns_; }
  std::size_t merge_count() const { return merges_; }

  /// Checkpointing: active states, historical centroids, merge lineage.
  /// load() requires the same ModelStateConfig the saved instance had.
  /// The path-compressed resolution memo is derived state and not saved;
  /// load() rebuilds it from the raw lineage, so bytes match older saves.
  void save(serialize::Writer& w) const;
  void save(std::ostream& os) const;
  static ModelStateSet load(ModelStateConfig cfg, serialize::Reader& r);
  static ModelStateSet load(ModelStateConfig cfg, std::istream& is);

 private:
  void merge_close_states();
  void append_state(StateId id, std::span<const double> centroid);
  /// Slot and squared distance of the active state nearest to p (strict-<
  /// first-min, identical to the historical sequential scan).
  std::pair<std::size_t, double> scan_nearest(std::span<const double> p) const;

  ModelStateConfig cfg_;
  std::size_t dims_ = 0;
  std::size_t stride_ = 0;          // kern::padded(dims_): per-slot stride
  std::vector<StateId> ids_;        // slot -> id, ascending
  std::vector<double> centroids_;   // slot-major, stride_ stride, zero pads
  std::unordered_map<StateId, std::size_t> slot_of_;  // active id -> slot
  std::unordered_map<StateId, AttrVec> historical_;   // last centroid of every id ever
  std::unordered_map<StateId, StateId> merged_into_;  // raw lineage (serialized as-is)
  std::unordered_map<StateId, StateId> resolved_;     // path-compressed memo (derived)
  StateId next_id_ = 0;
  std::size_t spawns_ = 0;
  std::size_t merges_ = 0;

  // update() scratch, reused across windows so the steady-state hot path
  // performs no allocations.
  std::vector<double> acc_sum_;
  std::vector<std::size_t> acc_count_;
  std::vector<std::size_t> self_slots_;
};

}  // namespace sentinel::core
