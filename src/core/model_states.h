// Model State Identification (paper section 3.1, eqs. (3), (5), (6)).
//
// Maintains the set S = {s_1, ..., s_M} of model states that synthetically
// describe the physical conditions traversed by the environment *and by
// error/attack data*. An on-line clustering algorithm updates centroids with
// an EMA (eq. (6)), merges states that drift too close together, and spawns a
// new state when an observation lands too far from every existing state --
// which is how a stuck-at sensor's bogus regime gets its own state, e.g. the
// paper's (15, 1).
//
// State ids are stable: a merge keeps the older state's id, and the merged
// id's last centroid stays queryable so emission matrices built against it
// remain interpretable.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <vector>

#include "core/config.h"
#include "hmm/markov_chain.h"
#include "trace/record.h"

namespace sentinel::core {

using hmm::StateId;

struct ModelState {
  StateId id = 0;
  AttrVec centroid;
};

class ModelStateSet {
 public:
  /// Start from the initial estimate S_o (offline k-means over history, or
  /// random -- the paper reports both work). Throws if empty.
  ModelStateSet(ModelStateConfig cfg, std::vector<AttrVec> initial);

  /// eq. (3): the active state nearest to p.
  StateId map(const AttrVec& p) const;

  /// Spawn pass: create a state s_{M+1} = p for every observation farther
  /// than spawn_threshold from its nearest state (respecting max_states).
  /// Returns ids of states created. Run *before* mapping a window so a fresh
  /// fault regime is representable immediately.
  std::vector<StateId> maybe_spawn(const std::vector<AttrVec>& points);

  /// eqs. (5)+(6): EMA-update each state's centroid from the observations
  /// mapped to it, then merge states closer than merge_threshold.
  void update(const std::vector<AttrVec>& points);

  const std::vector<ModelState>& states() const { return states_; }
  std::size_t size() const { return states_.size(); }

  /// Centroid by id; falls back to the last known centroid of a merged-away
  /// state. nullopt for ids never seen.
  std::optional<AttrVec> centroid(StateId id) const;

  /// True if `id` is currently an active state.
  bool is_active(StateId id) const;

  /// If `id` was merged away, the id it was folded into (transitively).
  StateId resolve(StateId id) const;

  std::size_t spawn_count() const { return spawns_; }
  std::size_t merge_count() const { return merges_; }

  /// Checkpointing: active states, historical centroids, merge lineage.
  /// load() requires the same ModelStateConfig the saved instance had.
  void save(std::ostream& os) const;
  static ModelStateSet load(ModelStateConfig cfg, std::istream& is);

 private:
  void merge_close_states();

  ModelStateConfig cfg_;
  std::vector<ModelState> states_;
  std::map<StateId, AttrVec> historical_;  // last centroid of every id ever
  std::map<StateId, StateId> merged_into_;
  StateId next_id_ = 0;
  std::size_t spawns_ = 0;
  std::size_t merges_ = 0;
};

}  // namespace sentinel::core
