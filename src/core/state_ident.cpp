#include "core/state_ident.h"

#include <algorithm>

#include "util/vecn.h"

namespace sentinel::core {

StateId WindowStates::mapped(SensorId sensor) const {
  const auto it = std::lower_bound(
      mapping.begin(), mapping.end(), sensor,
      [](const std::pair<SensorId, StateId>& e, SensorId s) { return e.first < s; });
  if (it == mapping.end() || it->first != sensor) {
    throw std::out_of_range("WindowStates::mapped: sensor had no representative");
  }
  return it->second;
}

namespace {

// eq. (4): c_i = the state with the largest cluster of observations.
// Slots ascend by state id, so scanning them skipping empty clusters visits
// the same (id, size) sequence the original std::map iteration produced.
void pick_correct_state(const ModelStateSet& states, WindowStates& out,
                        const StateIdentScratch& scratch) {
  StateId best = out.mapping.front().second;
  std::size_t best_size = 0;
  for (std::size_t slot = 0; slot < states.size(); ++slot) {
    const std::size_t size = scratch.cluster_sizes[slot];
    if (size == 0) continue;
    const StateId id = states.ids()[slot];
    const bool larger = size > best_size;
    const bool tie = size == best_size;
    // Deterministic tie-break: prefer the cluster that agrees with the
    // network-level observable state, then the smaller id (ascending slot
    // order guarantees the first seen is the smallest).
    const bool prefer_on_tie = tie && id == out.observable && best != out.observable;
    if (larger || prefer_on_tie) {
      best = id;
      best_size = size;
    }
  }
  out.correct = best;
  out.majority_size = best_size;
}

}  // namespace

void identify_states_into(const ObservationSet& window, const ModelStateSet& states,
                          std::span<const double> window_mean, WindowStates& out,
                          StateIdentScratch& scratch,
                          std::span<const std::size_t> precomputed_slots) {
  if (window.per_sensor.empty()) {
    throw std::invalid_argument("identify_states: empty window");
  }
  if (!precomputed_slots.empty() && precomputed_slots.size() != window.per_sensor.size()) {
    throw std::invalid_argument("identify_states: precomputed slot count mismatch");
  }

  out.mapping.clear();
  out.sensors = window.per_sensor.size();

  // eq. (2): o_i = argmin_k || s_k - mean(all observations) ||.
  out.observable = states.ids()[states.map_slot(window_mean)];

  // eq. (3): l_j per sensor representative. per_sensor iterates ascending by
  // sensor id, so mapping[] comes out sorted.
  scratch.point_slots.clear();
  scratch.cluster_sizes.assign(states.size(), 0);
  std::size_t j = 0;
  for (const auto& [sensor, p] : window.per_sensor) {
    const std::size_t slot =
        precomputed_slots.empty() ? states.map_slot(p) : precomputed_slots[j];
    ++j;
    out.mapping.emplace_back(sensor, states.ids()[slot]);
    scratch.point_slots.push_back(slot);
    ++scratch.cluster_sizes[slot];
  }

  pick_correct_state(states, out, scratch);
}

void identify_states_into(std::span<const SensorId> sensors, std::span<const AttrVec> points,
                          const ModelStateSet& states, std::span<const double> window_mean,
                          WindowStates& out, StateIdentScratch& scratch,
                          std::span<const std::size_t> precomputed_slots) {
  if (sensors.empty()) {
    throw std::invalid_argument("identify_states: empty window");
  }
  if (sensors.size() != points.size()) {
    throw std::invalid_argument("identify_states: sensor/point count mismatch");
  }
  if (!precomputed_slots.empty() && precomputed_slots.size() != sensors.size()) {
    throw std::invalid_argument("identify_states: precomputed slot count mismatch");
  }

  out.mapping.clear();
  out.sensors = sensors.size();
  out.observable = states.ids()[states.map_slot(window_mean)];

  scratch.point_slots.clear();
  scratch.cluster_sizes.assign(states.size(), 0);
  for (std::size_t j = 0; j < sensors.size(); ++j) {
    const std::size_t slot =
        precomputed_slots.empty() ? states.map_slot(points[j]) : precomputed_slots[j];
    out.mapping.emplace_back(sensors[j], states.ids()[slot]);
    scratch.point_slots.push_back(slot);
    ++scratch.cluster_sizes[slot];
  }

  pick_correct_state(states, out, scratch);
}

WindowStates identify_states(const ObservationSet& window, const ModelStateSet& states) {
  if (window.per_sensor.empty()) {
    throw std::invalid_argument("identify_states: empty window");
  }
  WindowStates out;
  StateIdentScratch scratch;
  identify_states_into(window, states, window.overall_mean(), out, scratch);
  return out;
}

}  // namespace sentinel::core
