#include "core/state_ident.h"

#include <stdexcept>

namespace sentinel::core {

WindowStates identify_states(const ObservationSet& window, const ModelStateSet& states) {
  if (window.per_sensor.empty()) {
    throw std::invalid_argument("identify_states: empty window");
  }

  WindowStates out;
  out.sensors = window.per_sensor.size();

  // eq. (2): o_i = argmin_k || s_k - mean(all observations) ||.
  out.observable = states.map(window.overall_mean());

  // eq. (3): l_j per sensor representative.
  std::map<StateId, std::size_t> cluster_sizes;
  for (const auto& [sensor, p] : window.per_sensor) {
    const StateId l = states.map(p);
    out.mapping[sensor] = l;
    ++cluster_sizes[l];
  }

  // eq. (4): c_i = the state with the largest cluster of observations.
  StateId best = out.mapping.begin()->second;
  std::size_t best_size = 0;
  for (const auto& [id, size] : cluster_sizes) {
    const bool larger = size > best_size;
    const bool tie = size == best_size;
    // Deterministic tie-break: prefer the cluster that agrees with the
    // network-level observable state, then the smaller id (std::map order
    // guarantees ascending iteration, so the first seen is the smallest).
    const bool prefer_on_tie = tie && id == out.observable && best != out.observable;
    if (larger || prefer_on_tie) {
      best = id;
      best_size = size;
    }
  }
  out.correct = best;
  out.majority_size = cluster_sizes[best];
  return out;
}

}  // namespace sentinel::core
