// Viterbi smoothing of the correct-state sequence.
//
// The paper estimates the hidden environment state c_i per window by
// majority clustering; a single window's majority can flip spuriously (a
// burst of packet loss, a cluster boundary grazing). This extension repairs
// such transient glitches offline: the learned M_C supplies the transition
// structure, each window's majority vote is treated as a noisy observation
// of the true state (correct with probability 1 - glitch_prob), and the
// classical Viterbi decoder -- the same substrate the Warrender baseline
// uses -- recovers the most likely true state sequence. Glitches that the
// transition structure does not support get smoothed away; genuine
// transitions (which M_C has seen and supports) survive.

#pragma once

#include <vector>

#include "hmm/markov_chain.h"

namespace sentinel::core {

/// Decode the most likely true state sequence behind `observed` under the
/// dynamics of `m_c`. glitch_prob in (0, 0.5): probability that a window's
/// majority vote misreports the true state. Ids in `observed` that m_c has
/// never seen are kept as their own states (self-loop dynamics), so novel
/// regimes are not erased. Returns a sequence of the same length.
std::vector<hmm::StateId> smooth_correct_sequence(const hmm::MarkovChain& m_c,
                                                  const std::vector<hmm::StateId>& observed,
                                                  double glitch_prob = 0.05);

/// Count positions where smoothing changed the sequence (diagnostic).
std::size_t smoothing_repairs(const std::vector<hmm::StateId>& observed,
                              const std::vector<hmm::StateId>& smoothed);

}  // namespace sentinel::core
