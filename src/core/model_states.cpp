#include "core/model_states.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/kernels.h"
#include "util/serialize.h"
#include "util/vecn.h"

namespace sentinel::core {

namespace {

/// Squared distance over one padded 4-wide row: (d0^2 + d1^2) + (d2^2 + d3^2),
/// exactly the 4-lane striped tree of util/kernels.h for n == 4, so it is
/// bit-identical to kern::k().dist2 on padded rows at every level. Inlined
/// here because one padded row is the hot shape (the paper's 2-3 attribute
/// dimensions) and an indirect kernel call costs more than the arithmetic.
/// This TU is compiled with -ffp-contract=off so the squares cannot fuse.
inline double dist2_stride4(const double* a, const double* b) {
#if defined(__SSE2__)
  const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a), _mm_loadu_pd(b));
  const __m128d d23 = _mm_sub_pd(_mm_loadu_pd(a + 2), _mm_loadu_pd(b + 2));
  const __m128d s01 = _mm_mul_pd(d01, d01);
  const __m128d s23 = _mm_mul_pd(d23, d23);
  const __m128d t01 = _mm_add_sd(s01, _mm_unpackhi_pd(s01, s01));
  const __m128d t23 = _mm_add_sd(s23, _mm_unpackhi_pd(s23, s23));
  return _mm_cvtsd_f64(_mm_add_sd(t01, t23));
#else
  const double d0 = a[0] - b[0];
  const double d1 = a[1] - b[1];
  const double d2 = a[2] - b[2];
  const double d3 = a[3] - b[3];
  return (d0 * d0 + d1 * d1) + (d2 * d2 + d3 * d3);
#endif
}

}  // namespace

ModelStateSet::ModelStateSet(ModelStateConfig cfg, std::vector<AttrVec> initial) : cfg_(cfg) {
  if (initial.empty()) throw std::invalid_argument("ModelStateSet: no initial states");
  if (!(cfg_.alpha > 0.0 && cfg_.alpha < 1.0)) {
    throw std::invalid_argument("ModelStateSet: alpha must be in (0,1)");
  }
  if (!(cfg_.merge_threshold >= 0.0) || !(cfg_.spawn_threshold > cfg_.merge_threshold)) {
    throw std::invalid_argument("ModelStateSet: need 0 <= merge_threshold < spawn_threshold");
  }
  dims_ = initial.front().size();
  stride_ = kern::padded(dims_);
  for (auto& c : initial) {
    if (c.size() != dims_) throw std::invalid_argument("ModelStateSet: ragged initial states");
    append_state(next_id_, c);
    ++next_id_;
  }
}

void ModelStateSet::append_state(StateId id, std::span<const double> centroid) {
  slot_of_[id] = ids_.size();
  ids_.push_back(id);
  centroids_.insert(centroids_.end(), centroid.begin(), centroid.end());
  centroids_.resize(centroids_.size() + (stride_ - dims_), 0.0);
  historical_[id] = AttrVec(centroid.begin(), centroid.end());
}

std::pair<std::size_t, double> ModelStateSet::scan_nearest(std::span<const double> p) const {
  if (p.size() != dims_) {
    throw std::invalid_argument("ModelStateSet: query dimension mismatch: " +
                                std::to_string(p.size()) + " vs " + std::to_string(dims_));
  }
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  // One padded row (the paper's 2-3 attribute dimensions) is the hot shape:
  // every window scans it ~2x per sensor. dist2_stride4 above is the inlined,
  // bit-identical equivalent of a dist2_block kernel call (pads are +0.0 on
  // both sides of the subtraction).
  if (stride_ == 4) {
    double q[4] = {0.0, 0.0, 0.0, 0.0};
    std::copy(p.begin(), p.end(), q);
    const double* c = centroids_.data();
    const std::size_t n = ids_.size();
    for (std::size_t s = 0; s < n; ++s, c += 4) {
      const double d = dist2_stride4(c, q);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    return {best, best_d};
  }
  const auto& k = kern::k();
  // Stack scratch keeps this const method reentrant. The common attribute
  // dimensions (2-3, padded to 4) fit the padded-query buffer; anything
  // larger falls back to a per-slot kernel call on the logical prefix, which
  // is bit-identical (zero pads contribute +0.0 to a reduction lane).
  constexpr std::size_t kMaxQuery = 64;
  constexpr std::size_t kChunk = 32;
  if (stride_ <= kMaxQuery) {
    alignas(32) double q[kMaxQuery];
    alignas(32) double d[kChunk];
    std::copy(p.begin(), p.end(), q);
    std::fill(q + dims_, q + stride_, 0.0);
    for (std::size_t s0 = 0; s0 < ids_.size(); s0 += kChunk) {
      const std::size_t cnt = std::min(kChunk, ids_.size() - s0);
      k.dist2_block(centroids_.data() + s0 * stride_, cnt, stride_, q, d);
      for (std::size_t i = 0; i < cnt; ++i) {
        if (d[i] < best_d) {
          best_d = d[i];
          best = s0 + i;
        }
      }
    }
  } else {
    for (std::size_t s = 0; s < ids_.size(); ++s) {
      const double d = k.dist2(centroids_.data() + s * stride_, p.data(), dims_);
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
  }
  return {best, best_d};
}

std::size_t ModelStateSet::map_slot(std::span<const double> p) const {
  return scan_nearest(p).first;
}

std::vector<StateId> ModelStateSet::maybe_spawn(std::span<const AttrVec> points) {
  std::vector<StateId> created;
  const double thr2 = cfg_.spawn_threshold * cfg_.spawn_threshold;
  for (const auto& p : points) {
    if (ids_.size() >= cfg_.max_states) break;
    const double best_d = scan_nearest(p).second;
    if (best_d > thr2) {
      append_state(next_id_, p);
      created.push_back(next_id_);
      ++next_id_;
      ++spawns_;
    }
  }
  return created;
}

std::vector<StateId> ModelStateSet::maybe_spawn_mapped(std::span<const AttrVec> points,
                                                       std::vector<std::size_t>& slots) {
  std::vector<StateId> created;
  slots.clear();
  slots.reserve(points.size());
  const double thr2 = cfg_.spawn_threshold * cfg_.spawn_threshold;
  for (const auto& p : points) {
    auto [slot, best_d] = scan_nearest(p);
    if (best_d > thr2 && ids_.size() < cfg_.max_states) {
      slot = ids_.size();  // the spawned state is the point itself
      append_state(next_id_, p);
      created.push_back(next_id_);
      ++next_id_;
      ++spawns_;
    }
    slots.push_back(slot);
  }
  return created;
}

void ModelStateSet::update(const std::vector<AttrVec>& points) {
  self_slots_.clear();
  self_slots_.reserve(points.size());
  for (const auto& p : points) self_slots_.push_back(map_slot(p));
  update_labeled(points, self_slots_);
}

void ModelStateSet::update_labeled(std::span<const AttrVec> points,
                                   std::span<const std::size_t> slots) {
  if (points.size() != slots.size()) {
    throw std::invalid_argument("ModelStateSet::update_labeled: label/point size mismatch");
  }
  // eq. (5): P_k = { p_j | l_j = k }, accumulated as per-slot sums.
  acc_sum_.assign(ids_.size() * dims_, 0.0);
  acc_count_.assign(ids_.size(), 0);
  for (std::size_t j = 0; j < points.size(); ++j) {
    const std::size_t slot = slots[j];
    const AttrVec& p = points[j];
    if (p.size() != dims_) {
      throw std::invalid_argument("AttrVec dimension mismatch: " + std::to_string(dims_) +
                                  " vs " + std::to_string(p.size()));
    }
    for (std::size_t i = 0; i < dims_; ++i) acc_sum_[slot * dims_ + i] += p[i];
    ++acc_count_[slot];
  }
  // eq. (6): s_k = (1 - alpha) s_k + alpha * mean(P_k), for nonempty P_k.
  for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
    const std::size_t count = acc_count_[slot];
    if (count == 0) continue;
    const std::size_t acc_off = slot * dims_;
    const std::size_t off = slot * stride_;
    for (std::size_t i = 0; i < dims_; ++i) {
      centroids_[off + i] = (1.0 - cfg_.alpha) * centroids_[off + i] +
                            cfg_.alpha * acc_sum_[acc_off + i] / static_cast<double>(count);
    }
    auto& hist = historical_[ids_[slot]];
    hist.assign(centroids_.begin() + static_cast<std::ptrdiff_t>(off),
                centroids_.begin() + static_cast<std::ptrdiff_t>(off + dims_));
  }
  merge_close_states();
}

void ModelStateSet::merge_close_states() {
  const auto& k = kern::k();
  const double thr2 = cfg_.merge_threshold * cfg_.merge_threshold;
  bool changed = true;
  while (changed && ids_.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < ids_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < ids_.size() && !changed; ++j) {
        // Pad cells are +0.0 in every row, so the padded stride-4 distance
        // equals the logical-dims one bit-for-bit.
        const double d2 =
            stride_ == 4
                ? dist2_stride4(centroids_.data() + i * stride_, centroids_.data() + j * stride_)
                : k.dist2(centroids_.data() + i * stride_, centroids_.data() + j * stride_, dims_);
        if (d2 <= thr2) {
          // Keep the older id (smaller slot position == earlier creation,
          // since ids grow monotonically and spawns append).
          const StateId keep = ids_[i];
          const StateId drop = ids_[j];
          for (std::size_t d = 0; d < dims_; ++d) {
            centroids_[i * stride_ + d] =
                0.5 * (centroids_[i * stride_ + d] + centroids_[j * stride_ + d]);
          }
          auto& hist = historical_[keep];
          hist.assign(centroids_.begin() + static_cast<std::ptrdiff_t>(i * stride_),
                      centroids_.begin() + static_cast<std::ptrdiff_t>(i * stride_ + dims_));
          merged_into_[drop] = keep;
          // Eager path compression: every id that resolved to `drop` now
          // resolves to `keep`, so resolve() stays a single hash lookup.
          for (auto& [from, to] : resolved_) {
            if (to == drop) to = keep;
          }
          resolved_[drop] = keep;
          slot_of_.erase(drop);
          for (auto& [id, slot] : slot_of_) {
            if (slot > j) --slot;
          }
          ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(j));
          centroids_.erase(centroids_.begin() + static_cast<std::ptrdiff_t>(j * stride_),
                           centroids_.begin() + static_cast<std::ptrdiff_t>((j + 1) * stride_));
          ++merges_;
          changed = true;
        }
      }
    }
  }
}

std::vector<ModelState> ModelStateSet::states() const {
  std::vector<ModelState> out;
  out.reserve(ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    const auto c = centroid_at(s);
    out.push_back(ModelState{ids_[s], AttrVec(c.begin(), c.end())});
  }
  return out;
}

namespace {

/// Keys of an unordered map in ascending order -- checkpoint bytes must match
/// the std::map iteration order of the original implementation.
template <typename Map>
std::vector<StateId> sorted_keys(const Map& m) {
  std::vector<StateId> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void ModelStateSet::save(serialize::Writer& w) const {
  serialize::tag(w, "model-states");
  serialize::put(w, ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    serialize::put(w, ids_[s]);
    const auto c = centroid_at(s);
    serialize::put_vector(w, AttrVec(c.begin(), c.end()));
  }
  serialize::put(w, historical_.size());
  for (const StateId id : sorted_keys(historical_)) {
    serialize::put(w, id);
    serialize::put_vector(w, historical_.at(id));
  }
  serialize::put(w, merged_into_.size());
  for (const StateId from : sorted_keys(merged_into_)) {
    serialize::put(w, from);
    serialize::put(w, merged_into_.at(from));
  }
  serialize::put(w, next_id_);
  serialize::put(w, spawns_);
  serialize::put(w, merges_);
  w.newline();
}

void ModelStateSet::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

ModelStateSet ModelStateSet::load(ModelStateConfig cfg, serialize::Reader& r) {
  serialize::expect(r, "model-states");
  const auto n = serialize::get<std::size_t>(r);
  if (n == 0) throw std::runtime_error("checkpoint: model-states empty");
  std::vector<StateId> ids;
  std::vector<AttrVec> centroids;
  ids.reserve(n);
  centroids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(serialize::get<StateId>(r));
    centroids.push_back(serialize::get_vector<double>(r));
  }
  // Construct through the public constructor (validates cfg), then overwrite
  // the state with the checkpointed one.
  ModelStateSet set(cfg, {centroids.front()});
  set.ids_.clear();
  set.centroids_.clear();
  set.slot_of_.clear();
  set.historical_.clear();
  set.next_id_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (centroids[i].size() != set.dims_) {
      throw std::runtime_error("checkpoint: ragged model-state centroids");
    }
    set.slot_of_[ids[i]] = i;
    set.ids_.push_back(ids[i]);
    set.centroids_.insert(set.centroids_.end(), centroids[i].begin(), centroids[i].end());
    set.centroids_.resize(set.centroids_.size() + (set.stride_ - set.dims_), 0.0);
  }
  const auto nh = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < nh; ++i) {
    const auto id = serialize::get<StateId>(r);
    set.historical_[id] = serialize::get_vector<double>(r);
  }
  const auto nm = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < nm; ++i) {
    const auto from = serialize::get<StateId>(r);
    set.merged_into_[from] = serialize::get<StateId>(r);
  }
  set.next_id_ = serialize::get<StateId>(r);
  set.spawns_ = serialize::get<std::size_t>(r);
  set.merges_ = serialize::get<std::size_t>(r);
  for (const StateId id : set.ids_) {
    if (set.historical_.find(id) == set.historical_.end()) {
      throw std::runtime_error("checkpoint: active state missing from history");
    }
  }
  // Rebuild the path-compressed resolution memo from the raw lineage.
  for (const auto& [from, to] : set.merged_into_) {
    StateId end = to;
    std::size_t hops = 0;
    auto it = set.merged_into_.find(end);
    while (it != set.merged_into_.end() && hops++ <= set.merged_into_.size()) {
      end = it->second;
      it = set.merged_into_.find(end);
    }
    set.resolved_[from] = end;
  }
  return set;
}

ModelStateSet ModelStateSet::load(ModelStateConfig cfg, std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(cfg, *r);
}

std::optional<AttrVec> ModelStateSet::centroid(StateId id) const {
  const auto it = historical_.find(id);
  if (it == historical_.end()) return std::nullopt;
  return it->second;
}

}  // namespace sentinel::core
