#include "core/model_states.h"

#include <limits>
#include <stdexcept>

#include "util/serialize.h"
#include "util/vecn.h"

namespace sentinel::core {

ModelStateSet::ModelStateSet(ModelStateConfig cfg, std::vector<AttrVec> initial) : cfg_(cfg) {
  if (initial.empty()) throw std::invalid_argument("ModelStateSet: no initial states");
  if (!(cfg_.alpha > 0.0 && cfg_.alpha < 1.0)) {
    throw std::invalid_argument("ModelStateSet: alpha must be in (0,1)");
  }
  if (!(cfg_.merge_threshold >= 0.0) || !(cfg_.spawn_threshold > cfg_.merge_threshold)) {
    throw std::invalid_argument("ModelStateSet: need 0 <= merge_threshold < spawn_threshold");
  }
  const std::size_t dims = initial.front().size();
  for (auto& c : initial) {
    if (c.size() != dims) throw std::invalid_argument("ModelStateSet: ragged initial states");
    states_.push_back(ModelState{next_id_, std::move(c)});
    historical_[next_id_] = states_.back().centroid;
    ++next_id_;
  }
}

StateId ModelStateSet::map(const AttrVec& p) const {
  StateId best = states_.front().id;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& s : states_) {
    const double d = vecn::dist2(s.centroid, p);
    if (d < best_d) {
      best_d = d;
      best = s.id;
    }
  }
  return best;
}

std::vector<StateId> ModelStateSet::maybe_spawn(const std::vector<AttrVec>& points) {
  std::vector<StateId> created;
  const double thr2 = cfg_.spawn_threshold * cfg_.spawn_threshold;
  for (const auto& p : points) {
    if (states_.size() >= cfg_.max_states) break;
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& s : states_) best_d = std::min(best_d, vecn::dist2(s.centroid, p));
    if (best_d > thr2) {
      states_.push_back(ModelState{next_id_, p});
      historical_[next_id_] = p;
      created.push_back(next_id_);
      ++next_id_;
      ++spawns_;
    }
  }
  return created;
}

void ModelStateSet::update(const std::vector<AttrVec>& points) {
  // eq. (5): P_k = { p_j | l_j = k }, accumulated as per-state sums.
  std::map<StateId, std::pair<AttrVec, std::size_t>> acc;  // id -> (sum, count)
  for (const auto& p : points) {
    const StateId k = map(p);
    auto& [sum, count] = acc[k];
    if (sum.empty()) sum.assign(p.size(), 0.0);
    for (std::size_t i = 0; i < p.size(); ++i) sum[i] += p[i];
    ++count;
  }
  // eq. (6): s_k = (1 - alpha) s_k + alpha * mean(P_k), for nonempty P_k.
  for (auto& s : states_) {
    const auto it = acc.find(s.id);
    if (it == acc.end()) continue;
    const auto& [sum, count] = it->second;
    for (std::size_t i = 0; i < s.centroid.size(); ++i) {
      s.centroid[i] =
          (1.0 - cfg_.alpha) * s.centroid[i] + cfg_.alpha * sum[i] / static_cast<double>(count);
    }
    historical_[s.id] = s.centroid;
  }
  merge_close_states();
}

void ModelStateSet::merge_close_states() {
  const double thr2 = cfg_.merge_threshold * cfg_.merge_threshold;
  bool changed = true;
  while (changed && states_.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < states_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < states_.size() && !changed; ++j) {
        if (vecn::dist2(states_[i].centroid, states_[j].centroid) <= thr2) {
          // Keep the older id (smaller index position == earlier creation,
          // since ids grow monotonically and spawns append).
          auto& keep = states_[i];
          const auto& drop = states_[j];
          for (std::size_t d = 0; d < keep.centroid.size(); ++d) {
            keep.centroid[d] = 0.5 * (keep.centroid[d] + drop.centroid[d]);
          }
          historical_[keep.id] = keep.centroid;
          merged_into_[drop.id] = keep.id;
          states_.erase(states_.begin() + static_cast<std::ptrdiff_t>(j));
          ++merges_;
          changed = true;
        }
      }
    }
  }
}

void ModelStateSet::save(std::ostream& os) const {
  serialize::tag(os, "model-states");
  serialize::put(os, states_.size());
  for (const auto& s : states_) {
    serialize::put(os, s.id);
    serialize::put_vector(os, s.centroid);
  }
  serialize::put(os, historical_.size());
  for (const auto& [id, c] : historical_) {
    serialize::put(os, id);
    serialize::put_vector(os, c);
  }
  serialize::put(os, merged_into_.size());
  for (const auto& [from, to] : merged_into_) {
    serialize::put(os, from);
    serialize::put(os, to);
  }
  serialize::put(os, next_id_);
  serialize::put(os, spawns_);
  serialize::put(os, merges_);
  os << '\n';
}

ModelStateSet ModelStateSet::load(ModelStateConfig cfg, std::istream& is) {
  serialize::expect(is, "model-states");
  const auto n = serialize::get<std::size_t>(is);
  if (n == 0) throw std::runtime_error("checkpoint: model-states empty");
  std::vector<ModelState> states;
  states.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ModelState s;
    s.id = serialize::get<StateId>(is);
    s.centroid = serialize::get_vector<double>(is);
    states.push_back(std::move(s));
  }
  // Construct through the public constructor (validates cfg), then overwrite
  // the state with the checkpointed one.
  ModelStateSet set(cfg, {states.front().centroid});
  set.states_ = std::move(states);
  set.historical_.clear();
  const auto nh = serialize::get<std::size_t>(is);
  for (std::size_t i = 0; i < nh; ++i) {
    const auto id = serialize::get<StateId>(is);
    set.historical_[id] = serialize::get_vector<double>(is);
  }
  const auto nm = serialize::get<std::size_t>(is);
  for (std::size_t i = 0; i < nm; ++i) {
    const auto from = serialize::get<StateId>(is);
    set.merged_into_[from] = serialize::get<StateId>(is);
  }
  set.next_id_ = serialize::get<StateId>(is);
  set.spawns_ = serialize::get<std::size_t>(is);
  set.merges_ = serialize::get<std::size_t>(is);
  for (const auto& s : set.states_) {
    if (set.historical_.find(s.id) == set.historical_.end()) {
      throw std::runtime_error("checkpoint: active state missing from history");
    }
  }
  return set;
}

std::optional<AttrVec> ModelStateSet::centroid(StateId id) const {
  const auto it = historical_.find(id);
  if (it == historical_.end()) return std::nullopt;
  return it->second;
}

bool ModelStateSet::is_active(StateId id) const {
  for (const auto& s : states_) {
    if (s.id == id) return true;
  }
  return false;
}

StateId ModelStateSet::resolve(StateId id) const {
  // Path-follow through merges (bounded by the merge count).
  std::size_t hops = 0;
  auto it = merged_into_.find(id);
  while (it != merged_into_.end() && hops++ <= merges_) {
    id = it->second;
    it = merged_into_.find(id);
  }
  return id;
}

}  // namespace sentinel::core
