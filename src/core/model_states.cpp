#include "core/model_states.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/serialize.h"
#include "util/vecn.h"

namespace sentinel::core {

ModelStateSet::ModelStateSet(ModelStateConfig cfg, std::vector<AttrVec> initial) : cfg_(cfg) {
  if (initial.empty()) throw std::invalid_argument("ModelStateSet: no initial states");
  if (!(cfg_.alpha > 0.0 && cfg_.alpha < 1.0)) {
    throw std::invalid_argument("ModelStateSet: alpha must be in (0,1)");
  }
  if (!(cfg_.merge_threshold >= 0.0) || !(cfg_.spawn_threshold > cfg_.merge_threshold)) {
    throw std::invalid_argument("ModelStateSet: need 0 <= merge_threshold < spawn_threshold");
  }
  dims_ = initial.front().size();
  for (auto& c : initial) {
    if (c.size() != dims_) throw std::invalid_argument("ModelStateSet: ragged initial states");
    append_state(next_id_, c);
    ++next_id_;
  }
}

void ModelStateSet::append_state(StateId id, std::span<const double> centroid) {
  slot_of_[id] = ids_.size();
  ids_.push_back(id);
  centroids_.insert(centroids_.end(), centroid.begin(), centroid.end());
  historical_[id] = AttrVec(centroid.begin(), centroid.end());
}

std::size_t ModelStateSet::map_slot(std::span<const double> p) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    const double d = vecn::dist2(centroid_at(s), p);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

std::vector<StateId> ModelStateSet::maybe_spawn(std::span<const AttrVec> points) {
  std::vector<StateId> created;
  const double thr2 = cfg_.spawn_threshold * cfg_.spawn_threshold;
  for (const auto& p : points) {
    if (ids_.size() >= cfg_.max_states) break;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < ids_.size(); ++s) {
      best_d = std::min(best_d, vecn::dist2(centroid_at(s), p));
    }
    if (best_d > thr2) {
      append_state(next_id_, p);
      created.push_back(next_id_);
      ++next_id_;
      ++spawns_;
    }
  }
  return created;
}

void ModelStateSet::update(const std::vector<AttrVec>& points) {
  self_slots_.clear();
  self_slots_.reserve(points.size());
  for (const auto& p : points) self_slots_.push_back(map_slot(p));
  update_labeled(points, self_slots_);
}

void ModelStateSet::update_labeled(std::span<const AttrVec> points,
                                   std::span<const std::size_t> slots) {
  if (points.size() != slots.size()) {
    throw std::invalid_argument("ModelStateSet::update_labeled: label/point size mismatch");
  }
  // eq. (5): P_k = { p_j | l_j = k }, accumulated as per-slot sums.
  acc_sum_.assign(ids_.size() * dims_, 0.0);
  acc_count_.assign(ids_.size(), 0);
  for (std::size_t j = 0; j < points.size(); ++j) {
    const std::size_t slot = slots[j];
    const AttrVec& p = points[j];
    vecn::check_same_size(centroid_at(slot), p);
    for (std::size_t i = 0; i < dims_; ++i) acc_sum_[slot * dims_ + i] += p[i];
    ++acc_count_[slot];
  }
  // eq. (6): s_k = (1 - alpha) s_k + alpha * mean(P_k), for nonempty P_k.
  for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
    const std::size_t count = acc_count_[slot];
    if (count == 0) continue;
    const std::size_t off = slot * dims_;
    for (std::size_t i = 0; i < dims_; ++i) {
      centroids_[off + i] = (1.0 - cfg_.alpha) * centroids_[off + i] +
                            cfg_.alpha * acc_sum_[off + i] / static_cast<double>(count);
    }
    auto& hist = historical_[ids_[slot]];
    hist.assign(centroids_.begin() + static_cast<std::ptrdiff_t>(off),
                centroids_.begin() + static_cast<std::ptrdiff_t>(off + dims_));
  }
  merge_close_states();
}

void ModelStateSet::merge_close_states() {
  const double thr2 = cfg_.merge_threshold * cfg_.merge_threshold;
  bool changed = true;
  while (changed && ids_.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < ids_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < ids_.size() && !changed; ++j) {
        if (vecn::dist2(centroid_at(i), centroid_at(j)) <= thr2) {
          // Keep the older id (smaller slot position == earlier creation,
          // since ids grow monotonically and spawns append).
          const StateId keep = ids_[i];
          const StateId drop = ids_[j];
          for (std::size_t d = 0; d < dims_; ++d) {
            centroids_[i * dims_ + d] = 0.5 * (centroids_[i * dims_ + d] + centroids_[j * dims_ + d]);
          }
          auto& hist = historical_[keep];
          hist.assign(centroids_.begin() + static_cast<std::ptrdiff_t>(i * dims_),
                      centroids_.begin() + static_cast<std::ptrdiff_t>((i + 1) * dims_));
          merged_into_[drop] = keep;
          // Eager path compression: every id that resolved to `drop` now
          // resolves to `keep`, so resolve() stays a single hash lookup.
          for (auto& [from, to] : resolved_) {
            if (to == drop) to = keep;
          }
          resolved_[drop] = keep;
          slot_of_.erase(drop);
          for (auto& [id, slot] : slot_of_) {
            if (slot > j) --slot;
          }
          ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(j));
          centroids_.erase(centroids_.begin() + static_cast<std::ptrdiff_t>(j * dims_),
                           centroids_.begin() + static_cast<std::ptrdiff_t>((j + 1) * dims_));
          ++merges_;
          changed = true;
        }
      }
    }
  }
}

std::vector<ModelState> ModelStateSet::states() const {
  std::vector<ModelState> out;
  out.reserve(ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    const auto c = centroid_at(s);
    out.push_back(ModelState{ids_[s], AttrVec(c.begin(), c.end())});
  }
  return out;
}

namespace {

/// Keys of an unordered map in ascending order -- checkpoint bytes must match
/// the std::map iteration order of the original implementation.
template <typename Map>
std::vector<StateId> sorted_keys(const Map& m) {
  std::vector<StateId> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void ModelStateSet::save(serialize::Writer& w) const {
  serialize::tag(w, "model-states");
  serialize::put(w, ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    serialize::put(w, ids_[s]);
    const auto c = centroid_at(s);
    serialize::put_vector(w, AttrVec(c.begin(), c.end()));
  }
  serialize::put(w, historical_.size());
  for (const StateId id : sorted_keys(historical_)) {
    serialize::put(w, id);
    serialize::put_vector(w, historical_.at(id));
  }
  serialize::put(w, merged_into_.size());
  for (const StateId from : sorted_keys(merged_into_)) {
    serialize::put(w, from);
    serialize::put(w, merged_into_.at(from));
  }
  serialize::put(w, next_id_);
  serialize::put(w, spawns_);
  serialize::put(w, merges_);
  w.newline();
}

void ModelStateSet::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

ModelStateSet ModelStateSet::load(ModelStateConfig cfg, serialize::Reader& r) {
  serialize::expect(r, "model-states");
  const auto n = serialize::get<std::size_t>(r);
  if (n == 0) throw std::runtime_error("checkpoint: model-states empty");
  std::vector<StateId> ids;
  std::vector<AttrVec> centroids;
  ids.reserve(n);
  centroids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(serialize::get<StateId>(r));
    centroids.push_back(serialize::get_vector<double>(r));
  }
  // Construct through the public constructor (validates cfg), then overwrite
  // the state with the checkpointed one.
  ModelStateSet set(cfg, {centroids.front()});
  set.ids_.clear();
  set.centroids_.clear();
  set.slot_of_.clear();
  set.historical_.clear();
  set.next_id_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (centroids[i].size() != set.dims_) {
      throw std::runtime_error("checkpoint: ragged model-state centroids");
    }
    set.slot_of_[ids[i]] = i;
    set.ids_.push_back(ids[i]);
    set.centroids_.insert(set.centroids_.end(), centroids[i].begin(), centroids[i].end());
  }
  const auto nh = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < nh; ++i) {
    const auto id = serialize::get<StateId>(r);
    set.historical_[id] = serialize::get_vector<double>(r);
  }
  const auto nm = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < nm; ++i) {
    const auto from = serialize::get<StateId>(r);
    set.merged_into_[from] = serialize::get<StateId>(r);
  }
  set.next_id_ = serialize::get<StateId>(r);
  set.spawns_ = serialize::get<std::size_t>(r);
  set.merges_ = serialize::get<std::size_t>(r);
  for (const StateId id : set.ids_) {
    if (set.historical_.find(id) == set.historical_.end()) {
      throw std::runtime_error("checkpoint: active state missing from history");
    }
  }
  // Rebuild the path-compressed resolution memo from the raw lineage.
  for (const auto& [from, to] : set.merged_into_) {
    StateId end = to;
    std::size_t hops = 0;
    auto it = set.merged_into_.find(end);
    while (it != set.merged_into_.end() && hops++ <= set.merged_into_.size()) {
      end = it->second;
      it = set.merged_into_.find(end);
    }
    set.resolved_[from] = end;
  }
  return set;
}

ModelStateSet ModelStateSet::load(ModelStateConfig cfg, std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(cfg, *r);
}

std::optional<AttrVec> ModelStateSet::centroid(StateId id) const {
  const auto it = historical_.find(id);
  if (it == historical_.end()) return std::nullopt;
  return it->second;
}

}  // namespace sentinel::core
