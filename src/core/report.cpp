#include "core/report.h"

#include <sstream>

#include "util/vecn.h"

namespace sentinel::core {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kNormal: return "normal";
    case Verdict::kError: return "error";
    case Verdict::kAttack: return "attack";
  }
  return "?";
}

std::string to_string(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::kNone: return "none";
    case AnomalyKind::kStuckAt: return "stuck-at";
    case AnomalyKind::kCalibration: return "calibration";
    case AnomalyKind::kAdditive: return "additive";
    case AnomalyKind::kRandomNoise: return "random-noise";
    case AnomalyKind::kUnknownError: return "unknown-error";
    case AnomalyKind::kDynamicCreation: return "dynamic-creation";
    case AnomalyKind::kDynamicDeletion: return "dynamic-deletion";
    case AnomalyKind::kDynamicChange: return "dynamic-change";
    case AnomalyKind::kMixedAttack: return "mixed-attack";
  }
  return "?";
}

std::string to_string(const Diagnosis& d) {
  std::ostringstream os;
  os << to_string(d.verdict) << "/" << to_string(d.kind);
  if (d.stuck_state) os << " stuck_state=" << *d.stuck_state << vecn::to_string(d.stuck_value);
  if (!d.gain.empty()) os << " gain=" << vecn::to_string(d.gain, 2);
  if (!d.offset.empty()) os << " offset=" << vecn::to_string(d.offset, 2);
  if (!d.changed_states.empty()) {
    os << " changed=[";
    for (const auto& [c, o] : d.changed_states) os << c << "->" << o << " ";
    os << "]";
  }
  if (!d.explanation.empty()) os << " (" << d.explanation << ")";
  return os.str();
}

std::string to_string(const DiagnosisReport& r) {
  std::ostringstream os;
  os << "network: " << to_string(r.network) << '\n';
  for (const auto& [id, d] : r.sensors) {
    os << "sensor " << id << ": " << to_string(d) << '\n';
  }
  return os.str();
}

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void append_vec(std::ostringstream& os, const AttrVec& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << ']';
}

void append_diagnosis(std::ostringstream& os, const Diagnosis& d) {
  os << "{\"verdict\":";
  append_escaped(os, to_string(d.verdict));
  os << ",\"kind\":";
  append_escaped(os, to_string(d.kind));
  if (d.stuck_state) {
    os << ",\"stuck_state\":" << *d.stuck_state << ",\"stuck_value\":";
    append_vec(os, d.stuck_value);
  }
  if (!d.gain.empty()) {
    os << ",\"gain\":";
    append_vec(os, d.gain);
  }
  if (!d.offset.empty()) {
    os << ",\"offset\":";
    append_vec(os, d.offset);
  }
  if (!d.changed_states.empty()) {
    os << ",\"changed_states\":[";
    for (std::size_t i = 0; i < d.changed_states.size(); ++i) {
      if (i) os << ',';
      os << '[' << d.changed_states[i].first << ',' << d.changed_states[i].second << ']';
    }
    os << ']';
  }
  os << ",\"rows_orthogonal\":" << (d.co.rows_orthogonal ? "true" : "false")
     << ",\"cols_orthogonal\":" << (d.co.cols_orthogonal ? "true" : "false")
     << ",\"explanation\":";
  append_escaped(os, d.explanation);
  os << '}';
}

}  // namespace

std::string to_json(const Diagnosis& d) {
  std::ostringstream os;
  append_diagnosis(os, d);
  return os.str();
}

std::string to_json(const DiagnosisReport& r) {
  std::ostringstream os;
  os << "{\"network\":";
  append_diagnosis(os, r.network);
  os << ",\"sensors\":{";
  bool first = true;
  for (const auto& [id, d] : r.sensors) {
    if (!first) os << ',';
    first = false;
    os << '"' << id << "\":";
    append_diagnosis(os, d);
  }
  os << "}}";
  return os.str();
}

}  // namespace sentinel::core
