#include "core/alarms.h"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::core {

changepoint::AlarmFilterFactory make_filter_factory(const AlarmFilterConfig& cfg) {
  switch (cfg.kind) {
    case FilterKind::kKofN:
      return changepoint::make_kofn_factory(cfg.k, cfg.n);
    case FilterKind::kSprt: {
      changepoint::SprtConfig sc;
      sc.p0 = cfg.p0;
      sc.p1 = cfg.p1;
      sc.alpha = cfg.sprt_alpha;
      sc.beta = cfg.sprt_beta;
      return changepoint::make_sprt_factory(sc);
    }
    case FilterKind::kCusum: {
      changepoint::CusumConfig cc;
      cc.p0 = cfg.p0;
      cc.p1 = cfg.p1;
      cc.threshold = cfg.cusum_threshold;
      return changepoint::make_cusum_factory(cc);
    }
  }
  throw std::invalid_argument("make_filter_factory: unknown filter kind");
}

AlarmBank::AlarmBank(const AlarmFilterConfig& cfg) : factory_(make_filter_factory(cfg)) {}

AlarmBank::Entry& AlarmBank::entry(SensorId sensor) {
  if (sensor < kDenseLimit) {
    if (sensor >= dense_.size()) {
      // Grow geometrically: ascending first-window ids would otherwise
      // reallocate once per sensor.
      dense_.resize(std::max<std::size_t>(sensor + 1, dense_.size() * 2));
    }
    Entry& e = dense_[sensor];
    if (!e.filter) e.filter = factory_();
    return e;
  }
  auto it = sparse_.find(sensor);
  if (it == sparse_.end()) it = sparse_.emplace(sensor, Entry{factory_(), 0, 0}).first;
  return it->second;
}

const AlarmBank::Entry* AlarmBank::find_entry(SensorId sensor) const {
  if (sensor < kDenseLimit) {
    if (sensor < dense_.size() && dense_[sensor].filter) return &dense_[sensor];
    return nullptr;
  }
  const auto it = sparse_.find(sensor);
  return it == sparse_.end() ? nullptr : &it->second;
}

AlarmUpdate AlarmBank::update(SensorId sensor, bool raw_alarm) {
  Entry& e = entry(sensor);

  AlarmUpdate out;
  out.raw = raw_alarm;
  const bool before = e.filter->active();
  out.filtered = e.filter->update(raw_alarm);
  out.raised_edge = !before && out.filtered;
  out.cleared_edge = before && !out.filtered;

  if (raw_alarm) ++e.raw_count;
  ++e.window_count;
  return out;
}

bool AlarmBank::filtered_active(SensorId sensor) const {
  const Entry* e = find_entry(sensor);
  return e != nullptr && e->filter->active();
}

std::size_t AlarmBank::raw_count(SensorId sensor) const {
  const Entry* e = find_entry(sensor);
  return e == nullptr ? 0 : e->raw_count;
}

std::size_t AlarmBank::window_count(SensorId sensor) const {
  const Entry* e = find_entry(sensor);
  return e == nullptr ? 0 : e->window_count;
}

void AlarmBank::save(serialize::Writer& w) const {
  serialize::tag(w, "alarm-bank");
  // Count entries first: dense slots without a filter were never seen.
  std::size_t n = 0;
  for (const Entry& e : dense_) {
    if (e.filter) ++n;
  }
  n += sparse_.size();
  serialize::put(w, n);
  // Ascending sensor order: dense ids are all < kDenseLimit <= sparse ids,
  // so dense-then-sparse is already sorted.
  for (SensorId id = 0; id < dense_.size(); ++id) {
    const Entry& e = dense_[id];
    if (!e.filter) continue;
    serialize::put(w, id);
    serialize::put(w, e.raw_count);
    serialize::put(w, e.window_count);
    e.filter->save(w);
  }
  for (const auto& [id, e] : sparse_) {
    serialize::put(w, id);
    serialize::put(w, e.raw_count);
    serialize::put(w, e.window_count);
    e.filter->save(w);
  }
}

void AlarmBank::load(serialize::Reader& r) {
  serialize::expect(r, "alarm-bank");
  const auto n = serialize::get<std::size_t>(r);
  if (n > (1u << 26)) throw std::runtime_error("checkpoint: implausible alarm-bank size");
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = serialize::get<SensorId>(r);
    Entry& e = entry(id);  // stamps a fresh filter from the factory
    e.raw_count = serialize::get<std::size_t>(r);
    e.window_count = serialize::get<std::size_t>(r);
    e.filter->load(r);
  }
}

}  // namespace sentinel::core
