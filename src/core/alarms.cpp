#include "core/alarms.h"

#include <stdexcept>

namespace sentinel::core {

changepoint::AlarmFilterFactory make_filter_factory(const AlarmFilterConfig& cfg) {
  switch (cfg.kind) {
    case FilterKind::kKofN:
      return changepoint::make_kofn_factory(cfg.k, cfg.n);
    case FilterKind::kSprt: {
      changepoint::SprtConfig sc;
      sc.p0 = cfg.p0;
      sc.p1 = cfg.p1;
      sc.alpha = cfg.sprt_alpha;
      sc.beta = cfg.sprt_beta;
      return changepoint::make_sprt_factory(sc);
    }
    case FilterKind::kCusum: {
      changepoint::CusumConfig cc;
      cc.p0 = cfg.p0;
      cc.p1 = cfg.p1;
      cc.threshold = cfg.cusum_threshold;
      return changepoint::make_cusum_factory(cc);
    }
  }
  throw std::invalid_argument("make_filter_factory: unknown filter kind");
}

AlarmBank::AlarmBank(const AlarmFilterConfig& cfg) : factory_(make_filter_factory(cfg)) {}

AlarmUpdate AlarmBank::update(SensorId sensor, bool raw_alarm) {
  auto it = filters_.find(sensor);
  if (it == filters_.end()) it = filters_.emplace(sensor, factory_()).first;

  AlarmUpdate out;
  out.raw = raw_alarm;
  const bool before = it->second->active();
  out.filtered = it->second->update(raw_alarm);
  out.raised_edge = !before && out.filtered;
  out.cleared_edge = before && !out.filtered;

  if (raw_alarm) ++raw_counts_[sensor];
  ++window_counts_[sensor];
  return out;
}

bool AlarmBank::filtered_active(SensorId sensor) const {
  const auto it = filters_.find(sensor);
  return it != filters_.end() && it->second->active();
}

std::size_t AlarmBank::raw_count(SensorId sensor) const {
  const auto it = raw_counts_.find(sensor);
  return it == raw_counts_.end() ? 0 : it->second;
}

std::size_t AlarmBank::window_count(SensorId sensor) const {
  const auto it = window_counts_.find(sensor);
  return it == window_counts_.end() ? 0 : it->second;
}

}  // namespace sentinel::core
