// Observable / Correct state identification (paper section 3.1, eqs. (2)-(4)).
//
// Given a window's observation set and the current model states:
//  - the *observable* state o_i is the model state nearest the mean of all
//    observations (eq. (2)) -- what the network as a whole reports,
//  - each sensor representative maps to a model state l_j (eq. (3)),
//  - the *correct* state c_i is the model state holding the largest group of
//    observations (eq. (4)) -- valid under the paper's majority assumption:
//    the largest cluster of observations contains a majority of correct
//    sensors.

#pragma once

#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/model_states.h"
#include "trace/windower.h"

namespace sentinel::core {

struct WindowStates {
  StateId observable = 0;  // o_i
  StateId correct = 0;     // c_i
  /// l_j per sensor, ascending by sensor id (the windower's natural order).
  std::vector<std::pair<SensorId, StateId>> mapping;
  std::size_t majority_size = 0;  // |largest cluster|
  std::size_t sensors = 0;        // representatives in the window

  /// l_j of one sensor (binary search); throws if the sensor had no
  /// representative this window.
  StateId mapped(SensorId sensor) const;
};

/// Reusable buffers for identify_states_into; keeping one per pipeline makes
/// the per-window identification allocation-free in steady state.
struct StateIdentScratch {
  /// Storage slot (see ModelStateSet::map_slot) of each per-sensor
  /// representative, in mapping[] order. Valid until the model-state set is
  /// next mutated -- the pipeline hands these to update_labeled so eq. (5)
  /// reuses the eq. (3) labels instead of recomputing every distance.
  std::vector<std::size_t> point_slots;
  std::vector<std::size_t> cluster_sizes;  // per-slot representative counts
};

/// Identify o_i, c_i, and l_j for one window. Requires a nonempty window.
/// Ties in eq. (4) break toward the cluster containing the observable state,
/// then toward the smaller state id (deterministic).
WindowStates identify_states(const ObservationSet& window, const ModelStateSet& states);

/// Allocation-free variant: writes into `out` and `scratch` (cleared and
/// reused; their capacity persists across windows). `window_mean` must be
/// the window's overall mean (eq. (2) input), precomputed by the caller so
/// the same mean also serves the spawn pass.
///
/// `precomputed_slots`, when nonempty, must hold map_slot() of each
/// per-sensor representative (in per_sensor order) under the *current*
/// centroids -- e.g. from ModelStateSet::maybe_spawn_mapped when it created
/// no states -- and lets eq. (3) skip its distance scans entirely. Throws if
/// its size disagrees with the window's representative count.
void identify_states_into(const ObservationSet& window, const ModelStateSet& states,
                          std::span<const double> window_mean, WindowStates& out,
                          StateIdentScratch& scratch,
                          std::span<const std::size_t> precomputed_slots = {});

/// Flat-array variant for callers that already copied the representatives out
/// of the window (the pipeline's hot path): `sensors[j]`/`points[j]` must be
/// the per-sensor representatives in ascending sensor order. Identical
/// results to the ObservationSet overload, without re-walking its map.
void identify_states_into(std::span<const SensorId> sensors, std::span<const AttrVec> points,
                          const ModelStateSet& states, std::span<const double> window_mean,
                          WindowStates& out, StateIdentScratch& scratch,
                          std::span<const std::size_t> precomputed_slots = {});

}  // namespace sentinel::core
