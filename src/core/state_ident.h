// Observable / Correct state identification (paper section 3.1, eqs. (2)-(4)).
//
// Given a window's observation set and the current model states:
//  - the *observable* state o_i is the model state nearest the mean of all
//    observations (eq. (2)) -- what the network as a whole reports,
//  - each sensor representative maps to a model state l_j (eq. (3)),
//  - the *correct* state c_i is the model state holding the largest group of
//    observations (eq. (4)) -- valid under the paper's majority assumption:
//    the largest cluster of observations contains a majority of correct
//    sensors.

#pragma once

#include <map>
#include <vector>

#include "core/model_states.h"
#include "trace/windower.h"

namespace sentinel::core {

struct WindowStates {
  StateId observable = 0;                 // o_i
  StateId correct = 0;                    // c_i
  std::map<SensorId, StateId> mapping;    // l_j per sensor
  std::size_t majority_size = 0;          // |largest cluster|
  std::size_t sensors = 0;                // representatives in the window
};

/// Identify o_i, c_i, and l_j for one window. Requires a nonempty window.
/// Ties in eq. (4) break toward the cluster containing the observable state,
/// then toward the smaller state id (deterministic).
WindowStates identify_states(const ObservationSet& window, const ModelStateSet& states);

}  // namespace sentinel::core
