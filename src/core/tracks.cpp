#include "core/tracks.h"

#include <algorithm>

#include "util/serialize.h"

namespace sentinel::core {

void TrackManager::set_active_flag(SensorId sensor, bool active) {
  if (sensor >= kDenseLimit) return;
  if (sensor >= active_dense_.size()) {
    active_dense_.resize(std::max<std::size_t>(sensor + 1, active_dense_.size() * 2), 0);
  }
  active_dense_[sensor] = active ? 1 : 0;
}

void TrackManager::open(SensorId sensor, std::size_t window) {
  auto& list = tracks_[sensor];
  if (!list.empty() && list.back().active()) return;
  list.emplace_back(hmm_cfg_);
  list.back().opened_window = window;
  set_active_flag(sensor, true);
}

void TrackManager::close(SensorId sensor, std::size_t window) {
  const auto it = tracks_.find(sensor);
  if (it == tracks_.end() || it->second.empty()) return;
  auto& last = it->second.back();
  if (last.active()) last.closed_window = window;
  set_active_flag(sensor, false);
}

bool TrackManager::has_active_track(SensorId sensor) const {
  if (sensor < kDenseLimit) {
    return sensor < active_dense_.size() && active_dense_[sensor] != 0;
  }
  const auto it = tracks_.find(sensor);
  return it != tracks_.end() && !it->second.empty() && it->second.back().active();
}

void TrackManager::observe(SensorId sensor, hmm::StateId correct, hmm::StateId error_state) {
  const auto it = tracks_.find(sensor);
  if (it == tracks_.end() || it->second.empty() || !it->second.back().active()) return;
  auto& track = it->second.back();
  track.m_ce.observe(correct, error_state);
  ++track.observations;
  auto agg = aggregates_.find(sensor);
  if (agg == aggregates_.end()) agg = aggregates_.emplace(sensor, Aggregate(hmm_cfg_)).first;
  agg->second.m_ce.observe(correct, error_state);
  if (error_state != hmm::kBottomSymbol) {
    ++track.anomalous_observations;
    ++agg->second.anomalous;
  }
}

const std::vector<Track>* TrackManager::tracks(SensorId sensor) const {
  const auto it = tracks_.find(sensor);
  return it == tracks_.end() ? nullptr : &it->second;
}

const Track* TrackManager::best_track(SensorId sensor) const {
  const auto* list = tracks(sensor);
  if (list == nullptr || list->empty()) return nullptr;
  const Track* best = &list->front();
  for (const auto& t : *list) {
    if (t.anomalous_observations > best->anomalous_observations) best = &t;
  }
  return best;
}

const hmm::OnlineHmm* TrackManager::combined_m_ce(SensorId sensor) const {
  const auto it = aggregates_.find(sensor);
  return it == aggregates_.end() ? nullptr : &it->second.m_ce;
}

std::size_t TrackManager::total_anomalies(SensorId sensor) const {
  const auto it = aggregates_.find(sensor);
  return it == aggregates_.end() ? 0 : it->second.anomalous;
}

std::vector<SensorId> TrackManager::tracked_sensors() const {
  std::vector<SensorId> out;
  out.reserve(tracks_.size());
  for (const auto& [id, list] : tracks_) {
    if (!list.empty()) out.push_back(id);
  }
  return out;
}

std::size_t TrackManager::total_tracks() const {
  std::size_t n = 0;
  for (const auto& [id, list] : tracks_) n += list.size();
  return n;
}

void TrackManager::save(serialize::Writer& w) const {
  serialize::tag(w, "tracks");
  serialize::put(w, tracks_.size());
  for (const auto& [sensor, list] : tracks_) {
    serialize::put(w, sensor);
    serialize::put(w, list.size());
    for (const auto& t : list) {
      serialize::put(w, t.opened_window);
      serialize::put(w, t.closed_window.has_value());
      serialize::put(w, t.closed_window.value_or(0));
      serialize::put(w, t.observations);
      serialize::put(w, t.anomalous_observations);
      t.m_ce.save(w);
    }
  }
  serialize::put(w, aggregates_.size());
  for (const auto& [sensor, agg] : aggregates_) {
    serialize::put(w, sensor);
    serialize::put(w, agg.anomalous);
    agg.m_ce.save(w);
  }
  w.newline();
}

void TrackManager::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

TrackManager TrackManager::load(hmm::OnlineHmmConfig hmm_cfg, serialize::Reader& r) {
  serialize::expect(r, "tracks");
  TrackManager tm(hmm_cfg);
  const auto n_sensors = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < n_sensors; ++i) {
    const auto sensor = serialize::get<SensorId>(r);
    const auto n_tracks = serialize::get<std::size_t>(r);
    auto& list = tm.tracks_[sensor];
    for (std::size_t t = 0; t < n_tracks; ++t) {
      Track track(hmm_cfg);
      track.opened_window = serialize::get<std::size_t>(r);
      const bool closed = serialize::get_bool(r);
      const auto closed_at = serialize::get<std::size_t>(r);
      if (closed) track.closed_window = closed_at;
      track.observations = serialize::get<std::size_t>(r);
      track.anomalous_observations = serialize::get<std::size_t>(r);
      track.m_ce = hmm::OnlineHmm::load(hmm_cfg, r);
      list.push_back(std::move(track));
    }
    if (!list.empty() && list.back().active()) tm.set_active_flag(sensor, true);
  }
  const auto n_aggs = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < n_aggs; ++i) {
    const auto sensor = serialize::get<SensorId>(r);
    Aggregate agg(hmm_cfg);
    agg.anomalous = serialize::get<std::size_t>(r);
    agg.m_ce = hmm::OnlineHmm::load(hmm_cfg, r);
    tm.aggregates_.emplace(sensor, std::move(agg));
  }
  return tm;
}

TrackManager TrackManager::load(hmm::OnlineHmmConfig hmm_cfg, std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(hmm_cfg, *r);
}

}  // namespace sentinel::core
