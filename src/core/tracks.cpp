#include "core/tracks.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::core {

void TrackManager::set_active_flag(SensorId sensor, bool active) {
  if (sensor >= kDenseLimit) return;
  if (sensor >= active_dense_.size()) {
    active_dense_.resize(std::max<std::size_t>(sensor + 1, active_dense_.size() * 2), 0);
  }
  active_dense_[sensor] = active ? 1 : 0;
}

void TrackManager::set_active_track(SensorId sensor, Track* track) {
  if (sensor >= kDenseLimit) return;
  if (sensor >= active_track_dense_.size()) {
    active_track_dense_.resize(
        std::max<std::size_t>(sensor + 1, active_track_dense_.size() * 2), nullptr);
  }
  active_track_dense_[sensor] = track;
}

Track* TrackManager::active_track(SensorId sensor) {
  if (sensor < kDenseLimit) {
    return sensor < active_track_dense_.size() ? active_track_dense_[sensor] : nullptr;
  }
  const auto it = tracks_.find(sensor);
  if (it == tracks_.end() || it->second.empty() || !it->second.back().active()) return nullptr;
  return &it->second.back();
}

TrackManager::Aggregate& TrackManager::aggregate_for(SensorId sensor) {
  if (sensor < kDenseLimit) {
    if (sensor >= aggregate_dense_.size()) {
      aggregate_dense_.resize(
          std::max<std::size_t>(sensor + 1, aggregate_dense_.size() * 2), nullptr);
    }
    if (aggregate_dense_[sensor] == nullptr) {
      const auto it =
          aggregates_.emplace(sensor, Aggregate(hmm_cfg_, slab_.open_lane())).first;
      aggregate_dense_[sensor] = &it->second;
    }
    return *aggregate_dense_[sensor];
  }
  auto it = aggregates_.find(sensor);
  if (it == aggregates_.end()) {
    it = aggregates_.emplace(sensor, Aggregate(hmm_cfg_, slab_.open_lane())).first;
  }
  return it->second;
}

void TrackManager::open(SensorId sensor, std::size_t window) {
  auto& list = tracks_[sensor];
  if (!list.empty() && list.back().active()) return;
  list.emplace_back(hmm_cfg_);
  list.back().opened_window = window;
  list.back().lane = slab_.open_lane();
  set_active_flag(sensor, true);
  set_active_track(sensor, &list.back());
}

void TrackManager::close(SensorId sensor, std::size_t window) {
  const auto it = tracks_.find(sensor);
  if (it == tracks_.end() || it->second.empty()) return;
  auto& last = it->second.back();
  if (last.active()) {
    last.closed_window = window;
    if (last.lane != hmm::OnlineHmmSlab::kNoLane) {
      // A closing lane normally has nothing pending (the cleared edge
      // precedes this window's observes), but flush defensively so the
      // materialized M_CE is never behind.
      if (slab_.lane_has_pending(last.lane)) slab_.flush();
      last.m_ce = slab_.materialize(last.lane);
      slab_.free_lane(last.lane);
      last.lane = hmm::OnlineHmmSlab::kNoLane;
    }
  }
  set_active_flag(sensor, false);
  set_active_track(sensor, nullptr);
}

bool TrackManager::has_active_track(SensorId sensor) const {
  if (sensor < kDenseLimit) {
    return sensor < active_dense_.size() && active_dense_[sensor] != 0;
  }
  const auto it = tracks_.find(sensor);
  return it != tracks_.end() && !it->second.empty() && it->second.back().active();
}

void TrackManager::begin_window() { in_window_ = true; }

void TrackManager::flush_window() {
  slab_.flush();
  in_window_ = false;
}

void TrackManager::observe(SensorId sensor, hmm::StateId correct, hmm::StateId error_state) {
  Track* track = active_track(sensor);
  if (track == nullptr) return;
  slab_.observe(track->lane, correct, error_state);
  ++track->observations;
  Aggregate& agg = aggregate_for(sensor);
  slab_.observe(agg.lane, correct, error_state);
  agg.view_dirty = true;
  if (error_state != hmm::kBottomSymbol) {
    ++track->anomalous_observations;
    ++agg.anomalous;
  }
  if (!in_window_) slab_.flush();
}

const std::vector<Track>* TrackManager::tracks(SensorId sensor) const {
  const auto it = tracks_.find(sensor);
  return it == tracks_.end() ? nullptr : &it->second;
}

const Track* TrackManager::best_track(SensorId sensor) const {
  const auto* list = tracks(sensor);
  if (list == nullptr || list->empty()) return nullptr;
  const Track* best = &list->front();
  for (const auto& t : *list) {
    if (t.anomalous_observations > best->anomalous_observations) best = &t;
  }
  return best;
}

const hmm::OnlineHmm& TrackManager::refreshed_view(const Aggregate& agg) const {
  std::lock_guard<std::mutex> lock(agg.view_mu.get());
  if (agg.view_dirty) {
    if (slab_.lane_has_pending(agg.lane)) {
      throw std::logic_error("TrackManager: combined M_CE read inside an open window batch");
    }
    agg.view = slab_.materialize(agg.lane, /*eager_avg=*/true);
    agg.view_dirty = false;
  }
  return agg.view;
}

const hmm::OnlineHmm* TrackManager::combined_m_ce(SensorId sensor) const {
  const auto it = aggregates_.find(sensor);
  return it == aggregates_.end() ? nullptr : &refreshed_view(it->second);
}

std::size_t TrackManager::total_anomalies(SensorId sensor) const {
  const auto it = aggregates_.find(sensor);
  return it == aggregates_.end() ? 0 : it->second.anomalous;
}

std::vector<SensorId> TrackManager::tracked_sensors() const {
  std::vector<SensorId> out;
  out.reserve(tracks_.size());
  for (const auto& [id, list] : tracks_) {
    if (!list.empty()) out.push_back(id);
  }
  return out;
}

std::size_t TrackManager::total_tracks() const {
  std::size_t n = 0;
  for (const auto& [id, list] : tracks_) n += list.size();
  return n;
}

void TrackManager::save(serialize::Writer& w) const {
  if (slab_.has_pending()) {
    throw std::logic_error("TrackManager::save inside an open window batch");
  }
  serialize::tag(w, "tracks");
  serialize::put(w, tracks_.size());
  for (const auto& [sensor, list] : tracks_) {
    serialize::put(w, sensor);
    serialize::put(w, list.size());
    for (const auto& t : list) {
      serialize::put(w, t.opened_window);
      serialize::put(w, t.closed_window.has_value());
      serialize::put(w, t.closed_window.value_or(0));
      serialize::put(w, t.observations);
      serialize::put(w, t.anomalous_observations);
      if (t.lane != hmm::OnlineHmmSlab::kNoLane) {
        slab_.materialize(t.lane).save(w);
      } else {
        t.m_ce.save(w);
      }
    }
  }
  serialize::put(w, aggregates_.size());
  for (const auto& [sensor, agg] : aggregates_) {
    serialize::put(w, sensor);
    serialize::put(w, agg.anomalous);
    refreshed_view(agg).save(w);
  }
  w.newline();
}

void TrackManager::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

TrackManager TrackManager::load(hmm::OnlineHmmConfig hmm_cfg, serialize::Reader& r) {
  serialize::expect(r, "tracks");
  TrackManager tm(hmm_cfg);
  const auto n_sensors = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < n_sensors; ++i) {
    const auto sensor = serialize::get<SensorId>(r);
    const auto n_tracks = serialize::get<std::size_t>(r);
    auto& list = tm.tracks_[sensor];
    for (std::size_t t = 0; t < n_tracks; ++t) {
      Track track(hmm_cfg);
      track.opened_window = serialize::get<std::size_t>(r);
      const bool closed = serialize::get_bool(r);
      const auto closed_at = serialize::get<std::size_t>(r);
      if (closed) track.closed_window = closed_at;
      track.observations = serialize::get<std::size_t>(r);
      track.anomalous_observations = serialize::get<std::size_t>(r);
      track.m_ce = hmm::OnlineHmm::load(hmm_cfg, r);
      if (track.active()) {
        // An active track's live state moves into a slab lane; the record's
        // m_ce empties until close() materializes it back out.
        track.lane = tm.slab_.open_lane();
        tm.slab_.adopt(track.lane, track.m_ce);
        track.m_ce = hmm::OnlineHmm(hmm_cfg);
      }
      list.push_back(std::move(track));
    }
    if (!list.empty() && list.back().active()) {
      tm.set_active_flag(sensor, true);
      tm.set_active_track(sensor, &list.back());
    }
  }
  const auto n_aggs = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < n_aggs; ++i) {
    const auto sensor = serialize::get<SensorId>(r);
    Aggregate agg(hmm_cfg, tm.slab_.open_lane());
    agg.anomalous = serialize::get<std::size_t>(r);
    agg.view = hmm::OnlineHmm::load(hmm_cfg, r);
    tm.slab_.adopt(agg.lane, agg.view);
    agg.view_dirty = false;  // the loaded object IS the lane's current state
    const auto it = tm.aggregates_.emplace(sensor, std::move(agg)).first;
    if (sensor < kDenseLimit) {
      if (sensor >= tm.aggregate_dense_.size()) {
        tm.aggregate_dense_.resize(
            std::max<std::size_t>(sensor + 1, tm.aggregate_dense_.size() * 2), nullptr);
      }
      tm.aggregate_dense_[sensor] = &it->second;
    }
  }
  return tm;
}

TrackManager TrackManager::load(hmm::OnlineHmmConfig hmm_cfg, std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(hmm_cfg, *r);
}

}  // namespace sentinel::core
