#include "core/offline_kmeans.h"

#include <limits>
#include <stdexcept>

#include "util/vecn.h"

namespace sentinel::core {

namespace {

std::vector<AttrVec> kmeanspp_seed(const std::vector<AttrVec>& points, std::size_t k, Rng& rng) {
  std::vector<AttrVec> centroids;
  centroids.reserve(k);
  centroids.push_back(points[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) best = std::min(best, vecn::dist2(c, points[i]));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; fall back to uniform.
      centroids.push_back(points[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);
      continue;
    }
    double u = rng.uniform() * total;
    std::size_t pick = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (u < d2[i]) {
        pick = i;
        break;
      }
      u -= d2[i];
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<AttrVec>& points, std::size_t k, Rng& rng,
                    std::size_t max_iterations, double tol) {
  if (points.empty()) throw std::invalid_argument("kmeans: no points");
  if (k == 0 || k > points.size()) throw std::invalid_argument("kmeans: bad k");

  KMeansResult r;
  r.centroids = kmeanspp_seed(points, k, rng);
  r.assignment.assign(points.size(), 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    r.iterations = iter + 1;
    // Assignment step.
    r.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t a = vecn::nearest(r.centroids, points[i]);
      r.assignment[i] = a;
      r.inertia += vecn::dist2(r.centroids[a], points[i]);
    }
    // Update step.
    const std::size_t dims = points.front().size();
    std::vector<AttrVec> sums(k, AttrVec(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t a = r.assignment[i];
      for (std::size_t d = 0; d < dims; ++d) sums[a][d] += points[i][d];
      ++counts[a];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        r.centroids[c] = points[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))];
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        r.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (prev_inertia - r.inertia < tol) break;
    prev_inertia = r.inertia;
  }
  return r;
}

std::vector<AttrVec> random_initial_states(const std::vector<AttrVec>& points, std::size_t k,
                                           Rng& rng) {
  if (points.empty()) throw std::invalid_argument("random_initial_states: no points");
  const std::size_t dims = points.front().size();
  AttrVec lo(dims, std::numeric_limits<double>::infinity());
  AttrVec hi(dims, -std::numeric_limits<double>::infinity());
  for (const auto& p : points) {
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  std::vector<AttrVec> out(k, AttrVec(dims));
  for (auto& c : out) {
    for (std::size_t d = 0; d < dims; ++d) c[d] = rng.uniform(lo[d], hi[d]);
  }
  return out;
}

}  // namespace sentinel::core
