// Error vs attack classification by structural analysis of the HMMs
// (paper section 3.4, Fig. 5).
//
// Network level (B^CO of M_CO):
//   - two *columns* not orthogonal  => a correct state is associated with
//     multiple observable states     => Dynamic Creation attack;
//   - two *rows* not orthogonal     => multiple correct states share an
//     observable state               => Dynamic Deletion attack;
//   - both                           => Mixed attack;
//   - orthogonal but a correct state maps to an observable state with
//     different attributes           => Dynamic Change attack.
//
// Sensor level (B^CE of the sensor's track, bottom symbol excluded):
//   - one shared column of ~all ones => Stuck-at error;
//   - rows/columns orthogonal (one-to-one c <-> e) with constant attribute
//     ratio      => Calibration error;  constant difference => Additive error;
//   - neither    => re-check Dynamic Change, else Unknown (a Random-Noise
//     error produces a diffuse B^CE and is reported as such -- the paper
//     notes it cannot be reliably separated from error-free operation).

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/report.h"
#include "hmm/online_hmm.h"
#include "util/matrix.h"

namespace sentinel::core {

/// Resolves a model-state id to its (current) centroid attributes.
using CentroidLookup = std::function<std::optional<AttrVec>(hmm::StateId)>;

/// An emission matrix restricted to significant rows/columns and
/// row-renormalized; the substrate on which all structural tests run.
struct FilteredEmission {
  std::vector<hmm::StateId> hidden;   // row ids, in row order
  std::vector<hmm::StateId> symbols;  // column ids, in column order
  Matrix b;                           // rows renormalized to sum to 1

  bool empty() const { return b.rows() == 0 || b.cols() == 0; }
};

/// Restrict an online HMM's emission matrix.
///  - hidden_keep: hidden-state ids to retain (empty = all);
///  - drop_bottom: remove the fictitious bottom column (B^CE analysis); rows
///    that keep less than cfg.min_row_mass afterwards are dropped;
///  - columns with total mass below cfg.min_symbol_mass are dropped as
///    spurious.
FilteredEmission filter_emission(const hmm::OnlineHmm& m,
                                 const std::vector<hmm::StateId>& hidden_keep, bool drop_bottom,
                                 const ClassifierConfig& cfg);

/// Row/column orthogonality analysis of a filtered emission matrix.
OrthogonalityReport orthogonality(const FilteredEmission& f, const ClassifierConfig& cfg);

/// Network-level classification from M_CO.
/// significant_hidden: correct-state ids with enough occupancy (spurious
/// states excluded); empty = all.
/// implicated_sensors: how many sensors currently hold diagnosable
/// error/attack tracks. Attack verdicts require at least
/// cfg.min_implicated_sensors of them -- a lone sensor can only bias the
/// network mean by ~range/K, which is the error regime, so its distortion of
/// B^CO is classified through its B^CE instead (see ClassifierConfig).
Diagnosis classify_network(const hmm::OnlineHmm& m_co,
                           const std::vector<hmm::StateId>& significant_hidden,
                           const CentroidLookup& centroid, const ClassifierConfig& cfg,
                           std::size_t implicated_sensors);

/// Sensor-level classification from a track's M_CE, in the context of the
/// network-level diagnosis. An attack verdict propagates only to sensors
/// that are members of the attacking coalition (`coalition_member`); other
/// sensors -- e.g. one with an independent calibration fault during an
/// unrelated attack -- are still diagnosed through their own B^CE.
/// significant_hidden restricts the correct-state rows like in
/// classify_network (empty = all).
Diagnosis classify_sensor(const hmm::OnlineHmm& m_ce, const Diagnosis& network,
                          bool coalition_member,
                          const std::vector<hmm::StateId>& significant_hidden,
                          const CentroidLookup& centroid, const ClassifierConfig& cfg);

}  // namespace sentinel::core
