// Offline k-means, used to produce the initial model-state estimate S_o from
// historical data (paper section 4.1: "an initial set estimate of 6 states
// determined by running an off-line clustering algorithm on the entire
// data"). Lloyd's algorithm with k-means++ seeding.

#pragma once

#include <cstddef>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"

namespace sentinel::core {

struct KMeansResult {
  std::vector<AttrVec> centroids;
  std::vector<std::size_t> assignment;  // per input point
  double inertia = 0.0;                 // sum of squared distances
  std::size_t iterations = 0;
};

/// Throws if points is empty, k == 0, or k > points.size().
KMeansResult kmeans(const std::vector<AttrVec>& points, std::size_t k, Rng& rng,
                    std::size_t max_iterations = 100, double tol = 1e-6);

/// Convenience: k random points in the bounding box of the data ("this
/// initial estimate can be completely random", section 4.1).
std::vector<AttrVec> random_initial_states(const std::vector<AttrVec>& points, std::size_t k,
                                           Rng& rng);

}  // namespace sentinel::core
