// Alarm Generation + Alarm Filtering (paper section 3.1).
//
// A raw alarm a^j fires for sensor j in window i when the sensor's reading
// does not belong to the correct state (l_j != c_i). The AlarmBank keeps one
// AlarmFilter per sensor (k-of-n, SPRT, or CUSUM per configuration) and turns
// the raw stream into filtered alarms b^j; filtered raise/clear edges drive
// the error/attack track manager.

#pragma once

#include <map>
#include <vector>

#include "changepoint/alarm_filter.h"
#include "changepoint/cusum.h"
#include "changepoint/kofn.h"
#include "changepoint/sprt.h"
#include "core/config.h"
#include "trace/record.h"
#include "util/serialize_fwd.h"

namespace sentinel::core {

/// Build the configured filter factory.
changepoint::AlarmFilterFactory make_filter_factory(const AlarmFilterConfig& cfg);

struct AlarmUpdate {
  bool raw = false;
  bool filtered = false;
  bool raised_edge = false;   // filtered went inactive -> active this window
  bool cleared_edge = false;  // filtered went active -> inactive this window
};

class AlarmBank {
 public:
  explicit AlarmBank(const AlarmFilterConfig& cfg);

  /// Feed the raw alarm for one sensor in the current window.
  AlarmUpdate update(SensorId sensor, bool raw_alarm);

  bool filtered_active(SensorId sensor) const;

  /// Cumulative raw-alarm statistics per sensor (Fig. 12 accounting).
  std::size_t raw_count(SensorId sensor) const;
  std::size_t window_count(SensorId sensor) const;

  /// Persist / restore every seen sensor's filter state and counters (the
  /// resumable-checkpoint section; filters themselves write their kind tag,
  /// so a filter-config mismatch fails loudly on load). load() expects to
  /// run on a bank built from the same AlarmFilterConfig.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  /// One entry per sensor: filter + counters live together so the hot
  /// update() touches a single entry per sensor per window.
  struct Entry {
    changepoint::AlarmFilterPtr filter;  // null = sensor never seen (dense slots)
    std::size_t raw_count = 0;
    std::size_t window_count = 0;
  };

  /// Small sensor ids (every real deployment) index a flat vector -- update()
  /// is then array indexing instead of a tree walk; pathological ids fall
  /// back to the ordered map.
  static constexpr SensorId kDenseLimit = 1u << 16;

  Entry& entry(SensorId sensor);
  const Entry* find_entry(SensorId sensor) const;

  changepoint::AlarmFilterFactory factory_;
  std::vector<Entry> dense_;
  std::map<SensorId, Entry> sparse_;
};

}  // namespace sentinel::core
