#include "core/checkpoint_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "util/fault_test.h"

namespace sentinel::core {

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestTag = "sentinel-manifest-v1";

bool is_plain(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-';
}

/// Percent-escape into a nonempty, whitespace-free token. The empty string
/// encodes as a lone "%" (no hex digits follow, so it cannot collide with an
/// escaped byte).
std::string escape(std::string_view s) {
  if (s.empty()) return "%";
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (is_plain(c)) {
      out += c;
    } else {
      const auto b = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[b >> 4];
      out += kHex[b & 0xF];
    }
  }
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Inverse of escape(). False on malformed input (a torn manifest).
bool unescape(std::string_view tok, std::string& out) {
  out.clear();
  if (tok == "%") return true;  // the empty-string marker
  for (std::size_t i = 0; i < tok.size();) {
    if (tok[i] != '%') {
      out += tok[i++];
      continue;
    }
    if (i + 3 > tok.size()) return false;
    const int hi = hex_digit(tok[i + 1]);
    const int lo = hex_digit(tok[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>((hi << 4) | lo);
    i += 3;
  }
  return true;
}

bool full_write(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

util::Status io_error(const std::string& what, const std::string& path) {
  return util::Status(util::StatusCode::kInternal,
                      "checkpoint store: " + what + " " + path + ": " + std::strerror(errno));
}

util::Status torn(const std::string& what) {
  return util::Status(util::StatusCode::kDataLoss, "checkpoint store: " + what);
}

bool parse_u64(std::string_view tok, std::uint64_t& v, int base = 10) {
  const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v, base);
  return ec == std::errc() && end == tok.data() + tok.size();
}

std::string hex64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::uint64_t CheckpointStore::fnv1a(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string CheckpointStore::sanitize(const std::string& region) { return escape(region); }

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("checkpoint store: cannot create directory " + dir_ +
                             (ec ? ": " + ec.message() : ""));
  }
  // Continue the committed epoch sequence when the store already exists. A
  // missing or corrupt manifest leaves the fresh (epoch 0) state: writers
  // start over, and readers see the corruption from their own load_manifest().
  auto existing = load_manifest();
  if (existing.is_ok()) manifest_ = std::move(existing.value());
}

util::Result<CheckpointManifest> CheckpointStore::load_manifest() const {
  const std::string path = dir_ + "/" + kManifestName;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status(util::StatusCode::kNotFound, "checkpoint store: no manifest in " + dir_);
  }
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return torn("manifest read error: " + path);

  // The manifest ends with "end <fnv1a-hex>" over every preceding byte; a
  // torn tail either loses that line (no match) or fails the checksum.
  const std::size_t end_pos = all.rfind("\nend ");
  if (end_pos == std::string::npos) return torn("manifest missing checksum line: " + path);
  const std::string_view body(all.data(), end_pos + 1);  // includes the '\n'
  std::string_view tail(all.data() + end_pos + 1, all.size() - end_pos - 1);
  tail.remove_prefix(4);  // "end "
  // Strict: the checksum line must be newline-terminated, so removing even
  // the final byte of a committed manifest reads as torn.
  if (tail.empty() || tail.back() != '\n') {
    return torn("manifest checksum line not terminated (torn): " + path);
  }
  tail.remove_suffix(1);
  std::uint64_t declared = 0;
  if (!parse_u64(tail, declared, 16) || declared != fnv1a(body)) {
    return torn("manifest checksum mismatch (torn or corrupt): " + path);
  }

  CheckpointManifest m;
  std::istringstream lines{std::string(body)};
  std::string line;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (!saw_header) {
      if (kind != kManifestTag) return torn("manifest bad header: " + path);
      saw_header = true;
      continue;
    }
    if (kind == "epoch") {
      if (!(ls >> m.epoch)) return torn("manifest bad epoch line: " + path);
    } else if (kind == "region") {
      std::string name_tok, file_tok, crc_tok, msg_tok;
      std::uint64_t health = 0, code = 0;
      RegionCheckpointMeta meta;
      if (!(ls >> name_tok >> meta.epoch >> file_tok >> meta.bytes >> crc_tok >>
            meta.records_applied >> health >> code >> msg_tok >> meta.records_dropped >>
            meta.malformed.bad_field_count >> meta.malformed.dims_mismatch >>
            meta.malformed.bad_sensor_id >> meta.malformed.bad_number >> meta.comment_lines)) {
        return torn("manifest bad region line: " + path);
      }
      // Optional trailing field (absent in pre-screen-tier manifests).
      if (!(ls >> meta.escalated_sensors)) meta.escalated_sensors = 0;
      std::string name, msg;
      if (!unescape(name_tok, name) || !unescape(file_tok, meta.file) ||
          !unescape(msg_tok, msg) || !parse_u64(crc_tok, meta.checksum, 16)) {
        return torn("manifest bad region token: " + path);
      }
      if (health > static_cast<std::uint64_t>(RegionHealth::kQuarantined) ||
          code > static_cast<std::uint64_t>(util::StatusCode::kInternal)) {
        return torn("manifest out-of-range enum: " + path);
      }
      meta.health = static_cast<RegionHealth>(health);
      meta.status = code == 0 ? util::Status()
                              : util::Status(static_cast<util::StatusCode>(code), std::move(msg));
      m.regions.emplace(std::move(name), std::move(meta));
    } else {
      return torn("manifest unknown line kind '" + kind + "': " + path);
    }
  }
  if (!saw_header) return torn("manifest empty: " + path);
  return m;
}

util::Status CheckpointStore::write_file_atomic(const std::string& final_name,
                                                std::string_view bytes, bool region_points) {
  namespace fault = util::fault;
  const std::string final_path = dir_ + "/" + final_name;
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("cannot create", tmp_path);
  if (region_points) SENTINEL_FAULT_POINT(fault::kRegionTempOpen);

  // Two-chunk write so the temp-write fault point sits mid-file: the torn
  // temp a crash leaves behind is genuinely partial, not merely empty.
  const std::size_t head = bytes.size() < 64 ? bytes.size() : 64;
  bool ok = full_write(fd, bytes.data(), head);
  if (ok) {
    SENTINEL_FAULT_POINT(region_points ? fault::kRegionTempWrite : fault::kManifestTempWrite);
    ok = full_write(fd, bytes.data() + head, bytes.size() - head);
  }
  if (!ok) {
    const util::Status s = io_error("write failed for", tmp_path);
    ::close(fd);
    return s;
  }

  SENTINEL_FAULT_POINT(region_points ? fault::kRegionPreSync : fault::kManifestPreSync);
  if (::fsync(fd) != 0) {
    const util::Status s = io_error("fsync failed for", tmp_path);
    ::close(fd);
    return s;
  }
  if (::close(fd) != 0) return io_error("close failed for", tmp_path);

  SENTINEL_FAULT_POINT(region_points ? fault::kRegionPreRename : fault::kManifestPreRename);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return io_error("rename failed for", tmp_path);
  }
  // The rename is only durable once the directory entry is; fsync the dir.
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return io_error("cannot open directory", dir_);
  if (::fsync(dfd) != 0) {
    const util::Status s = io_error("fsync failed for directory", dir_);
    ::close(dfd);
    return s;
  }
  ::close(dfd);
  SENTINEL_FAULT_POINT(region_points ? fault::kRegionPostRename : fault::kManifestPostRename);
  return util::Status::ok();
}

util::Status CheckpointStore::commit_manifest() {
  std::ostringstream os;
  os << kManifestTag << '\n';
  os << "epoch " << manifest_.epoch << '\n';
  for (const auto& [name, meta] : manifest_.regions) {
    os << "region " << escape(name) << ' ' << meta.epoch << ' ' << escape(meta.file) << ' '
       << meta.bytes << ' ' << hex64(meta.checksum) << ' ' << meta.records_applied << ' '
       << static_cast<int>(meta.health) << ' ' << static_cast<int>(meta.status.code()) << ' '
       << escape(meta.status.message()) << ' ' << meta.records_dropped << ' '
       << meta.malformed.bad_field_count << ' ' << meta.malformed.dims_mismatch << ' '
       << meta.malformed.bad_sensor_id << ' ' << meta.malformed.bad_number << ' '
       << meta.comment_lines << ' ' << meta.escalated_sensors << '\n';
  }
  const std::string body = os.str();
  const std::string full = body + "end " + hex64(fnv1a(body)) + "\n";
  return write_file_atomic(kManifestName, full, /*region_points=*/false);
}

util::Status CheckpointStore::commit_region(const std::string& region,
                                            const DetectionPipeline& pipeline,
                                            RegionCheckpointMeta& meta) {
  // Serialize to memory first: a serialization failure (exception) must
  // escape before any disk state is touched.
  std::ostringstream os;
  pipeline.save_checkpoint(os, serialize::Format::kBinary, CheckpointScope::kResumable);
  return commit_region_bytes(region, os.str(), meta);
}

util::Status CheckpointStore::commit_region_bytes(const std::string& region,
                                                  std::string_view bytes,
                                                  RegionCheckpointMeta& meta) {
  const std::uint64_t new_epoch = manifest_.epoch + 1;
  meta.epoch = new_epoch;
  meta.file = sanitize(region) + ".e" + std::to_string(new_epoch) + ".ckpt";
  meta.bytes = bytes.size();
  meta.checksum = fnv1a(bytes);

  // 2. Region file: temp + fsync + rename + dir fsync.
  if (util::Status s = write_file_atomic(meta.file, bytes, /*region_points=*/true); !s.is_ok()) {
    return s;
  }

  // 3. Manifest naming the new epoch. In-memory state mutates first and rolls
  //    back on failure so it always mirrors the manifest committed on disk.
  const CheckpointManifest prev = manifest_;
  std::string old_file;
  if (const auto it = manifest_.regions.find(region); it != manifest_.regions.end()) {
    old_file = it->second.file;
  }
  manifest_.epoch = new_epoch;
  manifest_.regions[region] = meta;
  if (util::Status s = commit_manifest(); !s.is_ok()) {
    manifest_ = prev;
    return s;
  }

  // 4. Garbage-collect the superseded epoch -- only now, after the manifest
  //    stopped naming it. Failure is harmless (an invisible orphan).
  if (!old_file.empty() && old_file != meta.file) {
    ::unlink((dir_ + "/" + old_file).c_str());
  }
  return util::Status::ok();
}

util::Status CheckpointStore::read_region(const RegionCheckpointMeta& meta,
                                          std::string& out) const {
  const std::string path = dir_ + "/" + meta.file;
  std::ifstream in(path, std::ios::binary);
  if (!in) return torn("missing region checkpoint " + path);
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  if (in.bad()) return torn("read error for region checkpoint " + path);
  if (out.size() != meta.bytes) {
    return torn("region checkpoint " + path + " is " + std::to_string(out.size()) +
                " bytes, manifest committed " + std::to_string(meta.bytes) + " (torn write?)");
  }
  if (fnv1a(out) != meta.checksum) {
    return torn("region checkpoint " + path + " fails its checksum (corrupt)");
  }
  return util::Status::ok();
}

}  // namespace sentinel::core
