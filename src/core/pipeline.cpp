#include "core/pipeline.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::core {

namespace {

hmm::OnlineHmmConfig hmm_config(const PipelineConfig& cfg) {
  hmm::OnlineHmmConfig hc;
  hc.beta = cfg.beta;
  hc.gamma = cfg.gamma;
  return hc;
}

}  // namespace

DetectionPipeline::DetectionPipeline(PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      states_(cfg_.model_states, cfg_.initial_states),
      windower_(cfg_.window_seconds),
      alarms_(cfg_.alarm_filter),
      tracks_(hmm_config(cfg_)),
      m_co_(hmm_config(cfg_)) {
  if (cfg_.min_sensors_per_window == 0) {
    throw std::invalid_argument("DetectionPipeline: min_sensors_per_window must be >= 1");
  }
}

DetectionPipeline::DetectionPipeline(PipelineConfig cfg, std::istream& checkpoint)
    : DetectionPipeline(std::move(cfg)) {
  serialize::expect(checkpoint, "sentinel-checkpoint-v1");
  states_ = ModelStateSet::load(cfg_.model_states, checkpoint);
  m_co_ = hmm::OnlineHmm::load(hmm_config(cfg_), checkpoint);
  m_c_ = hmm::MarkovChain::load(checkpoint);
  m_o_ = hmm::MarkovChain::load(checkpoint);
  tracks_ = TrackManager::load(hmm_config(cfg_), checkpoint);
  const bool has_prev_c = serialize::get_bool(checkpoint);
  const auto prev_c = serialize::get<StateId>(checkpoint);
  if (has_prev_c) prev_correct_ = prev_c;
  const bool has_prev_o = serialize::get_bool(checkpoint);
  const auto prev_o = serialize::get<StateId>(checkpoint);
  if (has_prev_o) prev_observable_ = prev_o;
  windows_skipped_ = serialize::get<std::size_t>(checkpoint);
}

void DetectionPipeline::save_checkpoint(std::ostream& os) const {
  serialize::tag(os, "sentinel-checkpoint-v1");
  states_.save(os);
  m_co_.save(os);
  m_c_.save(os);
  m_o_.save(os);
  tracks_.save(os);
  serialize::put(os, prev_correct_.has_value());
  serialize::put(os, prev_correct_.value_or(0));
  serialize::put(os, prev_observable_.has_value());
  serialize::put(os, prev_observable_.value_or(0));
  serialize::put(os, windows_skipped_);
  os << '\n';
}

void DetectionPipeline::add_record(const SensorRecord& rec) {
  for (const auto& window : windower_.add(rec)) process_window(window);
}

void DetectionPipeline::finish() {
  if (auto last = windower_.flush()) process_window(*last);
}

void DetectionPipeline::process_trace(const std::vector<SensorRecord>& records) {
  for (const auto& window : window_trace(records, cfg_.window_seconds)) {
    process_window(window);
  }
}

void DetectionPipeline::process_window(const ObservationSet& window) {
  if (window.per_sensor.size() < cfg_.min_sensors_per_window) {
    ++windows_skipped_;
    return;
  }

  // Per-sensor representatives drive every step: each sensor gets one vote
  // per window, so a chatty sensor cannot outvote the rest.
  std::vector<AttrVec> points;
  points.reserve(window.per_sensor.size());
  for (const auto& [id, p] : window.per_sensor) points.push_back(p);

  // (1) Make fresh regimes representable before mapping (section 3.1's
  // "creating a new state s_{M+1} = p_j"). The window mean is a spawn
  // candidate too: under a coalition attack the network-level observable
  // (eq. 2 maps the mean) can sit far from every individual reading -- the
  // fabricated state of a Dynamic Creation attack must become a model state
  // for B^CO to expose it.
  std::vector<AttrVec> spawn_candidates = points;
  spawn_candidates.push_back(window.overall_mean());
  states_.maybe_spawn(spawn_candidates);

  // (2) o_i, c_i, l_j.
  const WindowStates ws = identify_states(window, states_);

  WindowSummary summary;
  summary.window_index = window.window_index;
  summary.window_start = window.window_start;
  summary.observable = ws.observable;
  summary.correct = ws.correct;
  summary.majority_size = ws.majority_size;

  // (3) Alarms and tracks.
  for (const auto& [sensor, l] : ws.mapping) {
    const bool raw = l != ws.correct;
    const AlarmUpdate u = alarms_.update(sensor, raw);
    if (u.raised_edge) tracks_.open(sensor, window.window_index);
    if (u.cleared_edge) tracks_.close(sensor, window.window_index);

    if (tracks_.has_active_track(sensor)) {
      const StateId e = raw ? l : hmm::kBottomSymbol;
      tracks_.observe(sensor, ws.correct, e);
    }

    SensorWindowInfo info;
    info.mapped = l;
    info.raw_alarm = raw;
    info.filtered_alarm = u.filtered;
    summary.sensors.emplace(sensor, info);
  }

  // (4) Network HMM M_CO.
  m_co_.observe(ws.correct, ws.observable);

  // (5) Markov models M_C and M_O.
  if (prev_correct_) {
    m_c_.add_transition(*prev_correct_, ws.correct);
  } else {
    m_c_.add_visit(ws.correct);
  }
  if (prev_observable_) {
    m_o_.add_transition(*prev_observable_, ws.observable);
  } else {
    m_o_.add_visit(ws.observable);
  }
  prev_correct_ = ws.correct;
  prev_observable_ = ws.observable;

  // (6) Centroid EMA update + merge.
  states_.update(points);

  history_.push_back(std::move(summary));
}

DetectionPipeline::CoalitionInfo DetectionPipeline::coalition() const {
  // A coalition steers the network mean by injecting the *same* value, so
  // its members' error tracks share a dominant error state; two independent
  // faulty sensors (the GDI data's sensors 6 and 7) do not. The coalition is
  // the largest group of implicated sensors whose cumulative track evidence
  // peaks on the same (merge-resolved) error state.
  std::map<StateId, std::set<SensorId>> by_dominant;
  for (const SensorId sensor : tracks_.tracked_sensors()) {
    if (tracks_.total_anomalies(sensor) < cfg_.classifier.min_track_anomalies) continue;
    const hmm::OnlineHmm* m_ce = tracks_.combined_m_ce(sensor);
    if (m_ce == nullptr) continue;
    std::map<StateId, double> symbol_mass;
    const auto& ids = m_ce->symbols();
    const auto& totals = m_ce->symbol_totals();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == hmm::kBottomSymbol) continue;
      symbol_mass[states_.resolve(ids[i])] += totals[i];
    }
    if (symbol_mass.empty()) continue;
    const auto dominant = std::max_element(
        symbol_mass.begin(), symbol_mass.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    by_dominant[dominant->first].insert(sensor);
  }

  CoalitionInfo info;
  for (auto& [state, sensors] : by_dominant) {
    if (sensors.size() > info.size) {
      info.size = sensors.size();
      info.dominant_error_state = state;
      info.members = std::move(sensors);
    }
  }
  return info;
}

std::vector<StateId> DetectionPipeline::correct_sequence() const {
  std::vector<StateId> out;
  out.reserve(history_.size());
  for (const auto& w : history_) out.push_back(w.correct);
  return out;
}

hmm::MarkovChain DetectionPipeline::correct_model() const {
  return m_c_.pruned(cfg_.classifier.min_occupancy);
}

const hmm::OnlineHmm* DetectionPipeline::m_ce(SensorId sensor) const {
  return tracks_.combined_m_ce(sensor);
}

std::vector<StateId> DetectionPipeline::significant_states() const {
  // Occupancy prunes spurious states (the paper's low-probability
  // fluctuation states); merged-away ids are dropped too -- their role was
  // taken over by the surviving state, and keeping both would double-count
  // the same physical regime during the structural analysis.
  std::vector<StateId> out;
  const auto ids = m_c_.states();
  const auto occ = m_c_.occupancy();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (occ[i] >= cfg_.classifier.min_occupancy && states_.is_active(ids[i])) {
      out.push_back(ids[i]);
    }
  }
  return out;
}

CentroidLookup DetectionPipeline::centroid_lookup() const {
  return [this](StateId id) { return states_.centroid(id); };
}

Diagnosis DetectionPipeline::diagnose_network() const {
  return classify_network(m_co_, significant_states(), centroid_lookup(), cfg_.classifier,
                          coalition_size());
}

std::map<SensorId, Diagnosis> DetectionPipeline::diagnose_sensors() const {
  const Diagnosis network = diagnose_network();
  const CoalitionInfo coal = coalition();
  std::map<SensorId, Diagnosis> out;
  for (const SensorId sensor : tracks_.tracked_sensors()) {
    if (tracks_.total_anomalies(sensor) < cfg_.classifier.min_track_anomalies) {
      continue;  // transient glitch, not diagnosable
    }
    const hmm::OnlineHmm* m = tracks_.combined_m_ce(sensor);
    if (m == nullptr) continue;
    const bool member = coal.members.find(sensor) != coal.members.end();
    out.emplace(sensor, classify_sensor(*m, network, member, significant_states(),
                                        centroid_lookup(), cfg_.classifier));
  }
  return out;
}

DiagnosisReport DetectionPipeline::diagnose() const {
  DiagnosisReport report;
  report.network = diagnose_network();
  report.sensors = diagnose_sensors();
  return report;
}

}  // namespace sentinel::core
