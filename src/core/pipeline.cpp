#include "core/pipeline.h"

#include <algorithm>
#include <istream>
#include <mutex>
#include <ostream>
#include <span>
#include <stdexcept>

#include "util/metrics.h"
#include "util/serialize.h"
#include "util/vecn.h"

namespace sentinel::core {

namespace {

hmm::OnlineHmmConfig hmm_config(const PipelineConfig& cfg) {
  hmm::OnlineHmmConfig hc;
  hc.beta = cfg.beta;
  hc.gamma = cfg.gamma;
  return hc;
}

// Stage-timer bucket bounds: 250 ns .. ~4 ms, geometric. All pipelines share
// the same named histograms in the global registry; the registry rejects a
// bounds mismatch, so resolve them through one helper.
util::Histogram& stage_histogram(const char* name) {
  return util::metrics().histogram(
      name, util::Histogram::exponential_bounds(250, 2.0, 14));
}

}  // namespace

DetectionPipeline::DetectionPipeline(PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      states_(cfg_.model_states, cfg_.initial_states),
      windower_(WindowerConfig{cfg_.window_seconds, cfg_.keep_raw}),
      alarms_(cfg_.alarm_filter),
      tracks_(hmm_config(cfg_)),
      m_co_(hmm_config(cfg_)) {
  if (cfg_.min_sensors_per_window == 0) {
    throw std::invalid_argument("DetectionPipeline: min_sensors_per_window must be >= 1");
  }
  if (cfg_.screen.mode != screen::ScreenMode::kOff) {
    screens_ = std::make_unique<screen::ScreenBank>(cfg_.screen);
  }
  if (cfg_.stage_timers) {
    if (screens_ != nullptr) t_screen_ = &stage_histogram("pipeline.stage.screen_ns");
    t_spawn_ = &stage_histogram("pipeline.stage.spawn_ns");
    t_identify_ = &stage_histogram("pipeline.stage.identify_ns");
    t_alarms_ = &stage_histogram("pipeline.stage.alarms_ns");
    t_hmm_ = &stage_histogram("pipeline.stage.hmm_ns");
    t_centroid_ = &stage_histogram("pipeline.stage.centroid_ns");
  }
}

DetectionPipeline::DetectionPipeline(PipelineConfig cfg, std::istream& checkpoint)
    : DetectionPipeline(std::move(cfg)) {
  // Codec negotiated by the first byte: binary checkpoints open with the
  // serialize magic, text ones with the human-readable version tag.
  const auto format = serialize::detect_format(checkpoint);
  const auto r = serialize::make_reader(checkpoint);
  serialize::expect(*r, "sentinel-checkpoint-v1");
  states_ = ModelStateSet::load(cfg_.model_states, *r);
  m_co_ = hmm::OnlineHmm::load(hmm_config(cfg_), *r);
  m_c_ = hmm::MarkovChain::load(*r);
  m_o_ = hmm::MarkovChain::load(*r);
  tracks_ = TrackManager::load(hmm_config(cfg_), *r);
  const bool has_prev_c = serialize::get_bool(*r);
  const auto prev_c = serialize::get<StateId>(*r);
  if (has_prev_c) prev_correct_ = prev_c;
  const bool has_prev_o = serialize::get_bool(*r);
  const auto prev_o = serialize::get<StateId>(*r);
  if (has_prev_o) prev_observable_ = prev_o;
  windows_skipped_ = serialize::get<std::size_t>(*r);

  // A kResumable checkpoint appends a second section after the v1 payload;
  // detect it by peeking past the end (text checkpoints end in whitespace,
  // which must be consumed first -- binary bytes are position-exact).
  if (format == serialize::Format::kText) checkpoint >> std::ws;
  if (checkpoint.peek() != std::char_traits<char>::eof()) {
    serialize::expect(*r, "sentinel-resume-v1");
    windower_.load(*r);
    alarms_.load(*r);
    windows_processed_ = serialize::get<std::size_t>(*r);
    raw_alarms_ = serialize::get<std::size_t>(*r);
    filtered_alarms_ = serialize::get<std::size_t>(*r);
    track_opens_ = serialize::get<std::size_t>(*r);
    track_closes_ = serialize::get<std::size_t>(*r);
    hmm_updates_ = serialize::get<std::size_t>(*r);

    // A screened pipeline appends a third section. A checkpoint without one
    // (pre-screen bytes, or written with screening off) resumes with a fresh
    // bank -- every sensor restarts escalated, which is safe. The reverse
    // (screen bytes, screening off) fails loudly: silently dropping state a
    // config mismatch cannot interpret would mask a deployment error.
    if (format == serialize::Format::kText) checkpoint >> std::ws;
    if (checkpoint.peek() != std::char_traits<char>::eof()) {
      serialize::expect(*r, "sentinel-screen-v1");
      if (screens_ == nullptr) {
        throw std::runtime_error(
            "checkpoint carries screen-tier state but PipelineConfig::screen.mode is off");
      }
      screens_->load(*r);
    }
  }
  diag_cache_.reset();
}

void DetectionPipeline::save_checkpoint(std::ostream& os, serialize::Format format,
                                        CheckpointScope scope) const {
  const auto w = serialize::make_writer(os, format);
  serialize::tag(*w, "sentinel-checkpoint-v1");
  states_.save(*w);
  m_co_.save(*w);
  m_c_.save(*w);
  m_o_.save(*w);
  tracks_.save(*w);
  serialize::put(*w, prev_correct_.has_value());
  serialize::put(*w, prev_correct_.value_or(0));
  serialize::put(*w, prev_observable_.has_value());
  serialize::put(*w, prev_observable_.value_or(0));
  serialize::put(*w, windows_skipped_);
  w->newline();
  if (scope == CheckpointScope::kResumable) {
    serialize::tag(*w, "sentinel-resume-v1");
    windower_.save(*w);
    alarms_.save(*w);
    serialize::put(*w, windows_processed_);
    serialize::put(*w, raw_alarms_);
    serialize::put(*w, filtered_alarms_);
    serialize::put(*w, track_opens_);
    serialize::put(*w, track_closes_);
    serialize::put(*w, hmm_updates_);
    w->newline();
    if (screens_ != nullptr) {
      serialize::tag(*w, "sentinel-screen-v1");
      screens_->save(*w);
      w->newline();
    }
  }
}

void DetectionPipeline::add_record(const SensorRecord& rec) {
  add_records(std::span<const SensorRecord>(&rec, 1));
}

void DetectionPipeline::add_records(std::span<const SensorRecord> recs) {
  // One fused pass: the windower's columnar accumulators run inline over the
  // batch, and each completed window is processed in place through the
  // recycled emission object -- no per-record virtual dispatch, no window
  // materialization, and (keep_raw off) no allocations per record.
  windower_.add_batch(recs, [this](ObservationSet&& window) { process_window(window); });
}

void DetectionPipeline::finish() {
  if (auto last = windower_.flush()) process_window(*last);
}

void DetectionPipeline::process_trace(const std::vector<SensorRecord>& records) {
  for (const auto& window : window_trace(records, cfg_.window_seconds)) {
    process_window(window);
  }
}

void DetectionPipeline::process_window(const ObservationSet& window) {
  if (window.sensor_count() < cfg_.min_sensors_per_window) {
    ++windows_skipped_;
    return;
  }

  // Per-sensor representatives drive every step: each sensor gets one vote
  // per window, so a chatty sensor cannot outvote the rest. The windower
  // caches them as flat arrays; hand-built windows are copied into the
  // reusable scratch (element-wise, so the AttrVecs keep their capacity).
  std::span<const AttrVec> points;
  std::span<const SensorId> sensors;
  if (!window.rep_points.empty()) {
    points = window.rep_points;
    sensors = window.rep_sensors;
  } else {
    points_.resize(window.per_sensor.size());
    sensors_.resize(window.per_sensor.size());
    std::size_t i = 0;
    for (const auto& [id, p] : window.per_sensor) {
      sensors_[i] = id;
      points_[i].assign(p.begin(), p.end());
      ++i;
    }
    points = points_;
    sensors = sensors_;
  }
  // The windower caches the overall mean at finalization (same accumulation
  // order, so the bits match); only hand-built windows pay the re-walk here.
  const AttrVec* window_mean = &window.cached_mean;
  if (window_mean->empty()) {
    vecn::mean_into(window.raw, window_mean_);
    window_mean = &window_mean_;
  }

  // First-tier screening. kScreen takes the gated path; kFull runs the
  // screens observationally (counters + escalation state for ROC studies)
  // and falls through to the untouched full path below.
  if (screens_ != nullptr && cfg_.screen.mode == screen::ScreenMode::kScreen) {
    process_window_screened(window, points, sensors, *window_mean);
    return;
  }
  if (screens_ != nullptr) {
    util::ScopedTimerNs t(t_screen_);
    fill_residuals(window, points, *window_mean);
    screens_->observe_block(sensors.data(), resid_.data(), sensors.size(),
                            screen_dec_.data());
  }

  // (1) Make fresh regimes representable before mapping (section 3.1's
  // "creating a new state s_{M+1} = p_j"). The window mean is a spawn
  // candidate too: under a coalition attack the network-level observable
  // (eq. 2 maps the mean) can sit far from every individual reading -- the
  // fabricated state of a Dynamic Creation attack must become a model state
  // for B^CO to expose it. Two calls, same candidate order as one. The spawn
  // scan doubles as the eq. (3) mapping scan: when nothing spawned, the
  // recorded slots are exact under the final centroids.
  bool spawned_points = false;
  bool spawned_mean = false;
  {
    util::ScopedTimerNs t(t_spawn_);
    spawned_points = !states_.maybe_spawn_mapped(points, spawn_slots_).empty();
    spawned_mean = !states_.maybe_spawn(std::span<const AttrVec>(window_mean, 1)).empty();
  }

  // (2) o_i, c_i, l_j -- over the flat copies made above, so the window's
  // per-sensor map is walked exactly once per window.
  WindowStates& ws = window_states_;
  {
    util::ScopedTimerNs t(t_identify_);
    identify_states_into(sensors, points, states_, *window_mean, ws, ident_scratch_,
                         (spawned_points || spawned_mean)
                             ? std::span<const std::size_t>{}
                             : std::span<const std::size_t>(spawn_slots_));
  }

  // (3) Alarms and tracks.
  WindowSummary summary;
  if (cfg_.record_history) {
    summary.window_index = window.window_index;
    summary.window_start = window.window_start;
    summary.observable = ws.observable;
    summary.correct = ws.correct;
    summary.majority_size = ws.majority_size;
    hist_scratch_.clear();
  }
  // kFull: feed the hysteresis the same full-tier verdict kScreen would.
  run_alarm_track_stage(window, summary, /*resolve_screens=*/screens_ != nullptr);

  {
    util::ScopedTimerNs t(t_hmm_);
    // (4) Network HMM M_CO.
    m_co_.observe(ws.correct, ws.observable);
    ++hmm_updates_;

    // (5) Markov models M_C and M_O.
    if (prev_correct_) {
      m_c_.add_transition(*prev_correct_, ws.correct);
    } else {
      m_c_.add_visit(ws.correct);
    }
    if (prev_observable_) {
      m_o_.add_transition(*prev_observable_, ws.observable);
    } else {
      m_o_.add_visit(ws.observable);
    }
    prev_correct_ = ws.correct;
    prev_observable_ = ws.observable;
  }

  // (6) Centroid EMA update + merge, reusing the eq. (3) labels: nothing
  // moved a centroid since identify_states_into, so the slots are exact.
  {
    util::ScopedTimerNs t(t_centroid_);
    states_.update_labeled(points, ident_scratch_.point_slots);
  }

  ++windows_processed_;
  if (cfg_.record_history) commit_history(summary);

  // The learned state advanced: drop the memoized diagnosis inputs.
  {
    std::lock_guard<std::mutex> lock(diag_mu_.get());
    diag_cache_.reset();
  }
}

void DetectionPipeline::commit_history(WindowSummary& summary) {
  // Park the staged per-sensor rows (ascending sensor order, built by the
  // alarm/track stage) in the slab arena and retain a view over them: the
  // history append itself never allocates, and the arena grows one slab per
  // ~4096 rows.
  const auto rows = history_arena_.alloc(hist_scratch_.size());
  std::copy(hist_scratch_.begin(), hist_scratch_.end(), rows.begin());
  summary.sensors = util::FlatMapView<SensorId, SensorWindowInfo>(rows.data(), rows.size());
  history_.push_back(summary);
}

void DetectionPipeline::fill_residuals(const ObservationSet& window,
                                       std::span<const AttrVec> points,
                                       const AttrVec& window_mean) {
  const std::size_t n = points.size();
  resid_.resize(n);
  screen_dec_.resize(n);
  const double mean_sum = vecn::scalar_sum(window_mean);
  // The windower caches each representative's scalar_sum at finalization,
  // while the samples are still cache-hot; reading one double per sensor
  // here is bit-identical to recomputing it (same fixed accumulation
  // order), so hand-built windows without the cache take the full walk and
  // land on the same residuals.
  if (window.rep_sums.size() == n) {
    const double* sums = window.rep_sums.data();
    for (std::size_t j = 0; j < n; ++j) resid_[j] = sums[j] - mean_sum;
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      resid_[j] = vecn::scalar_sum(points[j]) - mean_sum;
    }
  }
}

void DetectionPipeline::run_alarm_track_stage(const ObservationSet& window,
                                              WindowSummary& summary, bool resolve_screens) {
  util::ScopedTimerNs t(t_alarms_);
  WindowStates& ws = window_states_;
  // Block size: one block's alarm rows, mapping slice, and update scratch
  // stay L1-resident across the four passes.
  constexpr std::size_t kBlock = 256;
  const std::size_t n = ws.mapping.size();
  blk_updates_.resize(std::min(kBlock, n));
  tracks_.begin_window();
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t m = std::min(kBlock, n - base);
    // Pass 1: alarm filter updates.
    for (std::size_t k = 0; k < m; ++k) {
      const auto& [sensor, l] = ws.mapping[base + k];
      const bool raw = l != ws.correct;
      blk_updates_[k] = alarms_.update(sensor, raw);
      if (raw) ++raw_alarms_;
      if (blk_updates_[k].filtered) ++filtered_alarms_;
    }
    // Pass 2: track edges.
    for (std::size_t k = 0; k < m; ++k) {
      const AlarmUpdate& u = blk_updates_[k];
      if (u.raised_edge) {
        tracks_.open(ws.mapping[base + k].first, window.window_index);
        ++track_opens_;
      }
      if (u.cleared_edge) {
        tracks_.close(ws.mapping[base + k].first, window.window_index);
        ++track_closes_;
      }
    }
    // Pass 3: M_CE observes, enqueued into the track slab (applied in two
    // batched kernel calls by the flush below).
    for (std::size_t k = 0; k < m; ++k) {
      const auto& [sensor, l] = ws.mapping[base + k];
      if (!tracks_.has_active_track(sensor)) continue;
      const bool raw = l != ws.correct;
      tracks_.observe(sensor, ws.correct, raw ? l : hmm::kBottomSymbol);
      ++hmm_updates_;
    }
    // Pass 4: screen hysteresis resolution and history.
    for (std::size_t k = 0; k < m; ++k) {
      const auto& [sensor, l] = ws.mapping[base + k];
      const bool raw = l != ws.correct;
      if (resolve_screens) {
        screens_->resolve(sensor, !raw && !tracks_.has_active_track(sensor));
      }
      if (cfg_.record_history) {
        SensorWindowInfo info;
        info.mapped = l;
        info.raw_alarm = raw;
        info.filtered_alarm = blk_updates_[k].filtered;
        hist_scratch_.emplace_back(sensor, info);
      }
    }
  }
  tracks_.flush_window();
}

void DetectionPipeline::process_window_screened(const ObservationSet& window,
                                                std::span<const AttrVec> points,
                                                std::span<const SensorId> sensors,
                                                const AttrVec& window_mean) {
  const std::size_t n = sensors.size();

  // Screens partition the window: escalated representatives go through the
  // full per-sensor stages; the screened majority is folded into one bloc
  // mean that votes (and EMA-updates) with the bloc's weight. One residual
  // push per screened sensor is the whole per-sensor cost.
  std::size_t esc_n = 0;
  std::size_t screened_n = 0;
  esc_sensors_.clear();
  {
    util::ScopedTimerNs t(t_screen_);
    // Three passes, each a tight loop: residuals (one cached scalar per
    // sensor when the windower filled rep_sums), one batched bank update
    // (independent per-sensor chains overlap), then the partition on the
    // decisions. With rep_sums and rep_total present, a healthy sensor's
    // full representative is never read at all -- the screened bloc's sum
    // comes from rep_total minus the escalated points.
    fill_residuals(window, points, window_mean);
    screens_->observe_block(sensors.data(), resid_.data(), n, screen_dec_.data());
    const bool have_total = window.rep_total.size() == window_mean.size();
    if (have_total) {
      screened_mean_.assign(window.rep_total.begin(), window.rep_total.end());
    } else {
      screened_mean_.assign(window_mean.size(), 0.0);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (screen_dec_[j].full_path) {
        if (esc_points_.size() <= esc_n) esc_points_.emplace_back();
        const AttrVec& p = points[j];
        esc_points_[esc_n].assign(p.begin(), p.end());
        esc_sensors_.push_back(sensors[j]);
        ++esc_n;
        if (have_total) {
          for (std::size_t a = 0; a < screened_mean_.size() && a < p.size(); ++a) {
            screened_mean_[a] -= p[a];
          }
        }
      } else {
        if (!have_total) {
          const AttrVec& p = points[j];
          for (std::size_t a = 0; a < screened_mean_.size() && a < p.size(); ++a) {
            screened_mean_[a] += p[a];
          }
        }
        ++screened_n;
      }
    }
  }
  if (screened_n > 0) {
    for (double& a : screened_mean_) a /= static_cast<double>(screened_n);
  }
  const std::span<const AttrVec> esc(esc_points_.data(), esc_n);

  // (1) Spawn scan over the escalated representatives plus the window mean
  // (the full path's candidates, minus the screened sensors -- which sit
  // near the mean by construction and cannot need a fresh state).
  bool spawned = false;
  {
    util::ScopedTimerNs t(t_spawn_);
    spawned = !states_.maybe_spawn_mapped(esc, spawn_slots_).empty();
    spawned |= !states_.maybe_spawn(std::span<const AttrVec>(&window_mean, 1)).empty();
  }

  // (2) o_i from the window mean (eq. 2 unchanged); l_j for escalated
  // sensors; c_i by majority where the screened bloc votes through its mean
  // with weight screened_n. Same tie-breaks as identify_states_into: largest
  // cluster, ties toward the observable's cluster, then the smaller id.
  WindowStates& ws = window_states_;
  std::size_t screened_slot = 0;
  {
    util::ScopedTimerNs t(t_identify_);
    const std::size_t slots = states_.size();
    ident_scratch_.cluster_sizes.assign(slots, 0);
    ident_scratch_.point_slots.resize(esc_n);
    ws.mapping.clear();
    ws.sensors = n;
    for (std::size_t j = 0; j < esc_n; ++j) {
      const std::size_t s = spawned ? states_.map_slot(esc_points_[j]) : spawn_slots_[j];
      ident_scratch_.point_slots[j] = s;
      ++ident_scratch_.cluster_sizes[s];
      ws.mapping.emplace_back(esc_sensors_[j], states_.ids()[s]);
    }
    const std::size_t obs_slot = states_.map_slot(window_mean);
    screened_slot = obs_slot;
    if (screened_n > 0) {
      screened_slot = states_.map_slot(screened_mean_);
      ident_scratch_.cluster_sizes[screened_slot] += screened_n;
    }
    std::size_t best = slots;
    std::size_t best_count = 0;
    for (std::size_t s = 0; s < slots; ++s) {
      const std::size_t c = ident_scratch_.cluster_sizes[s];
      if (c == 0) continue;
      if (best == slots || c > best_count || (c == best_count && s == obs_slot)) {
        best = s;
        best_count = c;
      }
    }
    ws.observable = states_.ids()[obs_slot];
    ws.correct = states_.ids()[best];
    ws.majority_size = best_count;
  }

  // (3) Alarms and tracks for escalated sensors only; each one's hysteresis
  // resolves with the full tier's verdict for this window.
  WindowSummary summary;
  if (cfg_.record_history) {
    summary.window_index = window.window_index;
    summary.window_start = window.window_start;
    summary.observable = ws.observable;
    summary.correct = ws.correct;
    summary.majority_size = ws.majority_size;
    hist_scratch_.clear();
  }
  run_alarm_track_stage(window, summary, /*resolve_screens=*/true);

  {
    util::ScopedTimerNs t(t_hmm_);
    // (4) Network HMM M_CO -- unchanged: the network-level (c_i, o_i)
    // evidence is what exposes mean-steering attacks even with every
    // individual sensor screened.
    m_co_.observe(ws.correct, ws.observable);
    ++hmm_updates_;

    // (5) Markov models M_C and M_O.
    if (prev_correct_) {
      m_c_.add_transition(*prev_correct_, ws.correct);
    } else {
      m_c_.add_visit(ws.correct);
    }
    if (prev_observable_) {
      m_o_.add_transition(*prev_observable_, ws.observable);
    } else {
      m_o_.add_visit(ws.observable);
    }
    prev_correct_ = ws.correct;
    prev_observable_ = ws.observable;
  }

  // (6) Centroid EMA: escalated representatives plus one step for the
  // screened bloc's mean, so the environment keeps tracking drift without a
  // per-sensor pass. Slots were recorded in (2) and nothing moved since.
  {
    util::ScopedTimerNs t(t_centroid_);
    if (screened_n > 0) {
      if (esc_points_.size() <= esc_n) esc_points_.emplace_back();
      esc_points_[esc_n].assign(screened_mean_.begin(), screened_mean_.end());
      ident_scratch_.point_slots.push_back(screened_slot);
      states_.update_labeled(std::span<const AttrVec>(esc_points_.data(), esc_n + 1),
                             ident_scratch_.point_slots);
    } else {
      states_.update_labeled(esc, ident_scratch_.point_slots);
    }
  }

  ++windows_processed_;
  if (cfg_.record_history) commit_history(summary);

  {
    std::lock_guard<std::mutex> lock(diag_mu_.get());
    diag_cache_.reset();
  }
}

screen::ScreenStats DetectionPipeline::screen_stats() const {
  return screens_ != nullptr ? screens_->stats() : screen::ScreenStats{};
}

PipelineCounters DetectionPipeline::counters() const {
  PipelineCounters c;
  c.windows_processed = windows_processed_;
  c.windows_skipped = windows_skipped_;
  c.state_spawns = states_.spawn_count();
  c.state_merges = states_.merge_count();
  c.raw_alarms = raw_alarms_;
  c.filtered_alarms = filtered_alarms_;
  c.track_opens = track_opens_;
  c.track_closes = track_closes_;
  c.hmm_updates = hmm_updates_;
  c.late_records = windower_.late_records();
  c.clamped_records = windower_.clamped_records();
  return c;
}

DetectionPipeline::CoalitionInfo DetectionPipeline::compute_coalition() const {
  // A coalition steers the network mean by injecting the *same* value, so
  // its members' error tracks share a dominant error state; two independent
  // faulty sensors (the GDI data's sensors 6 and 7) do not. The coalition is
  // the largest group of implicated sensors whose cumulative track evidence
  // peaks on the same (merge-resolved) error state.
  std::map<StateId, std::set<SensorId>> by_dominant;
  for (const SensorId sensor : tracks_.tracked_sensors()) {
    if (tracks_.total_anomalies(sensor) < cfg_.classifier.min_track_anomalies) continue;
    const hmm::OnlineHmm* m_ce = tracks_.combined_m_ce(sensor);
    if (m_ce == nullptr) continue;
    std::map<StateId, double> symbol_mass;
    const auto& ids = m_ce->symbols();
    const auto& totals = m_ce->symbol_totals();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == hmm::kBottomSymbol) continue;
      symbol_mass[states_.resolve(ids[i])] += totals[i];
    }
    if (symbol_mass.empty()) continue;
    const auto dominant = std::max_element(
        symbol_mass.begin(), symbol_mass.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    by_dominant[dominant->first].insert(sensor);
  }

  CoalitionInfo info;
  for (auto& [state, sensors] : by_dominant) {
    if (sensors.size() > info.size) {
      info.size = sensors.size();
      info.dominant_error_state = state;
      info.members = std::move(sensors);
    }
  }
  return info;
}

std::vector<StateId> DetectionPipeline::correct_sequence() const {
  std::vector<StateId> out;
  out.reserve(history_.size());
  for (const auto& w : history_) out.push_back(w.correct);
  return out;
}

hmm::MarkovChain DetectionPipeline::correct_model() const {
  return m_c_.pruned(cfg_.classifier.min_occupancy);
}

const hmm::OnlineHmm* DetectionPipeline::m_ce(SensorId sensor) const {
  return tracks_.combined_m_ce(sensor);
}

std::vector<StateId> DetectionPipeline::compute_significant_states() const {
  // Occupancy prunes spurious states (the paper's low-probability
  // fluctuation states); merged-away ids are dropped too -- their role was
  // taken over by the surviving state, and keeping both would double-count
  // the same physical regime during the structural analysis.
  std::vector<StateId> out;
  const auto ids = m_c_.states();
  const auto occ = m_c_.occupancy();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (occ[i] >= cfg_.classifier.min_occupancy && states_.is_active(ids[i])) {
      out.push_back(ids[i]);
    }
  }
  return out;
}

const DetectionPipeline::DiagCache& DetectionPipeline::diag_cache_locked() const {
  if (!diag_cache_) {
    DiagCache cache;
    cache.significant = compute_significant_states();
    cache.coalition = compute_coalition();
    cache.network = classify_network(m_co_, cache.significant, centroid_lookup(),
                                     cfg_.classifier, cache.coalition.size);
    diag_cache_ = std::move(cache);
  }
  return *diag_cache_;
}

std::vector<StateId> DetectionPipeline::significant_states() const {
  std::lock_guard<std::mutex> lock(diag_mu_.get());
  return diag_cache_locked().significant;
}

DetectionPipeline::CoalitionInfo DetectionPipeline::coalition() const {
  std::lock_guard<std::mutex> lock(diag_mu_.get());
  return diag_cache_locked().coalition;
}

CentroidLookup DetectionPipeline::centroid_lookup() const {
  return [this](StateId id) { return states_.centroid(id); };
}

Diagnosis DetectionPipeline::diagnose_network() const {
  std::lock_guard<std::mutex> lock(diag_mu_.get());
  return diag_cache_locked().network;
}

std::map<SensorId, Diagnosis> DetectionPipeline::diagnose_sensors_locked(
    const DiagCache& cache) const {
  std::map<SensorId, Diagnosis> out;
  const CentroidLookup lookup = centroid_lookup();
  for (const SensorId sensor : tracks_.tracked_sensors()) {
    if (tracks_.total_anomalies(sensor) < cfg_.classifier.min_track_anomalies) {
      continue;  // transient glitch, not diagnosable
    }
    const hmm::OnlineHmm* m = tracks_.combined_m_ce(sensor);
    if (m == nullptr) continue;
    const bool member = cache.coalition.members.find(sensor) != cache.coalition.members.end();
    out.emplace(sensor, classify_sensor(*m, cache.network, member, cache.significant, lookup,
                                        cfg_.classifier));
  }
  return out;
}

std::map<SensorId, Diagnosis> DetectionPipeline::diagnose_sensors() const {
  std::lock_guard<std::mutex> lock(diag_mu_.get());
  return diagnose_sensors_locked(diag_cache_locked());
}

DiagnosisReport DetectionPipeline::diagnose() const {
  std::lock_guard<std::mutex> lock(diag_mu_.get());
  const DiagCache& cache = diag_cache_locked();
  DiagnosisReport report;
  report.network = cache.network;
  report.sensors = diagnose_sensors_locked(cache);
  return report;
}

}  // namespace sentinel::core
