#include "core/fleet.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "trace/trace_reader.h"
#include "util/thread_pool.h"
#include "util/vecn.h"

namespace sentinel::core {

namespace {

/// Every state of `a` has a counterpart in `b` within tol.
bool covered_by(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                const hmm::MarkovChain& b, const CentroidLookup& lookup_b, double tol) {
  for (const auto id_a : a.states()) {
    const auto ca = lookup_a(id_a);
    if (!ca) return false;
    bool matched = false;
    for (const auto id_b : b.states()) {
      const auto cb = lookup_b(id_b);
      if (cb && vecn::dist(*ca, *cb) <= tol) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

int verdict_rank(Verdict v) {
  switch (v) {
    case Verdict::kNormal: return 0;
    case Verdict::kError: return 1;
    case Verdict::kAttack: return 2;
  }
  return 0;
}

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return threads;
}

}  // namespace

bool models_structurally_similar(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                                 const hmm::MarkovChain& b, const CentroidLookup& lookup_b,
                                 double tol) {
  return covered_by(a, lookup_a, b, lookup_b, tol) && covered_by(b, lookup_b, a, lookup_a, tol);
}

std::string to_string(const FleetReport& r) {
  std::ostringstream os;
  os << "fleet: " << to_string(r.overall) << '\n';
  for (const auto& [name, report] : r.regions) {
    os << "[region " << name << "] " << to_string(report.network) << '\n';
    for (const auto& [id, d] : report.sensors) {
      os << "[region " << name << "] sensor " << id << ": " << to_string(d) << '\n';
    }
  }
  if (!r.structural_outliers.empty()) {
    os << "structural outliers:";
    for (const auto& name : r.structural_outliers) os << ' ' << name;
    os << '\n';
  }
  return os.str();
}

/// Per-region ingest queue. The shard's pipeline is only ever advanced by
/// the single drain task in flight for it (`draining` guards task spawning),
/// which is the single-writer invariant the parallel path relies on.
/// producer_buf belongs to the (single) producer thread and is handed off
/// under the lock once per FleetConfig::batch_records, so the per-record
/// cost of add_record is one push_back.
struct FleetMonitor::Shard {
  explicit Shard(DetectionPipeline& p) : pipeline(&p) {}

  std::vector<SensorRecord> producer_buf;  // producer-thread-only
  std::mutex mu;
  std::condition_variable cv;  // queue shrank, drain finished, or error set
  std::deque<SensorRecord> queue;
  bool draining = false;       // a pool task owns this shard's pipeline
  std::exception_ptr error;    // first pipeline exception, rethrown to callers
  DetectionPipeline* pipeline;
};

FleetMonitor::FleetMonitor(FleetConfig cfg) : cfg_(cfg) {
  if (!(cfg_.state_match_tol > 0.0)) {
    throw std::invalid_argument("FleetMonitor: tolerance must be positive");
  }
  if (cfg_.max_queue_records == 0) {
    throw std::invalid_argument("FleetMonitor: max_queue_records must be >= 1");
  }
  if (cfg_.batch_records == 0) {
    throw std::invalid_argument("FleetMonitor: batch_records must be >= 1");
  }
  cfg_.threads = resolve_threads(cfg_.threads);
  if (cfg_.threads > 1) pool_ = std::make_unique<util::ThreadPool>(cfg_.threads);
}

FleetMonitor::FleetMonitor(double state_match_tol)
    : FleetMonitor(FleetConfig{.state_match_tol = state_match_tol, .threads = 1}) {}

// Out of line so ~unique_ptr<Shard> sees the complete type. pool_ is the
// last member, hence destroyed first: its destructor drains pending shard
// tasks and joins the workers while regions_/shards_ are still alive.
FleetMonitor::~FleetMonitor() = default;

void FleetMonitor::register_shard(const std::string& name, DetectionPipeline& pipeline) {
  shards_.emplace(name, std::make_unique<Shard>(pipeline));
}

void FleetMonitor::add_region(const std::string& name, PipelineConfig cfg) {
  const auto [it, inserted] = regions_.try_emplace(name, std::move(cfg));
  if (!inserted) throw std::invalid_argument("FleetMonitor: duplicate region " + name);
  if (pool_) register_shard(name, it->second);
}

void FleetMonitor::add_region(const std::string& name, PipelineConfig cfg,
                              std::istream& checkpoint) {
  const auto [it, inserted] = regions_.try_emplace(name, std::move(cfg), checkpoint);
  if (!inserted) throw std::invalid_argument("FleetMonitor: duplicate region " + name);
  if (pool_) register_shard(name, it->second);
}

void FleetMonitor::add_record(const std::string& region, const SensorRecord& rec) {
  if (!pool_) {
    const auto it = regions_.find(region);
    if (it == regions_.end()) {
      throw std::invalid_argument("FleetMonitor: unknown region " + region);
    }
    it->second.add_record(rec);
    return;
  }
  const auto it = shards_.find(region);
  if (it == shards_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + region);
  Shard& sh = *it->second;
  sh.producer_buf.push_back(rec);
  if (sh.producer_buf.size() >= cfg_.batch_records) flush_shard(sh);
}

void FleetMonitor::add_records(const std::string& region, std::span<const SensorRecord> recs) {
  if (recs.empty()) return;
  if (!pool_) {
    const auto it = regions_.find(region);
    if (it == regions_.end()) {
      throw std::invalid_argument("FleetMonitor: unknown region " + region);
    }
    for (const auto& rec : recs) it->second.add_record(rec);
    return;
  }
  const auto it = shards_.find(region);
  if (it == shards_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + region);
  Shard& sh = *it->second;
  sh.producer_buf.insert(sh.producer_buf.end(), recs.begin(), recs.end());
  if (sh.producer_buf.size() >= cfg_.batch_records) flush_shard(sh);
}

std::size_t FleetMonitor::ingest(const std::string& region, TraceReader& reader,
                                 std::size_t batch_records) {
  if (batch_records == 0) batch_records = TraceReader::kDefaultBatch;
  std::size_t total = 0;
  std::vector<SensorRecord> batch;
  while (reader.read_batch(batch, batch_records) > 0) {
    add_records(region, batch);
    total += batch.size();
  }
  return total;
}

/// Hand the producer buffer to the shard queue and make sure a drain task
/// is (or will be) running. Called by the producer thread only.
void FleetMonitor::flush_shard(Shard& sh) const {
  if (sh.producer_buf.empty()) return;
  bool start_drain = false;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    if (sh.error) std::rethrow_exception(sh.error);
    // Backpressure: block while the region's queue is at capacity.
    sh.cv.wait(lock, [&] { return sh.queue.size() < cfg_.max_queue_records || sh.error; });
    if (sh.error) std::rethrow_exception(sh.error);
    sh.queue.insert(sh.queue.end(), std::make_move_iterator(sh.producer_buf.begin()),
                    std::make_move_iterator(sh.producer_buf.end()));
    if (!sh.draining) {
      sh.draining = true;
      start_drain = true;
    }
  }
  sh.producer_buf.clear();
  if (start_drain) {
    pool_->post([this, &sh] { drain_shard(sh); });
  }
}

void FleetMonitor::drain_shard(Shard& sh) const {
  for (;;) {
    std::deque<SensorRecord> batch;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (sh.queue.empty()) {
        sh.draining = false;
        sh.cv.notify_all();
        return;
      }
      batch.swap(sh.queue);
    }
    sh.cv.notify_all();  // queue emptied; unblock backpressured producers
    try {
      for (const auto& rec : batch) sh.pipeline->add_record(rec);
    } catch (...) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.error = std::current_exception();
      sh.draining = false;
      sh.cv.notify_all();
      return;
    }
  }
}

void FleetMonitor::drain() const {
  // Quiesce every shard before rethrowing: even when one region is
  // poisoned, the caller must be able to inspect the healthy regions after
  // drain() returns or throws -- no worker may still be running.
  std::exception_ptr first_error;
  for (const auto& [name, shard] : shards_) {
    try {
      flush_shard(*shard);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  for (const auto& [name, shard] : shards_) {
    Shard& sh = *shard;
    std::unique_lock<std::mutex> lock(sh.mu);
    sh.cv.wait(lock, [&] { return sh.error || (!sh.draining && sh.queue.empty()); });
    if (sh.error && !first_error) first_error = sh.error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void FleetMonitor::finish() {
  drain();
  if (!pool_ || regions_.size() <= 1) {
    for (auto& [name, pipeline] : regions_) pipeline.finish();
    return;
  }
  std::vector<std::future<void>> jobs;
  jobs.reserve(regions_.size());
  for (auto& [name, pipeline] : regions_) {
    jobs.push_back(pool_->submit([&pipeline] { pipeline.finish(); }));
  }
  // Join everything before rethrowing so no task still references a region.
  for (auto& j : jobs) j.wait();
  for (auto& j : jobs) j.get();
}

DetectionPipeline& FleetMonitor::region(const std::string& name) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

const DetectionPipeline& FleetMonitor::region(const std::string& name) const {
  const auto it = regions_.find(name);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

std::vector<std::string> FleetMonitor::region_names() const {
  std::vector<std::string> out;
  out.reserve(regions_.size());
  for (const auto& [name, pipeline] : regions_) out.push_back(name);
  return out;
}

FleetReport FleetMonitor::diagnose() const {
  drain();
  FleetReport fleet;
  // Per-region diagnoses, and cached pruned models. Each job reads one
  // quiescent pipeline through const accessors only, so jobs are
  // independent; results are assembled in region-name order, making the
  // report identical to the serial path's.
  std::map<std::string, hmm::MarkovChain> models;
  if (pool_ && regions_.size() > 1) {
    struct RegionDiag {
      DiagnosisReport report;
      hmm::MarkovChain model;
    };
    std::vector<std::pair<const std::string*, std::future<RegionDiag>>> jobs;
    jobs.reserve(regions_.size());
    for (const auto& [name, pipeline] : regions_) {
      jobs.emplace_back(&name, pool_->submit([&pipeline] {
        return RegionDiag{pipeline.diagnose(), pipeline.correct_model()};
      }));
    }
    for (auto& [name, job] : jobs) job.wait();
    for (auto& [name, job] : jobs) {
      RegionDiag rd = job.get();
      fleet.regions.emplace(*name, std::move(rd.report));
      models.emplace(*name, std::move(rd.model));
    }
  } else {
    for (const auto& [name, pipeline] : regions_) {
      fleet.regions.emplace(name, pipeline.diagnose());
      models.emplace(name, pipeline.correct_model());
    }
  }
  for (const auto& [name, report] : fleet.regions) {
    if (verdict_rank(report.network.verdict) > verdict_rank(fleet.overall)) {
      fleet.overall = report.network.verdict;
    }
    for (const auto& [id, d] : report.sensors) {
      if (verdict_rank(d.verdict) > verdict_rank(fleet.overall)) fleet.overall = d.verdict;
    }
  }

  // Cross-region structural check: a region is an outlier when it disagrees
  // with more than half of the other regions. One job per region; each job
  // compares its region's model against every other (the O(regions^2) part).
  if (regions_.size() >= 3) {
    const auto is_outlier = [&](const std::string& name, const DetectionPipeline& pipeline) {
      std::size_t disagreements = 0, others = 0;
      for (const auto& [other_name, other] : regions_) {
        if (other_name == name) continue;
        ++others;
        if (!models_structurally_similar(models.at(name), pipeline.centroid_lookup(),
                                         models.at(other_name), other.centroid_lookup(),
                                         cfg_.state_match_tol)) {
          ++disagreements;
        }
      }
      return others > 0 && 2 * disagreements > others;
    };
    if (pool_) {
      std::vector<std::pair<const std::string*, std::future<bool>>> jobs;
      jobs.reserve(regions_.size());
      for (const auto& [name, pipeline] : regions_) {
        jobs.emplace_back(
            &name, pool_->submit([&is_outlier, &name, &pipeline] {
              return is_outlier(name, pipeline);
            }));
      }
      for (auto& [name, job] : jobs) job.wait();
      for (auto& [name, job] : jobs) {
        if (job.get()) fleet.structural_outliers.push_back(*name);
      }
    } else {
      for (const auto& [name, pipeline] : regions_) {
        if (is_outlier(name, pipeline)) fleet.structural_outliers.push_back(name);
      }
    }
  }
  return fleet;
}

}  // namespace sentinel::core
