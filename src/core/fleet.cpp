#include "core/fleet.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/checkpoint_store.h"
#include "trace/trace_reader.h"
#include "util/serialize.h"
#include "util/fault_test.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/vecn.h"

namespace sentinel::core {

namespace {

/// Every state of `a` has a counterpart in `b` within tol.
bool covered_by(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                const hmm::MarkovChain& b, const CentroidLookup& lookup_b, double tol) {
  for (const auto id_a : a.states()) {
    const auto ca = lookup_a(id_a);
    if (!ca) return false;
    bool matched = false;
    for (const auto id_b : b.states()) {
      const auto cb = lookup_b(id_b);
      if (cb && vecn::dist(*ca, *cb) <= tol) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

int verdict_rank(Verdict v) {
  switch (v) {
    case Verdict::kNormal: return 0;
    case Verdict::kError: return 1;
    case Verdict::kAttack: return 2;
  }
  return 0;
}

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return threads;
}

/// Human-readable message of a captured exception, for attributed statuses.
std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

bool models_structurally_similar(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                                 const hmm::MarkovChain& b, const CentroidLookup& lookup_b,
                                 double tol) {
  return covered_by(a, lookup_a, b, lookup_b, tol) && covered_by(b, lookup_b, a, lookup_a, tol);
}

const char* to_string(RegionHealth h) {
  switch (h) {
    case RegionHealth::kHealthy: return "healthy";
    case RegionHealth::kDegraded: return "degraded";
    case RegionHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

std::string to_string(const FleetReport& r) {
  std::ostringstream os;
  os << "fleet: " << to_string(r.overall) << '\n';
  for (const auto& [name, report] : r.regions) {
    os << "[region " << name << "] " << to_string(report.network) << '\n';
    for (const auto& [id, d] : report.sensors) {
      os << "[region " << name << "] sensor " << id << ": " << to_string(d) << '\n';
    }
  }
  if (!r.structural_outliers.empty()) {
    os << "structural outliers:";
    for (const auto& name : r.structural_outliers) os << ' ' << name;
    os << '\n';
  }
  // Screen-tier lines only for regions that screen: an all-off fleet renders
  // byte-identically to a report predating the tier.
  if (!r.screens.empty()) {
    os << "screen tier:\n";
    for (const auto& [name, s] : r.screens) {
      os << "[region " << name << "] escalated " << s.escalated << "/" << s.sensors
         << ", sensor-windows screened " << s.screened_windows << " escalated "
         << s.escalated_windows << ", trips chi2 " << s.chi2_trips << " runs "
         << s.runs_trips << ", edges +" << s.escalations << " -" << s.deescalations
         << '\n';
    }
  }
  // Health lines only when something is off: an all-healthy fleet renders
  // byte-identically to a report predating the health lifecycle.
  bool any_unhealthy = false;
  for (const auto& [name, st] : r.health) {
    if (st.health != RegionHealth::kHealthy) any_unhealthy = true;
  }
  if (any_unhealthy) {
    os << "region health:\n";
    for (const auto& [name, st] : r.health) {
      os << "[region " << name << "] " << to_string(st.health);
      if (!st.status.is_ok()) os << ": " << st.status.to_string();
      os << " (ingested " << st.records_ingested << ", dropped " << st.records_dropped;
      if (st.malformed.total() > 0) os << ", " << to_string(st.malformed);
      os << ")\n";
    }
  }
  return os.str();
}

/// Per-region ingest queue. The shard's pipeline is only ever advanced by
/// the single drain task in flight for it (`draining` guards task spawning),
/// which is the single-writer invariant the parallel path relies on.
/// producer_buf belongs to the (single) producer thread and is handed off
/// under the lock once per FleetConfig::batch_records, so the per-record
/// cost of add_record is one push_back. Workers never touch health_
/// directly: a failure is parked in `error`/`dropped` under the lock and the
/// producer folds it into the region's health record at the next flush or
/// drain -- keeping every health transition on the caller thread, hence
/// deterministic at any thread count.
struct FleetMonitor::Shard {
  Shard(std::string region_name, DetectionPipeline& p)
      : name(std::move(region_name)), pipeline(&p) {}

  std::string name;
  std::vector<SensorRecord> producer_buf;  // producer-thread-only
  std::mutex mu;
  std::condition_variable cv;  // queue shrank, drain finished, or error set
  // Queue of whole producer batches: handoff moves one vector instead of
  // copying records element-wise, and the drain side replays each batch
  // through the pipeline's fused add_records span entry. queue_records
  // tracks the record total for backpressure.
  std::deque<std::vector<SensorRecord>> queue;
  std::size_t queue_records = 0;
  std::deque<ObservationSet> window_queue;  // add_window feed (coarse; uncapped)
  bool draining = false;       // a pool task owns this shard's pipeline
  std::exception_ptr error;    // first pipeline exception, folded into health
  std::size_t dropped = 0;     // records discarded behind a failure
  DetectionPipeline* pipeline;
};

/// The checkpoint committer: a single dedicated thread that runs the
/// store's fsync/rename commit protocol so disk latency never blocks the
/// ingest (producer) thread. The producer serializes each snapshot itself
/// at a quiesced record boundary (commit_region_checkpoint) -- the bytes
/// crossing this queue are immutable, so the on-disk store always names a
/// checkpoint covering exactly the records the meta records. FIFO order
/// means epochs advance in enqueue order; the destructor drains whatever is
/// queued before joining, so fleet destruction implies full durability of
/// every snapshot taken.
struct FleetMonitor::Committer {
  struct Pending {
    std::string region;
    std::string bytes;  // serialized resumable checkpoint
    RegionCheckpointMeta meta;
  };

  explicit Committer(FleetMonitor& fleet) : fleet_(fleet), thread_([this] { run(); }) {}

  ~Committer() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv.notify_all();
    thread_.join();
  }

  void enqueue(Pending p) {
    {
      std::lock_guard<std::mutex> lk(mu);
      queue.push_back(std::move(p));
    }
    cv.notify_all();
  }

  /// Block until every enqueued commit has reached disk (or failed).
  void drain() {
    std::unique_lock<std::mutex> lk(mu);
    drained.wait(lk, [this] { return queue.empty() && !busy; });
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv.wait(lk, [this] { return stop || !queue.empty(); });
      if (queue.empty()) {
        if (stop) return;  // drained: nothing left to make durable
        continue;
      }
      Pending p = std::move(queue.front());
      queue.pop_front();
      busy = true;
      lk.unlock();
      const util::Status s = fleet_.store_->commit_region_bytes(p.region, p.bytes, p.meta);
      if (s.is_ok()) {
        fleet_.m_ckpt_commits_->inc();
        fleet_.m_ckpt_bytes_->add(p.meta.bytes);
      } else {
        // An I/O failure, not a region-health event: the previously
        // committed epoch still stands and detection continues.
        fleet_.m_ckpt_failures_->inc();
      }
      lk.lock();
      busy = false;
      if (queue.empty()) drained.notify_all();
    }
  }

  FleetMonitor& fleet_;
  std::mutex mu;
  std::condition_variable cv;       // work arrived or stop requested
  std::condition_variable drained;  // queue empty and no commit in flight
  std::deque<Pending> queue;
  bool stop = false;
  bool busy = false;  // a commit is between unlock and relock
  std::thread thread_;  // last member: starts only after the state above exists
};

FleetMonitor::FleetMonitor(FleetConfig cfg) : cfg_(cfg) {
  if (!(cfg_.state_match_tol > 0.0)) {
    throw std::invalid_argument("FleetMonitor: tolerance must be positive");
  }
  if (cfg_.max_queue_records == 0) {
    throw std::invalid_argument("FleetMonitor: max_queue_records must be >= 1");
  }
  if (cfg_.batch_records == 0) {
    throw std::invalid_argument("FleetMonitor: batch_records must be >= 1");
  }
  const auto& h = cfg_.health;
  if (!(h.degraded_malformed_ratio >= 0.0) || !(h.quarantine_malformed_ratio >= 0.0) ||
      h.degraded_malformed_ratio > 1.0 || h.quarantine_malformed_ratio > 1.0 ||
      h.degraded_malformed_ratio > h.quarantine_malformed_ratio) {
    throw std::invalid_argument(
        "FleetMonitor: malformed ratios must satisfy 0 <= degraded <= quarantine <= 1");
  }
  cfg_.threads = resolve_threads(cfg_.threads);
  if (cfg_.threads > 1) pool_ = std::make_unique<util::ThreadPool>(cfg_.threads);
  if (!cfg_.checkpoint_dir.empty()) {
    store_ = std::make_unique<CheckpointStore>(cfg_.checkpoint_dir);
    committer_ = std::make_unique<Committer>(*this);
  }

  auto& reg = util::metrics();
  m_enqueued_ = &reg.counter("fleet.records_enqueued");
  m_windows_ = &reg.counter("fleet.windows_ingested");
  m_handoffs_ = &reg.counter("fleet.handoff_batches");
  m_backpressure_ = &reg.counter("fleet.backpressure_waits");
  m_backpressure_ns_ = &reg.counter("fleet.backpressure_block_ns");
  m_snapshots_ = &reg.counter("fleet.report_snapshots");
  m_drained_ = &reg.counter("fleet.records_drained");
  m_drain_batches_ = &reg.counter("fleet.drain_batches");
  m_dropped_ = &reg.counter("fleet.records_dropped_quarantined");
  m_ckpt_commits_ = &reg.counter("fleet.checkpoint_commits");
  m_ckpt_failures_ = &reg.counter("fleet.checkpoint_failures");
  m_ckpt_bytes_ = &reg.counter("fleet.checkpoint_bytes");
  m_queue_depth_ = &reg.histogram("fleet.queue_depth",
                                  util::Histogram::exponential_bounds(64, 2.0, 10));
}

namespace {
FleetConfig serial_fleet_config(double state_match_tol) {
  FleetConfig c;
  c.state_match_tol = state_match_tol;
  c.threads = 1;
  return c;
}
}  // namespace

FleetMonitor::FleetMonitor(double state_match_tol)
    : FleetMonitor(serial_fleet_config(state_match_tol)) {}

// Out of line so ~unique_ptr<Shard>/~unique_ptr<Committer> see the complete
// types. Members destroy in reverse declaration order: committer_ first
// among the moving parts (drains queued checkpoint commits and joins while
// store_ is still alive), then store_, then pool_ (drains pending shard
// tasks and joins the workers while regions_/shards_ are still alive).
FleetMonitor::~FleetMonitor() = default;

void FleetMonitor::register_shard(const std::string& name, DetectionPipeline& pipeline) {
  shards_.emplace(name, std::make_unique<Shard>(name, pipeline));
}

void FleetMonitor::add_region(const std::string& name, PipelineConfig cfg) {
  const auto [it, inserted] = regions_.try_emplace(name, std::move(cfg));
  if (!inserted) throw std::invalid_argument("FleetMonitor: duplicate region " + name);
  health_.emplace(name, RegionState{});
  if (pool_) register_shard(name, it->second);
}

void FleetMonitor::add_region(const std::string& name, PipelineConfig cfg,
                              std::istream& checkpoint) {
  const auto [it, inserted] = regions_.try_emplace(name, std::move(cfg), checkpoint);
  if (!inserted) throw std::invalid_argument("FleetMonitor: duplicate region " + name);
  health_.emplace(name, RegionState{});
  if (pool_) register_shard(name, it->second);
}

util::Result<std::uint64_t> FleetMonitor::add_region_resumed(const std::string& name,
                                                             PipelineConfig cfg) {
  if (!store_) {
    throw std::invalid_argument("FleetMonitor: add_region_resumed requires checkpoint_dir");
  }
  if (regions_.count(name) > 0) {
    throw std::invalid_argument("FleetMonitor: duplicate region " + name);
  }
  auto manifest = store_->load_manifest();
  if (!manifest.is_ok()) {
    if (manifest.status().code() == util::StatusCode::kNotFound) {
      add_region(name, std::move(cfg));  // nothing ever committed: fresh start
      return std::uint64_t{0};
    }
    return manifest.status();  // torn/corrupt manifest: create nothing
  }
  const auto it = manifest->regions.find(name);
  if (it == manifest->regions.end()) {
    add_region(name, std::move(cfg));  // region never checkpointed: fresh start
    return std::uint64_t{0};
  }
  const RegionCheckpointMeta& meta = it->second;
  std::string bytes;
  if (util::Status s = store_->read_region(meta, bytes); !s.is_ok()) return s;
  std::istringstream checkpoint(bytes);
  try {
    add_region(name, std::move(cfg), checkpoint);
  } catch (const std::exception& e) {
    // Passed its checksum but the codec rejected it: config or format drift.
    // Nothing was inserted (the pipeline constructor threw), so surface as
    // data rather than leaving a half-restored region behind.
    return util::Status(util::StatusCode::kDataLoss,
                        "region " + name + ": checkpoint restore failed: " + e.what());
  }
  RegionState& st = state_of(name);
  st.health = meta.health;
  st.status = meta.status;
  st.records_ingested = meta.records_applied;
  st.records_dropped = meta.records_dropped;
  st.malformed = meta.malformed;
  st.comment_lines = meta.comment_lines;
  ckpt_anchor_[name] = meta.records_applied;
  return std::uint64_t{meta.records_applied};
}

RegionState& FleetMonitor::state_of(const std::string& name) const {
  const auto it = health_.find(name);
  if (it == health_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

const RegionState& FleetMonitor::region_health(const std::string& name) const {
  return state_of(name);
}

void FleetMonitor::quarantine(const std::string& name, util::Status status,
                              std::exception_ptr error) const {
  RegionState& st = state_of(name);
  if (st.health == RegionHealth::kQuarantined) return;  // keep the first cause
  st.health = RegionHealth::kQuarantined;
  st.status = std::move(status);
  st.error = std::move(error);
}

void FleetMonitor::degrade(const std::string& name, util::Status status) const {
  RegionState& st = state_of(name);
  if (st.health != RegionHealth::kHealthy) return;  // monotonic, keep first cause
  st.health = RegionHealth::kDegraded;
  st.status = std::move(status);
}

void FleetMonitor::absorb_shard_faults() const {
  for (const auto& [name, shard] : shards_) {
    Shard& sh = *shard;
    std::exception_ptr err;
    std::size_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      err = sh.error;
      dropped = sh.dropped;
      sh.dropped = 0;
    }
    RegionState& st = state_of(name);
    if (dropped > 0) {
      st.records_dropped += dropped;
      m_dropped_->add(dropped);
    }
    if (err && st.health != RegionHealth::kQuarantined) {
      quarantine(name,
                 util::Status(util::StatusCode::kInternal,
                              "region " + name + ": pipeline failed: " + describe(err)),
                 err);
    }
  }
}

void FleetMonitor::add_record(const std::string& region, const SensorRecord& rec) {
  add_records(region, std::span<const SensorRecord>(&rec, 1));
}

void FleetMonitor::add_records(const std::string& region, std::span<const SensorRecord> recs) {
  if (recs.empty()) return;
  RegionState& st = state_of(region);  // throws on unknown region
  if (st.health == RegionHealth::kQuarantined) {
    st.records_dropped += recs.size();
    m_dropped_->add(recs.size());
    return;
  }
  if (!pool_) {
    auto& pipeline = regions_.find(region)->second;
    try {
      // One fused span pass through the pipeline's windower -- no
      // per-record dispatch. Accounting is span-granular: a pipeline
      // exception quarantines the region and counts the whole span as
      // dropped (the poisoned pipeline's exact progress is unknowable and
      // the region stops voting either way).
      pipeline.add_records(recs);
      st.records_ingested += recs.size();
    } catch (...) {
      const auto err = std::current_exception();
      st.records_dropped += recs.size();
      m_dropped_->add(recs.size());
      quarantine(region,
                 util::Status(util::StatusCode::kInternal,
                              "region " + region + ": pipeline failed: " + describe(err)),
                 err);
    }
    maybe_checkpoint(region, st);
    return;
  }
  Shard& sh = *shards_.find(region)->second;
  sh.producer_buf.insert(sh.producer_buf.end(), recs.begin(), recs.end());
  st.records_ingested += recs.size();
  if (sh.producer_buf.size() >= cfg_.batch_records) flush_shard(sh);
  maybe_checkpoint(region, st);
}

void FleetMonitor::add_window(const std::string& region, const ObservationSet& window) {
  RegionState& st = state_of(region);  // throws on unknown region
  const std::size_t weight = window.sensor_count();
  if (st.health == RegionHealth::kQuarantined) {
    st.records_dropped += weight;
    m_dropped_->add(weight);
    return;
  }
  m_windows_->inc();
  if (!pool_) {
    auto& pipeline = regions_.find(region)->second;
    try {
      pipeline.process_window(window);
      st.records_ingested += weight;
    } catch (...) {
      const auto err = std::current_exception();
      st.records_dropped += weight;
      m_dropped_->add(weight);
      quarantine(region,
                 util::Status(util::StatusCode::kInternal,
                              "region " + region + ": pipeline failed: " + describe(err)),
                 err);
    }
    maybe_checkpoint(region, st);
    return;
  }
  Shard& sh = *shards_.find(region)->second;
  // Hand off buffered records first so they sit ahead of this window in the
  // drain order (windows are coarse enough that the extra handoff is noise).
  if (!sh.producer_buf.empty()) flush_shard(sh);
  bool start_drain = false;
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.error) {
      sh.dropped += weight;
      failed = true;
    } else {
      sh.window_queue.push_back(window);
      if (!sh.draining) {
        sh.draining = true;
        start_drain = true;
      }
    }
  }
  if (!failed) st.records_ingested += weight;
  if (start_drain) {
    pool_->post([this, &sh] { drain_shard(sh); });
  }
  if (failed) absorb_shard_faults();
  maybe_checkpoint(region, st);
}

void FleetMonitor::maybe_checkpoint(const std::string& region, RegionState& st) {
  if (!store_ || cfg_.checkpoint_every_records == 0) return;
  if (st.health == RegionHealth::kQuarantined) return;
  if (st.records_ingested - ckpt_anchor_[region] < cfg_.checkpoint_every_records) return;
  commit_region_checkpoint(region, st);
}

void FleetMonitor::commit_region_checkpoint(const std::string& region, RegionState& st) {
  SENTINEL_FAULT_POINT(util::fault::kCheckpointBegin);
  // Quiesce this region's shard first: the pipeline must be at a record
  // boundary and untouched by workers while it serializes (the single-writer
  // invariant), and a resumed run replays from exactly records_ingested.
  if (pool_) {
    Shard& sh = *shards_.find(region)->second;
    flush_shard(sh);
    wait_shard(sh);
    absorb_shard_faults();
  }
  if (st.health == RegionHealth::kQuarantined) return;  // suspect state: never persisted
  Committer::Pending p;
  p.region = region;
  p.meta.records_applied = st.records_ingested;
  p.meta.health = st.health;
  p.meta.status = st.status;
  p.meta.records_dropped = st.records_dropped;
  p.meta.malformed = st.malformed;
  p.meta.comment_lines = st.comment_lines;
  const DetectionPipeline& rp = regions_.find(region)->second;
  if (rp.screens() != nullptr) p.meta.escalated_sensors = rp.screen_stats().escalated;
  // Snapshot here, on the producer thread, while the region is quiescent:
  // the committer only ever sees immutable bytes, never the live pipeline.
  std::ostringstream os;
  regions_.find(region)->second.save_checkpoint(os, serialize::Format::kBinary,
                                                CheckpointScope::kResumable);
  p.bytes = os.str();
  // Anchor advances at snapshot time, not commit time: the interval clock
  // restarts even if this commit later fails on disk (the next cadence
  // simply takes a fresh snapshot; the previous epoch still stands).
  ckpt_anchor_[region] = st.records_ingested;
  committer_->enqueue(std::move(p));
}

void FleetMonitor::checkpoint_now() {
  if (!store_) return;
  for (auto& [name, st] : health_) commit_region_checkpoint(name, st);
  committer_->drain();  // on return the store names these snapshots
}

FleetMonitor::IngestSummary FleetMonitor::ingest(const std::string& region, TraceReader& reader,
                                                 std::size_t batch_records,
                                                 std::size_t skip_records) {
  if (batch_records == 0) batch_records = TraceReader::kDefaultBatch;
  RegionState& st = state_of(region);  // throws on unknown region
  IngestSummary sum;
  std::vector<SensorRecord> batch;
  const MalformedCounts before = st.malformed;
  const std::size_t comment_base = st.comment_lines;
  const std::uint64_t block_base = st.backpressure_block_ns;

  // Resume: fast-forward past the prefix the restored checkpoint already
  // covers. The reader's malformed/comment tallies over that prefix are
  // captured here and subtracted at the end -- the restored RegionState
  // already accounts for them -- while the rate check below keeps using the
  // reader's running totals plus `skipped`, so a resumed run condemns a bad
  // feed at exactly the same point an uninterrupted one would.
  std::size_t skipped = 0;
  MalformedCounts skip_malformed;
  std::size_t skip_comments = 0;
  if (skip_records > 0 && st.health != RegionHealth::kQuarantined) {
    try {
      skipped = reader.skip_records(skip_records);
    } catch (...) {
      const auto err = std::current_exception();
      quarantine(region,
                 util::Status(util::StatusCode::kDataLoss,
                              "region " + region + ": reader failed: " + describe(err)),
                 err);
    }
    skip_malformed = reader.malformed();
    skip_comments = reader.comment_lines();
    if (skipped < skip_records && st.health != RegionHealth::kQuarantined) {
      quarantine(region,
                 util::Status(util::StatusCode::kDataLoss,
                              "region " + region + ": trace shorter than its checkpoint: " +
                                  "resume skip wanted " + std::to_string(skip_records) +
                                  " records, trace held " + std::to_string(skipped)),
                 nullptr);
    }
  }
  for (;;) {
    if (st.health == RegionHealth::kQuarantined) break;
    std::size_t n = 0;
    try {
      n = reader.read_batch(batch, batch_records);
    } catch (...) {
      const auto err = std::current_exception();
      quarantine(region,
                 util::Status(util::StatusCode::kDataLoss,
                              "region " + region + ": reader failed: " + describe(err)),
                 err);
      break;
    }
    if (n > 0) {
      // Fold the reader's running tallies in *before* applying the records:
      // a checkpoint committed inside add_records must snapshot malformed /
      // comment accounting consistent with records_ingested, or a resumed
      // run under-counts the skipped prefix.
      st.malformed = before;
      st.malformed += reader.malformed() - skip_malformed;
      st.comment_lines = comment_base + (reader.comment_lines() - skip_comments);
      add_records(region, batch);
      sum.records += n;
      SENTINEL_FAULT_POINT(util::fault::kIngestBatch);
    }

    // Malformed-rate check per batch so a hostile feed is cut off early
    // instead of after millions of lines. Rates only count once the sample
    // is large enough to mean something. Checked even on the final empty
    // batch: a feed whose entire tail (or entirety) is malformed reaches
    // EOF with n == 0 and must still be condemned by rate, not merely
    // flagged as silent at finish().
    const std::size_t mal = reader.malformed().total();
    const std::size_t lines = skipped + sum.records + mal;
    if (mal > 0 && lines >= cfg_.health.min_lines_for_rate) {
      const double ratio = static_cast<double>(mal) / static_cast<double>(lines);
      if (ratio >= cfg_.health.quarantine_malformed_ratio) {
        quarantine(region,
                   util::Status(util::StatusCode::kDataLoss,
                                "region " + region + ": malformed-line rate too high: " +
                                    to_string(reader.malformed()) + " in " +
                                    std::to_string(lines) + " lines"),
                   nullptr);
        break;
      }
      if (ratio >= cfg_.health.degraded_malformed_ratio) {
        degrade(region,
                util::Status(util::StatusCode::kDataLoss,
                             "region " + region + ": elevated malformed-line rate: " +
                                 to_string(reader.malformed()) + " in " +
                                 std::to_string(lines) + " lines"));
      }
    }
    if (n == 0) break;
  }
  // A broken source (truncated binary payload, mid-stream read error) ends
  // the feed with a sticky reader status; the region's learned state only
  // covers an unknown prefix, so it stops voting.
  const util::Status rs = reader.status();
  if (!rs.is_ok() && st.health != RegionHealth::kQuarantined) {
    quarantine(region, util::Status(rs.code(), "region " + region + ": " + rs.message()),
               nullptr);
  }
  st.malformed = before;
  st.malformed += reader.malformed() - skip_malformed;
  st.comment_lines = comment_base + (reader.comment_lines() - skip_comments);
  sum.status = st.status;
  sum.backpressure_block_ns = st.backpressure_block_ns - block_base;
  return sum;
}

FleetMonitor::IngestSummary FleetMonitor::ingest_file(const std::string& region,
                                                      const std::string& path,
                                                      std::size_t expected_dims,
                                                      std::size_t skip_records) {
  state_of(region);  // unknown region is caller misuse: throw before touching the file
  std::unique_ptr<TraceReader> reader;
  try {
    reader = open_trace_reader(path, expected_dims);
  } catch (...) {
    const auto err = std::current_exception();
    quarantine(region,
               util::Status(util::StatusCode::kInvalidArgument,
                            "region " + region + ": cannot open trace: " + describe(err)),
               err);
    IngestSummary sum;
    sum.status = state_of(region).status;
    return sum;
  }
  return ingest(region, *reader, 0, skip_records);
}

/// Hand the producer buffer to the shard queue and make sure a drain task
/// is (or will be) running. Called by the producer thread only. A parked
/// worker error makes this a drop-and-fold instead of a handoff.
void FleetMonitor::flush_shard(Shard& sh) const {
  if (sh.producer_buf.empty()) return;
  const std::size_t nbuf = sh.producer_buf.size();
  bool start_drain = false;
  bool failed = false;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    if (!sh.error) {
      // Backpressure: block while the region's queue is at capacity
      // (records, not batches). A full queue is a documented-healthy state
      // (the producer simply outran the pipeline), counted -- and the block
      // attributed to this region by duration -- so operators can size
      // max_queue_records and a service front end can bill the stall to the
      // tenant that caused it.
      if (sh.queue_records >= cfg_.max_queue_records) {
        m_backpressure_->inc();
        RegionState& st = state_of(sh.name);
        ++st.backpressure_waits;
        const auto t0 = std::chrono::steady_clock::now();
        sh.cv.wait(lock, [&] { return sh.queue_records < cfg_.max_queue_records || sh.error; });
        const auto blocked = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        st.backpressure_block_ns += blocked;
        m_backpressure_ns_->add(blocked);
      } else {
        sh.cv.wait(lock, [&] { return sh.queue_records < cfg_.max_queue_records || sh.error; });
      }
    }
    if (sh.error) {
      sh.dropped += nbuf;
      failed = true;
    } else {
      // Whole-batch handoff: one vector move, no per-record copies. The
      // drain side applies the batch as a single fused span.
      sh.queue.push_back(std::move(sh.producer_buf));
      sh.queue_records += nbuf;
      m_queue_depth_->record(sh.queue_records);
      if (!sh.draining) {
        sh.draining = true;
        start_drain = true;
      }
    }
  }
  m_handoffs_->inc();
  if (!failed) m_enqueued_->add(nbuf);
  sh.producer_buf.clear();
  if (start_drain) {
    pool_->post([this, &sh] { drain_shard(sh); });
  }
  if (failed) absorb_shard_faults();
}

void FleetMonitor::drain_shard(Shard& sh) const {
  for (;;) {
    std::deque<std::vector<SensorRecord>> batches;
    std::deque<ObservationSet> wbatch;
    std::size_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (sh.queue.empty() && sh.window_queue.empty()) {
        sh.draining = false;
        sh.cv.notify_all();
        return;
      }
      batches.swap(sh.queue);
      taken = sh.queue_records;
      sh.queue_records = 0;
      wbatch.swap(sh.window_queue);
    }
    sh.cv.notify_all();  // queue emptied; unblock backpressured producers
    std::size_t applied = 0;
    std::size_t wapplied = 0;
    try {
      // Each handed-off batch replays as one fused span -- FIFO order, so
      // the record sequence (hence the report) is identical to the serial
      // path's.
      for (const auto& batch : batches) {
        sh.pipeline->add_records(batch);
        applied += batch.size();
      }
      for (const auto& w : wbatch) {
        sh.pipeline->process_window(w);
        ++wapplied;
      }
      m_drained_->add(taken);
      m_drain_batches_->inc();
      SENTINEL_FAULT_POINT(util::fault::kDrainBatch);
    } catch (...) {
      // Park the failure for the producer to fold into the region's health;
      // everything from the poison batch on is discarded (the pipeline's
      // state after a throw is unknown, so applying more would be worse).
      // Accounting is span-granular: the failing batch counts as dropped in
      // full. Unapplied windows count at their record weight, matching
      // ingest.
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.error = std::current_exception();
      sh.dropped += (taken - applied) + sh.queue_records;
      for (std::size_t i = wapplied; i < wbatch.size(); ++i) {
        sh.dropped += wbatch[i].sensor_count();
      }
      for (const auto& w : sh.window_queue) sh.dropped += w.sensor_count();
      sh.queue.clear();
      sh.queue_records = 0;
      sh.window_queue.clear();
      sh.draining = false;
      sh.cv.notify_all();
      return;
    }
  }
}

void FleetMonitor::wait_shard(Shard& sh) const {
  std::unique_lock<std::mutex> lock(sh.mu);
  sh.cv.wait(lock, [&] {
    return sh.error || (!sh.draining && sh.queue.empty() && sh.window_queue.empty());
  });
}

void FleetMonitor::drain() const {
  // Quiesce every shard, then fold worker faults into the health records.
  // Even when one region is poisoned, the caller must be able to inspect
  // the healthy regions after drain() returns -- no worker still running,
  // no exception escaping.
  for (const auto& [name, shard] : shards_) flush_shard(*shard);
  for (const auto& [name, shard] : shards_) wait_shard(*shard);
  absorb_shard_faults();
}

void FleetMonitor::finish() {
  drain();
  // Flush partial windows for live regions only; a quarantined pipeline's
  // state is suspect and is left untouched so healthy-region results match
  // a fleet that never contained it.
  const auto live = [this](const std::string& name) {
    return state_of(name).health != RegionHealth::kQuarantined;
  };
  if (!pool_ || regions_.size() <= 1) {
    for (auto& [name, pipeline] : regions_) {
      if (!live(name)) continue;
      try {
        pipeline.finish();
      } catch (...) {
        const auto err = std::current_exception();
        quarantine(name,
                   util::Status(util::StatusCode::kInternal,
                                "region " + name + ": finish failed: " + describe(err)),
                   err);
      }
    }
  } else {
    std::vector<std::pair<const std::string*, std::future<std::exception_ptr>>> jobs;
    jobs.reserve(regions_.size());
    for (auto& [name, pipeline] : regions_) {
      if (!live(name)) continue;
      jobs.emplace_back(&name, pool_->submit([&pipeline]() -> std::exception_ptr {
        try {
          pipeline.finish();
        } catch (...) {
          return std::current_exception();
        }
        return nullptr;
      }));
    }
    // Join everything first, then apply outcomes in region-name order so
    // the resulting health transitions are deterministic.
    for (auto& [name, job] : jobs) job.wait();
    for (auto& [name, job] : jobs) {
      if (const auto err = job.get()) {
        quarantine(*name,
                   util::Status(util::StatusCode::kInternal,
                                "region " + *name + ": finish failed: " + describe(err)),
                   err);
      }
    }
  }
  if (cfg_.health.flag_silent_regions) {
    for (auto& [name, st] : health_) {
      if (st.health == RegionHealth::kHealthy && st.records_ingested == 0) {
        degrade(name, util::Status(util::StatusCode::kUnavailable,
                                   "region " + name + ": no records ingested"));
      }
    }
  }
}

FleetMonitor::FleetSnapshot FleetMonitor::report_snapshot() {
  // diagnose() drains, then reads each quiescent pipeline through const
  // accessors only -- no window closes, no model is finalized -- so the
  // fleet keeps ingesting afterwards as if the snapshot never happened.
  FleetSnapshot snap;
  snap.epoch = ++snapshot_epoch_;
  snap.report = diagnose();
  m_snapshots_->inc();
  return snap;
}

void FleetMonitor::finish_region(const std::string& name) {
  RegionState& st = state_of(name);  // throws on unknown region
  if (pool_) {
    Shard& sh = *shards_.find(name)->second;
    flush_shard(sh);
    wait_shard(sh);
    absorb_shard_faults();
  }
  if (st.health != RegionHealth::kQuarantined) {
    try {
      regions_.find(name)->second.finish();
    } catch (...) {
      const auto err = std::current_exception();
      quarantine(name,
                 util::Status(util::StatusCode::kInternal,
                              "region " + name + ": finish failed: " + describe(err)),
                 err);
    }
  }
  if (cfg_.health.flag_silent_regions && st.health == RegionHealth::kHealthy &&
      st.records_ingested == 0) {
    degrade(name, util::Status(util::StatusCode::kUnavailable,
                               "region " + name + ": no records ingested"));
  }
}

std::size_t FleetMonitor::queue_depth(const std::string& region) const {
  state_of(region);  // throws on unknown region
  const auto it = shards_.find(region);
  if (it == shards_.end()) return 0;  // serial fleet: records apply inline
  Shard& sh = *it->second;
  const std::size_t buffered = sh.producer_buf.size();  // producer-thread-only
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.queue_records + buffered;
}

DetectionPipeline& FleetMonitor::region(const std::string& name) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

const DetectionPipeline& FleetMonitor::region(const std::string& name) const {
  const auto it = regions_.find(name);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

std::vector<std::string> FleetMonitor::region_names() const {
  std::vector<std::string> out;
  out.reserve(regions_.size());
  for (const auto& [name, pipeline] : regions_) out.push_back(name);
  return out;
}

FleetReport FleetMonitor::diagnose() const {
  drain();
  FleetReport fleet;
  fleet.health = health_;
  // Quarantined regions are out: they neither report nor vote, so the
  // remaining entries are identical to a fleet that never held them.
  std::vector<std::pair<const std::string*, const DetectionPipeline*>> live;
  live.reserve(regions_.size());
  for (const auto& [name, pipeline] : regions_) {
    if (state_of(name).health != RegionHealth::kQuarantined) {
      live.emplace_back(&name, &pipeline);
    }
  }

  // Per-region diagnoses, and cached pruned models. Each job reads one
  // quiescent pipeline through const accessors only, so jobs are
  // independent; results are assembled in region-name order, making the
  // report identical to the serial path's.
  std::map<std::string, hmm::MarkovChain> models;
  if (pool_ && live.size() > 1) {
    struct RegionDiag {
      DiagnosisReport report;
      hmm::MarkovChain model;
    };
    std::vector<std::pair<const std::string*, std::future<RegionDiag>>> jobs;
    jobs.reserve(live.size());
    for (const auto& [name, pipeline] : live) {
      jobs.emplace_back(name, pool_->submit([pipeline] {
        return RegionDiag{pipeline->diagnose(), pipeline->correct_model()};
      }));
    }
    for (auto& [name, job] : jobs) job.wait();
    for (auto& [name, job] : jobs) {
      RegionDiag rd = job.get();
      fleet.regions.emplace(*name, std::move(rd.report));
      models.emplace(*name, std::move(rd.model));
    }
  } else {
    for (const auto& [name, pipeline] : live) {
      fleet.regions.emplace(*name, pipeline->diagnose());
      models.emplace(*name, pipeline->correct_model());
    }
  }
  // Screen-tier stats of screening regions (cheap counter copies; the
  // pipelines are quiescent after drain()).
  for (const auto& [name, pipeline] : live) {
    if (pipeline->screens() != nullptr) {
      fleet.screens.emplace(*name, pipeline->screen_stats());
    }
  }
  for (const auto& [name, report] : fleet.regions) {
    if (verdict_rank(report.network.verdict) > verdict_rank(fleet.overall)) {
      fleet.overall = report.network.verdict;
    }
    for (const auto& [id, d] : report.sensors) {
      if (verdict_rank(d.verdict) > verdict_rank(fleet.overall)) fleet.overall = d.verdict;
    }
  }

  // Cross-region structural check: a region is an outlier when it disagrees
  // with more than half of the other live regions. One job per region; each
  // job compares its region's model against every other (the O(regions^2)
  // part).
  if (live.size() >= 3) {
    const auto is_outlier = [&](const std::string& name, const DetectionPipeline& pipeline) {
      std::size_t disagreements = 0, others = 0;
      for (const auto& [other_name, other] : live) {
        if (*other_name == name) continue;
        ++others;
        if (!models_structurally_similar(models.at(name), pipeline.centroid_lookup(),
                                         models.at(*other_name), other->centroid_lookup(),
                                         cfg_.state_match_tol)) {
          ++disagreements;
        }
      }
      return others > 0 && 2 * disagreements > others;
    };
    if (pool_) {
      std::vector<std::pair<const std::string*, std::future<bool>>> jobs;
      jobs.reserve(live.size());
      for (const auto& [name, pipeline] : live) {
        jobs.emplace_back(name, pool_->submit([&is_outlier, name, pipeline] {
          return is_outlier(*name, *pipeline);
        }));
      }
      for (auto& [name, job] : jobs) job.wait();
      for (auto& [name, job] : jobs) {
        if (job.get()) fleet.structural_outliers.push_back(*name);
      }
    } else {
      for (const auto& [name, pipeline] : live) {
        if (is_outlier(*name, *pipeline)) fleet.structural_outliers.push_back(*name);
      }
    }
  }
  return fleet;
}

}  // namespace sentinel::core
