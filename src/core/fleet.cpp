#include "core/fleet.h"

#include <sstream>
#include <stdexcept>

#include "util/vecn.h"

namespace sentinel::core {

namespace {

/// Every state of `a` has a counterpart in `b` within tol.
bool covered_by(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                const hmm::MarkovChain& b, const CentroidLookup& lookup_b, double tol) {
  for (const auto id_a : a.states()) {
    const auto ca = lookup_a(id_a);
    if (!ca) return false;
    bool matched = false;
    for (const auto id_b : b.states()) {
      const auto cb = lookup_b(id_b);
      if (cb && vecn::dist(*ca, *cb) <= tol) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

int verdict_rank(Verdict v) {
  switch (v) {
    case Verdict::kNormal: return 0;
    case Verdict::kError: return 1;
    case Verdict::kAttack: return 2;
  }
  return 0;
}

}  // namespace

bool models_structurally_similar(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                                 const hmm::MarkovChain& b, const CentroidLookup& lookup_b,
                                 double tol) {
  return covered_by(a, lookup_a, b, lookup_b, tol) && covered_by(b, lookup_b, a, lookup_a, tol);
}

std::string to_string(const FleetReport& r) {
  std::ostringstream os;
  os << "fleet: " << to_string(r.overall) << '\n';
  for (const auto& [name, report] : r.regions) {
    os << "[region " << name << "] " << to_string(report.network) << '\n';
    for (const auto& [id, d] : report.sensors) {
      os << "[region " << name << "] sensor " << id << ": " << to_string(d) << '\n';
    }
  }
  if (!r.structural_outliers.empty()) {
    os << "structural outliers:";
    for (const auto& name : r.structural_outliers) os << ' ' << name;
    os << '\n';
  }
  return os.str();
}

FleetMonitor::FleetMonitor(double state_match_tol) : state_match_tol_(state_match_tol) {
  if (!(state_match_tol > 0.0)) {
    throw std::invalid_argument("FleetMonitor: tolerance must be positive");
  }
}

void FleetMonitor::add_region(const std::string& name, PipelineConfig cfg) {
  const auto [it, inserted] = regions_.try_emplace(name, std::move(cfg));
  (void)it;
  if (!inserted) throw std::invalid_argument("FleetMonitor: duplicate region " + name);
}

void FleetMonitor::add_region(const std::string& name, PipelineConfig cfg,
                              std::istream& checkpoint) {
  const auto [it, inserted] = regions_.try_emplace(name, std::move(cfg), checkpoint);
  (void)it;
  if (!inserted) throw std::invalid_argument("FleetMonitor: duplicate region " + name);
}

void FleetMonitor::add_record(const std::string& region, const SensorRecord& rec) {
  const auto it = regions_.find(region);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + region);
  it->second.add_record(rec);
}

void FleetMonitor::finish() {
  for (auto& [name, pipeline] : regions_) pipeline.finish();
}

DetectionPipeline& FleetMonitor::region(const std::string& name) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

const DetectionPipeline& FleetMonitor::region(const std::string& name) const {
  const auto it = regions_.find(name);
  if (it == regions_.end()) throw std::invalid_argument("FleetMonitor: unknown region " + name);
  return it->second;
}

std::vector<std::string> FleetMonitor::region_names() const {
  std::vector<std::string> out;
  out.reserve(regions_.size());
  for (const auto& [name, pipeline] : regions_) out.push_back(name);
  return out;
}

FleetReport FleetMonitor::diagnose() const {
  FleetReport fleet;
  // Per-region diagnoses, and cached pruned models.
  std::map<std::string, hmm::MarkovChain> models;
  for (const auto& [name, pipeline] : regions_) {
    fleet.regions.emplace(name, pipeline.diagnose());
    models.emplace(name, pipeline.correct_model());
    if (verdict_rank(fleet.regions.at(name).network.verdict) > verdict_rank(fleet.overall)) {
      fleet.overall = fleet.regions.at(name).network.verdict;
    }
    for (const auto& [id, d] : fleet.regions.at(name).sensors) {
      if (verdict_rank(d.verdict) > verdict_rank(fleet.overall)) fleet.overall = d.verdict;
    }
  }

  // Cross-region structural check: a region is an outlier when it disagrees
  // with more than half of the other regions.
  if (regions_.size() >= 3) {
    for (const auto& [name, pipeline] : regions_) {
      std::size_t disagreements = 0, others = 0;
      for (const auto& [other_name, other] : regions_) {
        if (other_name == name) continue;
        ++others;
        if (!models_structurally_similar(models.at(name), pipeline.centroid_lookup(),
                                         models.at(other_name), other.centroid_lookup(),
                                         state_match_tol_)) {
          ++disagreements;
        }
      }
      if (others > 0 && 2 * disagreements > others) fleet.structural_outliers.push_back(name);
    }
  }
  return fleet;
}

}  // namespace sentinel::core
