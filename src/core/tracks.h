// Error/Attack Track Management (paper section 3.1).
//
// One error/attack track per misbehaving sensor: a track opens when the
// sensor's filtered alarm b^j is raised and closes when it clears. While a
// track is active, each window contributes an error/attack state
//   e_i = l_j           when the sensor disagrees with the correct state,
//   e_i = bottom        when it (momentarily) agrees,
// and the pair (c_i, e_i) feeds the track's online HMM M_CE, whose emission
// matrix B^CE the classifier inspects for the error-type signatures.
//
// Storage: while a track is active its M_CE (and the sensor's pooled
// aggregate M_CE) live in an OnlineHmmSlab lane -- contiguous
// struct-of-arrays storage shared by every tracked sensor, updated in
// batched kernel calls once per window (begin_window / flush_window
// bracket the batch; observe() outside a bracket flushes immediately, so
// standalone use keeps the one-call-one-update semantics). Closing a track
// materializes the lane into the Track's `m_ce`, which from then on is the
// authoritative copy; an ACTIVE track's `m_ce` member is empty -- readers
// of live per-sensor evidence go through combined_m_ce(), which
// materializes the aggregate lane on demand behind a dirty flag.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <vector>

#include "hmm/hmm_slab.h"
#include "hmm/online_hmm.h"
#include "trace/record.h"
#include "util/serialize_fwd.h"
#include "util/sync.h"

namespace sentinel::core {

struct Track {
  std::size_t opened_window = 0;
  std::optional<std::size_t> closed_window;  // nullopt = still active
  // Authoritative once the track closes; empty while the track is active
  // (live state is in the TrackManager's slab lane).
  hmm::OnlineHmm m_ce;
  std::size_t observations = 0;        // windows fed (incl. bottom)
  std::size_t anomalous_observations = 0;  // windows with e != bottom
  std::uint32_t lane = hmm::OnlineHmmSlab::kNoLane;  // slab lane while active

  explicit Track(hmm::OnlineHmmConfig cfg) : m_ce(cfg) {}

  bool active() const { return !closed_window.has_value(); }
};

class TrackManager {
 public:
  explicit TrackManager(hmm::OnlineHmmConfig hmm_cfg)
      : hmm_cfg_(hmm_cfg), slab_(hmm_cfg) {}

  TrackManager(const TrackManager&) = delete;
  TrackManager& operator=(const TrackManager&) = delete;
  TrackManager(TrackManager&&) = default;
  TrackManager& operator=(TrackManager&&) = default;

  /// Open a track for `sensor` at `window` (no-op if one is already active).
  void open(SensorId sensor, std::size_t window);

  /// Close the active track, if any: its M_CE materializes out of the slab
  /// into the Track record and the lane is recycled.
  void close(SensorId sensor, std::size_t window);

  bool has_active_track(SensorId sensor) const;

  /// Bracket one observation window: observes inside the bracket batch
  /// their EMA row updates into single kernel calls at flush_window().
  /// Observes outside a bracket flush immediately (same results, one row
  /// at a time) -- begin/flush is purely a batching hint.
  void begin_window();
  void flush_window();

  /// Feed one window's (c_i, e_i) to the sensor's active track.
  /// e = hmm::kBottomSymbol when the sensor agrees with the correct state.
  void observe(SensorId sensor, hmm::StateId correct, hmm::StateId error_state);

  /// All tracks (closed and active) of a sensor, in open order. An active
  /// track's `m_ce` member is empty -- see combined_m_ce() for live state.
  const std::vector<Track>* tracks(SensorId sensor) const;

  /// The most informative track of a sensor: the one with the most anomalous
  /// observations (diagnosis wants the track that saw the fault longest).
  const Track* best_track(SensorId sensor) const;

  /// Per-sensor evidence aggregated across ALL of the sensor's tracks: an
  /// intermittent fault (or a duty-cycled / state-gated attack) opens many
  /// short tracks, and the B^CE signature only becomes readable once their
  /// observations are pooled. The view is materialized from the slab lane
  /// on first call after an observe (mutex-guarded, safe under the
  /// pipeline's concurrent const-read contract).
  const hmm::OnlineHmm* combined_m_ce(SensorId sensor) const;
  std::size_t total_anomalies(SensorId sensor) const;

  /// Sensors that ever had a track.
  std::vector<SensorId> tracked_sensors() const;

  std::size_t total_tracks() const;

  /// Batched-storage observability (see OnlineHmmSlab).
  const hmm::OnlineHmmSlab& slab() const { return slab_; }

  /// Checkpointing: every track (with its M_CE) and per-sensor aggregates.
  /// Active-lane state materializes on the way out, so the bytes are
  /// identical to what per-object storage would have written. load()
  /// requires the same OnlineHmmConfig the saved instance had. The stream
  /// overloads use the text codec on write, auto-detect on read.
  void save(serialize::Writer& w) const;
  void save(std::ostream& os) const;
  static TrackManager load(hmm::OnlineHmmConfig hmm_cfg, serialize::Reader& r);
  static TrackManager load(hmm::OnlineHmmConfig hmm_cfg, std::istream& is);

 private:
  struct Aggregate {
    std::uint32_t lane;
    std::size_t anomalous = 0;
    // Lazily materialized snapshot of the slab lane, refreshed behind the
    // dirty flag on const reads (combined_m_ce, save).
    mutable hmm::OnlineHmm view;
    mutable bool view_dirty = true;
    mutable util::CopyableMutex view_mu;

    Aggregate(hmm::OnlineHmmConfig cfg, std::uint32_t l) : lane(l), view(cfg) {}
  };

  /// Small sensor ids answer has_active_track() from a flat flag array (the
  /// pipeline asks for every sensor every window); larger ids walk the map.
  static constexpr SensorId kDenseLimit = 1u << 16;

  void set_active_flag(SensorId sensor, bool active);
  void set_active_track(SensorId sensor, Track* track);
  Track* active_track(SensorId sensor);
  Aggregate& aggregate_for(SensorId sensor);
  const hmm::OnlineHmm& refreshed_view(const Aggregate& agg) const;

  hmm::OnlineHmmConfig hmm_cfg_;
  hmm::OnlineHmmSlab slab_;
  std::map<SensorId, std::vector<Track>> tracks_;
  std::map<SensorId, Aggregate> aggregates_;
  std::vector<std::uint8_t> active_dense_;  // 1 = active track, ids < kDenseLimit
  // Dense hot-path caches for ids < kDenseLimit: the sensor's active Track
  // (map vector elements -- stable while the track is active) and its
  // Aggregate (map nodes -- always stable).
  std::vector<Track*> active_track_dense_;
  std::vector<Aggregate*> aggregate_dense_;
  bool in_window_ = false;
};

}  // namespace sentinel::core
