// Error/Attack Track Management (paper section 3.1).
//
// One error/attack track per misbehaving sensor: a track opens when the
// sensor's filtered alarm b^j is raised and closes when it clears. While a
// track is active, each window contributes an error/attack state
//   e_i = l_j           when the sensor disagrees with the correct state,
//   e_i = bottom        when it (momentarily) agrees,
// and the pair (c_i, e_i) feeds the track's online HMM M_CE, whose emission
// matrix B^CE the classifier inspects for the error-type signatures.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <vector>

#include "hmm/online_hmm.h"
#include "trace/record.h"
#include "util/serialize_fwd.h"

namespace sentinel::core {

struct Track {
  std::size_t opened_window = 0;
  std::optional<std::size_t> closed_window;  // nullopt = still active
  hmm::OnlineHmm m_ce;
  std::size_t observations = 0;        // windows fed (incl. bottom)
  std::size_t anomalous_observations = 0;  // windows with e != bottom

  explicit Track(hmm::OnlineHmmConfig cfg) : m_ce(cfg) {}

  bool active() const { return !closed_window.has_value(); }
};

class TrackManager {
 public:
  explicit TrackManager(hmm::OnlineHmmConfig hmm_cfg) : hmm_cfg_(hmm_cfg) {}

  /// Open a track for `sensor` at `window` (no-op if one is already active).
  void open(SensorId sensor, std::size_t window);

  /// Close the active track, if any.
  void close(SensorId sensor, std::size_t window);

  bool has_active_track(SensorId sensor) const;

  /// Feed one window's (c_i, e_i) to the sensor's active track.
  /// e = hmm::kBottomSymbol when the sensor agrees with the correct state.
  void observe(SensorId sensor, hmm::StateId correct, hmm::StateId error_state);

  /// All tracks (closed and active) of a sensor, in open order.
  const std::vector<Track>* tracks(SensorId sensor) const;

  /// The most informative track of a sensor: the one with the most anomalous
  /// observations (diagnosis wants the track that saw the fault longest).
  const Track* best_track(SensorId sensor) const;

  /// Per-sensor evidence aggregated across ALL of the sensor's tracks: an
  /// intermittent fault (or a duty-cycled / state-gated attack) opens many
  /// short tracks, and the B^CE signature only becomes readable once their
  /// observations are pooled.
  const hmm::OnlineHmm* combined_m_ce(SensorId sensor) const;
  std::size_t total_anomalies(SensorId sensor) const;

  /// Sensors that ever had a track.
  std::vector<SensorId> tracked_sensors() const;

  std::size_t total_tracks() const;

  /// Checkpointing: every track (with its M_CE) and per-sensor aggregates.
  /// load() requires the same OnlineHmmConfig the saved instance had. The
  /// stream overloads use the text codec on write, auto-detect on read.
  void save(serialize::Writer& w) const;
  void save(std::ostream& os) const;
  static TrackManager load(hmm::OnlineHmmConfig hmm_cfg, serialize::Reader& r);
  static TrackManager load(hmm::OnlineHmmConfig hmm_cfg, std::istream& is);

 private:
  struct Aggregate {
    hmm::OnlineHmm m_ce;
    std::size_t anomalous = 0;

    explicit Aggregate(hmm::OnlineHmmConfig cfg) : m_ce(cfg) {}
  };

  /// Small sensor ids answer has_active_track() from a flat flag array (the
  /// pipeline asks for every sensor every window); larger ids walk the map.
  static constexpr SensorId kDenseLimit = 1u << 16;

  void set_active_flag(SensorId sensor, bool active);

  hmm::OnlineHmmConfig hmm_cfg_;
  std::map<SensorId, std::vector<Track>> tracks_;
  std::map<SensorId, Aggregate> aggregates_;
  std::vector<std::uint8_t> active_dense_;  // 1 = active track, ids < kDenseLimit
};

}  // namespace sentinel::core
