// The collector-node detection pipeline (paper section 3, Fig. 1).
//
// Per observation window the pipeline:
//  1. lets the Model State Identification module spawn states for
//     observations no existing state represents,
//  2. identifies the observable state o_i (eq. 2), the per-sensor mappings
//     l_j (eq. 3), and the correct state c_i (eq. 4, majority cluster),
//  3. raises raw alarms a^j where l_j != c_i, filters them into b^j, and
//     opens/closes per-sensor error/attack tracks on filtered edges,
//  4. feeds (c_i, o_i) to the network HMM M_CO and (c_i, e_i) to each active
//     track's HMM M_CE,
//  5. appends c_i / o_i to the Markov models M_C and M_O, and
//  6. EMA-updates the model-state centroids (eqs. 5-6) with merge/spawn --
//     reusing the eq. (3) labels from step 2, so each representative is
//     distance-mapped once per window, not twice.
//
// diagnose() then performs the section 3.4 structural analysis and returns
// the combined network + per-sensor report.
//
// The per-window hot path is allocation-free in steady state: all working
// buffers (representative copies, the window mean, labels, cluster counters)
// live in reusable scratch owned by the pipeline, and the only remaining
// steady-state allocation is the history append (see
// PipelineConfig::record_history and docs/PERFORMANCE.md).
//
// Thread-safety: a pipeline is single-writer -- add_record / process_window /
// finish must not run concurrently with anything else on the same instance.
// Every const member is safe to call from any number of threads on a
// quiescent pipeline: the model accessors and history/stats are pure reads,
// and the diagnosis-side lazy caches (significant states, coalition, the
// network diagnosis, the HMMs' averaged matrices) are mutex-guarded. They
// cache pure functions of the learned state, so results are identical to
// recomputation. core/fleet.h relies on this to run per-region diagnosis
// jobs in parallel; see docs/CONCURRENCY.md and docs/PERFORMANCE.md.

#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/alarms.h"
#include "core/classifier.h"
#include "core/config.h"
#include "core/model_states.h"
#include "core/report.h"
#include "core/state_ident.h"
#include "core/tracks.h"
#include "hmm/markov_chain.h"
#include "hmm/online_hmm.h"
#include "screen/screen.h"
#include "trace/windower.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/serialize_fwd.h"
#include "util/sync.h"

namespace sentinel::util {
class Histogram;
}  // namespace sentinel::util

namespace sentinel::core {

/// Pipeline activity counters, maintained inline on the single-writer hot
/// path (plain integers -- no atomics needed) and read via counters() once
/// the pipeline is quiescent. Observational only: exporters fold them into a
/// util::MetricsSnapshot with a per-region prefix; nothing here feeds back
/// into detection.
struct PipelineCounters {
  std::size_t windows_processed = 0;
  std::size_t windows_skipped = 0;
  std::size_t state_spawns = 0;
  std::size_t state_merges = 0;
  std::size_t raw_alarms = 0;        // per-sensor raw alarm windows (a^j set)
  std::size_t filtered_alarms = 0;   // per-sensor filtered alarm windows (b^j set)
  std::size_t track_opens = 0;
  std::size_t track_closes = 0;
  std::size_t hmm_updates = 0;       // M_CO + per-track M_CE observe() calls
  std::size_t late_records = 0;      // dropped: older than an emitted window
  std::size_t clamped_records = 0;   // degenerate timestamps clamped (windower)
};

/// Per-window, per-sensor alarm record (Fig. 12's raw-alarm series).
struct SensorWindowInfo {
  StateId mapped = 0;  // l_j
  bool raw_alarm = false;
  bool filtered_alarm = false;
};

struct WindowSummary {
  std::size_t window_index = 0;
  double window_start = 0.0;
  StateId observable = 0;  // o_i
  StateId correct = 0;     // c_i
  std::size_t majority_size = 0;
  /// Per-sensor records in ascending sensor order. A sorted view into the
  /// pipeline's history arena: retaining a window allocates nothing at
  /// steady state (the arena grows one slab per ~4096 rows). Valid for the
  /// owning pipeline's lifetime.
  util::FlatMapView<SensorId, SensorWindowInfo> sensors;
};

/// What save_checkpoint persists.
///  - kModel: the learned models only ("sentinel-checkpoint-v1", the format
///    every existing checkpoint uses -- bytes are golden-pinned). Restored
///    alarm filters start cold and partial windows are dropped.
///  - kResumable: kModel plus an appended "sentinel-resume-v1" section with
///    the windower's in-flight window, every alarm filter's run state, and
///    the activity counters -- enough to continue a stream mid-window with
///    *bit-identical* downstream results (the crash-recovery contract; see
///    docs/RELIABILITY.md). The restoring constructor auto-detects the
///    section, so either scope loads through the same path.
enum class CheckpointScope { kModel, kResumable };

class DetectionPipeline {
 public:
  explicit DetectionPipeline(PipelineConfig cfg);

  /// Restore from a checkpoint written by save_checkpoint(). `cfg` must be
  /// the same configuration the checkpointed pipeline ran with (the
  /// checkpoint stores learned state, not configuration). For kModel
  /// checkpoints, alarm filters restart cold and re-converge within a
  /// filter window; a kResumable checkpoint restores them exactly. The
  /// per-window history is session-local and starts empty either way.
  DetectionPipeline(PipelineConfig cfg, std::istream& checkpoint);

  /// Persist all learned state -- model states, M_CO, M_C, M_O, every
  /// error/attack track with its M_CE -- as a versioned checkpoint. Text
  /// (the default) stays diffable and byte-compatible with older tooling;
  /// binary (serialize::Format::kBinary) is smaller and faster to parse,
  /// and the restoring constructor auto-detects either by its leading
  /// magic byte. With the default kModel scope, call at a window boundary
  /// (after finish() or between add_record bursts) so no partial window is
  /// lost; kResumable captures the partial window too and is valid at any
  /// record boundary.
  void save_checkpoint(std::ostream& os,
                       serialize::Format format = serialize::Format::kText,
                       CheckpointScope scope = CheckpointScope::kModel) const;

  /// Streaming entry point: records must arrive roughly time-ordered; the
  /// internal windower closes windows as time advances.
  void add_record(const SensorRecord& rec);

  /// Bulk streaming entry: one fused pass over a decoded batch. The windower
  /// accumulates columnar per-sensor sums inline and each completed window is
  /// processed in place -- no per-record dispatch overhead and, with
  /// keep_raw off, no allocations per record at steady state. Equivalent to
  /// calling add_record on each element in order.
  void add_records(std::span<const SensorRecord> recs);

  /// Close the final partial window.
  void finish();

  /// Batch entry point used by experiments: process one pre-built window.
  void process_window(const ObservationSet& window);

  /// Convenience: window and process a whole trace, then finish().
  void process_trace(const std::vector<SensorRecord>& records);

  // --- Model access -------------------------------------------------------
  const ModelStateSet& model_states() const { return states_; }
  const hmm::OnlineHmm& m_co() const { return m_co_; }
  const hmm::MarkovChain& m_c() const { return m_c_; }
  const hmm::MarkovChain& m_o() const { return m_o_; }
  /// The user-facing error/attack-free model of the environment (M_C with
  /// spurious states pruned, Fig. 7).
  hmm::MarkovChain correct_model() const;
  /// Combined (all-tracks) M_CE for a sensor, if it ever had a track.
  const hmm::OnlineHmm* m_ce(SensorId sensor) const;
  const TrackManager& tracks() const { return tracks_; }
  const AlarmBank& alarms() const { return alarms_; }

  /// The first-tier screen bank, or null when PipelineConfig::screen.mode is
  /// kOff (off-mode pipelines allocate no screen state at all).
  const screen::ScreenBank* screens() const { return screens_.get(); }
  /// Tier statistics; all-zero when screening is off.
  screen::ScreenStats screen_stats() const;

  // --- History / stats ----------------------------------------------------
  /// Empty when PipelineConfig::record_history is off.
  const std::vector<WindowSummary>& history() const { return history_; }
  /// The c_i sequence of this session's processed windows (input for
  /// core/smoothing.h; empty when record_history is off).
  std::vector<StateId> correct_sequence() const;
  std::size_t windows_processed() const { return windows_processed_; }
  std::size_t windows_skipped() const { return windows_skipped_; }
  /// Activity counters (see PipelineCounters). Safe on a quiescent pipeline.
  PipelineCounters counters() const;

  /// Correct-state ids whose occupancy in M_C clears the spurious-state bar.
  /// Cached between windows (recomputed after the next processed window).
  std::vector<StateId> significant_states() const;

  /// Coordinated-coalition evidence gating B^CO attack verdicts (see
  /// ClassifierConfig::min_implicated_sensors): the largest group of
  /// implicated sensors whose error tracks share a dominant error state.
  struct CoalitionInfo {
    std::size_t size = 0;
    std::optional<StateId> dominant_error_state;
    std::set<SensorId> members;
  };
  CoalitionInfo coalition() const;
  std::size_t coalition_size() const { return coalition().size; }

  /// Centroid lookup bound to this pipeline's model-state set (O(1) hash
  /// lookups; safe to call concurrently from any number of threads).
  CentroidLookup centroid_lookup() const;

  // --- Diagnosis (section 3.4) --------------------------------------------
  Diagnosis diagnose_network() const;
  std::map<SensorId, Diagnosis> diagnose_sensors() const;
  DiagnosisReport diagnose() const;

  const PipelineConfig& config() const { return cfg_; }

 private:
  /// The kScreen per-window path: per-sensor screens decide who takes the
  /// full mapping/alarm/HMM stages; screened sensors vote as a bloc through
  /// their collective mean. Shares the caller's flat representative arrays.
  void process_window_screened(const ObservationSet& window, std::span<const AttrVec> points,
                               std::span<const SensorId> sensors, const AttrVec& window_mean);

  /// Fill resid_ (and size screen_dec_) for the screen tier: one scalar per
  /// sensor, from the windower's cached rep_sums when present (bit-identical
  /// to recomputing, without touching the representative vectors).
  void fill_residuals(const ObservationSet& window, std::span<const AttrVec> points,
                      const AttrVec& window_mean);

  /// Stage (3): alarms and tracks over window_states_.mapping, iterated in
  /// cache-sized sensor blocks as four passes (alarm updates, track edges,
  /// batched M_CE observes, screen resolution + history). Every pass is
  /// per-sensor independent, so the results are bit-identical to the old
  /// interleaved loop -- but the M_CE row updates enqueue into the track
  /// slab and coalesce into two kernel calls at the window flush.
  void run_alarm_track_stage(const ObservationSet& window, WindowSummary& summary,
                             bool resolve_screens);

  /// Move the staged hist_scratch_ rows into the history arena, point
  /// `summary.sensors` at them, and append the summary to history_.
  void commit_history(WindowSummary& summary);

  /// Inputs diagnose_*() would otherwise recompute per tracked sensor,
  /// computed once per (diagnosis, window) pair. Guarded by diag_mu_;
  /// invalidated by process_window and checkpoint load.
  struct DiagCache {
    std::vector<StateId> significant;
    CoalitionInfo coalition;
    Diagnosis network;
  };
  const DiagCache& diag_cache_locked() const;
  std::vector<StateId> compute_significant_states() const;
  CoalitionInfo compute_coalition() const;
  std::map<SensorId, Diagnosis> diagnose_sensors_locked(const DiagCache& cache) const;

  PipelineConfig cfg_;
  ModelStateSet states_;
  Windower windower_;
  AlarmBank alarms_;
  TrackManager tracks_;
  hmm::OnlineHmm m_co_;
  hmm::MarkovChain m_c_;
  hmm::MarkovChain m_o_;
  std::unique_ptr<screen::ScreenBank> screens_;  // null when screening is off
  std::optional<StateId> prev_correct_;
  std::optional<StateId> prev_observable_;
  std::vector<WindowSummary> history_;
  /// Backing store for WindowSummary::sensors rows (stable addresses).
  util::SlabArena<std::pair<SensorId, SensorWindowInfo>> history_arena_;
  /// Recycled staging buffer the alarm/track stage fills before the rows are
  /// copied into the arena (only when record_history is on).
  std::vector<std::pair<SensorId, SensorWindowInfo>> hist_scratch_;
  std::size_t windows_processed_ = 0;
  std::size_t windows_skipped_ = 0;
  std::size_t raw_alarms_ = 0;
  std::size_t filtered_alarms_ = 0;
  std::size_t track_opens_ = 0;
  std::size_t track_closes_ = 0;
  std::size_t hmm_updates_ = 0;

  // Stage-timer histograms, resolved from the global registry at
  // construction when cfg_.stage_timers is set; null otherwise, and a null
  // histogram makes ScopedTimerNs skip the clock read entirely.
  util::Histogram* t_screen_ = nullptr;
  util::Histogram* t_spawn_ = nullptr;
  util::Histogram* t_identify_ = nullptr;
  util::Histogram* t_alarms_ = nullptr;
  util::Histogram* t_hmm_ = nullptr;
  util::Histogram* t_centroid_ = nullptr;

  // Per-window scratch, reused so the steady-state hot path allocates
  // nothing (see docs/PERFORMANCE.md).
  std::vector<AttrVec> points_;     // per-sensor representatives, window order
  std::vector<SensorId> sensors_;   // sensor ids matching points_
  AttrVec window_mean_;             // eq. (2) input, shared by spawn + identify
  std::vector<std::size_t> spawn_slots_;  // per-point slots from the spawn scan
  WindowStates window_states_;
  StateIdentScratch ident_scratch_;

  // kScreen-path scratch: escalated representatives and the screened bloc's
  // mean (appended to esc_points_ for the combined centroid update), plus
  // the batched-screen buffers (residuals in, decisions out).
  std::vector<AttrVec> esc_points_;
  std::vector<SensorId> esc_sensors_;
  AttrVec screened_mean_;
  std::vector<double> resid_;
  std::vector<screen::ScreenDecision> screen_dec_;
  std::vector<AlarmUpdate> blk_updates_;  // per-block alarm-stage scratch

  mutable util::CopyableMutex diag_mu_;
  mutable std::optional<DiagCache> diag_cache_;
};

}  // namespace sentinel::core
