// Two-tier deployment: the paper's procedure "executes on a single data
// collector node (e.g., a base station or a cluster head)". FleetMonitor is
// the base-station tier above several cluster heads: each region runs its
// own DetectionPipeline over its own sensors, and the fleet level combines
// the regional diagnoses and cross-checks the learned environment models --
// regions observing the same phenomenon should converge to structurally
// similar M_C models, so a region whose model diverges from the fleet
// majority is flagged even if its own internal majority was compromised
// (a region-level mitigation of the paper's majority assumption).
//
// Regions are independent until the cross-region structural vote, so the
// fleet parallelizes across them (FleetConfig::threads): ingestion shards
// records into per-region bounded queues drained by pool workers, and
// finish()/diagnose() fan per-region jobs out over the same pool. Each
// region's pipeline is only ever touched by one thread at a time (the
// single-writer invariant; see docs/CONCURRENCY.md), so the parallel
// FleetReport is bit-identical to the serial one. threads = 1 bypasses the
// pool entirely and preserves the original serial behavior exactly.
//
// Fault isolation: one region's bad feed must not take the fleet down. Each
// region carries a health state (Healthy -> Degraded -> Quarantined,
// monotonic); a pipeline exception, a broken reader, or a malformed-rate
// breach quarantines that region -- its remaining input is dropped and
// counted, its captured error rides along in the FleetReport, and every
// other region ingests, finishes, and diagnoses exactly as if the sick
// region had never been added. ingest/drain/finish therefore never throw
// for data-dependent failures; caller misuse (unknown region, bad config)
// still throws. See docs/OBSERVABILITY.md for the health-state machine.

#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "trace/trace_io.h"
#include "util/status.h"

namespace sentinel {
class TraceReader;
}

namespace sentinel::util {
class Counter;
class Histogram;
class ThreadPool;
}  // namespace sentinel::util

namespace sentinel::core {

class CheckpointStore;

/// Centroid-matched structural similarity between two environment models:
/// every significant state of one model must have a state of the other
/// within `tol` (attribute distance), in both directions. State ids are
/// region-local, so matching is by attributes, not ids.
bool models_structurally_similar(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                                 const hmm::MarkovChain& b, const CentroidLookup& lookup_b,
                                 double tol);

/// Region health lifecycle. Transitions are monotonic (a region never
/// recovers within a session -- its learned state is suspect once poisoned)
/// and are applied only on the caller thread, so the sequence of states is
/// deterministic at any FleetConfig::threads.
enum class RegionHealth {
  kHealthy,      // ingesting normally
  kDegraded,     // suspicious but still voting: elevated malformed rate, or
                 // silent (zero records) at finish()
  kQuarantined,  // excluded from diagnosis and the structural vote; further
                 // records dropped and counted
};

const char* to_string(RegionHealth h);

/// Everything the fleet knows about one region's condition. Plain data,
/// copied into FleetReport so a report outlives the monitor.
struct RegionState {
  RegionHealth health = RegionHealth::kHealthy;
  /// Why the region left kHealthy (ok while healthy).
  util::Status status;
  /// The captured pipeline/reader exception when one caused the transition;
  /// null for threshold-driven transitions. Message is attributed with the
  /// region name; rethrowable for callers that want the original type.
  std::exception_ptr error;
  std::size_t records_ingested = 0;  // accepted by add_record/ingest
  std::size_t records_dropped = 0;   // dropped: quarantined region, or queued
                                     // behind a failed worker batch
  /// Malformed-line causes accumulated from this region's readers.
  MalformedCounts malformed;
  std::size_t comment_lines = 0;
  /// Backpressure attribution (sharded fleets only; always 0 serial): how
  /// many producer flushes found this region's queue at capacity, and the
  /// total wall-clock the producer spent blocked in those waits. Purely
  /// observational -- timing-dependent, so never rendered into reports --
  /// but it is what lets an admission controller (src/service) or an
  /// operator reading --metrics-json tell *which* tenant is saturating its
  /// shard and by how much.
  std::uint64_t backpressure_waits = 0;
  std::uint64_t backpressure_block_ns = 0;
};

struct FleetReport {
  /// Diagnoses of non-quarantined regions only: a quarantined region's
  /// learned state is suspect, so it neither reports nor votes.
  std::map<std::string, DiagnosisReport> regions;
  /// Regions whose pruned M_C disagrees (by centroid-matched structure) with
  /// the majority of the other non-quarantined regions.
  std::vector<std::string> structural_outliers;
  /// Worst verdict across non-quarantined regions (attack > error > normal).
  Verdict overall = Verdict::kNormal;
  /// Screen-tier statistics of regions whose pipelines screen
  /// (PipelineConfig::screen.mode != off). Empty for an all-off fleet, whose
  /// report therefore renders byte-identically to one predating the tier.
  std::map<std::string, screen::ScreenStats> screens;
  /// Health of every region, quarantined ones included (with their captured
  /// error), so one sick feed stays visible without poisoning the rest.
  std::map<std::string, RegionState> health;
};

std::string to_string(const FleetReport& r);

/// Thresholds for the data-quality health transitions.
struct RegionHealthConfig {
  /// Malformed-line rate (malformed / total lines seen) beyond which a
  /// region is marked Degraded / Quarantined during ingest(). Rates are only
  /// evaluated once min_lines_for_rate lines were seen, so a single early
  /// bad line cannot quarantine a region.
  double degraded_malformed_ratio = 0.05;
  double quarantine_malformed_ratio = 0.50;
  std::size_t min_lines_for_rate = 64;
  /// Mark regions that saw zero records Degraded at finish() -- a silent
  /// cluster head is a finding, not business as usual.
  bool flag_silent_regions = true;
};

struct FleetConfig {
  /// Attribute distance within which two regions' model states count as the
  /// same physical state during the cross-region structural check.
  double state_match_tol = 6.0;
  /// Worker threads for ingestion and diagnosis. 1 = fully serial (the
  /// original code path, no pool, no queues); 0 = hardware concurrency;
  /// N > 1 = a pool of N workers shared by all regions. Any value produces
  /// bit-identical FleetReports -- threads only changes wall-clock.
  std::size_t threads = 1;
  /// Per-region ingest queue bound (records). add_record blocks once a
  /// region's queue is this deep -- backpressure instead of unbounded memory
  /// when producers outrun the pipelines. Deeper queues cost memory
  /// (~100 B/record) but reduce producer stalls on oversubscribed machines.
  /// Backpressure is a documented-healthy state: the wait is counted
  /// (fleet.backpressure_waits), not a health transition.
  std::size_t max_queue_records = 16384;
  /// Producer-side batch: add_record appends to an unlocked per-region
  /// buffer and only takes the shard lock every `batch_records` records.
  /// Per-record pipeline cost is tiny (real work happens once per closed
  /// window), so unbatched handoff would spend more on locking and worker
  /// wakeups than on detection. 1 = hand off every record immediately.
  std::size_t batch_records = 256;
  /// Health-transition thresholds (see RegionHealthConfig).
  RegionHealthConfig health;
  /// Directory for crash-consistent region checkpoints ("" = checkpointing
  /// off). Each region commits independently -- serialized state, temp file,
  /// fsync, atomic rename, then a manifest naming the last committed epoch
  /// per region. See core/checkpoint_store.h and docs/RELIABILITY.md.
  std::string checkpoint_dir;
  /// Commit a region's checkpoint after this many newly ingested records
  /// (0 = only on explicit checkpoint_now()). Smaller intervals shrink the
  /// replay tail after a crash but cost more commit I/O. The default is
  /// sized from the measured costs (docs/RELIABILITY.md): replaying a
  /// 262144-record tail takes tens of milliseconds at ingest speed, while
  /// each commit pays multiple fsync barriers -- so the interval is cheap
  /// to keep long and expensive to shorten.
  std::size_t checkpoint_every_records = 262144;
};

class FleetMonitor {
 public:
  explicit FleetMonitor(FleetConfig cfg);

  /// Serial monitor (threads = 1); tol as in FleetConfig::state_match_tol.
  explicit FleetMonitor(double state_match_tol = 6.0);

  ~FleetMonitor();
  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Create a region (cluster head). Throws if the name already exists.
  /// Not thread-safe against concurrent add_record: build the fleet first,
  /// then ingest.
  void add_region(const std::string& name, PipelineConfig cfg);

  /// Create a region restored from a pipeline checkpoint (see
  /// DetectionPipeline::save_checkpoint and docs/CONCURRENCY.md for the
  /// checkpoint format).
  void add_region(const std::string& name, PipelineConfig cfg, std::istream& checkpoint);

  /// Create a region restored from the fleet's checkpoint store (requires
  /// FleetConfig::checkpoint_dir; throws without one, or on a duplicate
  /// region). Returns the number of records the restored state already
  /// covers -- pass it as `skip_records` to ingest()/ingest_file() to replay
  /// only the trace tail. Falls back to a fresh add_region (returning 0)
  /// when the store has no manifest or no entry for this region. A torn or
  /// corrupt manifest/checkpoint returns a non-ok Status (kDataLoss) and
  /// creates nothing -- never a garbage region.
  util::Result<std::uint64_t> add_region_resumed(const std::string& name, PipelineConfig cfg);

  /// Route a record to its region's pipeline. Throws on unknown region
  /// (caller misuse); a record for a quarantined region is dropped and
  /// counted, never an error. A pipeline exception raised by this or
  /// earlier records quarantines the region instead of propagating. The
  /// ingestion API (add_record/ingest/drain/finish) is meant for one
  /// producer thread; the parallelism is the fleet's, across regions.
  void add_record(const std::string& region, const SensorRecord& rec);

  /// Bulk variant: one region lookup for the whole span. Prefer this when
  /// records arrive in per-region bursts (a cluster head uploading its
  /// backlog) -- per-record name resolution, not detection, dominates
  /// ingest cost at fleet scale.
  void add_records(const std::string& region, std::span<const SensorRecord> recs);

  /// Window-granular ingest for pre-aggregated feeds: a cluster head that
  /// windows locally and uploads one ObservationSet per closed window (the
  /// regime the screen tier is sized for -- per-record windowing cost would
  /// otherwise dominate the screened per-sensor cost). Bypasses the region's
  /// windower entirely; the window is processed as-is, so its per_sensor map
  /// (or rep arrays) must already hold one representative per sensor.
  /// Windows count toward records_ingested / backpressure / checkpoint
  /// cadence at weight per_sensor.size(). Within a region, windows are
  /// applied in arrival order; interleaving add_record and add_window on the
  /// same region without a drain() between the phases leaves their relative
  /// order unspecified. Quarantine/error semantics match add_record.
  /// Serial fleets process the window in place (no copy); sharded fleets
  /// copy it into the region's queue.
  void add_window(const std::string& region, const ObservationSet& window);

  /// What ingest()/ingest_file() report back: how much arrived and the
  /// region's status afterwards (ok unless the feed degraded/quarantined
  /// the region).
  struct IngestSummary {
    std::size_t records = 0;  // records accepted into the region
    util::Status status;      // region status after this ingest
    /// Producer block time attributable to *this* ingest call: how long the
    /// caller sat in backpressure waits while feeding these records (0 for
    /// serial fleets, where records apply inline).
    std::uint64_t backpressure_block_ns = 0;
  };

  /// Streaming ingestion: pump `reader` dry into `region` in batches of
  /// `batch_records` (0 = TraceReader::kDefaultBatch). Peak memory is one
  /// batch regardless of trace size, and the records flow through the same
  /// add_records path as bulk ingestion, so the resulting FleetReport is
  /// byte-identical to reading the whole trace up front. Malformed lines
  /// are attributed to the region per cause; a malformed-rate breach or a
  /// non-ok reader status (truncation, mid-stream loss) transitions the
  /// region's health instead of throwing.
  /// `skip_records` fast-forwards the reader past records a restored
  /// checkpoint already covers (see add_region_resumed) before ingesting the
  /// tail; a trace shorter than the skip quarantines the region (its
  /// checkpoint describes data the trace no longer holds).
  IngestSummary ingest(const std::string& region, TraceReader& reader,
                       std::size_t batch_records = 0, std::size_t skip_records = 0);

  /// Open `path` (CSV or SNTRB1 by probe) and ingest it. A file that cannot
  /// even be opened as a trace (missing, garbage header) quarantines the
  /// region with the captured error -- the fleet keeps running.
  IngestSummary ingest_file(const std::string& region, const std::string& path,
                            std::size_t expected_dims = 0, std::size_t skip_records = 0);

  /// Block until every queued record has been applied to its pipeline.
  /// A worker failure quarantines its region (error captured in the health
  /// record) rather than rethrowing. No-op in serial mode.
  void drain() const;

  /// Flush all regions' partial windows (parallel across regions when a
  /// pool is configured). Implies drain(). A finish()-time pipeline
  /// exception quarantines its region; silent regions are flagged per
  /// RegionHealthConfig::flag_silent_regions.
  void finish();

  /// Direct pipeline access. With threads > 1, call drain() first unless
  /// ingestion is quiescent -- a worker may still be applying records.
  DetectionPipeline& region(const std::string& name);
  const DetectionPipeline& region(const std::string& name) const;
  std::vector<std::string> region_names() const;

  /// Health record of one region (throws on unknown region) / all regions.
  const RegionState& region_health(const std::string& name) const;
  const std::map<std::string, RegionState>& health() const { return health_; }

  /// Commit a checkpoint for every non-quarantined region now, regardless
  /// of checkpoint_every_records (a quarantined pipeline's state is suspect
  /// and is never persisted), and block until the committer thread has
  /// pushed every commit to disk -- on return the store names these
  /// snapshots (or kept the previous epoch on failure). Commit failures are
  /// counted (fleet.checkpoint_failures), not thrown: the previous
  /// committed epoch still stands. No-op without a checkpoint_dir.
  void checkpoint_now();

  /// Combined fleet diagnosis. Drains first, then runs per-region
  /// diagnose()/correct_model() and the structural cross-check on the pool,
  /// quarantined regions excluded throughout. Deterministic: identical to
  /// the serial result, and healthy regions' entries are identical to a
  /// fleet that never contained the quarantined ones.
  FleetReport diagnose() const;

  /// A live diagnosis epoch: diagnose() plus a monotonic sequence number.
  struct FleetSnapshot {
    std::uint64_t epoch = 0;  // 1 for the first snapshot, then counting up
    FleetReport report;
  };

  /// Diagnose the fleet *without* finish()-style finalization: drains, then
  /// reads every live pipeline through const accessors only. No partial
  /// window is closed and no model is touched, so ingestion continues
  /// afterwards exactly as if the snapshot had never been taken -- the
  /// final finish() report is byte-identical to a never-snapshotted run
  /// (test-enforced). This is what a resident service answers REPORT
  /// requests from while tenants keep streaming.
  FleetSnapshot report_snapshot();

  /// Snapshots taken so far (the epoch of the last report_snapshot()).
  std::uint64_t snapshot_epoch() const { return snapshot_epoch_; }

  /// finish() for a single region: quiesce its shard, flush its partial
  /// window, and apply the silent-region check -- other regions keep
  /// ingesting untouched. Regions are independent until the structural
  /// vote, so finishing them one by one as their feeds end yields the same
  /// per-region diagnoses as one collective finish(). A finish()-time
  /// pipeline exception quarantines the region, as in finish().
  void finish_region(const std::string& name);

  /// Records currently queued (committed to the shard queue plus the
  /// producer-side buffer) for `region`; 0 for serial fleets, where records
  /// apply inline. Producer-thread only, like the ingestion API: this is
  /// the admission-control probe -- a service front end rejects a tenant's
  /// frame (instead of blocking inside ingest) when the shard is already at
  /// FleetConfig::max_queue_records. Throws on unknown region.
  std::size_t queue_depth(const std::string& region) const;

  const FleetConfig& config() const { return cfg_; }

 private:
  struct Shard;      // per-region ingest queue (defined in fleet.cpp)
  struct Committer;  // checkpoint fsync/rename thread (defined in fleet.cpp)

  void register_shard(const std::string& name, DetectionPipeline& pipeline);
  void flush_shard(Shard& shard) const;
  void drain_shard(Shard& shard) const;
  /// Block until `shard` is quiescent (queue empty, no drain task running)
  /// or its worker parked an error.
  void wait_shard(Shard& shard) const;
  /// Commit `region`'s checkpoint when the interval since its last commit
  /// reached checkpoint_every_records.
  void maybe_checkpoint(const std::string& region, RegionState& st);
  /// Quiesce `region`'s shard, snapshot its checkpoint bytes on this (the
  /// caller) thread, and hand them to the committer thread, which runs the
  /// store's fsync/rename commit protocol off the ingest path.
  void commit_region_checkpoint(const std::string& region, RegionState& st);
  /// Fold a captured shard/worker error into the region's health record
  /// (caller thread only).
  void quarantine(const std::string& name, util::Status status,
                  std::exception_ptr error) const;
  void degrade(const std::string& name, util::Status status) const;
  /// Pull sh.error/sh.dropped into health_ for every shard (caller thread).
  void absorb_shard_faults() const;
  RegionState& state_of(const std::string& name) const;

  FleetConfig cfg_;
  std::map<std::string, DetectionPipeline> regions_;
  std::map<std::string, std::unique_ptr<Shard>> shards_;  // empty in serial mode
  std::unique_ptr<util::ThreadPool> pool_;                // null in serial mode
  std::unique_ptr<CheckpointStore> store_;                // null without checkpoint_dir
  /// Single dedicated thread owning every store commit; declared after
  /// store_ so its destructor drains the queue and joins while the store is
  /// still alive. Null without checkpoint_dir.
  std::unique_ptr<Committer> committer_;
  /// records_ingested at each region's last committed checkpoint -- the
  /// interval baseline for maybe_checkpoint. Caller thread only.
  std::map<std::string, std::uint64_t> ckpt_anchor_;
  /// report_snapshot() sequence number. Caller thread only.
  std::uint64_t snapshot_epoch_ = 0;

  /// Health records, keyed like regions_. Only the caller (producer) thread
  /// reads or writes these -- workers report through their Shard and the
  /// caller folds that in -- so transitions are deterministic and lock-free.
  /// Mutable: drain()/diagnose() are logically const but must be able to
  /// absorb worker faults discovered while quiescing.
  mutable std::map<std::string, RegionState> health_;

  // Fleet-level metric handles (process-global registry; resolved once).
  util::Counter* m_enqueued_ = nullptr;
  util::Counter* m_windows_ = nullptr;
  util::Counter* m_handoffs_ = nullptr;
  util::Counter* m_backpressure_ = nullptr;
  util::Counter* m_backpressure_ns_ = nullptr;
  util::Counter* m_snapshots_ = nullptr;
  util::Counter* m_drained_ = nullptr;
  util::Counter* m_drain_batches_ = nullptr;
  util::Counter* m_dropped_ = nullptr;
  util::Counter* m_ckpt_commits_ = nullptr;
  util::Counter* m_ckpt_failures_ = nullptr;
  util::Counter* m_ckpt_bytes_ = nullptr;
  util::Histogram* m_queue_depth_ = nullptr;
};

}  // namespace sentinel::core
