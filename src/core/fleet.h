// Two-tier deployment: the paper's procedure "executes on a single data
// collector node (e.g., a base station or a cluster head)". FleetMonitor is
// the base-station tier above several cluster heads: each region runs its
// own DetectionPipeline over its own sensors, and the fleet level combines
// the regional diagnoses and cross-checks the learned environment models --
// regions observing the same phenomenon should converge to structurally
// similar M_C models, so a region whose model diverges from the fleet
// majority is flagged even if its own internal majority was compromised
// (a region-level mitigation of the paper's majority assumption).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace sentinel::core {

/// Centroid-matched structural similarity between two environment models:
/// every significant state of one model must have a state of the other
/// within `tol` (attribute distance), in both directions. State ids are
/// region-local, so matching is by attributes, not ids.
bool models_structurally_similar(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                                 const hmm::MarkovChain& b, const CentroidLookup& lookup_b,
                                 double tol);

struct FleetReport {
  std::map<std::string, DiagnosisReport> regions;
  /// Regions whose pruned M_C disagrees (by centroid-matched structure) with
  /// the majority of the other regions.
  std::vector<std::string> structural_outliers;
  /// Worst verdict across regions (attack > error > normal).
  Verdict overall = Verdict::kNormal;
};

std::string to_string(const FleetReport& r);

class FleetMonitor {
 public:
  /// tol: attribute distance within which two regions' model states count as
  /// the same physical state.
  explicit FleetMonitor(double state_match_tol = 6.0);

  /// Create a region (cluster head). Throws if the name already exists.
  void add_region(const std::string& name, PipelineConfig cfg);

  /// Create a region restored from a pipeline checkpoint (see
  /// DetectionPipeline::save_checkpoint).
  void add_region(const std::string& name, PipelineConfig cfg, std::istream& checkpoint);

  /// Route a record to its region's pipeline. Throws on unknown region.
  void add_record(const std::string& region, const SensorRecord& rec);

  /// Flush all regions' partial windows.
  void finish();

  DetectionPipeline& region(const std::string& name);
  const DetectionPipeline& region(const std::string& name) const;
  std::vector<std::string> region_names() const;

  FleetReport diagnose() const;

 private:
  double state_match_tol_;
  std::map<std::string, DetectionPipeline> regions_;
};

}  // namespace sentinel::core
