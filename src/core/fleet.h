// Two-tier deployment: the paper's procedure "executes on a single data
// collector node (e.g., a base station or a cluster head)". FleetMonitor is
// the base-station tier above several cluster heads: each region runs its
// own DetectionPipeline over its own sensors, and the fleet level combines
// the regional diagnoses and cross-checks the learned environment models --
// regions observing the same phenomenon should converge to structurally
// similar M_C models, so a region whose model diverges from the fleet
// majority is flagged even if its own internal majority was compromised
// (a region-level mitigation of the paper's majority assumption).
//
// Regions are independent until the cross-region structural vote, so the
// fleet parallelizes across them (FleetConfig::threads): ingestion shards
// records into per-region bounded queues drained by pool workers, and
// finish()/diagnose() fan per-region jobs out over the same pool. Each
// region's pipeline is only ever touched by one thread at a time (the
// single-writer invariant; see docs/CONCURRENCY.md), so the parallel
// FleetReport is bit-identical to the serial one. threads = 1 bypasses the
// pool entirely and preserves the original serial behavior exactly.

#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace sentinel {
class TraceReader;
}

namespace sentinel::util {
class ThreadPool;
}

namespace sentinel::core {

/// Centroid-matched structural similarity between two environment models:
/// every significant state of one model must have a state of the other
/// within `tol` (attribute distance), in both directions. State ids are
/// region-local, so matching is by attributes, not ids.
bool models_structurally_similar(const hmm::MarkovChain& a, const CentroidLookup& lookup_a,
                                 const hmm::MarkovChain& b, const CentroidLookup& lookup_b,
                                 double tol);

struct FleetReport {
  std::map<std::string, DiagnosisReport> regions;
  /// Regions whose pruned M_C disagrees (by centroid-matched structure) with
  /// the majority of the other regions.
  std::vector<std::string> structural_outliers;
  /// Worst verdict across regions (attack > error > normal).
  Verdict overall = Verdict::kNormal;
};

std::string to_string(const FleetReport& r);

struct FleetConfig {
  /// Attribute distance within which two regions' model states count as the
  /// same physical state during the cross-region structural check.
  double state_match_tol = 6.0;
  /// Worker threads for ingestion and diagnosis. 1 = fully serial (the
  /// original code path, no pool, no queues); 0 = hardware concurrency;
  /// N > 1 = a pool of N workers shared by all regions. Any value produces
  /// bit-identical FleetReports -- threads only changes wall-clock.
  std::size_t threads = 1;
  /// Per-region ingest queue bound (records). add_record blocks once a
  /// region's queue is this deep -- backpressure instead of unbounded memory
  /// when producers outrun the pipelines. Deeper queues cost memory
  /// (~100 B/record) but reduce producer stalls on oversubscribed machines.
  std::size_t max_queue_records = 16384;
  /// Producer-side batch: add_record appends to an unlocked per-region
  /// buffer and only takes the shard lock every `batch_records` records.
  /// Per-record pipeline cost is tiny (real work happens once per closed
  /// window), so unbatched handoff would spend more on locking and worker
  /// wakeups than on detection. 1 = hand off every record immediately.
  std::size_t batch_records = 256;
};

class FleetMonitor {
 public:
  explicit FleetMonitor(FleetConfig cfg);

  /// Serial monitor (threads = 1); tol as in FleetConfig::state_match_tol.
  explicit FleetMonitor(double state_match_tol = 6.0);

  ~FleetMonitor();
  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Create a region (cluster head). Throws if the name already exists.
  /// Not thread-safe against concurrent add_record: build the fleet first,
  /// then ingest.
  void add_region(const std::string& name, PipelineConfig cfg);

  /// Create a region restored from a pipeline checkpoint (see
  /// DetectionPipeline::save_checkpoint and docs/CONCURRENCY.md for the
  /// checkpoint format).
  void add_region(const std::string& name, PipelineConfig cfg, std::istream& checkpoint);

  /// Route a record to its region's pipeline. Throws on unknown region.
  /// With threads > 1 this batches into the region's bounded queue and a
  /// pool worker applies it; a pipeline exception from earlier records of
  /// the same region is rethrown here (or from drain()/finish()). The
  /// ingestion API (add_record/drain/finish) is meant for one producer
  /// thread; the parallelism is the fleet's, across regions.
  void add_record(const std::string& region, const SensorRecord& rec);

  /// Bulk variant: one region lookup for the whole span. Prefer this when
  /// records arrive in per-region bursts (a cluster head uploading its
  /// backlog) -- per-record name resolution, not detection, dominates
  /// ingest cost at fleet scale.
  void add_records(const std::string& region, std::span<const SensorRecord> recs);

  /// Streaming ingestion: pump `reader` dry into `region` in batches of
  /// `batch_records` (0 = TraceReader::kDefaultBatch). Peak memory is one
  /// batch regardless of trace size, and the records flow through the same
  /// add_records path as bulk ingestion, so the resulting FleetReport is
  /// byte-identical to reading the whole trace up front. Returns the number
  /// of records ingested.
  std::size_t ingest(const std::string& region, TraceReader& reader,
                     std::size_t batch_records = 0);

  /// Block until every queued record has been applied to its pipeline.
  /// Rethrows the first pipeline exception captured by a worker. No-op in
  /// serial mode.
  void drain() const;

  /// Flush all regions' partial windows (parallel across regions when a
  /// pool is configured). Implies drain().
  void finish();

  /// Direct pipeline access. With threads > 1, call drain() first unless
  /// ingestion is quiescent -- a worker may still be applying records.
  DetectionPipeline& region(const std::string& name);
  const DetectionPipeline& region(const std::string& name) const;
  std::vector<std::string> region_names() const;

  /// Combined fleet diagnosis. Drains first, then runs per-region
  /// diagnose()/correct_model() and the O(regions^2) structural cross-check
  /// on the pool. Deterministic: identical to the serial result.
  FleetReport diagnose() const;

  const FleetConfig& config() const { return cfg_; }

 private:
  struct Shard;  // per-region ingest queue (defined in fleet.cpp)

  void register_shard(const std::string& name, DetectionPipeline& pipeline);
  void flush_shard(Shard& shard) const;
  void drain_shard(Shard& shard) const;

  FleetConfig cfg_;
  std::map<std::string, DetectionPipeline> regions_;
  std::map<std::string, std::unique_ptr<Shard>> shards_;  // empty in serial mode
  std::unique_ptr<util::ThreadPool> pool_;                // null in serial mode
};

}  // namespace sentinel::core
