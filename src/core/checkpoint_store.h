// Durable, crash-consistent checkpoint store for the fleet.
//
// On-disk layout (one directory per fleet):
//
//   <dir>/MANIFEST              committed manifest (text, checksummed)
//   <dir>/<region>.e<N>.ckpt    region checkpoint, epoch N (binary codec,
//                               resumable scope -- see CheckpointScope)
//   <dir>/*.tmp                 in-flight writes; never read, overwritten or
//                               garbage-collected on the next commit
//
// Commit protocol (the write-ahead / atomic-rename discipline every durable
// transition follows; each step carries a fault point -- util/fault_test.h):
//
//   1. serialize the region's resumable checkpoint to memory,
//   2. write it to <region>.e<N+1>.ckpt.tmp, fsync, rename into place,
//      fsync the directory,
//   3. rewrite the manifest (naming the new epoch for this region and the
//      last committed epoch for every other) the same way: temp, fsync,
//      rename over MANIFEST, fsync the directory,
//   4. delete the region's previous epoch file (garbage collection).
//
// A crash at ANY instruction leaves either the old manifest (naming only
// fully durable files) or the new one (ditto): recovery never reads a torn
// file without detecting it. Torn/corrupt state is detected three ways --
// the manifest's trailing FNV-1a checksum, each region entry's recorded
// byte count + content checksum, and the codec's own tag/truncation checks
// -- and always surfaces as a clean util::Status, never a garbage report.
// Orphan files from a crash between steps 2 and 3 (or a failed step 4) are
// invisible to recovery and reclaimed by later commits.
//
// Concurrency: a store instance is single-writer. The fleet serializes
// checkpoints on the caller (producer) thread at a quiesced record boundary
// and hands the bytes to its dedicated committer thread, which owns every
// commit_region_bytes call -- fsync latency never blocks ingest; see
// docs/CONCURRENCY.md.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/fleet.h"
#include "util/status.h"

namespace sentinel::core {

/// One region's last committed checkpoint, plus the region-state snapshot a
/// recovered fleet restores (health, counters) before replaying the tail.
struct RegionCheckpointMeta {
  std::uint64_t epoch = 0;
  std::string file;           // filename within the store directory
  std::uint64_t bytes = 0;    // committed size (torn-file detection)
  std::uint64_t checksum = 0; // FNV-1a over the checkpoint bytes
  /// Records the pipeline had applied at commit time -- the trace offset
  /// recovery skips to before re-ingesting.
  std::uint64_t records_applied = 0;
  RegionHealth health = RegionHealth::kHealthy;
  util::Status status;
  std::uint64_t records_dropped = 0;
  MalformedCounts malformed;
  std::uint64_t comment_lines = 0;
  /// Screen-tier sensors escalated at commit time; 0 when the region's
  /// pipeline does not screen. Informational (the authoritative bank state
  /// rides inside the checkpoint bytes); optional trailing manifest field,
  /// so manifests written before the screen tier parse as 0.
  std::uint64_t escalated_sensors = 0;
};

struct CheckpointManifest {
  /// Store-wide commit counter; each commit_region bumps it and stamps the
  /// new region file with it, so epoch order is total across regions.
  std::uint64_t epoch = 0;
  std::map<std::string, RegionCheckpointMeta> regions;
};

class CheckpointStore {
 public:
  /// Opens (creating if needed) the store directory and loads the committed
  /// manifest if one exists. Throws std::runtime_error when the directory
  /// cannot be created at all (caller misuse: unusable path); a corrupt
  /// manifest does NOT throw here -- writers start fresh over it, and
  /// readers see the corruption as a Status from load_manifest().
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// The manifest as committed on disk. kNotFound when no manifest was ever
  /// committed; kDataLoss when the file is torn or fails its checksum.
  util::Result<CheckpointManifest> load_manifest() const;

  /// Serialize `pipeline` (binary codec, resumable scope) and run the full
  /// commit protocol for `region`. `meta`'s bookkeeping fields
  /// (records_applied, health, status, counters) come from the caller;
  /// epoch/file/bytes/checksum are filled in place. I/O failure returns a
  /// Status and leaves the on-disk store at its previous committed state.
  util::Status commit_region(const std::string& region, const DetectionPipeline& pipeline,
                             RegionCheckpointMeta& meta);

  /// The commit protocol over an already-serialized checkpoint. This is the
  /// half the fleet's committer thread runs: the snapshot was taken on the
  /// producer thread at a quiesced boundary, only the disk work lands here.
  util::Status commit_region_bytes(const std::string& region, std::string_view bytes,
                                   RegionCheckpointMeta& meta);

  /// Read a committed region checkpoint into `out`, verifying its size and
  /// checksum against the manifest entry. kDataLoss on a torn, truncated,
  /// or corrupted file.
  util::Status read_region(const RegionCheckpointMeta& meta, std::string& out) const;

  /// Filename-safe, collision-free encoding of a region name (percent-
  /// escapes everything outside [A-Za-z0-9._-]).
  static std::string sanitize(const std::string& region);

  /// FNV-1a 64-bit -- the store's integrity hash for manifest and
  /// checkpoint bytes.
  static std::uint64_t fnv1a(std::string_view bytes);

 private:
  /// Temp + fsync + rename + directory fsync, with the named fault points
  /// threaded through each stage.
  util::Status write_file_atomic(const std::string& final_name, std::string_view bytes,
                                 bool region_points);
  util::Status commit_manifest();

  std::string dir_;
  /// Last committed manifest (mirrors disk after every successful commit).
  CheckpointManifest manifest_;
};

}  // namespace sentinel::core
