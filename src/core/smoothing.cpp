#include "core/smoothing.h"

#include <map>
#include <set>
#include <stdexcept>

#include "hmm/hmm.h"

namespace sentinel::core {

std::vector<hmm::StateId> smooth_correct_sequence(const hmm::MarkovChain& m_c,
                                                  const std::vector<hmm::StateId>& observed,
                                                  double glitch_prob) {
  if (!(glitch_prob > 0.0 && glitch_prob < 0.5)) {
    throw std::invalid_argument("smooth_correct_sequence: glitch_prob must be in (0, 0.5)");
  }
  if (observed.size() < 2) return observed;

  // Universe: chain states plus any novel observed ids, in stable order.
  std::vector<hmm::StateId> ids = m_c.states();
  std::set<hmm::StateId> known(ids.begin(), ids.end());
  for (const auto id : observed) {
    if (known.insert(id).second) ids.push_back(id);
  }
  const std::size_t m = ids.size();
  std::map<hmm::StateId, std::size_t> index;
  for (std::size_t i = 0; i < m; ++i) index[ids[i]] = i;

  // Transitions: the MLE matrix with a small floor (so one glitchy window
  // cannot be explained only by an unseen transition -- it has to beat the
  // emission penalty instead); novel ids get a strong self-loop.
  const Matrix mle = m_c.transition_matrix();
  constexpr double kFloor = 1e-4;
  Matrix a(m, m, kFloor);
  const auto chain_states = m_c.states();
  for (std::size_t i = 0; i < m; ++i) {
    if (i < chain_states.size()) {
      for (std::size_t j = 0; j < chain_states.size(); ++j) a(i, j) += mle(i, j);
    } else {
      a(i, i) += 1.0;  // novel id: dwell
    }
  }
  a.normalize_rows();

  // Emissions: the majority vote reports the true state with prob 1 - q.
  Matrix b(m, m, m > 1 ? glitch_prob / static_cast<double>(m - 1) : 1.0);
  for (std::size_t i = 0; i < m; ++i) b(i, i) = 1.0 - glitch_prob;
  b.normalize_rows();

  // Initial distribution: occupancy over chain states, floor elsewhere.
  std::vector<double> pi(m, kFloor);
  const auto occ = m_c.occupancy();
  for (std::size_t i = 0; i < chain_states.size(); ++i) pi[i] += occ[i];
  double total = 0.0;
  for (const double p : pi) total += p;
  for (double& p : pi) p /= total;

  const hmm::Hmm model(std::move(a), std::move(b), std::move(pi));
  hmm::Sequence symbols;
  symbols.reserve(observed.size());
  for (const auto id : observed) symbols.push_back(index.at(id));

  const auto decoded = model.viterbi(symbols);
  std::vector<hmm::StateId> out;
  out.reserve(decoded.path.size());
  for (const auto idx : decoded.path) out.push_back(ids[idx]);
  return out;
}

std::size_t smoothing_repairs(const std::vector<hmm::StateId>& observed,
                              const std::vector<hmm::StateId>& smoothed) {
  if (observed.size() != smoothed.size()) {
    throw std::invalid_argument("smoothing_repairs: length mismatch");
  }
  std::size_t n = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) n += observed[i] != smoothed[i];
  return n;
}

}  // namespace sentinel::core
